// Exact, order-independent summation of doubles.
//
// Floating-point addition is not associative, so a sum folded along a
// dispatch tree would depend on the tree shape and merge order — fatal for
// the bit-identical cross-mode contract (DESIGN.md 4g). ExactSum sidesteps
// the problem entirely: it accumulates into a fixed-point two's-complement
// big integer wide enough to hold ANY finite double exactly (a
// Kulisch-style superaccumulator). Adding values and merging accumulators
// are both plain big-integer addition, which is exactly associative and
// commutative, so every grouping of the same multiset of addends yields the
// same limbs and therefore the same correctly-rounded double.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace squid {

class ExactSum {
public:
  /// Bit weight of limb bit 0 is 2^-kFracBits. 1152 fractional bits cover
  /// the smallest subnormal contribution (2^-1074, mantissa LSB at 2^-1126);
  /// 36 limbs = 2304 bits additionally cover the largest double (top bit
  /// 2^1023) plus 2^64 addend headroom and the sign bit.
  static constexpr int kFracBits = 1152;
  static constexpr std::size_t kLimbs = 36;

  /// Add one finite double. Requires std::isfinite(v); fails loudly on
  /// NaN/inf because an experiment that feeds them is misconfigured.
  void add(double v);

  /// Big-integer addition of another accumulator: exactly associative and
  /// commutative, so merge order never matters.
  void merge(const ExactSum& other) noexcept;

  /// The accumulated sum, correctly rounded to nearest-even. Overflow past
  /// the double range returns +/-infinity.
  double value() const noexcept;

  bool is_zero() const noexcept;

  /// Raw two's-complement limbs, least significant first (serialization and
  /// bit-equality checks).
  const std::array<std::uint64_t, kLimbs>& limbs() const noexcept {
    return limbs_;
  }
  void set_limb(std::size_t index, std::uint64_t value) noexcept {
    limbs_[index] = value;
  }

  friend bool operator==(const ExactSum&, const ExactSum&) = default;

private:
  void accumulate(std::uint64_t mantissa, int bit_offset, bool negative) noexcept;

  std::array<std::uint64_t, kLimbs> limbs_{};
};

} // namespace squid
