// Tiered mutable key store (DESIGN.md 4j).
//
// The flat sorted-array store (DESIGN.md 4b) made scans contiguous and load
// probes rank queries, at the recorded cost of an O(K) array shift per
// single-key publish of a NEW key — fine for publish-once corpora, fatal
// for update-heavy workloads (moving objects retract and republish every
// epoch). This container keeps the flat layout as the BASE tier and adds a
// small sorted DELTA tier in front of it:
//
//   * base_index_/base_data_ — the big sorted arrays, exactly 4b's layout.
//   * delta_index_/delta_data_ — keys inserted since the last merge, also
//     sorted. Inserting here shifts O(|delta|) elements, not O(K).
//   * dead_ — tombstones: base keys whose payload was retracted. The base
//     slot stays in place (no O(K) erase); readers skip it. A republished
//     tombstone is resurrected in place.
//
// Reads merge the two tiers on the fly: scans walk base, delta, and the
// tombstone list in lockstep (ascending key order, O(1) amortized per key),
// rank queries subtract/add the side tiers with two extra binary searches,
// and order statistics select across the tiers in O(log^2). Every read is
// bit-identical to a from-scratch flat build of the same content — the
// invariant tests/core/store_differential_test.cpp locks end to end.
//
// A deterministic amortized merge folds the tiers back into the base when
// |delta| + |tombstones| exceeds the threshold (delta_cap): by default
// max(kDeltaFloor, 4*sqrt(K)) — the classic defer-and-merge balance point,
// giving amortized O(sqrt K) per mutation with the O(K) fold paid once per
// Theta(sqrt K) operations. The threshold is a pure function of sizes, so
// any replay of the same operation sequence merges at the same steps.
// delta_cap = 1 degenerates to the 4b flat store (merge after every
// mutation), which is how bench/micro_store measures before/after.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "squid/util/require.hpp"
#include "squid/util/u128.hpp"

namespace squid::util {

/// Size threshold at which the delta tier folds into the base: the default
/// policy (cap = 0) allows max(kDeltaFloor, 4*sqrt(base_keys)) pending
/// entries; a non-zero cap is used verbatim (cap = 1 -> flat-store
/// behavior). Exposed so benches and docs state the exact rule.
inline std::size_t store_merge_threshold(std::size_t base_keys,
                                         std::size_t cap) noexcept {
  if (cap != 0) return cap;
  constexpr std::size_t kDeltaFloor = 64;
  const auto root = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(base_keys)));
  return std::max(kDeltaFloor, 4 * root);
}

/// Monotone counters describing the store's merge behavior (the owner
/// publishes them as squid.store.* metrics).
struct TieredStoreStats {
  std::uint64_t merges = 0;      ///< delta->base folds performed
  std::uint64_t merged_keys = 0; ///< delta entries + tombstones folded
};

template <class Payload>
class TieredStore {
public:
  /// `delta_cap`: 0 = automatic sqrt policy (store_merge_threshold);
  /// n > 0 = merge whenever |delta| + |tombstones| >= n.
  explicit TieredStore(std::size_t delta_cap = 0) : delta_cap_(delta_cap) {}

  // --- Size / tier introspection ------------------------------------------

  /// Number of LIVE keys (base minus tombstones plus delta).
  std::size_t size() const noexcept {
    return base_index_.size() - dead_.size() + delta_index_.size();
  }
  bool empty() const noexcept { return size() == 0; }
  std::size_t delta_size() const noexcept { return delta_index_.size(); }
  std::size_t tombstones() const noexcept { return dead_.size(); }
  const TieredStoreStats& stats() const noexcept { return stats_; }
  std::size_t delta_cap() const noexcept { return delta_cap_; }
  void set_delta_cap(std::size_t cap) {
    delta_cap_ = cap;
    maybe_merge();
  }

  // --- Mutation -------------------------------------------------------------

  /// Payload of `key`'s live slot, or nullptr when the key is absent
  /// (never stored, or tombstoned).
  Payload* find(u128 key) {
    if (const auto d = delta_pos(key)) return &delta_data_[*d];
    if (const auto b = base_pos(key); b && !is_dead(key))
      return &base_data_[*b];
    return nullptr;
  }
  const Payload* find(u128 key) const {
    return const_cast<TieredStore*>(this)->find(key);
  }

  /// Find-or-create the slot for `key`: an existing live slot is returned
  /// as-is; a tombstoned base slot is resurrected in place (its payload was
  /// cleared at retract time); otherwise the key enters the delta tier with
  /// a default-constructed payload (an O(|delta|) shift — the cost the
  /// merge threshold bounds). May trigger the amortized merge, so the
  /// returned reference is only valid until the next store call.
  Payload& obtain(u128 key) {
    if (const auto d = delta_pos(key)) return delta_data_[*d];
    if (const auto b = base_pos(key)) {
      const auto dead = std::lower_bound(dead_.begin(), dead_.end(), key);
      if (dead != dead_.end() && *dead == key) dead_.erase(dead);
      return base_data_[*b];
    }
    const auto it =
        std::lower_bound(delta_index_.begin(), delta_index_.end(), key);
    const auto pos = static_cast<std::size_t>(it - delta_index_.begin());
    delta_index_.insert(it, key);
    delta_data_.insert(delta_data_.begin() + static_cast<std::ptrdiff_t>(pos),
                       Payload{});
    maybe_merge();
    if (const auto d = delta_pos(key)) return delta_data_[*d];
    return base_data_[*base_pos(key)]; // the insert triggered a fold
  }

  /// Remove `key`'s live slot: a delta entry is erased outright, a base
  /// entry is tombstoned (payload cleared in place, key recorded in dead_).
  /// Returns false when the key is not live. May trigger the merge.
  bool erase(u128 key) {
    if (const auto d = delta_pos(key)) {
      delta_index_.erase(delta_index_.begin() +
                         static_cast<std::ptrdiff_t>(*d));
      delta_data_.erase(delta_data_.begin() + static_cast<std::ptrdiff_t>(*d));
      return true;
    }
    const auto b = base_pos(key);
    if (!b || is_dead(key)) return false;
    base_data_[*b] = Payload{}; // release the payload now, not at merge time
    dead_.insert(std::lower_bound(dead_.begin(), dead_.end(), key), key);
    maybe_merge();
    return true;
  }

  /// Replace the whole store with pre-merged sorted content (the
  /// publish_batch loader builds these). `keys` must be strictly ascending.
  void assign_sorted(std::vector<u128> keys, std::vector<Payload> payloads) {
    SQUID_REQUIRE(keys.size() == payloads.size(),
                  "TieredStore::assign_sorted: array size mismatch");
    base_index_ = std::move(keys);
    base_data_ = std::move(payloads);
    delta_index_.clear();
    delta_data_.clear();
    dead_.clear();
  }

  /// Bulk load: fold the tiers, then hand the (now complete) base arrays to
  /// `fn` for in-place rebuilding — publish_batch's O((K+E)·log E)
  /// sort-merge loader runs here instead of going through obtain() per key.
  /// `fn` must leave the arrays sorted, duplicate-free, and parallel.
  template <class Fn>
  void bulk_update(Fn&& fn) {
    merge();
    fn(base_index_, base_data_);
  }

  /// Fold delta + tombstones into the base tier now (bulk_update calls
  /// this before its rebuild so it runs over pure base arrays).
  void merge() {
    if (delta_index_.empty() && dead_.empty()) return;
    stats_.merges += 1;
    stats_.merged_keys += delta_index_.size() + dead_.size();
    std::vector<u128> index;
    std::vector<Payload> data;
    index.reserve(size());
    data.reserve(size());
    const auto take_base = [&](std::size_t b) {
      if (is_dead(base_index_[b])) return;
      index.push_back(base_index_[b]);
      data.push_back(std::move(base_data_[b]));
    };
    std::size_t b = 0, d = 0;
    while (b < base_index_.size() && d < delta_index_.size()) {
      if (base_index_[b] < delta_index_[d]) {
        take_base(b++);
      } else {
        // Tiers are disjoint by construction (obtain() never shadows a live
        // base key), so strict inequality holds here.
        index.push_back(delta_index_[d]);
        data.push_back(std::move(delta_data_[d]));
        ++d;
      }
    }
    for (; b < base_index_.size(); ++b) take_base(b);
    for (; d < delta_index_.size(); ++d) {
      index.push_back(delta_index_[d]);
      data.push_back(std::move(delta_data_[d]));
    }
    base_index_ = std::move(index);
    base_data_ = std::move(data);
    delta_index_.clear();
    delta_data_.clear();
    dead_.clear();
  }

  // --- Merged reads ---------------------------------------------------------

  /// Rank of the first live key strictly greater than `v` (== count of live
  /// keys <= v): base rank, minus tombstones <= v, plus delta keys <= v.
  std::size_t rank_after(u128 v) const {
    const auto rank = [v](const std::vector<u128>& keys) {
      return static_cast<std::size_t>(
          std::upper_bound(keys.begin(), keys.end(), v) - keys.begin());
    };
    return rank(base_index_) - rank(dead_) + rank(delta_index_);
  }

  /// The k-th smallest live key (0-based). Requires k < size(). Selects
  /// across the tiers by binary-searching the delta's contribution:
  /// O(log |delta| * log K).
  u128 kth(std::size_t k) const {
    SQUID_REQUIRE(k < size(), "TieredStore::kth: rank out of range");
    // Take i keys from the delta and k+1-i from the live base; the correct
    // split is the unique i where the usual two-sorted-array selection
    // fences hold.
    const std::size_t alive = base_index_.size() - dead_.size();
    std::size_t lo = k + 1 > alive ? k + 1 - alive : 0;
    std::size_t hi = std::min(delta_index_.size(), k + 1);
    while (lo < hi) {
      const std::size_t i = lo + (hi - lo) / 2; // delta keys taken
      const std::size_t j = k + 1 - i;          // live base keys taken
      if (i < delta_index_.size() && j > 0 &&
          delta_index_[i] < alive_base_at(j - 1)) {
        lo = i + 1; // delta[i] still below the base fence: take more delta
      } else if (i > 0 && j < alive && alive_base_at(j) < delta_index_[i - 1]) {
        hi = i - 1 + 1; // took too much delta
        hi = i;
      } else {
        lo = hi = i;
      }
    }
    const std::size_t i = lo, j = k + 1 - lo;
    u128 best = 0;
    bool have = false;
    if (i > 0) {
      best = delta_index_[i - 1];
      have = true;
    }
    if (j > 0) {
      const u128 candidate = alive_base_at(j - 1);
      if (!have || candidate > best) best = candidate;
    }
    return best;
  }

  /// Visit every live (key, payload) in ascending key order: a three-way
  /// lockstep walk over base, delta, and the tombstone list.
  template <class Fn>
  void for_each(Fn&& fn) const {
    scan(0, ~u128{0}, fn);
  }

  /// Visit live keys in [lo, hi], ascending.
  template <class Fn>
  void scan(u128 lo, u128 hi, Fn&& fn) const {
    if (hi < lo) return;
    std::size_t b = lower_bound_pos(base_index_, lo);
    std::size_t d = lower_bound_pos(delta_index_, lo);
    std::size_t t = lower_bound_pos(dead_, lo);
    while (true) {
      const bool has_b = b < base_index_.size() && base_index_[b] <= hi;
      const bool has_d = d < delta_index_.size() && delta_index_[d] <= hi;
      if (!has_b && !has_d) return;
      if (has_b && (!has_d || base_index_[b] < delta_index_[d])) {
        if (t < dead_.size() && dead_[t] == base_index_[b]) {
          ++t; // tombstoned: skip without visiting
        } else {
          fn(base_index_[b], base_data_[b]);
        }
        ++b;
      } else {
        fn(delta_index_[d], delta_data_[d]);
        ++d;
      }
    }
  }

  /// Materialize the live key set, ascending (the public key_indices()
  /// snapshot; O(K) — callers treat it as an export, not an accessor).
  std::vector<u128> materialize_keys() const {
    std::vector<u128> out;
    out.reserve(size());
    scan(0, ~u128{0}, [&](u128 key, const Payload&) { out.push_back(key); });
    return out;
  }

  /// Copy the live slots in [lo, hi] into parallel arrays (replica
  /// snapshots).
  void snapshot_range(u128 lo, u128 hi, std::vector<u128>& keys,
                      std::vector<Payload>& payloads) const {
    keys.clear();
    payloads.clear();
    scan(lo, hi, [&](u128 key, const Payload& payload) {
      keys.push_back(key);
      payloads.push_back(payload);
    });
  }

  /// Structural invariants, for tests: tiers sorted and disjoint,
  /// tombstones a subset of base keys with cleared payloads.
  void check_invariants() const {
    SQUID_REQUIRE(std::is_sorted(base_index_.begin(), base_index_.end()),
                  "TieredStore: base tier out of order");
    SQUID_REQUIRE(std::is_sorted(delta_index_.begin(), delta_index_.end()),
                  "TieredStore: delta tier out of order");
    SQUID_REQUIRE(std::is_sorted(dead_.begin(), dead_.end()),
                  "TieredStore: tombstones out of order");
    SQUID_REQUIRE(base_index_.size() == base_data_.size() &&
                      delta_index_.size() == delta_data_.size(),
                  "TieredStore: index/payload arrays diverged");
    for (const u128 key : dead_)
      SQUID_REQUIRE(base_pos(key).has_value(),
                    "TieredStore: tombstone for a key not in the base tier");
    for (const u128 key : delta_index_)
      SQUID_REQUIRE(!base_pos(key).has_value(),
                    "TieredStore: delta shadows a base key");
    SQUID_REQUIRE(
        std::adjacent_find(base_index_.begin(), base_index_.end()) ==
                base_index_.end() &&
            std::adjacent_find(delta_index_.begin(), delta_index_.end()) ==
                delta_index_.end() &&
            std::adjacent_find(dead_.begin(), dead_.end()) == dead_.end(),
        "TieredStore: duplicate keys inside a tier");
  }

private:
  struct Pos {
    std::size_t value = 0;
    bool present = false;
    explicit operator bool() const noexcept { return present; }
    std::size_t operator*() const noexcept { return value; }
    bool has_value() const noexcept { return present; }
  };

  static std::size_t lower_bound_pos(const std::vector<u128>& keys, u128 v) {
    return static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), v) - keys.begin());
  }
  Pos base_pos(u128 key) const {
    const std::size_t p = lower_bound_pos(base_index_, key);
    return {p, p < base_index_.size() && base_index_[p] == key};
  }
  Pos delta_pos(u128 key) const {
    const std::size_t p = lower_bound_pos(delta_index_, key);
    return {p, p < delta_index_.size() && delta_index_[p] == key};
  }
  bool is_dead(u128 key) const {
    const auto it = std::lower_bound(dead_.begin(), dead_.end(), key);
    return it != dead_.end() && *it == key;
  }

  /// The j-th live base key (0-based, tombstones excluded): binary search
  /// over base positions — alive-rank(p) = p+1 - tombstones<=base[p] is
  /// nondecreasing in p.
  u128 alive_base_at(std::size_t j) const {
    std::size_t lo = j, hi = base_index_.size() - 1;
    while (lo < hi) {
      const std::size_t p = lo + (hi - lo) / 2;
      const std::size_t alive_rank =
          p + 1 - lower_bound_pos(dead_, base_index_[p] + 1);
      if (alive_rank < j + 1) {
        lo = p + 1;
      } else {
        hi = p;
      }
    }
    return base_index_[lo];
  }

  void maybe_merge() {
    if (delta_index_.size() + dead_.size() >=
        store_merge_threshold(base_index_.size(), delta_cap_))
      merge();
  }

  std::size_t delta_cap_ = 0;
  std::vector<u128> base_index_;
  std::vector<Payload> base_data_;
  std::vector<u128> delta_index_;
  std::vector<Payload> delta_data_;
  std::vector<u128> dead_; ///< tombstoned base keys, sorted
  TieredStoreStats stats_;
};

} // namespace squid::util
