// 128-bit unsigned index type used for SFC indices and overlay identifiers.
//
// Squid maps d-dimensional keyword coordinates onto a single curve index of
// d*m bits (m bits per dimension). Supporting d*m up to 128 lets us index,
// e.g., 3 attributes of 42 bits each, or 8-character base-26 keywords in 2-3
// dimensions, without an arbitrary-precision integer library.

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace squid {

using u128 = unsigned __int128;

inline constexpr u128 u128_max = ~static_cast<u128>(0);

/// Build a u128 from two 64-bit halves.
constexpr u128 make_u128(std::uint64_t hi, std::uint64_t lo) noexcept {
  return (static_cast<u128>(hi) << 64) | lo;
}

constexpr std::uint64_t hi64(u128 v) noexcept {
  return static_cast<std::uint64_t>(v >> 64);
}

constexpr std::uint64_t lo64(u128 v) noexcept {
  return static_cast<std::uint64_t>(v);
}

/// Mask with the low `bits` bits set. `bits` must be in [0, 128].
constexpr u128 low_mask(unsigned bits) noexcept {
  return bits >= 128 ? u128_max : (static_cast<u128>(1) << bits) - 1;
}

/// Number of significant bits (position of highest set bit + 1); 0 for v==0.
constexpr unsigned bit_width(u128 v) noexcept {
  unsigned w = 0;
  while (v != 0) {
    v >>= 1;
    ++w;
  }
  return w;
}

/// Decimal rendering (u128 has no iostream support in the standard library).
std::string to_string(u128 v);

/// Fixed-width binary rendering of the low `bits` bits, most significant
/// first. Useful for inspecting SFC prefixes (digital causality).
std::string to_binary_string(u128 v, unsigned bits);

/// Hexadecimal rendering with a 0x prefix (no leading-zero padding).
std::string to_hex_string(u128 v);

/// Parse a decimal string into a u128. Throws std::invalid_argument on bad
/// input and std::out_of_range on overflow.
u128 parse_u128(std::string_view text);

} // namespace squid
