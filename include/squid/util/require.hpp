// Precondition checking helpers.
//
// SQUID_REQUIRE validates caller-supplied arguments and configuration; it is
// always active (including Release builds) because simulator misconfiguration
// must fail loudly, not corrupt an experiment. Hot inner loops use plain
// assert() instead where the cost would matter.

#pragma once

#include <stdexcept>
#include <string>

namespace squid::detail {

[[noreturn]] inline void require_failed(const char* condition,
                                        const char* file, int line,
                                        const std::string& message) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement `" + condition +
                              "` failed: " + message);
}

} // namespace squid::detail

#define SQUID_REQUIRE(cond, message)                                        \
  do {                                                                      \
    if (!(cond))                                                            \
      ::squid::detail::require_failed(#cond, __FILE__, __LINE__, (message)); \
  } while (false)
