// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (node id assignment, workload
// generation, churn schedules, load-balancing probes) draws from an Rng
// seeded explicitly by the experiment harness, so identical seeds yield
// bit-identical runs across platforms.

#pragma once

#include <cstdint>
#include <vector>

#include "squid/util/u128.hpp"

namespace squid {

/// splitmix64: used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, though the members below avoid them for
/// cross-platform determinism.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero. Uses rejection
  /// sampling (Lemire-style threshold) to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform 128-bit value in [0, bound). bound must be nonzero.
  u128 below128(u128 bound) noexcept;

  /// Uniform u128 over the full 128-bit range.
  u128 next128() noexcept {
    const std::uint64_t hi = (*this)();
    const std::uint64_t lo = (*this)();
    return make_u128(hi, lo);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator; used to give each simulated node
  /// or workload stream its own deterministic sequence.
  Rng fork() noexcept { return Rng((*this)() ^ 0xa5a5a5a5a5a5a5a5ull); }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Zipf(s, n) sampler over ranks {0, .., n-1}: rank r has probability
/// proportional to 1/(r+1)^s. Precomputes the CDF; sampling is a binary
/// search, O(log n). Keyword popularity in P2P corpora is classically
/// Zipf-distributed, which produces the clustered, non-uniform index space
/// the paper's load-balancing section targets.
class ZipfSampler {
public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

private:
  std::vector<double> cdf_;
  double exponent_ = 0;
};

} // namespace squid
