// Circular identifier-space arithmetic for the Chord ring (paper 3.2).
//
// Identifiers live in [0, 2^bits) arranged as a circle; all interval tests
// are clockwise. Following Chord's convention, a zero-length interval like
// (a, a] denotes the *whole* ring (it is how a single-node ring owns every
// key), not the empty set.

#pragma once

#include "squid/util/u128.hpp"

namespace squid::overlay {

using NodeId = u128;

/// x in (a, b] clockwise.
constexpr bool in_open_closed(NodeId a, NodeId b, NodeId x) noexcept {
  if (a < b) return a < x && x <= b;
  return x > a || x <= b; // wrapped (or full circle when a == b)
}

/// x in (a, b) clockwise. (a, a) is the whole ring minus a.
constexpr bool in_open_open(NodeId a, NodeId b, NodeId x) noexcept {
  if (a < b) return a < x && x < b;
  if (a == b) return x != a;
  return x > a || x < b;
}

/// x in [a, b) clockwise.
constexpr bool in_closed_open(NodeId a, NodeId b, NodeId x) noexcept {
  if (a < b) return a <= x && x < b;
  return x >= a || x < b;
}

/// Clockwise distance from a to b in a ring of width `bits`.
constexpr u128 ring_distance(NodeId a, NodeId b, unsigned bits) noexcept {
  const u128 mask = low_mask(bits);
  return (b - a) & mask;
}

/// (a + 2^k) mod 2^bits — the k-th finger target.
constexpr NodeId finger_target(NodeId a, unsigned k, unsigned bits) noexcept {
  return (a + (static_cast<u128>(1) << k)) & low_mask(bits);
}

} // namespace squid::overlay
