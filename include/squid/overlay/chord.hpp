// Chord overlay network (paper 3.2), simulated in-process.
//
// Node identifiers are random values in [0, 2^id_bits); every key is owned
// by its successor — the first node clockwise at or after it. Each node
// keeps a finger table (finger[k] = successor(id + 2^k)), a predecessor, and
// a short successor list for fault tolerance. Routing is iterative greedy
// closest-preceding-finger, O(log N) hops on a converged ring. Joins splice
// through routed lookups, departures are graceful notifications, failures
// leave stale state behind that periodic stabilization repairs — exactly the
// maintenance story of 3.2.
//
// The ring object owns all nodes (this is a simulator, not a network stack);
// honesty discipline: route() and stabilization act only on the local state
// of the nodes involved. Ground-truth helpers (successor_of, repair_all) are
// clearly named and used only for experiment setup and assertions.
//
// Membership is stored flat (DESIGN.md 4b): a sorted contiguous array of
// identifiers with a parallel slot table into a stable node arena, instead
// of a node-based std::map. successor_of / predecessor_of / contains are
// binary searches over contiguous u128s, random_node is an O(1) (amortized)
// rank pick, and repair_all wires whole tables by rank arithmetic. Leave and
// fail tombstone their array entry; compaction is deferred to the next
// insert (which pays O(N) for its shift anyway) or to a density threshold.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "squid/overlay/id_space.hpp"
#include "squid/util/rng.hpp"

namespace squid::overlay {

struct ChordNode {
  NodeId id = 0;
  NodeId predecessor = 0;
  bool has_predecessor = false;
  std::vector<NodeId> fingers;    ///< fingers[k] = successor(id + 2^k)
  std::vector<NodeId> successors; ///< successor list, [0] = immediate
};

/// Outcome of one iterative routing operation. `path` lists every node that
/// handled the message, starting at the source and ending at the owner of
/// the key (on success).
struct RouteResult {
  bool ok = false;
  NodeId dest = 0;
  std::vector<NodeId> path;

  /// Overlay hops = messages sent during routing.
  std::size_t hops() const noexcept {
    return path.empty() ? 0 : path.size() - 1;
  }
};

class ChordRing {
public:
  /// `id_bits`: ring width (paper uses the SFC index width). `successors`:
  /// length of each node's successor list. `finger_base`: 2 gives classic
  /// Chord fingers at id + 2^k; base b keeps (b-1) fingers per base-b digit
  /// at id + j*b^k — shorter routes (log_b N hops) for larger tables (the
  /// k-ary lookup generalization of El-Ansary et al.; ablation bench).
  explicit ChordRing(unsigned id_bits, unsigned successors = 8,
                     unsigned finger_base = 2);

  unsigned id_bits() const noexcept { return id_bits_; }
  unsigned finger_base() const noexcept { return finger_base_; }
  /// Number of finger-table entries per node for this ring's geometry.
  std::size_t finger_count() const noexcept { return finger_targets_.size(); }
  /// The k-th finger target of `id`: (id + finger_targets_[k]) mod 2^bits.
  NodeId finger_target_of(NodeId id, std::size_t k) const {
    return (id + finger_targets_[k]) & id_mask();
  }
  u128 id_mask() const noexcept { return low_mask(id_bits_); }
  std::size_t size() const noexcept { return live_count_; }
  bool contains(NodeId id) const { return find_pos(id) != npos; }

  /// Experiment setup: create `count` nodes with distinct random ids and
  /// wire every table exactly.
  void build(std::size_t count, Rng& rng);

  /// Create a node with the given id and wire it exactly (no routing cost).
  /// Used by setup code and by the load-balancing join which has already
  /// chosen the id.
  void add_node_exact(NodeId id);

  /// Protocol-faithful join: route from `bootstrap` to the successor of
  /// `new_id`, splice in, and seed the finger table from the successor.
  /// Entries converge via stabilization. Returns the routing cost.
  RouteResult join(NodeId new_id, NodeId bootstrap);

  /// Graceful departure: neighbors are patched, fingers elsewhere go stale
  /// until stabilization repairs them.
  void leave(NodeId id);

  /// Abrupt failure: the node vanishes; all remote state pointing at it is
  /// left dangling.
  void fail(NodeId id);

  /// Iterative lookup from `from` for `key`, using only finger tables and
  /// successor lists of the nodes on the path (dead fingers are skipped the
  /// way a real node would after an RPC timeout).
  RouteResult route(NodeId from, u128 key) const;

  /// One stabilization round at `id` (paper 3.2, node failures): verify the
  /// immediate successor (falling back along the successor list), refresh
  /// the successor list, notify the successor, and fix one random finger.
  void stabilize(NodeId id, Rng& rng);

  /// Failure detection (docs/FAULT_MODEL.md): `observer` exhausted its
  /// message retries against `dead` and now suspects it. Purge `dead` from
  /// the observer's successor list, repoint fingers at the observer's next
  /// live successor, and clear a predecessor link to it — exactly what a
  /// real node does after an RPC timeout. Safe against false positives
  /// (message loss to a live peer): stabilization re-learns pruned state.
  void note_timeout(NodeId observer, NodeId dead);

  /// Run `rounds` full sweeps of stabilize() over every node, in random
  /// order.
  void stabilize_all(Rng& rng, unsigned rounds = 1);

  /// Ground truth: owner of `key` given current membership.
  NodeId successor_of(u128 key) const;
  /// Ground truth: first node strictly before `key` (wrapping).
  NodeId predecessor_of(u128 key) const;

  /// Recompute every node's predecessor/successor-list/fingers exactly.
  /// Tolerates tombstoned entries: after mass departure the membership
  /// array may hold up to ~50% dead slots (remove_pos defers compaction),
  /// and repair resolves every link through live entries only instead of
  /// assuming a dense array.
  void repair_all();

  const ChordNode& node(NodeId id) const;
  ChordNode& node(NodeId id);

  /// All node ids in ring order (ascending).
  std::vector<NodeId> node_ids() const;

  /// Random existing node id (uniform); requires a nonempty ring.
  NodeId random_node(Rng& rng) const;

  /// Draw an id not currently present in the ring.
  NodeId random_free_id(Rng& rng) const;

  /// True when every node's immediate successor matches ground truth.
  bool ring_consistent() const;

  /// Maximum hops allowed before route() declares failure.
  std::size_t max_route_hops() const noexcept { return 4 * (id_bits_ + 2); }

private:
  static constexpr std::uint32_t kDeadSlot = 0xffffffffu;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  NodeId closest_preceding_alive(const ChordNode& n, u128 key) const;
  std::optional<NodeId> first_alive_successor(const ChordNode& n) const;

  /// First array position with ids_[pos] >= key (== ids_.size() past end).
  std::size_t lower_pos(u128 key) const;
  /// Array position of live node `id`, or npos.
  std::size_t find_pos(NodeId id) const;
  /// Wire predecessor, successor list, and the short-range finger prefix of
  /// the node at array position `r` (must be live; tombstoned neighbors are
  /// skipped). Returns the first finger index still needing a membership
  /// search.
  std::size_t wire_links(std::size_t r);
  /// Wire the node at array position `r` exactly (binary search per finger,
  /// stepping over tombstones).
  void wire_rank(std::size_t r);
  /// Drop tombstones, restoring ids_/slot_ to dense rank order.
  void compact();
  /// Sorted insert of a fresh id (compacts first); returns its slot.
  std::uint32_t insert_id(NodeId id);
  /// Tombstone the entry at `pos` and recycle its slot.
  void remove_pos(std::size_t pos);
  std::uint32_t alloc_slot();

  unsigned id_bits_;
  unsigned successor_list_len_;
  unsigned finger_base_;
  std::vector<u128> finger_offsets() const; // built once in the ctor
  std::vector<u128> finger_targets_;        // offsets j*base^k, ascending

  std::vector<NodeId> ids_;         ///< sorted; tombstoned entries included
  std::vector<std::uint32_t> slot_; ///< parallel: arena slot, or kDeadSlot
  std::vector<ChordNode> arena_;    ///< slot storage; slots are recycled
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::size_t> dead_pos_; ///< sorted tombstone positions in ids_
  std::size_t live_count_ = 0;
};

} // namespace squid::overlay
