// CAN overlay network (Ratnasamy et al., SIGCOMM 2001) — the substrate of
// the Andrzejak-Xu inverse-SFC range-query system the paper contrasts
// itself against (paper 2, Related Work).
//
// The coordinate space is a d-dimensional discrete torus of side 2^m. Every
// node owns an axis-aligned box (zone); a joining node picks a random point
// and splits the owning zone in half along the dimension cycled round-robin
// with the zone's split history (the classic CAN construction, which keeps
// zones near-square). Routing is greedy: forward to the neighbor whose zone
// is closest to the target point under torus L1 distance.

#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "squid/sfc/types.hpp"
#include "squid/util/rng.hpp"

namespace squid::overlay {

class CanOverlay {
public:
  using NodeIndex = std::uint32_t;

  struct Zone {
    std::vector<sfc::Interval> box; ///< inclusive per-dimension extents
    unsigned next_split_dim = 0;    ///< round-robin split cursor

    bool contains(const sfc::Point& p) const noexcept;
  };

  struct RouteResult {
    bool ok = false;
    NodeIndex dest = 0;
    std::vector<NodeIndex> path;

    std::size_t hops() const noexcept {
      return path.empty() ? 0 : path.size() - 1;
    }
  };

  CanOverlay(unsigned dims, unsigned bits_per_dim);

  unsigned dims() const noexcept { return dims_; }
  unsigned bits_per_dim() const noexcept { return bits_per_dim_; }
  std::size_t size() const noexcept { return zones_.size(); }

  /// Grow the overlay to `count` zones by repeated random-point joins.
  void build(std::size_t count, Rng& rng);

  /// One join: split the zone owning a random point. Returns the new node.
  NodeIndex join(Rng& rng);

  const Zone& zone(NodeIndex node) const;
  const std::set<NodeIndex>& neighbors(NodeIndex node) const;

  /// Ground truth: the node owning `point`.
  NodeIndex owner_of(const sfc::Point& point) const;

  /// Greedy routing from `from` toward the zone containing `point`.
  RouteResult route(NodeIndex from, const sfc::Point& point) const;

  NodeIndex random_node(Rng& rng) const {
    return static_cast<NodeIndex>(rng.below(zones_.size()));
  }

  /// Sanity: zones partition the torus and neighbor sets are symmetric.
  bool invariants_hold() const;

private:
  bool zones_adjacent(const Zone& a, const Zone& b) const noexcept;
  std::uint64_t torus_axis_distance(std::uint64_t coord,
                                    const sfc::Interval& extent,
                                    unsigned dim) const noexcept;
  std::uint64_t torus_distance(const sfc::Point& p,
                               const Zone& zone) const noexcept;
  void rebuild_neighbors(NodeIndex node);

  unsigned dims_;
  unsigned bits_per_dim_;
  std::vector<Zone> zones_;
  std::vector<std::set<NodeIndex>> neighbors_;
};

} // namespace squid::overlay
