// Pastry overlay (Rowstron & Druschel, Middleware 2001) — the third overlay
// family the paper cites (paper 2); built here for the overlay-topology
// comparison the paper lists as future work ("evaluate other network
// topologies").
//
// Identifiers are 128-bit strings of base-2^b digits. Each node keeps a
// *leaf set* (the L/2 numerically closest nodes on each side) and a
// *routing table* with one row per shared-prefix length and one column per
// digit value. A key is owned by the numerically closest node (with
// wraparound). Routing resolves one digit per hop: ~log_{2^b} N hops.
//
// Scope: this implementation targets converged-state routing comparisons
// (tables are wired exactly, as repair_all does for Chord); the churn
// protocol of the paper is out of scope here — Chord remains Squid's
// maintained substrate.

#pragma once

#include <map>
#include <vector>

#include "squid/util/rng.hpp"
#include "squid/util/u128.hpp"

namespace squid::overlay {

class PastryOverlay {
public:
  /// `digit_bits` = the paper's b (digits are base 2^b; 4 = hex digits).
  /// `leaf_set` = total leaf-set size L (split evenly to both sides).
  PastryOverlay(unsigned digit_bits = 4, unsigned leaf_set = 16);

  unsigned digit_bits() const noexcept { return digit_bits_; }
  unsigned digits() const noexcept { return 128 / digit_bits_; }
  std::size_t size() const noexcept { return nodes_.size(); }

  void build(std::size_t count, Rng& rng);

  struct RouteResult {
    bool ok = false;
    u128 dest = 0;
    std::vector<u128> path;

    std::size_t hops() const noexcept {
      return path.empty() ? 0 : path.size() - 1;
    }
  };

  /// Ground truth: numerically closest node to `key` (wrapping; ties break
  /// toward the clockwise neighbor).
  u128 owner_of(u128 key) const;

  /// Prefix routing from `from` toward `key`, using only the local leaf
  /// set / routing table of each node on the path.
  RouteResult route(u128 from, u128 key) const;

  u128 random_node(Rng& rng) const;

  /// Mean number of populated routing-table entries per node (plus the
  /// leaf set) — the state-size side of the hops/state trade-off.
  double mean_table_entries() const;

  /// Digits of `id`, most significant first.
  std::vector<unsigned> digits_of(u128 id) const;

  /// Length of the common digit prefix of two ids.
  unsigned shared_prefix(u128 a, u128 b) const;

private:
  struct Node {
    std::vector<u128> leaves_cw;  ///< clockwise neighbors, nearest first
    std::vector<u128> leaves_ccw; ///< counter-clockwise, nearest first
    /// routing[row * (2^b) + col]: a node sharing `row` digits with us whose
    /// next digit is `col`; 0-width optional encoded via `present`.
    std::vector<u128> routing;
    std::vector<bool> present;
  };

  /// Circular numeric distance (the smaller arc).
  u128 circular_distance(u128 a, u128 b) const noexcept;
  void wire_node(u128 id, Node& node);
  bool leaf_covers(const Node& node, u128 key) const;

  unsigned digit_bits_;
  unsigned leaf_half_;
  std::map<u128, Node> nodes_;
};

} // namespace squid::overlay
