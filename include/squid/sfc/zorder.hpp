// Z-order (Morton) and Gray-code curves.
//
// Both are hierarchical bijections like Hilbert but with weaker locality:
// Z-order simply interleaves coordinate bits; the Gray curve additionally
// ranks each level's 2^d cells by binary-reflected Gray code, removing some
// (not all) of Z-order's long jumps. They serve as ablation baselines for
// the clustering-quality benchmarks (DESIGN.md, `bench/abl_curves`).

#pragma once

#include "squid/sfc/curve.hpp"

namespace squid::sfc {

class ZOrderCurve final : public Curve {
public:
  ZOrderCurve(unsigned dims, unsigned bits_per_dim);

  std::string name() const override { return "zorder"; }
  CurveFamily family() const noexcept override { return CurveFamily::zorder; }
  u128 index_of(const Point& point) const override;
  Point point_of(u128 index) const override;
};

/// Simplified Gray-code curve: each d-bit index digit is the Gray rank of
/// the corresponding interleaved coordinate digit (no orientation
/// reflection, unlike Hilbert).
class GrayCurve final : public Curve {
public:
  GrayCurve(unsigned dims, unsigned bits_per_dim);

  std::string name() const override { return "gray"; }
  CurveFamily family() const noexcept override { return CurveFamily::gray; }
  u128 index_of(const Point& point) const override;
  Point point_of(u128 index) const override;
};

} // namespace squid::sfc
