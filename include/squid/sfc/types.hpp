// Geometric vocabulary for the SFC index space.
//
// The d-dimensional keyword space is a discrete cube of side 2^m (m bits per
// dimension). Flexible queries (whole keyword, partial keyword, wildcard,
// numeric range) all translate into one inclusive coordinate interval per
// dimension (see keyword/query.hpp), i.e. an axis-aligned Rect. The curve
// maps a Rect to a set of disjoint index Segments — the paper's "clusters".

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "squid/util/u128.hpp"

namespace squid::sfc {

/// Hard upper bound on dimensionality. The index width dims*bits_per_dim is
/// capped at 128 bits, so no curve can exceed 128 dimensions; sizing inline
/// buffers to this bound makes them universally safe.
inline constexpr unsigned kMaxDims = 128;

/// Upper bound on refinement depth (bits_per_dim); dims >= 1 caps it at 128.
inline constexpr unsigned kMaxLevels = 128;

/// How a refinement-tree cell relates to a query rectangle (paper Fig 7).
enum class CellRelation {
  disjoint, ///< cell shares no point with the query: prune
  partial,  ///< cell intersects but is not contained: refine further
  covered,  ///< cell fully inside the query: whole segment matches
};

/// A point in the keyword space: one coordinate per dimension.
using Point = std::vector<std::uint64_t>;

/// Inclusive interval of coordinates along one dimension.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool contains(std::uint64_t v) const noexcept { return lo <= v && v <= hi; }
  bool intersects(const Interval& other) const noexcept {
    return lo <= other.hi && other.lo <= hi;
  }
  /// True when this interval covers `other` entirely.
  bool covers(const Interval& other) const noexcept {
    return lo <= other.lo && other.hi <= hi;
  }
  std::uint64_t width() const noexcept { return hi - lo + 1; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Axis-aligned hyper-rectangle: one interval per dimension.
struct Rect {
  std::vector<Interval> dims;

  bool contains(const Point& p) const noexcept {
    if (p.size() != dims.size()) return false;
    for (std::size_t i = 0; i < dims.size(); ++i)
      if (!dims[i].contains(p[i])) return false;
    return true;
  }
  bool intersects(const Rect& other) const noexcept {
    for (std::size_t i = 0; i < dims.size(); ++i)
      if (!dims[i].intersects(other.dims[i])) return false;
    return true;
  }
  bool covers(const Rect& other) const noexcept {
    for (std::size_t i = 0; i < dims.size(); ++i)
      if (!dims[i].covers(other.dims[i])) return false;
    return true;
  }
  /// Number of lattice points inside; saturates at u128 max on overflow.
  u128 volume() const noexcept {
    u128 v = 1;
    for (const auto& d : dims) {
      const u128 w = d.width();
      if (w != 0 && v > u128_max / w) return u128_max;
      v *= w;
    }
    return v;
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Fixed-capacity point: std::array-backed, no heap allocation. Used by the
/// incremental refinement cursor so the classify/decompose hot loop never
/// touches the allocator. Coordinates beyond `size` are unspecified.
struct InlinePoint {
  std::array<std::uint64_t, kMaxDims> coords;
  unsigned size = 0;

  std::uint64_t operator[](unsigned i) const noexcept { return coords[i]; }
  Point to_point() const {
    return Point(coords.begin(), coords.begin() + size);
  }
};

/// Fixed-capacity axis-aligned rectangle: the allocation-free counterpart of
/// Rect. Intervals beyond `size` are unspecified.
struct InlineRect {
  std::array<Interval, kMaxDims> dims;
  unsigned size = 0;

  const Interval& operator[](unsigned i) const noexcept { return dims[i]; }
  bool intersects(const Rect& other) const noexcept {
    for (unsigned i = 0; i < size; ++i)
      if (!dims[i].intersects(other.dims[i])) return false;
    return true;
  }
  /// True when `query` covers this rectangle entirely.
  bool covered_by(const Rect& query) const noexcept {
    for (unsigned i = 0; i < size; ++i)
      if (!query.dims[i].covers(dims[i])) return false;
    return true;
  }
  Rect to_rect() const {
    Rect r;
    r.dims.assign(dims.begin(), dims.begin() + size);
    return r;
  }
};

/// Inclusive range of curve indices — one contiguous cluster fragment.
struct Segment {
  u128 lo = 0;
  u128 hi = 0;

  bool contains(u128 v) const noexcept { return lo <= v && v <= hi; }
  u128 length() const noexcept { return hi - lo + 1; }

  friend bool operator==(const Segment&, const Segment&) = default;
};

} // namespace squid::sfc
