// Incremental refinement cursor: descend the space-filling-curve tree with
// per-level transform state instead of re-inverting from the root.
//
// The refinement tree (paper Figs 6-7) is expanded one cell at a time, and
// the seed path computed each cell's bounds with Curve::cell_of_prefix — a
// full O(bits_per_dim * dims) inverse mapping plus two heap allocations per
// tree node, even though a child cell differs from its parent by exactly one
// level of the transform. RefineCursor carries that one level of state down
// the tree, so producing a child cell costs O(dims) and zero allocations.
//
// All three curve families share the same digit model. Let h_k be the d-bit
// index digit at level k (axis 0 at the digit's most significant bit). The
// coordinate digit appended to the axes at level k is a_k:
//
//   zorder:   a_k = h_k                                  (no state)
//   gray:     a_k = graycode(h_k)                        (no state)
//   hilbert:  a_k = S_k(g_k)  — see below                (signed permutation)
//
// The Hilbert rule is derived from Skilling's transpose_to_axes (AIP Conf.
// Proc. 707, 2004; see hilbert.cpp), which factors into (1) a Gray-decode
// sweep that couples adjacent levels:
//
//   g_k[0] = h_k[0] ^ h_{k-1}[d-1],   g_k[i] = h_k[i] ^ h_k[i-1]  (i >= 1)
//
// and (2) an "undo excess work" sweep whose net effect on every level deeper
// than k is a fixed signed axis permutation T(g_k) — the composition, for
// axis i = d-1 down to 0, of "complement axis 0" when g_k[i] is set and
// "swap axis 0 with axis i" otherwise. The cumulative rotation/reflection
// state at level k is S_k = T(g_0) . T(g_1) ... T(g_{k-1}), updated in O(d)
// per descent. Differential tests (tests/sfc/cursor_test.cpp) prove the
// cursor bit-identical to cell_of_prefix for every family, dimension, and
// level; the seed path stays available on the virtual Curve interface.

#pragma once

#include <cstdint>

#include "squid/sfc/curve.hpp"
#include "squid/sfc/types.hpp"
#include "squid/util/require.hpp"

namespace squid::sfc {

class RefineCursor {
public:
  explicit RefineCursor(const Curve& curve)
      : dims_(curve.dims()),
        bits_(curve.bits_per_dim()),
        family_(curve.family()),
        digit_mask_(low_mask(dims_)) {
    reset();
  }

  unsigned dims() const noexcept { return dims_; }
  unsigned bits_per_dim() const noexcept { return bits_; }
  unsigned level() const noexcept { return level_; }
  u128 prefix() const noexcept { return prefix_; }
  u128 fanout() const noexcept {
    return dims_ >= 128 ? 0 : static_cast<u128>(1) << dims_;
  }

  /// Return to the root cell (the whole space).
  void reset() noexcept {
    level_ = 0;
    prefix_ = 0;
    for (unsigned i = 0; i < dims_; ++i) {
      coords_[i] = 0;
      perm_[i] = static_cast<std::uint8_t>(i);
    }
    flip_[0] = 0;
  }

  /// Position the cursor at an arbitrary tree node in O(level * dims).
  void seek(u128 prefix, unsigned level) noexcept {
    reset();
    for (unsigned k = 0; k < level; ++k) {
      const unsigned rem = (level - 1 - k) * dims_;
      descend((prefix >> rem) & digit_mask_);
    }
  }

  /// Step into child `digit` (the next d index bits) in O(dims).
  void descend(u128 digit) noexcept {
    const unsigned d = dims_;
    const u128 a = coord_digit(digit);
    if (family_ == CurveFamily::hilbert) push_state(digit);
    for (unsigned i = 0; i < d; ++i)
      coords_[i] = (coords_[i] << 1) |
                   static_cast<std::uint64_t>((a >> i) & 1u);
    prefix_ = (d >= 128 ? 0 : prefix_ << d) | digit;
    ++level_;
  }

  /// Step back to the parent cell in O(dims).
  void ascend() noexcept {
    --level_;
    prefix_ = dims_ >= 128 ? 0 : prefix_ >> dims_;
    for (unsigned i = 0; i < dims_; ++i) coords_[i] >>= 1;
  }

  /// Bounds of the current cell along one axis.
  std::uint64_t cell_lo(unsigned axis) const noexcept {
    return shifted_lo(coords_[axis], bits_ - level_);
  }
  std::uint64_t cell_hi(unsigned axis) const noexcept {
    const unsigned s = bits_ - level_;
    return shifted_lo(coords_[axis], s) + width_mask(s);
  }

  /// Current cell bounds, written into inline (allocation-free) storage.
  void cell(InlineRect& out) const noexcept {
    out.size = dims_;
    const unsigned s = bits_ - level_;
    for (unsigned i = 0; i < dims_; ++i) {
      const std::uint64_t lo = shifted_lo(coords_[i], s);
      out.dims[i] = Interval{lo, lo + width_mask(s)};
    }
  }

  /// Relation of the current cell to `query` in O(dims), no allocation.
  /// `query` must have dims() valid intervals.
  CellRelation relation_to(const Rect& query) const noexcept {
    return relation(query, bits_ - level_, 0, /*child=*/false);
  }

  /// Relation of child `digit`'s cell to `query` WITHOUT descending: O(dims),
  /// no state update, no allocation. Classifying all 2^d children of a node
  /// this way is the decompose/refine hot loop. Requires level() <
  /// bits_per_dim().
  CellRelation classify_child(u128 digit, const Rect& query) const noexcept {
    return relation(query, bits_ - level_ - 1, coord_digit(digit),
                    /*child=*/true);
  }

  /// The first point the curve visits inside the current cell, i.e. the
  /// point of the cell's lowest index (= point_of(prefix << remaining)).
  /// `out` must have room for dims() coordinates. O((bits-level) * dims).
  void entry_point(std::uint64_t* out) const noexcept;

private:
  /// lo << s with the s==64 root-of-64-bit-axes case defined (lo is 0 there).
  static std::uint64_t shifted_lo(std::uint64_t c, unsigned s) noexcept {
    return s >= 64 ? 0 : c << s;
  }
  static std::uint64_t width_mask(unsigned s) noexcept {
    return s >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << s) - 1;
  }

  /// Coordinate digit appended at the current level for index digit `w`,
  /// as an axis-indexed bitmask (bit i = axis i's new low bit).
  u128 coord_digit(u128 w) const noexcept {
    const unsigned d = dims_;
    u128 a = 0;
    switch (family_) {
      case CurveFamily::zorder:
        for (unsigned i = 0; i < d; ++i)
          a |= ((w >> (d - 1 - i)) & 1u) << i;
        break;
      case CurveFamily::gray: {
        unsigned prev = 0;
        for (unsigned i = 0; i < d; ++i) {
          const auto wi = static_cast<unsigned>((w >> (d - 1 - i)) & 1u);
          a |= static_cast<u128>(wi ^ prev) << i;
          prev = wi;
        }
        break;
      }
      case CurveFamily::hilbert: {
        const std::uint8_t* sperm = perm_.data() + level_ * d;
        const u128 sflip = flip_[level_];
        std::uint8_t g[kMaxDims];
        gray_coupled(w, g);
        for (unsigned i = 0; i < d; ++i)
          a |= static_cast<u128>(g[sperm[i]] ^
                                 static_cast<unsigned>((sflip >> i) & 1u))
               << i;
        break;
      }
    }
    return a;
  }

  /// The level-coupled Gray decode of Skilling's inverse: g[0] folds in the
  /// previous digit's last-axis bit (the LSB of the current prefix).
  void gray_coupled(u128 w, std::uint8_t* g) const noexcept {
    const unsigned d = dims_;
    auto prev = static_cast<unsigned>(prefix_ & 1u);
    for (unsigned i = 0; i < d; ++i) {
      const auto wi = static_cast<unsigned>((w >> (d - 1 - i)) & 1u);
      g[i] = static_cast<std::uint8_t>(wi ^ prev);
      prev = wi;
    }
  }

  /// The signed axis permutation T(g): for i = d-1 down to 0, complement
  /// axis 0 when g[i] is set, else swap axis 0 with axis i. Written as
  /// out[j] = in[tperm[j]] ^ tflip[j].
  static void transform_of(const std::uint8_t* g, unsigned d,
                           std::uint8_t* tperm, u128& tflip) noexcept {
    for (unsigned i = 0; i < d; ++i) tperm[i] = static_cast<std::uint8_t>(i);
    tflip = 0;
    for (unsigned i = d; i-- > 0;) {
      if (g[i]) {
        tflip ^= 1u;
      } else if (i != 0) {
        const std::uint8_t t = tperm[0];
        tperm[0] = tperm[i];
        tperm[i] = t;
        const auto b0 = static_cast<unsigned>(tflip & 1u);
        const auto bi = static_cast<unsigned>((tflip >> i) & 1u);
        if (b0 != bi) {
          tflip ^= 1u;
          tflip ^= static_cast<u128>(1) << i;
        }
      }
    }
  }

  /// S' = S . T: s'perm[j] = tperm[sperm[j]], s'flip[j] = tflip[sperm[j]]
  /// ^ sflip[j].
  static void compose(const std::uint8_t* sperm, u128 sflip,
                      const std::uint8_t* tperm, u128 tflip, unsigned d,
                      std::uint8_t* operm, u128& oflip) noexcept {
    oflip = 0;
    for (unsigned j = 0; j < d; ++j) {
      operm[j] = tperm[sperm[j]];
      oflip |= static_cast<u128>(((tflip >> sperm[j]) & 1u) ^
                                 ((sflip >> j) & 1u))
               << j;
    }
  }

  /// Compute and store the cumulative state for level_+1.
  void push_state(u128 w) noexcept {
    const unsigned d = dims_;
    std::uint8_t g[kMaxDims];
    gray_coupled(w, g);
    std::uint8_t tperm[kMaxDims];
    u128 tflip = 0;
    transform_of(g, d, tperm, tflip);
    const std::uint8_t* sperm = perm_.data() + level_ * d;
    compose(sperm, flip_[level_], tperm, tflip, d,
            perm_.data() + (level_ + 1) * d, flip_[level_ + 1]);
  }

  /// Shared classify: cell with `s = bits - level(cell)` free bits per axis.
  /// When `child` is set, `a` carries the extra coordinate digit appended
  /// below the current coords.
  CellRelation relation(const Rect& query, unsigned s, u128 a,
                        bool child) const noexcept {
    bool inside = true;
    for (unsigned i = 0; i < dims_; ++i) {
      const std::uint64_t c =
          child ? (coords_[i] << 1) | static_cast<std::uint64_t>((a >> i) & 1u)
                : coords_[i];
      const std::uint64_t lo = shifted_lo(c, s);
      const std::uint64_t hi = lo + width_mask(s);
      const Interval& q = query.dims[i];
      if (lo > q.hi || hi < q.lo) return CellRelation::disjoint;
      inside &= (q.lo <= lo) & (hi <= q.hi);
    }
    return inside ? CellRelation::covered : CellRelation::partial;
  }

  unsigned dims_;
  unsigned bits_;
  CurveFamily family_;
  u128 digit_mask_;
  unsigned level_ = 0;
  u128 prefix_ = 0;
  /// Axis coordinate prefixes: coords_[i] holds the top `level_` bits of
  /// axis i, right-aligned.
  std::array<std::uint64_t, kMaxDims> coords_;
  /// Hilbert cumulative state per level, stride dims_: since
  /// bits_per_dim * dims <= 128, the flat storage never exceeds
  /// (bits+1)*dims <= 2*kMaxDims bytes.
  std::array<std::uint8_t, 2 * kMaxDims> perm_;
  std::array<u128, kMaxLevels + 1> flip_;
};

} // namespace squid::sfc
