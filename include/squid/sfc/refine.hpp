// Cluster identification and recursive query refinement (paper 3.4).
//
// A flexible query is a hyper-rectangle in the keyword space. Its matching
// indices form a union of contiguous curve segments ("clusters"). Because an
// exact decomposition can touch exponentially many segments (e.g. a single
// keyword with a trailing wildcard defines a 1-wide column crossed by the
// curve once per cell), the paper never materializes it centrally: the
// refinement tree of Figs 6-7 is expanded *one level per overlay node*, and
// branches are pruned where no peers/data exist. ClusterRefiner provides
// both views: refine() is the per-node step used by the distributed query
// engine, decompose() the bounded expansion used by tests, baselines, and
// cluster-count analytics.
//
// All tree expansion runs on the incremental RefineCursor (cursor.hpp):
// descending a level costs O(dims) and the hot loops perform zero heap
// allocations per tree node. The public classify/refine/decompose entry
// points validate their query once; per-node work is unchecked.

#pragma once

#include <limits>
#include <vector>

#include "squid/sfc/cursor.hpp"
#include "squid/sfc/curve.hpp"
#include "squid/sfc/types.hpp"

namespace squid::sfc {

/// A node of the refinement tree: the level-`level` cell whose indices share
/// the (level*d)-bit `prefix` — the paper's "cluster prefix" (digital
/// causality, 3.1.1).
struct ClusterNode {
  u128 prefix = 0;
  unsigned level = 0;

  friend bool operator==(const ClusterNode&, const ClusterNode&) = default;
};

class ClusterRefiner {
public:
  explicit ClusterRefiner(const Curve& curve) : curve_(curve) {}

  /// Compatibility alias: the relation lives in types.hpp so the cursor can
  /// report it without depending on this header.
  using CellRelation = sfc::CellRelation;

  CellRelation classify(const ClusterNode& node, const Rect& query) const;

  /// Children of `node` (one level deeper) that intersect `query`, in
  /// ascending prefix order, i.e. in curve order. This is the work one
  /// overlay node performs when it receives a sub-query.
  std::vector<ClusterNode> refine(const ClusterNode& node,
                                  const Rect& query) const;

  /// Index range represented by a tree node.
  Segment segment_of(const ClusterNode& node) const;

  /// Expand the tree from the root down to at most `max_level`, emitting
  /// maximal merged segments in ascending order. Cells still partial at
  /// `max_level` are emitted whole, so the result over-approximates the
  /// query region unless max_level == bits_per_dim (exact decomposition).
  std::vector<Segment> decompose(
      const Rect& query,
      unsigned max_level = std::numeric_limits<unsigned>::max()) const;

  /// Number of refinement-tree nodes expanded by the preceding decompose()
  /// call pattern for the same arguments; exposed for the analytics benches.
  std::size_t count_tree_nodes(
      const Rect& query,
      unsigned max_level = std::numeric_limits<unsigned>::max()) const;

  /// Deepest decomposition whose segment count stays within `max_segments`
  /// (progressive deepening). Used by the naive centralized query baseline,
  /// which must materialize every cluster at the origin — the scalability
  /// problem the paper's distributed refinement exists to avoid.
  /// Incremental: a frontier of still-partial clusters is carried from level
  /// to level and only those are deepened; settled segments pass through.
  std::vector<Segment> decompose_capped(const Rect& query,
                                        std::size_t max_segments) const;

  /// Throws std::invalid_argument unless `query` matches the curve's
  /// geometry. The distributed engine calls this once per query and then
  /// drives the unchecked cursor paths for every tree node.
  void validate_query(const Rect& query) const { check_query(query); }

  const Curve& curve() const noexcept { return curve_; }

private:
  void check_query(const Rect& query) const;
  void check_node(const ClusterNode& node) const;

  const Curve& curve_;
};

} // namespace squid::sfc
