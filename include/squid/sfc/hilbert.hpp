// d-dimensional Hilbert curve (paper 3.1.1).
//
// Implementation follows John Skilling, "Programming the Hilbert curve",
// AIP Conference Proceedings 707 (2004): coordinates are converted to/from
// the "transposed" Hilbert representation with O(d * m) bit operations, then
// interleaved into a single d*m-bit index. The curve is digitally causal and
// locality preserving; both properties are exercised by the property tests.

#pragma once

#include "squid/sfc/curve.hpp"

namespace squid::sfc {

class HilbertCurve final : public Curve {
public:
  HilbertCurve(unsigned dims, unsigned bits_per_dim);

  std::string name() const override { return "hilbert"; }
  CurveFamily family() const noexcept override { return CurveFamily::hilbert; }
  u128 index_of(const Point& point) const override;
  Point point_of(u128 index) const override;
};

} // namespace squid::sfc
