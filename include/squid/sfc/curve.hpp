// Abstract interface for hierarchical space-filling curves.
//
// A curve is a bijection between the d-dimensional discrete cube with m bits
// per dimension and the 1-dimensional index space [0, 2^(d*m)). Every curve
// here is *hierarchical* (digitally causal, paper 3.1.1): the level-k cell
// containing a point determines the first k*d bits of its index. The query
// engine relies only on this property, so Hilbert, Z-order, and Gray curves
// are interchangeable (the ablation bench measures what Hilbert's superior
// locality buys).

#pragma once

#include <memory>
#include <string>

#include "squid/sfc/types.hpp"
#include "squid/util/u128.hpp"

namespace squid::sfc {

/// The curve families implemented here. RefineCursor (cursor.hpp) carries
/// each family's per-level transform state down the refinement tree, so a
/// new family must either map onto that digit model or extend the cursor.
enum class CurveFamily { hilbert, zorder, gray };

class Curve {
public:
  Curve(unsigned dims, unsigned bits_per_dim);
  virtual ~Curve() = default;

  Curve(const Curve&) = delete;
  Curve& operator=(const Curve&) = delete;

  unsigned dims() const noexcept { return dims_; }
  unsigned bits_per_dim() const noexcept { return bits_per_dim_; }
  /// Total index width in bits: dims * bits_per_dim, at most 128.
  unsigned index_bits() const noexcept { return dims_ * bits_per_dim_; }
  /// One past the largest index: 2^index_bits (u128_max+1 wraps when 128).
  u128 index_count() const noexcept {
    return index_bits() >= 128 ? 0 : static_cast<u128>(1) << index_bits();
  }
  u128 max_index() const noexcept { return low_mask(index_bits()); }
  std::uint64_t max_coord() const noexcept {
    return bits_per_dim_ >= 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << bits_per_dim_) - 1;
  }

  virtual std::string name() const = 0;
  virtual CurveFamily family() const noexcept = 0;

  /// Map a point to its curve index. The point must have dims()
  /// coordinates, each at most max_coord().
  virtual u128 index_of(const Point& point) const = 0;

  /// Inverse map: curve index back to the point it visits.
  virtual Point point_of(u128 index) const = 0;

  /// Bounds of the level-k cell holding all indices with the given
  /// (k*dims)-bit prefix. Level 0 is the whole space. This is the geometric
  /// interpretation of the paper's cluster prefixes and what the refinement
  /// tree intersects against the query rectangle.
  Rect cell_of_prefix(u128 prefix, unsigned level) const;

protected:
  void check_point(const Point& point) const;
  void check_index(u128 index) const;

private:
  unsigned dims_;
  unsigned bits_per_dim_;
};

/// Factory used by benches/tests to sweep curve families by name:
/// "hilbert", "zorder", or "gray".
std::unique_ptr<Curve> make_curve(const std::string& name, unsigned dims,
                                  unsigned bits_per_dim);

} // namespace squid::sfc
