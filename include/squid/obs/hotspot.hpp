// Online hotspot detection over the telemetry series (DESIGN.md 4h).
//
// The EpochSampler (obs/telemetry.hpp) turns load into per-node, per-epoch
// windows; this detector watches those windows arrive and decides, online,
// which nodes are running hot. Per node it keeps an EWMA baseline of the
// epoch load total; a window exceeding `onset_factor` × baseline (and an
// absolute `min_load` floor, so idle-ring noise never triggers) raises a
// `hotspot.onset` event, and the node stays hot — with its baseline FROZEN,
// so the alarm does not adapt itself away mid-crowd — until a window falls
// back under `clear_factor` × baseline, which raises `hotspot.clear`.
//
// Events feed three consumers: the `squid.balance.hotspot.*` registry
// counters (onsets/clears/active), the Perfetto instant events on the
// load-series export (obs/export.hpp, write_load_perfetto), and the top-k
// hottest-node report the CLI and bench print (node → keyword prefix via
// Curve::point_of + KeywordSpace::decode is the caller's join). This is the
// observation half of ROADMAP's "metrics-driven adaptive hotspot
// management"; the reaction half (virtual-node split, replication) can now
// be built against detection latency that is actually measured
// (bench/ext_hotspot).
//
// Purely a consumer of closed epochs: feeding it never touches query
// execution, so the bit-transparency lock covers sampler + detector
// together.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "squid/obs/metrics.hpp"
#include "squid/obs/telemetry.hpp"
#include "squid/overlay/id_space.hpp"

namespace squid::obs {

struct HotspotConfig {
  double alpha = 0.3;        ///< EWMA smoothing for the per-node baseline
  double onset_factor = 3.0; ///< hot when load > onset_factor * baseline
  double clear_factor = 1.5; ///< clears when load <= clear_factor * baseline
  double min_load = 16.0;    ///< absolute floor: quiet nodes never trigger
};

struct HotspotEvent {
  enum class Kind : std::uint8_t { kOnset, kClear };
  Kind kind = Kind::kOnset;
  std::uint64_t epoch = 0;
  overlay::NodeId node = 0;
  double load = 0;     ///< the epoch total that triggered the transition
  double baseline = 0; ///< EWMA baseline at trigger time
};

const char* hotspot_event_name(HotspotEvent::Kind kind) noexcept;

/// The documented min_load calibration (docs/LOAD_BALANCING.md §4): raise
/// the absolute floor to `factor` × the p95 of per-node epoch totals over
/// the calibration window `series.epochs[0, through_epoch)`, so the steady
/// hum of a healthy ring can never trip the detector. `factor` comes from
/// `SquidConfig::hotspot_min_load_factor` (default 2.0) so the CLI and the
/// benches agree on the same floor. Returns `base` unchanged when the
/// window is empty.
double calibrated_min_load(double base, const LoadSeries& series,
                           std::uint64_t through_epoch, double factor);

class HotspotDetector {
public:
  /// `registry`: where the squid.balance.hotspot.* counters publish
  /// (default: the global registry).
  explicit HotspotDetector(HotspotConfig config = {},
                           Registry* registry = nullptr);

  const HotspotConfig& config() const noexcept { return config_; }

  /// Feed one closed epoch (must be fed in epoch order). Every node ever
  /// seen is re-evaluated — a hot node absent from this window counts as
  /// load 0 and clears. Returns the transitions this window triggered
  /// (also appended to events(), and delivered to the sink if one is set).
  std::vector<HotspotEvent> observe(const EpochSample& sample);

  /// The event bus out of the detector: every transition observe() fires is
  /// also delivered here, in epoch order, before observe() returns. The
  /// reaction controller (core/reaction.hpp) subscribes through this; so can
  /// a CLI printer or a Perfetto exporter. Sinks run outside the query
  /// engine — at epoch close, a safe point in every delivery mode — so a
  /// sink can mutate the overlay without racing in-flight queries.
  void set_sink(std::function<void(const HotspotEvent&)> sink) {
    sink_ = std::move(sink);
  }

  /// Whether `node` is currently flagged hot (false for unknown nodes).
  bool is_hot(overlay::NodeId node) const;

  /// The node's current EWMA baseline (frozen while hot; 0 for unknown
  /// nodes). The reaction controller's drain test compares absorbed replica
  /// demand against it.
  double baseline_of(overlay::NodeId node) const;

  /// Replay a whole series through observe(), in order.
  void observe_all(const LoadSeries& series);

  /// Every transition so far, in epoch order.
  const std::vector<HotspotEvent>& events() const noexcept { return events_; }

  /// Nodes currently flagged hot.
  std::size_t active() const noexcept { return active_; }

  struct HotNode {
    overlay::NodeId node = 0;
    double load = 0;     ///< last observed epoch total
    double baseline = 0;
    bool hot = false;
  };
  /// The k nodes with the highest last-window load, descending (ties by
  /// node id, so the report is deterministic).
  std::vector<HotNode> top_hot(std::size_t k) const;

  /// Epochs from `onset_epoch` (when the workload actually shifted) to the
  /// first hotspot.onset raised at or after it; nullopt if none fired yet.
  /// The detection-latency number BENCH_hotspot.json records.
  std::optional<std::uint64_t> detection_latency(
      std::uint64_t onset_epoch) const;

private:
  struct NodeState {
    double baseline = 0;
    double last_load = 0;
    bool hot = false;
  };

  HotspotConfig config_;
  Registry* registry_ = nullptr;
  std::function<void(const HotspotEvent&)> sink_;
  std::vector<HotspotEvent> events_;
  std::map<overlay::NodeId, NodeState> nodes_;
  std::size_t active_ = 0;
};

} // namespace squid::obs
