// Exporters for traces and metrics (DESIGN.md 4c).
//
// - write_trace_json: Chrome/Perfetto `trace_event` JSON. Load the file in
//   https://ui.perfetto.dev (or chrome://tracing): each simulated peer that
//   executed spans gets its own track, laid out on the virtual clock (one
//   tick = one overlay hop, rendered as 1ms so the UI has visible widths).
// - write_metrics_csv / write_metrics_json: flat dumps of a Registry
//   snapshot, the machine-readable sidecar the bench fixtures emit.
// - print_span_tree: human-oriented rendering with per-subtree cost
//   rollups; backs `squid_cli explain`.
// - write_heatmap_csv / write_heatmap_json: the EpochSampler's LoadSeries
//   as a ring-space heatmap — node position (normalized index-space
//   coordinate) x epoch -> per-component load. Feed the CSV straight into
//   a pivot/heatmap plot.
// - derive_imbalance + write_series_csv / write_series_json: per-epoch
//   imbalance metrics (Gini, CV, max/mean, p99/mean via stats Summary)
//   over the same series; JSON also carries the windowed counter deltas.
// - write_load_perfetto: the series as Perfetto counter tracks ("ph":"C",
//   one track per node) with hotspot onset/clear instants ("ph":"i")
//   overlaid, so load and alarms line up on one timeline.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "squid/obs/hotspot.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/telemetry.hpp"
#include "squid/obs/trace.hpp"

namespace squid::obs {

/// Chrome trace_event JSON (object form, "traceEvents" array of complete
/// "ph":"X" events). Valid JSON; loads in Perfetto.
void write_trace_json(const Trace& trace, std::ostream& out);

/// One row per metric: kind,name,field,value. Histograms emit count/sum/
/// min/max rows plus one row per bucket.
void write_metrics_csv(const Registry::Snapshot& snapshot, std::ostream& out);
void write_metrics_json(const Registry::Snapshot& snapshot,
                        std::ostream& out);

/// Write `registry`'s current snapshot to `path`; format picked by
/// extension (".json" -> JSON, anything else -> CSV). Returns false when
/// the file cannot be opened.
bool dump_metrics(const Registry& registry, const std::string& path);

/// Pretty-print the span tree. Every span line shows its own attributes;
/// aggregate lines (in brackets) roll up messages, keys scanned, and
/// matches over the whole subtree.
void print_span_tree(const Trace& trace, std::ostream& out);

/// Ring-space load heatmap, one CSV row per (epoch, node) with load:
/// epoch,node,position,scan_hits,routes_through,publishes,cache_hits,
/// replies_forwarded,total. `position` is the node id normalized into
/// [0,1) by the series' id_bits (0 when id_bits is unknown).
void write_heatmap_csv(const LoadSeries& series, std::ostream& out);

/// Same heatmap as JSON: {"epoch_ticks","id_bits","epochs":[{"epoch",
/// "start","end","nodes":[{"node","position",...,"total"}]}]}.
void write_heatmap_json(const LoadSeries& series, std::ostream& out);

/// Write `series` as a heatmap to `path`; format picked by extension
/// (".json" -> JSON, anything else -> CSV). False when the file cannot
/// be opened.
bool dump_heatmap(const LoadSeries& series, const std::string& path);

/// Per-epoch imbalance over node load totals. Every node seen anywhere in
/// the series contributes a sample to every epoch (0 when idle that
/// window) — a node going quiet is exactly what moves the Gini.
struct ImbalanceRow {
  std::uint64_t epoch = 0;
  double total = 0;       ///< sum of node loads this epoch
  std::size_t nodes = 0;  ///< nodes with nonzero load this epoch
  double gini = 0;
  double cv = 0;
  double max_over_mean = 0;
  double p99_over_mean = 0;
};
std::vector<ImbalanceRow> derive_imbalance(const LoadSeries& series);

/// Imbalance time series, one CSV row per epoch:
/// epoch,total,nodes,gini,cv,max_over_mean,p99_over_mean.
void write_series_csv(const LoadSeries& series, std::ostream& out);

/// Imbalance rows plus each epoch's windowed registry counter deltas
/// (which the CSV form drops).
void write_series_json(const LoadSeries& series, std::ostream& out);

/// Write the imbalance series to `path`; ".json" -> JSON, else CSV.
bool dump_series(const LoadSeries& series, const std::string& path);

/// Perfetto counter tracks: one "ph":"C" track per node (epoch-total
/// load, sampled every epoch so gaps render as zero) plus a gini track,
/// with one "ph":"i" instant per hotspot transition. Same 1-tick = 1ms
/// scale as write_trace_json, so both files line up when merged.
void write_load_perfetto(const LoadSeries& series,
                         const std::vector<HotspotEvent>& events,
                         std::ostream& out);

} // namespace squid::obs
