// Exporters for traces and metrics (DESIGN.md 4c).
//
// - write_trace_json: Chrome/Perfetto `trace_event` JSON. Load the file in
//   https://ui.perfetto.dev (or chrome://tracing): each simulated peer that
//   executed spans gets its own track, laid out on the virtual clock (one
//   tick = one overlay hop, rendered as 1ms so the UI has visible widths).
// - write_metrics_csv / write_metrics_json: flat dumps of a Registry
//   snapshot, the machine-readable sidecar the bench fixtures emit.
// - print_span_tree: human-oriented rendering with per-subtree cost
//   rollups; backs `squid_cli explain`.

#pragma once

#include <iosfwd>
#include <string>

#include "squid/obs/metrics.hpp"
#include "squid/obs/trace.hpp"

namespace squid::obs {

/// Chrome trace_event JSON (object form, "traceEvents" array of complete
/// "ph":"X" events). Valid JSON; loads in Perfetto.
void write_trace_json(const Trace& trace, std::ostream& out);

/// One row per metric: kind,name,field,value. Histograms emit count/sum/
/// min/max rows plus one row per bucket.
void write_metrics_csv(const Registry::Snapshot& snapshot, std::ostream& out);
void write_metrics_json(const Registry::Snapshot& snapshot,
                        std::ostream& out);

/// Write `registry`'s current snapshot to `path`; format picked by
/// extension (".json" -> JSON, anything else -> CSV). Returns false when
/// the file cannot be opened.
bool dump_metrics(const Registry& registry, const std::string& path);

/// Pretty-print the span tree. Every span line shows its own attributes;
/// aggregate lines (in brackets) roll up messages, keys scanned, and
/// matches over the whole subtree.
void print_span_tree(const Trace& trace, std::ostream& out);

} // namespace squid::obs
