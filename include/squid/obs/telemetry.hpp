// Virtual-time telemetry pipeline (DESIGN.md 4h).
//
// PR 3's registry answers "how much, process-wide, since start"; this layer
// answers "where and WHEN on the virtual clock": an EpochSampler buckets
// per-node load events into fixed-width virtual-time epochs and emits
// *windowed deltas* — a time series of compact per-node LoadVectors plus
// registry counter deltas — instead of cumulative totals. The series feeds
// the ring-space heatmap/imbalance exporters (obs/export.hpp) and the
// online hotspot detector (obs/hotspot.hpp).
//
// Bit-transparency contract: recording is purely passive. A query's load
// events accumulate in a private per-query scratch (QueryTelemetry, engaged
// by SquidSystem::set_telemetry) and flush into the sampler exactly once,
// at finalize — the same safe point in every delivery mode, which in
// kParallel is the home shard's deterministic merge. No recording site
// draws RNG, changes control flow, or touches QueryStats, so sampling
// on/off cannot perturb results (tests/obs/telemetry_differential_test.cpp
// locks this over the 9-config matrix × all delivery modes × faults).
// Epoch totals are sums of commutative counter additions, so they are
// identical no matter which shard flushed first.
//
// Zero-cost when disabled: every engine-side site is gated on QueryExec's
// telemetry pointer, which is a constexpr nullptr with SQUID_OBS_ENABLED=0
// (same pattern as the trace pointer); system-side sites sit under
// `if constexpr (obs::kEnabled)`. The sampler itself compiles but records
// nothing.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "squid/obs/metrics.hpp"
#include "squid/overlay/id_space.hpp"
#include "squid/sim/engine.hpp"

namespace squid::obs {

/// Compact per-node load fingerprint for one epoch window. Fields are the
/// load classes the paper's balancing story cares about: where data is
/// matched, who carries transit traffic, where writes land, who answers
/// from cache, and who pays reply bandwidth.
struct LoadVector {
  std::uint64_t scan_hits = 0;         ///< keys matched by local scans here
  std::uint64_t routes_through = 0;    ///< routing legs traversing this node
  std::uint64_t publishes = 0;         ///< elements stored at this owner
  std::uint64_t retracts = 0;          ///< elements removed at this owner
  std::uint64_t cache_hits = 0;        ///< owner-cache hits consulted here
  std::uint64_t replies_forwarded = 0; ///< reply frames sent from this node

  std::uint64_t total() const noexcept {
    return scan_hits + routes_through + publishes + retracts + cache_hits +
           replies_forwarded;
  }
  LoadVector& operator+=(const LoadVector& o) noexcept {
    scan_hits += o.scan_hits;
    routes_through += o.routes_through;
    publishes += o.publishes;
    retracts += o.retracts;
    cache_hits += o.cache_hits;
    replies_forwarded += o.replies_forwarded;
    return *this;
  }
  friend bool operator==(const LoadVector& a, const LoadVector& b) noexcept {
    return a.scan_hits == b.scan_hits && a.routes_through == b.routes_through &&
           a.publishes == b.publishes && a.retracts == b.retracts &&
           a.cache_hits == b.cache_hits &&
           a.replies_forwarded == b.replies_forwarded;
  }
};

/// Which LoadVector field one event contributes to.
enum class LoadKind : std::uint8_t {
  kScanHit,
  kRouteThrough,
  kPublish,
  kRetract,
  kCacheHit,
  kReplyForwarded,
};

/// One recorded load event: node × kind × weight at a virtual-clock tick
/// *relative to the query's start* (the sampler rebases at flush).
struct LoadEvent {
  overlay::NodeId node = 0;
  LoadKind kind = LoadKind::kScanHit;
  std::uint64_t n = 0;
  sim::Time tick = 0;
};

/// Per-query scratch the engine's recording sites append into. Engaged on a
/// QueryExec only while a sampler is attached to the system; flushed into
/// the sampler once, at finalize (the per-mode safe point). Appending never
/// reads or writes any query state — that is the bit-transparency lever.
struct QueryTelemetry {
  std::vector<LoadEvent> events;

  void record(overlay::NodeId node, LoadKind kind, std::uint64_t n,
              sim::Time tick) {
    if (n == 0) return;
    events.push_back(LoadEvent{node, kind, n, tick});
  }
};

/// One closed epoch window: [start, end) ticks of per-node load, plus the
/// registry counter deltas sampled when the window closed (empty for
/// windows materialized at finish() without an advance_to crossing).
struct EpochSample {
  std::uint64_t epoch = 0;
  sim::Time start = 0;
  sim::Time end = 0;
  /// Sorted by node id (ring order) — the heatmap's row order.
  std::vector<std::pair<overlay::NodeId, LoadVector>> nodes;
  /// Windowed registry counter deltas (Registry::snapshot_delta), sorted by
  /// name. Only counters that moved during the window appear.
  std::vector<Registry::CounterRow> counter_deltas;

  LoadVector total() const noexcept {
    LoadVector sum;
    for (const auto& [node, v] : nodes) sum += v;
    return sum;
  }
};

/// The materialized time series: every epoch from 0 through the last one
/// that saw load (contiguous; quiet epochs appear with empty node lists).
struct LoadSeries {
  sim::Time epoch_ticks = 1;
  unsigned id_bits = 0; ///< ring id width; exporters normalize positions
  std::vector<EpochSample> epochs;
};

/// The telemetry hub: buckets flushed query events into virtual-time
/// epochs and snapshots registry counter deltas at epoch boundaries.
///
/// Clocking: the sampler keeps its own virtual clock (`now`), advanced by
/// the harness at safe points (between query batches / engine drains) via
/// advance_to. A query's events land at `max(now-at-flush, started_at) +
/// event tick` — lockstep queries (private engines pinned near 0) ride the
/// harness clock, while query_async/virtual-time queries carry their honest
/// shared-clock start. Both are deterministic: flush order cannot move
/// totals (commutative sums) and `now` only changes under harness control.
///
/// Thread safety: flush/record_now/advance_to take one mutex — kParallel
/// home shards flush concurrently. Determinism does not depend on flush
/// order.
class EpochSampler {
public:
  /// `registry`: source of counter deltas (default: the global registry).
  /// A retained baseline is taken at construction so the first window's
  /// deltas exclude earlier history.
  explicit EpochSampler(sim::Time epoch_ticks, Registry* registry = nullptr);

  sim::Time epoch_ticks() const noexcept { return epoch_ticks_; }
  /// Ring id width for the heatmap's normalized positions (set once by
  /// SquidSystem::set_telemetry; harmless to leave 0 for private use).
  void set_id_bits(unsigned bits) noexcept { id_bits_ = bits; }
  unsigned id_bits() const noexcept { return id_bits_; }

  /// Fold one query's recorded events in (called by the engine at
  /// finalize). `started_at`: the query engine clock at launch.
  void flush(const QueryTelemetry& telemetry, sim::Time started_at);

  /// Record a non-query event (publish sites) at the sampler's current
  /// virtual time.
  void record_now(overlay::NodeId node, LoadKind kind, std::uint64_t n);

  /// Advance the sampler clock, closing every fully crossed epoch boundary
  /// in order (each closure snapshots the registry's windowed counter
  /// deltas). Call at safe points only — never while queries are in
  /// flight on a parallel executor. Monotonic; earlier times are ignored.
  void advance_to(sim::Time now);

  sim::Time now() const;

  /// Close the open window and materialize the full series (epoch 0 through
  /// the last epoch that saw load or a boundary). The sampler keeps
  /// accumulating afterwards; finish() may be called repeatedly and always
  /// reports everything since construction.
  LoadSeries finish();

private:
  /// Caller holds mu_. Snapshot counter deltas for every boundary crossed
  /// by moving the clock to `t`.
  void close_through(sim::Time t);

  mutable std::mutex mu_;
  sim::Time epoch_ticks_ = 1;
  unsigned id_bits_ = 0;
  Registry* registry_ = nullptr;
  sim::Time now_ = 0;
  std::uint64_t closed_epochs_ = 0; ///< epochs with counter deltas taken
  /// epoch -> node -> accumulated load. Sparse; materialized at finish().
  std::map<std::uint64_t, std::map<overlay::NodeId, LoadVector>> load_;
  /// Counter deltas per closed epoch (only entries that moved).
  std::map<std::uint64_t, std::vector<Registry::CounterRow>> deltas_;
};

} // namespace squid::obs
