// Per-query trace recording (DESIGN.md 4c).
//
// The query engine's cost accounting (QueryStats) answers *what* a query
// cost; a trace answers *why*: a tree of typed spans mirrors every step the
// distributed resolution took — refinement descents, pruned subtrees,
// cluster dispatches, overlay routing legs, local scans, owner-cache
// consults, and sub-cluster aggregation merges. Timestamps are virtual
// ticks on the sim kernel's clock (sim::Time, one tick per overlay hop):
// a span's start is the hop-depth of the timing event that delivered its
// work, so the trace lays out along the query's critical path.
//
// Contract: the legacy QueryStats aggregates are *derivable* from a trace
// (derive_stats below); tests/obs/trace_differential_test.cpp holds the two
// bit-identical on the differential query suites.
//
// Zero-cost when disabled: recording is gated by the SQUID_OBS_ENABLED
// macro (compile time; see obs/metrics.hpp) and by the per-system runtime
// flag (SquidSystem::set_tracing). With the macro off the engine's trace
// pointer is a constexpr nullptr and every recording branch folds away;
// with it on but tracing off, the cost is one predictable branch per site.

#pragma once

#include <cstdint>
#include <vector>

#include "squid/overlay/id_space.hpp"
#include "squid/sim/engine.hpp"

namespace squid::core {
struct QueryStats;
}

namespace squid::obs {

/// Span taxonomy (DESIGN.md 4c). One kind per engine step worth explaining.
enum class SpanKind : std::uint8_t {
  kQuery,            ///< root: the whole query, anchored at the origin
  kRefineDescend,    ///< one node expanding its assigned refinement subtree
  kPrune,            ///< a cluster/cell classified disjoint and dropped
  kClusterDispatch,  ///< a batch of clusters shipped to a remote owner
  kRouteHop,         ///< an overlay routing leg (route() or neighbor forward)
  kLocalScan,        ///< a segment scan against one peer's key store
  kCacheHit,         ///< owner-cache consult that resolved the destination
  kCacheMiss,        ///< owner-cache consult that missed (or was stale)
  kAggregationMerge, ///< sub-clusters merged into one aggregated message
  // Fault-layer kinds (docs/FAULT_MODEL.md). Appended, never reordered:
  // recorded span kinds are part of the trace format.
  kRetry, ///< a leg delivered after resends/duplication; messages = extra
          ///< copies paid, batch = resends, hops = backoff+delay penalty
  kFault, ///< a leg abandoned (retries exhausted or unroutable);
          ///< messages = extra attempts paid, batch = clusters lost
};

const char* span_kind_name(SpanKind kind) noexcept;

/// One trace span. Plain data; unused attributes stay zero. `event` is the
/// index of the QueryResult::timing event this span executed under — the
/// same ids core::sample_completion_breakdown reports, so a wall-clock
/// replay can be joined back onto the trace.
struct Span {
  SpanKind kind = SpanKind::kQuery;
  std::int32_t parent = -1; ///< parent span index, -1 for the root
  std::int32_t event = 0;   ///< timing-DAG event id (QueryResult::timing)
  sim::Time start = 0;      ///< virtual ticks (overlay hops from the origin)
  sim::Time end = 0;
  overlay::NodeId node = 0; ///< peer performing / receiving the step
  u128 range_lo = 0;        ///< cluster segment or scanned index range
  u128 range_hi = 0;
  std::uint32_t level = 0;  ///< refinement-tree level of the cluster
  std::uint32_t hops = 0;   ///< overlay hops paid by this step
  std::uint32_t messages = 0;   ///< query messages paid by this step
  std::uint32_t batch = 0;      ///< clusters carried (dispatch/merge spans)
  std::uint64_t keys_scanned = 0;
  std::uint64_t keys_matched = 0;
  std::uint64_t matches = 0;    ///< data elements matched (local scans)
  /// Slice [path_begin, path_end) into Trace::nodes: the peers this step
  /// touched as *routing* participants (route paths, forward endpoints).
  std::uint32_t path_begin = 0;
  std::uint32_t path_end = 0;
};

/// A recorded query trace: the span tree plus the shared node-path pool.
struct Trace {
  std::vector<Span> spans;
  std::vector<overlay::NodeId> nodes; ///< storage for Span path slices
};

/// Builder used by the query engine. Span ids are indices into the trace;
/// hold ids, not references (the vector reallocates).
class TraceRecorder {
public:
  /// Open a span; `start` is the virtual-clock tick it begins at. Returns
  /// its id. The span's `end` defaults to `start`.
  std::int32_t begin(SpanKind kind, std::int32_t parent, std::int32_t event,
                     sim::Time start) {
    Span span;
    span.kind = kind;
    span.parent = parent;
    span.event = event;
    span.start = start;
    span.end = start;
    trace_.spans.push_back(span);
    return static_cast<std::int32_t>(trace_.spans.size() - 1);
  }

  Span& at(std::int32_t id) {
    return trace_.spans[static_cast<std::size_t>(id)];
  }

  /// Record the routing path of span `id` (appends to the shared pool).
  template <typename It>
  void set_path(std::int32_t id, It first, It last) {
    Span& span = at(id);
    span.path_begin = static_cast<std::uint32_t>(trace_.nodes.size());
    trace_.nodes.insert(trace_.nodes.end(), first, last);
    span.path_end = static_cast<std::uint32_t>(trace_.nodes.size());
  }
  void add_path_node(std::int32_t id, overlay::NodeId node) {
    Span& span = at(id);
    if (span.path_end != trace_.nodes.size()) {
      // Paths must be contiguous; only the most recent span can grow.
      span.path_begin = static_cast<std::uint32_t>(trace_.nodes.size());
      span.path_end = span.path_begin;
    }
    trace_.nodes.push_back(node);
    span.path_end = static_cast<std::uint32_t>(trace_.nodes.size());
  }

  const Trace& trace() const noexcept { return trace_; }
  Trace take() noexcept { return std::move(trace_); }

private:
  Trace trace_;
};

/// Recompute the legacy per-query aggregates from a trace alone. For any
/// query resolved with tracing on, this is bit-identical to the
/// QueryStats the engine counted along the way (the differential suite
/// enforces it).
core::QueryStats derive_stats(const Trace& trace);

} // namespace squid::obs
