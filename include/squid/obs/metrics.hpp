// Process-wide metrics registry (DESIGN.md 4c).
//
// Named counters, gauges, and fixed-bucket histograms (built on the
// stats::Summary module's Histogram) that long-lived subsystems publish
// into: the query engine, ChordRing maintenance (stabilization, finger
// repairs, tombstone compactions), the ReplicationManager, and the load
// balancers. Naming scheme: `squid.<subsystem>.<metric>`, dot-separated,
// lowercase (the full inventory is tabulated in DESIGN.md 4c).
//
// Hot-path cost: a counter increment is one relaxed atomic add on a
// pre-resolved pointer (resolve once via a function-local static); safe
// under the concurrent const readers of parallel_query_test. With
// SQUID_OBS_ENABLED defined to 0 every increment compiles to nothing.

#pragma once

#ifndef SQUID_OBS_ENABLED
#define SQUID_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "squid/stats/summary.hpp"

namespace squid::obs {

/// True when the observability layer is compiled in (-DSQUID_OBS=OFF at
/// configure time defines SQUID_OBS_ENABLED=0 and turns every recording
/// site into dead code).
inline constexpr bool kEnabled = SQUID_OBS_ENABLED != 0;

/// Monotonic event counter.
class Counter {
public:
  void add(std::uint64_t n = 1) noexcept {
    if constexpr (kEnabled) value_.fetch_add(n, std::memory_order_relaxed);
    else (void)n;
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
public:
  void set(double v) noexcept {
    if constexpr (kEnabled) value_.store(v, std::memory_order_relaxed);
    else (void)v;
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram plus running moments. Buckets are the
/// stats::Summary module's Histogram ([lo, hi) split evenly, out-of-range
/// clamps to the edge buckets). observe() takes a lock — histogram sites
/// are per-query / per-repair, not per-hop.
class HistogramMetric {
public:
  HistogramMetric(double lo, double hi, std::size_t buckets)
      : histogram_(lo, hi, buckets) {}

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<std::uint64_t> buckets;
    std::vector<double> bucket_lo; ///< parallel lower bounds
  };
  Snapshot snapshot() const;
  void reset();

private:
  mutable std::mutex mutex_;
  Histogram histogram_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Name -> metric map. `global()` is the process-wide instance every
/// subsystem publishes into; tests and benches may also build private
/// registries. Registration is mutex-guarded and idempotent (same name
/// returns the same object); handles stay valid for the registry's life,
/// so hot paths resolve once and increment through the reference.
class Registry {
public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Idempotent for a given name; the bucket geometry of the first
  /// registration wins.
  HistogramMetric& histogram(std::string_view name, double lo, double hi,
                             std::size_t buckets);

  /// Zero every metric (benches isolate phases with this; registration
  /// survives so cached handles stay valid). Also clears the
  /// snapshot_delta baseline: the window restarts at zero.
  void reset();

  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string name;
    double value;
  };
  struct HistogramRow {
    std::string name;
    HistogramMetric::Snapshot snapshot;
  };
  struct Snapshot {
    std::vector<CounterRow> counters;     ///< sorted by name
    std::vector<GaugeRow> gauges;         ///< sorted by name
    std::vector<HistogramRow> histograms; ///< sorted by name
  };
  Snapshot snapshot() const;

  /// Windowed counter read: each counter's value minus the retained
  /// baseline from the previous snapshot_delta (or construction/reset),
  /// then rebaseline — so consecutive calls partition the counter stream
  /// into non-overlapping windows. The shared windowing primitive of the
  /// EpochSampler (obs/telemetry.hpp) and `squid_cli heatmap`. Counters
  /// registered since the last call report their full value. Concurrent
  /// increments are safe: each relaxed add lands in exactly one window
  /// (value reads are atomic; the baseline map is mutex-guarded). Only
  /// counters whose window moved are returned, sorted by name.
  std::vector<CounterRow> snapshot_delta();

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  /// snapshot_delta baselines (same keys as counters_); missing = 0.
  std::map<std::string, std::uint64_t, std::less<>> baseline_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
};

} // namespace squid::obs
