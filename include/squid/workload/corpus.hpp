// Workload generation for the experiments (paper 4).
//
// The paper evaluates on (a) a P2P storage corpus — data elements described
// by 2 or 3 keywords drawn from a natural vocabulary, hence a sparse keyword
// space with lexicographic clusters and Zipf-like popularity — and (b) a
// grid-resource corpus of numeric attributes. The exact corpora are not
// published; these generators synthesize equivalents with the properties
// the paper's analysis depends on (sparsity, prefix clustering, skew).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "squid/core/types.hpp"
#include "squid/keyword/space.hpp"
#include "squid/util/rng.hpp"

namespace squid::workload {

/// Synthesizes an English-like vocabulary (syllable concatenation, which
/// yields heavy shared-prefix clustering) and samples keywords from it with
/// Zipf popularity.
class Vocabulary {
public:
  /// `size`: number of distinct words. `zipf`: popularity exponent (0 =
  /// uniform). Words are 2-10 characters over 'a'..'z'.
  Vocabulary(std::size_t size, double zipf, Rng& rng);

  const std::vector<std::string>& words() const noexcept { return words_; }

  /// Popularity-weighted draw.
  const std::string& sample(Rng& rng) const;

  /// Rank r word (0 = most popular).
  const std::string& by_rank(std::size_t rank) const;

private:
  std::vector<std::string> words_; // sorted by descending popularity
  ZipfSampler zipf_;
};

/// Factory for the paper's keyword corpora: d-dimensional documents whose
/// tokens are Vocabulary samples.
class KeywordCorpus {
public:
  KeywordCorpus(unsigned dims, std::size_t vocabulary, double zipf, Rng& rng);

  /// The keyword space matching this corpus (one StringCodec per dim).
  keyword::KeywordSpace make_space(unsigned max_len = 6) const;

  core::DataElement make_element(Rng& rng) const;
  std::vector<core::DataElement> make_elements(std::size_t count,
                                               Rng& rng) const;

  const Vocabulary& vocabulary() const noexcept { return vocabulary_; }
  unsigned dims() const noexcept { return dims_; }

  // --- The paper's query families (4.1) -----------------------------------

  /// Q1: one keyword or partial keyword, wildcards elsewhere, e.g.
  /// (comp*, *, *). `rank` picks the underlying vocabulary word so that a
  /// fixed query can be replayed across system sizes.
  keyword::Query q1(std::size_t rank, bool partial,
                    unsigned prefix_len = 3) const;

  /// Q2: two to three keywords / partial keywords, at least one partial,
  /// e.g. (comp*, net*, *).
  keyword::Query q2(std::size_t rank_a, std::size_t rank_b, bool partial_b,
                    unsigned prefix_len = 3) const;

private:
  unsigned dims_;
  Vocabulary vocabulary_;
  mutable std::uint64_t counter_ = 0; ///< element-name sequence
};

/// Flash-crowd query workload (bench/ext_hotspot, EXPERIMENTS.md): a
/// baseline mix of the paper's Q1/Q2 query families over Zipf-ranked
/// keywords that, during the epochs of [onset_epoch, end_epoch), redirects
/// `hot_fraction` of the draws onto ONE partial-keyword query — the
/// "suddenly popular keyword" scenario. In index space that query is a few
/// curve clusters under one prefix, so the shifted mass lands on the small
/// set of nodes owning them; the telemetry pipeline (obs/telemetry.hpp,
/// obs/hotspot.hpp) should see their epoch load step up and raise
/// hotspot.onset within a few epochs.
struct FlashCrowdConfig {
  std::size_t hot_rank = 0;  ///< vocabulary rank the crowd converges on
  unsigned prefix_len = 3;   ///< partial-match prefix length of the hot query
  double hot_fraction = 0.8; ///< crowd-phase probability of the hot query
  std::uint64_t onset_epoch = 8; ///< first crowd epoch
  std::uint64_t end_epoch = 16;  ///< first epoch after the crowd
  /// Baseline draws spread over the top `baseline_ranks` vocabulary words.
  std::size_t baseline_ranks = 64;
  double q2_fraction = 0.3; ///< baseline chance of a two-keyword query
};

class FlashCrowdWorkload {
public:
  explicit FlashCrowdWorkload(const KeywordCorpus& corpus,
                              FlashCrowdConfig config = {});

  const FlashCrowdConfig& config() const noexcept { return config_; }

  /// True while `epoch` lies inside the crowd window.
  bool hot_phase(std::uint64_t epoch) const noexcept {
    return epoch >= config_.onset_epoch && epoch < config_.end_epoch;
  }

  /// The crowd's query itself (what hot draws return).
  keyword::Query hot_query() const;

  /// One query for a request issued during `epoch`: the hot query with
  /// probability hot_fraction inside the crowd window, a baseline Q1/Q2
  /// draw otherwise.
  keyword::Query draw(std::uint64_t epoch, Rng& rng) const;

private:
  const KeywordCorpus* corpus_;
  FlashCrowdConfig config_;
};

/// Diurnal Zipf-shift workload (bench/ext_hotspot --scenario=diurnal,
/// EXPERIMENTS.md): the popular region of the vocabulary is not fixed but
/// wanders — every `period_epochs` epochs the Zipf focus advances by
/// `focus_step` ranks, the way interest follows the sun across time zones.
/// Each relocation concentrates load on a fresh set of owners, so the
/// detector must raise onsets for the new region while clearing the old one
/// — the adversarial case for frozen-while-hot baselines, and for a
/// reaction controller that must keep re-aiming its splits.
struct DiurnalShiftConfig {
  std::uint64_t period_epochs = 6; ///< epochs between focus relocations
  std::size_t focus_step = 24;     ///< ranks the focus advances per move
  std::size_t window = 4;          ///< focused draws spread over this many ranks
  double focus_fraction = 0.8;     ///< chance a draw comes from the focus
  std::size_t baseline_ranks = 64; ///< background draws over the top ranks
  unsigned prefix_len = 3;
  double q2_fraction = 0.3;
};

class DiurnalShiftWorkload {
public:
  explicit DiurnalShiftWorkload(const KeywordCorpus& corpus,
                                DiurnalShiftConfig config = {});

  const DiurnalShiftConfig& config() const noexcept { return config_; }

  /// First vocabulary rank of the focus window during `epoch`.
  std::size_t focus_of(std::uint64_t epoch) const noexcept;

  /// One query for a request issued during `epoch`: a partial-keyword query
  /// from the current focus window with probability focus_fraction, a
  /// baseline Q1/Q2 draw otherwise.
  keyword::Query draw(std::uint64_t epoch, Rng& rng) const;

private:
  const KeywordCorpus* corpus_;
  DiurnalShiftConfig config_;
};

/// Skewed-publisher workload (bench/ext_hotspot --scenario=skew,
/// EXPERIMENTS.md): the *write* path is the adversary. Publishes concentrate
/// under one keyword prefix (hot_fraction of new elements share the hot
/// word's prefix region), so one arc of the ring absorbs most inserts —
/// and, once the reaction controller replicates the hot cluster, every such
/// publish invalidates the snapshot, exercising the
/// invalidation-then-refresh path of the replica cache under a realistic
/// update stream. Queries stay the baseline mix.
struct SkewedPublisherConfig {
  std::size_t hot_rank = 0;  ///< vocabulary rank publishes pile onto
  double hot_fraction = 0.8; ///< chance a publish lands in the hot region
  unsigned prefix_len = 3;   ///< prefix defining the hot region
  std::size_t baseline_ranks = 64;
  double q2_fraction = 0.3;
};

class SkewedPublisherWorkload {
public:
  explicit SkewedPublisherWorkload(const KeywordCorpus& corpus,
                                   SkewedPublisherConfig config = {});

  const SkewedPublisherConfig& config() const noexcept { return config_; }

  /// One published element: first keyword drawn from the hot-prefix pool
  /// with probability hot_fraction (uniform vocabulary otherwise), other
  /// dimensions uniform.
  core::DataElement make_element(Rng& rng) const;

  /// The query matching the hot region (what a reader of the contended data
  /// issues): a partial-keyword Q1 over the hot prefix.
  keyword::Query hot_query() const;

  /// Baseline Q1/Q2 query mix (epoch-independent; the skew is in writes).
  keyword::Query draw(Rng& rng) const;

  /// Vocabulary ranks sharing the hot word's prefix (the publish pool).
  const std::vector<std::size_t>& hot_pool() const noexcept {
    return hot_pool_;
  }

private:
  const KeywordCorpus* corpus_;
  SkewedPublisherConfig config_;
  std::vector<std::size_t> hot_pool_;
  mutable std::uint64_t counter_ = 0; ///< element-name sequence
};

/// Grid-resource corpus: numeric attributes with realistic clustering
/// (memory concentrates on powers of two, bandwidth on standard tiers,
/// cost spreads log-uniformly).
class ResourceCorpus {
public:
  explicit ResourceCorpus(unsigned bits = 10);

  keyword::KeywordSpace make_space() const;
  core::DataElement make_element(Rng& rng) const;
  std::vector<core::DataElement> make_elements(std::size_t count,
                                               Rng& rng) const;

  /// Q3 range queries of the paper's two shapes.
  /// (keyword, range, *): exact storage tier, bandwidth range, any cost.
  keyword::Query q3_keyword_range(double storage, double bw_lo,
                                  double bw_hi) const;
  /// (range, range, range).
  keyword::Query q3_all_ranges(double st_lo, double st_hi, double bw_lo,
                               double bw_hi, double cost_lo,
                               double cost_hi) const;

private:
  unsigned bits_;
  mutable std::uint64_t counter_ = 0; ///< element-name sequence
};

} // namespace squid::workload
