// Workload generation for the experiments (paper 4).
//
// The paper evaluates on (a) a P2P storage corpus — data elements described
// by 2 or 3 keywords drawn from a natural vocabulary, hence a sparse keyword
// space with lexicographic clusters and Zipf-like popularity — and (b) a
// grid-resource corpus of numeric attributes. The exact corpora are not
// published; these generators synthesize equivalents with the properties
// the paper's analysis depends on (sparsity, prefix clustering, skew).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "squid/core/types.hpp"
#include "squid/keyword/space.hpp"
#include "squid/util/rng.hpp"

namespace squid::workload {

/// Synthesizes an English-like vocabulary (syllable concatenation, which
/// yields heavy shared-prefix clustering) and samples keywords from it with
/// Zipf popularity.
class Vocabulary {
public:
  /// `size`: number of distinct words. `zipf`: popularity exponent (0 =
  /// uniform). Words are 2-10 characters over 'a'..'z'.
  Vocabulary(std::size_t size, double zipf, Rng& rng);

  const std::vector<std::string>& words() const noexcept { return words_; }

  /// Popularity-weighted draw.
  const std::string& sample(Rng& rng) const;

  /// Rank r word (0 = most popular).
  const std::string& by_rank(std::size_t rank) const;

private:
  std::vector<std::string> words_; // sorted by descending popularity
  ZipfSampler zipf_;
};

/// Factory for the paper's keyword corpora: d-dimensional documents whose
/// tokens are Vocabulary samples.
class KeywordCorpus {
public:
  KeywordCorpus(unsigned dims, std::size_t vocabulary, double zipf, Rng& rng);

  /// The keyword space matching this corpus (one StringCodec per dim).
  keyword::KeywordSpace make_space(unsigned max_len = 6) const;

  core::DataElement make_element(Rng& rng) const;
  std::vector<core::DataElement> make_elements(std::size_t count,
                                               Rng& rng) const;

  const Vocabulary& vocabulary() const noexcept { return vocabulary_; }
  unsigned dims() const noexcept { return dims_; }

  // --- The paper's query families (4.1) -----------------------------------

  /// Q1: one keyword or partial keyword, wildcards elsewhere, e.g.
  /// (comp*, *, *). `rank` picks the underlying vocabulary word so that a
  /// fixed query can be replayed across system sizes.
  keyword::Query q1(std::size_t rank, bool partial,
                    unsigned prefix_len = 3) const;

  /// Q2: two to three keywords / partial keywords, at least one partial,
  /// e.g. (comp*, net*, *).
  keyword::Query q2(std::size_t rank_a, std::size_t rank_b, bool partial_b,
                    unsigned prefix_len = 3) const;

private:
  unsigned dims_;
  Vocabulary vocabulary_;
  mutable std::uint64_t counter_ = 0; ///< element-name sequence
};

/// Grid-resource corpus: numeric attributes with realistic clustering
/// (memory concentrates on powers of two, bandwidth on standard tiers,
/// cost spreads log-uniformly).
class ResourceCorpus {
public:
  explicit ResourceCorpus(unsigned bits = 10);

  keyword::KeywordSpace make_space() const;
  core::DataElement make_element(Rng& rng) const;
  std::vector<core::DataElement> make_elements(std::size_t count,
                                               Rng& rng) const;

  /// Q3 range queries of the paper's two shapes.
  /// (keyword, range, *): exact storage tier, bandwidth range, any cost.
  keyword::Query q3_keyword_range(double storage, double bw_lo,
                                  double bw_hi) const;
  /// (range, range, range).
  keyword::Query q3_all_ranges(double st_lo, double st_hi, double bw_lo,
                               double bw_hi, double cost_lo,
                               double cost_hi) const;

private:
  unsigned bits_;
  mutable std::uint64_t counter_ = 0; ///< element-name sequence
};

} // namespace squid::workload
