// Free-text keyword extraction: turns a document into the descriptive
// keywords Squid indexes it under (paper 1: "a document is better described
// by keywords than by its filename").
//
// Deliberately simple and deterministic: lowercase alphabetic tokens,
// stopwords removed, ranked by frequency (ties broken toward longer, then
// lexicographically smaller words) — no external NLP dependencies.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace squid::workload {

/// True for words too common to describe anything ("the", "of", ...).
bool is_stopword(std::string_view word);

/// Lowercased alphabetic tokens of `text`, in order of appearance;
/// non-alphabetic characters separate tokens.
std::vector<std::string> tokenize(std::string_view text);

/// The top `max_keywords` descriptive keywords of `text` after stopword
/// removal, most characteristic first. Fewer are returned when the text is
/// short; the result is padded with "" only by the caller if needed.
std::vector<std::string> extract_keywords(std::string_view text,
                                          std::size_t max_keywords);

} // namespace squid::workload
