// Geo moving-objects workload (DESIGN.md 4j, EXPERIMENTS.md): the first
// update-heavy query family this repo opens.
//
// The paper's keyword space is generic over codecs, so a 2-d numeric space
// (x, y) is already a geo index: an object at (x, y) is a DataElement with
// two numeric tokens, a bounding-box query is a Query of two NumRanges, and
// the SFC index keeps spatially-near objects near on the ring. What geo
// adds is MOTION — objects move, so the index must absorb a continuous
// retract-then-publish stream (the update plane, core/update.hpp), which is
// exactly the workload the tiered store's O(log K + |delta|) single-key
// mutations exist for.
//
// Objects follow the random-waypoint model standard in moving-object and
// MANET evaluation: each picks a uniform waypoint, advances toward it at
// its own speed every tick, and picks a fresh waypoint (and speed) on
// arrival. Every tick of an object yields a retract of its indexed position
// and a publish of the new one; recall under motion is then measured by
// bbox queries against ground truth (positions(), which the workload tracks
// exactly).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "squid/core/types.hpp"
#include "squid/core/update.hpp"
#include "squid/keyword/space.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
class SquidSystem;
}

namespace squid::workload {

struct GeoConfig {
  double width = 1024.0;  ///< world extent, x in [0, width)
  double height = 1024.0; ///< world extent, y in [0, height)
  unsigned bits = 10;     ///< codec resolution per axis (buckets = 2^bits)
  std::size_t objects = 1024;
  double speed_min = 1.0; ///< distance per tick, drawn per waypoint leg
  double speed_max = 8.0;
};

/// Random-waypoint moving objects over a bounded 2-d world. The workload
/// owns the ground truth: `element_of(i)` is exactly what object i has
/// indexed right now, so a step's retract op always matches the stored
/// element bit-for-bit (retract matching is by name AND keys).
class GeoMovingObjectsWorkload {
public:
  GeoMovingObjectsWorkload(GeoConfig config, Rng& rng);

  const GeoConfig& config() const noexcept { return config_; }
  std::size_t size() const noexcept { return objects_.size(); }

  /// The matching 2-d index space: one NumericCodec per axis.
  keyword::KeywordSpace make_space() const;

  struct Object {
    std::string name;
    double x = 0, y = 0;   ///< indexed (current) position
    double tx = 0, ty = 0; ///< waypoint this leg heads toward
    double speed = 1;      ///< distance covered per tick on this leg
  };
  const Object& object(std::size_t i) const { return objects_[i]; }

  /// The element object i currently has indexed.
  core::DataElement element_of(std::size_t i) const;
  /// Initial corpus: every object's element (publish_batch fodder).
  std::vector<core::DataElement> elements() const;

  /// Advance object i one tick (random-waypoint; a new waypoint and speed
  /// are drawn on arrival) and return the update-plane op pair — retract of
  /// the old indexed position, publish of the new — both issued from
  /// `origin`. Appended to `ops` so a whole tick builds one apply_updates
  /// batch.
  void step(std::size_t i, overlay::NodeId origin,
            std::vector<core::UpdateOp>& ops, Rng& rng);

  /// Ground truth for recall: names of objects currently inside the box
  /// (half-open on nothing — closed box, matching bbox_query's NumRange).
  std::vector<std::string> inside(double xlo, double xhi, double ylo,
                                  double yhi) const;

private:
  GeoConfig config_;
  std::vector<Object> objects_;
};

/// Bounding-box query: (x in [xlo, xhi], y in [ylo, yhi]).
keyword::Query bbox_query(double xlo, double xhi, double ylo, double yhi);

/// One k-nearest answer row.
struct GeoNeighbor {
  std::string name;
  double x = 0, y = 0;
  double dist2 = 0; ///< squared distance to the probe point

  friend bool operator==(const GeoNeighbor&, const GeoNeighbor&) = default;
};

/// Deterministic k-nearest over the distributed index: expanding-box
/// search. Starting from a small box around (x, y), issue bbox queries with
/// doubling radius until at least k hits lie within the radius circle (or
/// the box covers the world), then sort by (dist2, name) and truncate —
/// the circle check makes the answer exact, not box-approximate. Results
/// dedupe by object name. Costs a handful of bbox queries, each through the
/// full distributed engine from `origin`.
std::vector<GeoNeighbor> k_nearest(const core::SquidSystem& sys,
                                   const GeoConfig& world, double x, double y,
                                   std::size_t k, overlay::NodeId origin);

} // namespace squid::workload
