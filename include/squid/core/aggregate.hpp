// In-overlay aggregation: typed aggregate specs and mergeable partials.
//
// Discovery workloads overwhelmingly ask count / sum / min / max / group-by
// / top-k rather than "ship me every matching element". An AggregateSpec
// rides the ScanRequest frame to each scan site, which folds its matching
// elements into an AggregatePartial locally; partials then merge up the
// cluster-dispatch tree and finalize once at the origin (DESIGN.md 4g).
//
// Every merge operator here is exactly associative and commutative —
// count via integer addition, sum via the ExactSum superaccumulator,
// min/max via idempotent comparison, group-by via key-sorted count maps,
// top-k via bounded sorted lists with a (value, name) total order — so the
// final answer is bit-identical regardless of tree shape, delivery mode,
// shard count, or merge order. That is what lets the differential suite
// compare pushdown against an origin-side fold over ship-all elements.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "squid/core/types.hpp"
#include "squid/util/exact_sum.hpp"

namespace squid::core {

enum class AggregateKind : std::uint8_t {
  kNone = 0, ///< not an aggregate query (element-shipping scan)
  kCount,
  kSum,
  kMin,
  kMax,
  kGroupBy,
  kTopK,
};

const char* aggregate_kind_name(AggregateKind kind) noexcept;

/// What to compute over the matching elements. `dim` selects the payload
/// attribute (keyword-space dimension) the aggregate reads: kSum/kMin/kMax/
/// kTopK require a numeric dimension, kGroupBy accepts any dimension (the
/// group key is the token's textual rendering), kCount ignores it.
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kNone;
  std::uint32_t dim = 0;
  /// kTopK: number of entries to keep. Ignored by other kinds.
  std::uint32_t k = 0;
  /// kTopK: true selects the k largest values, false the k smallest.
  bool largest = true;

  friend bool operator==(const AggregateSpec&, const AggregateSpec&) = default;
};

/// One group-by bucket: elements whose `dim` token renders as `key`.
struct GroupCount {
  std::string key;
  std::uint64_t count = 0;

  friend bool operator==(const GroupCount&, const GroupCount&) = default;
};

/// One top-k entry. The element name is the deterministic tie-break: among
/// equal values the lexicographically smaller name ranks first, so any
/// multiset of candidates yields exactly one top-k list.
struct TopEntry {
  double value = 0;
  std::string name;

  friend bool operator==(const TopEntry&, const TopEntry&) = default;
};

/// A mergeable partial aggregate. One per scan site, merged pairwise up the
/// dispatch tree; the origin's fully-merged partial IS the answer. Fields
/// unused by `spec.kind` stay default-initialized so bit-equality holds.
struct AggregatePartial {
  AggregateSpec spec;
  /// Elements folded in (maintained by every kind).
  std::uint64_t count = 0;
  /// kSum: exact order-independent accumulator.
  ExactSum sum;
  /// kMin/kMax: both extremes are maintained (the kinds differ only in
  /// which one the caller reads); false until the first element folds.
  bool has_extremes = false;
  double min = 0;
  double max = 0;
  /// kGroupBy: buckets sorted by key (strictly ascending, no duplicates).
  std::vector<GroupCount> groups;
  /// kTopK: best-first sorted entries, at most spec.k of them. "Best" is
  /// (value descending if spec.largest else ascending, then name ascending).
  std::vector<TopEntry> top;

  /// Fold one matching element into this partial (scan-site side).
  void fold(const DataElement& element);

  /// Merge another partial of the same spec (interior-node side). Exactly
  /// associative and commutative.
  void merge(const AggregatePartial& other);

  friend bool operator==(const AggregatePartial&,
                         const AggregatePartial&) = default;
};

/// An empty partial carrying `spec` (interior tree nodes with no local
/// scans start from this).
AggregatePartial make_partial(const AggregateSpec& spec);

/// True when `a` ranks strictly before `b` in a top list under `spec`
/// (value order per spec.largest, name-ascending tie-break).
bool top_entry_before(const AggregateSpec& spec, const TopEntry& a,
                      const TopEntry& b) noexcept;

} // namespace squid::core
