// Snapshot and query-message save/load.
//
// A snapshot captures the overlay membership and every published element in
// a line-oriented text format (versioned header, length-prefixed strings,
// decimal 128-bit ids). Loading requires a freshly built system with the
// same keyword space and curve — the geometry is validated from the header,
// and routing state is rebuilt exactly after membership is restored.
//
// Query-protocol messages (core/messages.hpp) share the same text
// conventions: save_message/load_message round-trip every message type, and
// truncated or malformed input fails loudly (std::invalid_argument), never
// by returning a half-read message.

#pragma once

#include <cstddef>
#include <iosfwd>

#include "squid/core/messages.hpp"
#include "squid/core/system.hpp"

namespace squid::core {

/// Write a complete snapshot of `sys` (membership + elements) to `out`.
void save_snapshot(const SquidSystem& sys, std::ostream& out);

/// Restore a snapshot into `sys`, which must be freshly constructed (no
/// nodes, no data) with a keyword space and curve matching the snapshot's
/// geometry. Throws std::invalid_argument on format or geometry mismatch.
void load_snapshot(SquidSystem& sys, std::istream& in);

/// Write one query-protocol message (versioned header + type tag + fields).
/// Returns the number of bytes written; when `out` cannot report stream
/// positions the size is measured over a counting stream instead, so the
/// return value is always the true frame size.
std::size_t save_message(const msg::Message& message, std::ostream& out);

/// Read back a message written by save_message. Throws
/// std::invalid_argument on bad magic, unknown type tag, or truncation.
/// When `bytes_read` is non-null it receives the number of bytes the frame
/// occupied (0 if `in` cannot report stream positions).
msg::Message load_message(std::istream& in, std::size_t* bytes_read = nullptr);

/// Serialized size of `message` in bytes: the real writer run over a
/// counting stream, never an estimate.
std::size_t wire_size(const msg::Message& message);

/// Wire size of one element as a Reply payload line (element encoding plus
/// its terminating newline).
std::size_t element_wire_size(const DataElement& element);

/// Wire size of a Reply frame built for accounting: canonical query id 0
/// (so byte counts never depend on live query-id digit lengths), complete,
/// carrying `count`, `elements` payload lines totalling `payload_bytes`,
/// and optionally an aggregate partial. The header is measured through the
/// real writer; `payload_bytes` is added verbatim (callers accumulate it
/// via element_wire_size during the scan, avoiding a copy of the elements).
std::size_t reply_wire_size(overlay::NodeId from, overlay::NodeId to,
                            std::uint64_t count, std::size_t elements,
                            std::size_t payload_bytes,
                            const AggregatePartial* aggregate = nullptr);

} // namespace squid::core
