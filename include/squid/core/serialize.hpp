// Snapshot and query-message save/load.
//
// A snapshot captures the overlay membership and every published element in
// a line-oriented text format (versioned header, length-prefixed strings,
// decimal 128-bit ids). Loading requires a freshly built system with the
// same keyword space and curve — the geometry is validated from the header,
// and routing state is rebuilt exactly after membership is restored.
//
// Query-protocol messages (core/messages.hpp) share the same text
// conventions: save_message/load_message round-trip every message type, and
// truncated or malformed input fails loudly (std::invalid_argument), never
// by returning a half-read message.

#pragma once

#include <iosfwd>

#include "squid/core/messages.hpp"
#include "squid/core/system.hpp"

namespace squid::core {

/// Write a complete snapshot of `sys` (membership + elements) to `out`.
void save_snapshot(const SquidSystem& sys, std::ostream& out);

/// Restore a snapshot into `sys`, which must be freshly constructed (no
/// nodes, no data) with a keyword space and curve matching the snapshot's
/// geometry. Throws std::invalid_argument on format or geometry mismatch.
void load_snapshot(SquidSystem& sys, std::istream& in);

/// Write one query-protocol message (versioned header + type tag + fields).
void save_message(const msg::Message& message, std::ostream& out);

/// Read back a message written by save_message. Throws
/// std::invalid_argument on bad magic, unknown type tag, or truncation.
msg::Message load_message(std::istream& in);

} // namespace squid::core
