// Snapshot save/load for SquidSystem.
//
// A snapshot captures the overlay membership and every published element in
// a line-oriented text format (versioned header, length-prefixed strings,
// decimal 128-bit ids). Loading requires a freshly built system with the
// same keyword space and curve — the geometry is validated from the header,
// and routing state is rebuilt exactly after membership is restored.

#pragma once

#include <iosfwd>

#include "squid/core/system.hpp"

namespace squid::core {

/// Write a complete snapshot of `sys` (membership + elements) to `out`.
void save_snapshot(const SquidSystem& sys, std::ostream& out);

/// Restore a snapshot into `sys`, which must be freshly constructed (no
/// nodes, no data) with a keyword space and curve matching the snapshot's
/// geometry. Throws std::invalid_argument on format or geometry mismatch.
void load_snapshot(SquidSystem& sys, std::istream& in);

} // namespace squid::core
