// Detector-driven hotspot reaction (docs/LOAD_BALANCING.md): the loop that
// closes ROADMAP's "metrics-driven adaptive hotspot management".
//
// PR 8 shipped the observation half — the EpochSampler sees per-node load on
// the virtual clock and the HotspotDetector raises `hotspot.onset` /
// `hotspot.clear` transitions. This controller subscribes to those events
// (HotspotDetector::set_sink, the event bus out of the detector) and reacts
// online, per closed epoch:
//
//   onset  -> SPLIT the hot node at its median key, hosting the new half on
//             a cold peer (VirtualNodeManager::split_virtual when virtual
//             nodes are managed; a plain ring split otherwise). Only
//             owner-side hotspots split — a node whose epoch load is
//             dominated by transit routing gets no action, because its heat
//             is a symptom of some owner's crowd and disappears once that
//             owner's cluster is served;
//   still hot after `replicate_after` epochs
//          -> REPLICATE the hot node's cluster: snapshot it into the
//             system's replica cache (SquidSystem::install_replica) on
//             sampled cold peers, optionally mirroring the copies into
//             the ReplicationManager's durability bookkeeping; reads of the
//             cluster are then served one hop away from the replicas, with
//             invalidation on republish (a stale read is impossible);
//   clear  -> DRAIN: keep the entry serving (serving is precisely what
//             cooled the owner — dropping on clear would re-ignite it next
//             epoch and flap), and DROP it only once its per-epoch absorbed
//             demand falls to drain_fraction of its busiest epoch for
//             drain_epochs consecutive windows (the crowd is actually
//             gone). An onset during the drain re-arms serving directly.
//
// The controller runs at epoch close — a safe point in all three delivery
// modes (kLockstep / kVirtualTime / kParallel) — and is deterministic: the
// epoch series is mode-independent (commutative sums), detector transitions
// fire in node-id order, and the only randomness is the controller's own
// seeded RNG, so the same seed and workload yield the same splits and
// replica sets in every mode. Disabled (or never constructed) it performs
// no action and installs no entries, leaving every query bit-identical to
// detection-only operation (tests/core/reaction_test.cpp).

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/obs/hotspot.hpp"

namespace squid::core {

class VirtualNodeManager;
class ReplicationManager;

struct ReactionConfig {
  /// Master switch: off = detection only (the PR 8 behavior), bit-identical
  /// to running without a controller.
  bool enabled = true;
  /// Epochs a node must stay continuously hot after its onset before the
  /// controller escalates from splitting to replication.
  unsigned replicate_after = 1;
  /// Initial replica peers serving a hot cluster (sampled cold peers — see
  /// cold_replicas for why NOT the ring successors). Clients spread across
  /// the whole set (the dispatch pick hashes the query origin), so a wider
  /// set flattens the served load further at the cost of more snapshots.
  unsigned replica_factor = 8;
  /// Adaptive widening cap: while any host of a served entry runs hot
  /// itself (borrowed load — the detector watches hosts like any node),
  /// the maintenance pass adds replica_factor more cold hosts per epoch,
  /// up to this many, splitting the served demand further.
  unsigned replica_max = 32;
  /// Candidate peers sampled per choice when hosting a split half
  /// (VirtualNodeManager::split_virtual) or a replica (cold_replicas).
  unsigned cold_probes = 4;
  /// Total split budget: caps the split cascade a broad crowd can trigger.
  /// Deliberately small — a split only pays off when ONE owner holds the
  /// whole hot region (each new node lengthens every route a little, and a
  /// split half that inherits the crowd fires its own onset next epoch);
  /// a crowd heating many owners at once is replication's job.
  unsigned split_budget = 4;
  /// A split adds CAPACITY (one more node), so onsets only split while the
  /// ring-wide epoch load runs at least this factor over its pre-surge
  /// baseline (EWMA, frozen while any node is hot — mirroring the
  /// detector's own freeze). A flash crowd multiplies aggregate volume and
  /// passes; a constant-volume shift (a diurnal focus relocation) merely
  /// moves demand between owners, where a split would lengthen every route
  /// for nothing — replication redistributes it instead.
  double split_surge_factor = 2.0;
  /// Re-snapshot an invalidated entry at epoch close while its node is
  /// still hot (off: the entry stays cold until the crowd clears).
  bool refresh_invalidated = true;
  /// Draining: consecutive epochs the entry's absorbed demand must stay
  /// under the drop threshold before the entry is actually dropped.
  /// Hysteresis against one quiet window mid-crowd.
  unsigned drain_epochs = 2;
  /// Draining: the entry is droppable once its per-epoch absorbed demand
  /// falls to this fraction of the peak epoch it ever served. Entry-local
  /// on purpose: the detector's thresholds are in TOTAL-load units
  /// (routing included) while absorbed demand is scan-only, and a broad
  /// crowd spread over many owners passes a total-load clear test while
  /// the crowd is still in full swing.
  double drain_fraction = 0.25;
  /// Draining: absolute "demand gone" floor, in owner scan-hit units
  /// (covers entries whose peak was itself tiny).
  double drain_floor = 16.0;
};

/// What one on_epoch() call (or the whole run, via totals()) did.
struct ReactionReport {
  std::size_t onsets = 0;
  std::size_t clears = 0;
  std::size_t splits = 0;       ///< median-key splits triggered
  std::size_t replications = 0; ///< replica-cache entries installed
  std::size_t widens = 0;       ///< replica sets widened (hosts ran hot)
  std::size_t refreshes = 0;    ///< invalidated entries re-snapshotted
  std::size_t drops = 0;        ///< drained entries dropped (demand gone)
};

class ReactionController {
public:
  using NodeId = SquidSystem::NodeId;

  /// Per-node reaction state machine (docs/LOAD_BALANCING.md §2):
  /// kCold -> (onset) kSplit -> (still hot) kReplicated -> (clear)
  /// kDraining -> (absorbed demand subsides for drain_epochs windows)
  /// kCold; an onset while kDraining re-arms kReplicated.
  enum class Phase : std::uint8_t { kCold, kSplit, kReplicated, kDraining };

  /// `detector_config.min_load` should already be calibrated
  /// (obs::calibrated_min_load with config().hotspot_min_load_factor).
  /// `seed` drives cold-peer sampling only.
  ReactionController(SquidSystem& sys, obs::HotspotConfig detector_config,
                     ReactionConfig config, std::uint64_t seed);

  /// Split through the manager's hosting layer instead of bare ring splits.
  /// The manager must manage `sys`'s network; not owned, must outlive us.
  void attach_virtual_nodes(VirtualNodeManager* manager) noexcept {
    virtual_nodes_ = manager;
  }
  /// Mirror hot-cluster copies into durability bookkeeping
  /// (ReplicationManager::replicate_range). Not owned, must outlive us.
  void attach_replication(ReplicationManager* replication) noexcept {
    replication_ = replication;
  }

  /// Feed one closed epoch (in order): runs the detector, then reacts to
  /// the transitions it fired. Safe to call in any delivery mode — epoch
  /// close is a safe point (no query in flight touches the structures this
  /// mutates). With config().enabled false this is detection only.
  ReactionReport on_epoch(const obs::EpochSample& sample);

  /// Replay a whole series through on_epoch, in order.
  ReactionReport on_series(const obs::LoadSeries& series);

  const ReactionConfig& config() const noexcept { return config_; }
  const obs::HotspotDetector& detector() const noexcept { return detector_; }
  const ReactionReport& totals() const noexcept { return totals_; }
  Phase phase_of(NodeId node) const;
  /// The replica-cache entry serving `node`'s cluster (0 unless
  /// kReplicated).
  std::uint64_t entry_of(NodeId node) const;

private:
  struct NodeState {
    Phase phase = Phase::kCold;
    std::uint64_t onset_epoch = 0;
    std::uint64_t entry = 0; ///< replica cache id while kReplicated/kDraining
    std::uint64_t last_serves = 0; ///< entry serve count at last epoch close
    std::uint64_t peak_absorbed = 0; ///< busiest epoch the entry ever served
    unsigned quiet_epochs = 0; ///< consecutive drain epochs that passed
    std::vector<NodeId> hosts;  ///< peers hosting the entry (hosted_ refs)
    sfc::ClusterNode cluster;   ///< the served cluster (for re-install)
  };

  /// The deepest refinement-tree cluster covering the keys `node` owns —
  /// the cluster id replica-cache entries are keyed by.
  sfc::ClusterNode covering_cluster(NodeId node) const;
  /// Up to `count` distinct COLD peers to host `node`'s cluster snapshot,
  /// chosen by power-of-d-choices sampling (cold_probes candidates per
  /// slot, lowest detector baseline wins, hot nodes excluded). Not the ring
  /// successors: a crowd heats a contiguous ring segment, so successors of
  /// a hot owner are usually hot themselves. Draws from the controller RNG.
  std::vector<NodeId> cold_replicas(NodeId node, unsigned count);
  void react_onset(const obs::HotspotEvent& event, const obs::LoadVector& load,
                   ReactionReport& report);
  void react_clear(const obs::HotspotEvent& event, ReactionReport& report);
  void escalate(const obs::EpochSample& sample, ReactionReport& report);
  /// Widen the entry's replica set while its hosts run hot (borrowed load
  /// — the remedy is more hosts, not reacting to the host's own cluster).
  void maybe_widen(NodeId node, NodeState& state, ReactionReport& report);

  SquidSystem& sys_;
  ReactionConfig config_;
  obs::HotspotDetector detector_;
  VirtualNodeManager* virtual_nodes_ = nullptr;
  ReplicationManager* replication_ = nullptr;
  Rng rng_;
  std::map<NodeId, NodeState> states_;
  /// EWMA of the ring-wide epoch load total, frozen while any node is hot;
  /// react_onset's split gate compares the current epoch against it.
  double ring_baseline_ = 0;
  bool ring_surge_ = false; ///< this epoch's total cleared the split gate
  /// Live replica-cache entries each peer currently hosts. The placement
  /// key in cold_replicas (fewest first) — without it the globally coldest
  /// peers win every sample and the crowd re-concentrates on them — and
  /// the react_onset guard against reacting to borrowed load.
  std::map<NodeId, unsigned> hosted_;
  std::vector<obs::HotspotEvent> pending_; ///< sink buffer, drained per epoch
  std::size_t splits_done_ = 0;
  ReactionReport totals_;
};

} // namespace squid::core
