// Data replication and durability (paper 5: fault tolerance is called out
// as future work; this module supplies the standard DHT answer).
//
// Every key is replicated on its owner plus the next `factor - 1` distinct
// successors (the Chord/DHash scheme). Node failures drop copies; a key
// whose copies all die before repair runs is lost. Periodic repair
// re-replicates under-replicated keys and counts the transfer traffic, so
// the durability bench can sweep churn rate against replication factor.
//
// The manager mirrors SquidSystem's key population and tracks copy holders
// explicitly; the query engine itself keeps reading the logical store (a
// real deployment reads any live replica — completeness against *surviving*
// keys is what the durability experiments measure).

#pragma once

#include <map>
#include <set>

#include "squid/core/system.hpp"

namespace squid::core {

class ReplicationManager {
public:
  /// `factor` >= 1 copies per key. Call after the network and data exist.
  ReplicationManager(SquidSystem& sys, unsigned factor);

  unsigned factor() const noexcept { return factor_; }

  /// (Re)place every key on its current owner chain; full reset.
  void place_all();

  /// Membership hooks — call instead of mutating the system directly, or
  /// after doing so. on_fail drops the failed peer's copies *before* the
  /// ring forgets it; on_join/on_leave keep holder bookkeeping aligned.
  void fail_node(SquidSystem::NodeId id);

  /// Crash-triggered re-replication (docs/FAULT_MODEL.md): while enabled,
  /// fail_node immediately re-replicates exactly the keys that lost a copy
  /// on the crashed peer (targeted, unlike the full repair() sweep), as
  /// DHash's reactive maintenance does. Off by default so durability
  /// benches can still measure the pure periodic-repair regime.
  void set_auto_repair(bool on) noexcept { auto_repair_ = on; }
  bool auto_repair() const noexcept { return auto_repair_; }
  void leave_node(SquidSystem::NodeId id); ///< graceful: copies handed off
  SquidSystem::NodeId join_node(Rng& rng); ///< newcomer syncs its ranges

  /// One repair round: every surviving key gets re-replicated onto its
  /// current owner chain up to `factor` copies. Returns copies transferred
  /// (the repair traffic).
  std::size_t repair();

  /// Targeted replication for the reaction controller
  /// (docs/LOAD_BALANCING.md): bring every tracked key in the index range
  /// [lo, hi] up to max(factor, copies) live copies along its current owner
  /// chain — the durability bookkeeping behind serving a hot cluster from
  /// `copies` replicas. Returns copies transferred.
  std::size_t replicate_range(u128 lo, u128 hi, unsigned copies);

  /// The key's current owner plus its next distinct ring successors, up to
  /// `copies` peers (factor() by default). The reaction controller uses it
  /// to pick the replica set that serves a hot cluster.
  std::vector<SquidSystem::NodeId> owner_chain_of(u128 key,
                                                  unsigned copies) const;

  /// Keys that currently have zero live copies (unrecoverable).
  std::size_t lost_keys() const;
  /// Keys below target replication (repair backlog).
  std::size_t under_replicated() const;
  /// Total live copies across all keys.
  std::size_t total_copies() const;
  std::size_t tracked_keys() const noexcept { return holders_.size(); }

  /// True when `key` still has at least one live copy.
  bool alive(u128 key) const;

private:
  std::vector<SquidSystem::NodeId> owner_chain(u128 key) const;

  SquidSystem& sys_;
  unsigned factor_;
  bool auto_repair_ = false;
  std::map<u128, std::set<SquidSystem::NodeId>> holders_;
};

} // namespace squid::core
