// The routed update plane (DESIGN.md 4j): first-class publish/retract as
// protocol frames, delivered through the runtime in every mode.
//
// A moving object is a retract-then-publish pair per move; an update-heavy
// workload is a stream of such ops issued from arbitrary peers. This plane
// turns each op into a PublishRequest/RetractRequest frame
// (core/messages.hpp, wire round-trip in serialize.cpp), routes it from its
// origin to the key's owner through the Chord ring, judges every message
// leg at the uniform fault choke point (sim::Engine::admit — same retry +
// exponential-backoff discipline as query legs), and delivers it in the
// caller's chosen DeliveryMode:
//
//   * kLockstep    — each op drains its own delay-0 engine, in submit order.
//   * kVirtualTime — all ops share one virtual clock; arrivals land at
//                    their route-hop ticks, so completion times reflect the
//                    honest interleaving.
//   * kParallel    — ops partition across shard threads by the OWNER's home
//                    shard (shard_of_node, as query scans do), each shard
//                    delivering its ops in submit order on a private engine.
//
// Determinism contract (the store differential lock rests on all three):
//   1. Fault verdicts are a pure function of (plan, submit index): every
//      op's legs are judged by an injector forked from the base plan by its
//      seq (sim::fork_plan), at virtual time 0, in every mode.
//   2. Delivered frames COMMIT to the store at the post-drain safe point,
//      in global submit order — never mid-flight, so concurrent shard
//      delivery can neither race the store nor reorder writes.
//   3. Therefore the final store state — and every query result computed
//      from it — is bit-identical across modes, shard counts, and thread
//      interleavings, and equal to applying the delivered subset directly.
//
// Commits go through SquidSystem::publish/unpublish, so hot-cluster replica
// invalidation is synchronous (a retract can never leave a stale replica
// serving — docs/LOAD_BALANCING.md) and telemetry/metrics fire at the
// owner (squid.system.publishes / unpublishes / retracts, epoch-sampler
// kPublish / kRetract load).

#pragma once

#include <cstdint>
#include <vector>

#include "squid/core/runtime.hpp"
#include "squid/core/types.hpp"
#include "squid/overlay/id_space.hpp"
#include "squid/sim/engine.hpp"

namespace squid::sim {
struct FaultPlan; // sim/fault.hpp
}

namespace squid::core {

class SquidSystem;

/// One routed index mutation, issued from `origin`.
struct UpdateOp {
  enum class Kind { kPublish, kRetract };
  Kind kind = Kind::kPublish;
  DataElement element;
  overlay::NodeId origin = 0;

  static UpdateOp publish(DataElement element, overlay::NodeId origin) {
    return {Kind::kPublish, std::move(element), origin};
  }
  static UpdateOp retract(DataElement element, overlay::NodeId origin) {
    return {Kind::kRetract, std::move(element), origin};
  }
};

/// Per-op outcome. `delivered` is the wire verdict (route found AND the
/// frame survived its fault legs); `applied` is the store verdict (a
/// delivered retract of an element the owner no longer holds is delivered
/// but not applied).
struct UpdateResult {
  bool delivered = false;
  bool applied = false;
  std::size_t hops = 0;     ///< overlay route length origin -> owner
  std::size_t messages = 0; ///< frames paid for (1 + resends + duplicates)
  std::size_t retries = 0;  ///< resends after presumed losses
  std::size_t bytes = 0;    ///< frame size through the real serializer
  sim::Time completed_at = 0; ///< arrival tick (mode-dependent clock)
};

/// Whole-run accounting: per-op results in submit order plus the sums the
/// benches chart.
struct UpdateRun {
  std::vector<UpdateResult> results;
  std::size_t delivered = 0;
  std::size_t applied = 0;
  std::size_t lost = 0; ///< unroutable or dropped after all retries
  std::size_t messages = 0;
  std::size_t retries = 0;
  std::size_t bytes = 0;
  sim::Time makespan = 0; ///< latest arrival tick on the run's clock(s)
};

struct UpdateOptions {
  DeliveryMode mode = DeliveryMode::kLockstep;
  /// Shard-thread count for kParallel (>= 1); ignored otherwise.
  unsigned shards = 1;
  /// Base fault plan; each op's legs are judged by stream fork_plan(plan,
  /// submit index). Null = no faults, no randomness. Not owned.
  const sim::FaultPlan* faults = nullptr;
};

/// Apply `ops` to the system through the update plane. See the determinism
/// contract above; `opts.mode` only changes timing/interleaving, never the
/// final store state.
UpdateRun apply_updates(SquidSystem& sys, const std::vector<UpdateOp>& ops,
                        const UpdateOptions& opts = {});

/// Lockstep single-op conveniences.
UpdateResult publish_update(SquidSystem& sys, const DataElement& element,
                            overlay::NodeId origin);
UpdateResult retract_update(SquidSystem& sys, const DataElement& element,
                            overlay::NodeId origin);

} // namespace squid::core
