// Message-driven query runtime (DESIGN.md 4e).
//
// The seed query engine resolved a query as one synchronous C++ recursion;
// this layer lifts that recursion onto the sim::Engine as explicit typed
// messages (core/messages.hpp). Per query, a QueryExec holds the state the
// old call stack threaded implicitly — accounting sets, the timing DAG, the
// trace recorder, the fault/retry machinery, and a completion counter — and
// NodeRuntime is the peers' inbox handler: delivering a message runs its
// work at the destination node and posts the follow-up messages.
//
// Two delivery modes share all of that code:
//
//  * kLockstep — every message is scheduled at delay 0 on a private engine.
//    The engine's FIFO tie-break at equal timestamps then replays exactly
//    the seed recursion's work order, which is what keeps the synchronous
//    query() wrapper bit-identical to the seed path (results, QueryStats,
//    traces, the timing DAG, and — because fault verdicts are drawn in
//    planning order — the injector's RNG stream). The differential suite
//    (tests/core/async_differential_test.cpp) locks this.
//
//  * kVirtualTime — messages are scheduled at their timing-DAG tick
//    (started_at + hop-depth of their event), so many queries can be in
//    flight on ONE shared engine clock and their completion times are the
//    honest interleaving, not a serialization artifact. query_async uses
//    this; each handle completes when its Reply delivers.
//
// Fault interception is uniform: every protocol leg is judged by
// Engine::admit (the same point Engine::send is built on), with retries and
// backoff folded into the leg's timing-DAG hops by QueryExec::attempt_leg.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "squid/core/messages.hpp"
#include "squid/core/types.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/telemetry.hpp"
#include "squid/obs/trace.hpp"
#include "squid/sfc/types.hpp"
#include "squid/sim/engine.hpp"
#include "squid/util/require.hpp"

namespace squid::core {

class SquidSystem;         // core/system.hpp
struct ParallelQueryState; // core/parallel.hpp

/// One scan site's contribution to an aggregate query (DESIGN.md 4g):
/// the partial it folded locally plus the bytes a ship-all-elements Reply
/// from that scan would have occupied (for the bytes_saved counter;
/// measured only with obs compiled in). Records live in QueryExec::agg_scans
/// at the slot assigned when the ScanRequest was posted, so every delivery
/// mode files identical records in identical order.
struct AggScanRecord {
  overlay::NodeId at = 0;
  AggregatePartial partial;
  std::uint64_t ship_bytes = 0;
};

/// How NodeRuntime schedules message arrivals (see file comment).
enum class DeliveryMode : std::uint8_t {
  kLockstep,    ///< all at delay 0; FIFO replays the seed recursion order
  kVirtualTime, ///< at the message's timing-DAG tick; overlapping queries
  /// Sharded multi-core execution (core/parallel.hpp): planning messages
  /// stay on the query's home-shard engine at delay 0 (the lockstep replay,
  /// one shard worker per thread), while ScanRequests hand off to the shard
  /// owning the scanned node and write private buffers merged at finalize.
  kParallel
};

/// query() advertises itself as a pure reader, but with cache_cluster_owners
/// on it writes owner_cache_/cache_stats_. This guard makes overlapping
/// cached queries fail loudly (SQUID_REQUIRE) instead of racing silently;
/// it is only armed when the cache is enabled, so the lock-free concurrent
/// read path stays untouched. An async query holds its guard until its
/// Reply finalizes it.
class ScopedCacheWriter {
public:
  explicit ScopedCacheWriter(std::atomic<int>& writers) : writers_(writers) {
    if (writers_.fetch_add(1, std::memory_order_acq_rel) != 0) {
      writers_.fetch_sub(1, std::memory_order_acq_rel);
      SQUID_REQUIRE(false,
                    "concurrent query()/count() with cache_cluster_owners "
                    "enabled would race on the owner cache; disable the "
                    "cache for multi-threaded readers");
    }
  }
  ~ScopedCacheWriter() { writers_.fetch_sub(1, std::memory_order_acq_rel); }
  ScopedCacheWriter(const ScopedCacheWriter&) = delete;
  ScopedCacheWriter& operator=(const ScopedCacheWriter&) = delete;

private:
  std::atomic<int>& writers_;
};

/// Per-query execution state: everything the seed recursion kept on the
/// call stack, held explicitly so resolution can be suspended between
/// message deliveries. Owned by a shared_ptr that the engine's scheduled
/// closures and the caller's QueryHandle both hold.
struct QueryExec {
  using NodeId = overlay::NodeId;

  // --- Identity / wiring ---------------------------------------------------
  std::uint64_t id = 0; ///< process-wide query id (messages carry it)
  DeliveryMode mode = DeliveryMode::kLockstep;
  sim::Engine* engine = nullptr;
  const SquidSystem* sys = nullptr;
  const SquidConfig* config = nullptr;
  NodeId origin = 0;

  // --- Resolution state (the old QueryContext) -----------------------------
  sfc::Rect rect;
  std::set<NodeId> routing;
  std::set<NodeId> processing;
  std::set<NodeId> data_nodes;
  std::size_t messages = 0;
  bool count_only = false; ///< count matches without shipping elements
  std::size_t count = 0;
  std::vector<DataElement> results;

  // --- Aggregation pushdown (DESIGN.md 4g) ---------------------------------
  /// Set for aggregate queries; scans then fold instead of shipping.
  std::optional<AggregateSpec> agg;
  /// Per-scan partials, indexed by the slot stamped on each ScanRequest at
  /// post time (deque: slots must stay stable while later posts happen).
  std::deque<AggScanRecord> agg_scans;
  /// The reply tree: (child, parent) edges in planning discovery order —
  /// the first peer to post work to a node is its parent. Partials merge
  /// bottom-up along these edges at finalize (reverse discovery order
  /// visits children before their parents).
  std::vector<std::pair<NodeId, NodeId>> reply_edges;
  std::set<NodeId> reply_seen;
  /// Record `to`'s discovery via a delivered leg from `from`. Only the
  /// first discovery counts; no-op for element queries (no tree needed —
  /// their replies go straight to the origin).
  void note_reply_parent(NodeId to, NodeId from) {
    if (!agg || to == from) return;
    if (reply_seen.insert(to).second) reply_edges.emplace_back(to, from);
  }

  /// Reply-path wire accounting (QueryStats::bytes_shipped/reply_messages).
  /// Element/count queries accumulate per scan; aggregate queries per
  /// dispatch-tree edge at finalize. Sums of planning-determined terms, so
  /// identical across delivery modes and shard counts.
  std::uint64_t bytes_shipped = 0;
  std::uint64_t reply_messages = 0;
  /// Message-dependency DAG; event 0 is the query start at the origin.
  std::vector<TimingEvent> timing{TimingEvent{}};
  /// Hop-depth of each timing event (= virtual-clock tick of delivery).
  /// Always maintained: kVirtualTime scheduling needs ticks even when the
  /// trace does not.
  std::vector<sim::Time> depth{0};
#if SQUID_OBS_ENABLED
  /// Storage + pointer: non-null only while this query records a trace.
  std::optional<obs::TraceRecorder> recorder;
  obs::TraceRecorder* trace = nullptr;
  /// Storage + pointer: non-null only while an EpochSampler is attached to
  /// the system (set_telemetry). Recording sites append load events here —
  /// purely passive scratch, flushed once at finalize — so with no sampler
  /// (or obs compiled out) every site is a dead null check.
  std::optional<obs::QueryTelemetry> telemetry_store;
  obs::QueryTelemetry* telemetry = nullptr;
#else
  static constexpr obs::TraceRecorder* trace = nullptr;
  static constexpr obs::QueryTelemetry* telemetry = nullptr;
#endif
  std::int32_t root_span = -1;
  /// Safety valve for inconsistent rings (heavy churn): a real query would
  /// time out; we stop dispatching and return what was found.
  std::size_t dispatch_budget = 0;

  // --- Fault accounting (docs/FAULT_MODEL.md) ------------------------------
  bool complete = true; ///< false once any sub-query is abandoned
  std::size_t retries = 0;
  std::size_t failed_clusters = 0;

  /// Outcome of one fault-aware message-leg delivery (attempt_leg).
  struct Leg {
    bool delivered = true;
    std::size_t extra_messages = 0; ///< resends + duplicate copies paid
    std::size_t resends = 0;
    sim::Time penalty = 0; ///< backoff waits + delivery delay, in ticks
  };

  /// Deliver one message leg from -> to through Engine::admit — the uniform
  /// fault interception point — resending with exponential backoff
  /// (config->retry_backoff << attempt) up to config->send_retries times.
  /// No injector attached: immediate clean delivery (the zero-overhead
  /// path — no draws, no spans, no accounting). Verdicts are drawn here,
  /// at planning time, so the injector's RNG stream is consumed in exactly
  /// the seed recursion's order.
  Leg attempt_leg(NodeId from, NodeId to);

  /// Account a *delivered* leg's fault costs. Resends and duplicate copies
  /// are extra query messages; the retry span carries them so derive_stats
  /// stays bit-exact (messages += span.messages, retries += span.batch).
  void pay_leg(const Leg& leg, NodeId to, std::int32_t event,
               std::int32_t span);

  /// Account a leg abandoned for good. The original send was already paid
  /// at the call site together with its route/cache span (or never happened
  /// — an unroutable key — in which case `resends` is 0); the `resends`
  /// further copies paid here were all lost too, and `units` sub-queries go
  /// unanswered. The fault span mirrors it for derive_stats (messages and
  /// retries += span.messages, failed_clusters += span.batch).
  void fail_leg(std::size_t resends, sim::Time penalty, std::size_t units,
                NodeId to, std::int32_t event, std::int32_t span);

  std::int32_t add_event(std::int32_t parent, std::size_t hops) {
    timing.push_back(TimingEvent{parent, static_cast<std::uint32_t>(hops)});
    depth.push_back(depth[static_cast<std::size_t>(parent)] + hops);
    return static_cast<std::int32_t>(timing.size() - 1);
  }
  /// Virtual-clock tick of `event` (hop-depth from the query start).
  sim::Time tick(std::int32_t event) const {
    return depth[static_cast<std::size_t>(event)];
  }

  // --- Completion ----------------------------------------------------------
  std::size_t outstanding = 0; ///< scheduled-but-undelivered messages
  bool reply_posted = false;
  bool finished = false;
  bool publish_metrics = false; ///< query() publishes; count()/baselines not
  sim::Time started_at = 0;  ///< engine clock at launch
  sim::Time completed_at = 0; ///< engine clock when the Reply delivered
  QueryResult result; ///< assembled by finalize (Reply delivery)
  /// Armed while cache_cluster_owners is on; released at finalize so an
  /// async query holds it for its whole in-flight window. (kParallel
  /// releases it at planning end instead: the cache is only touched while
  /// planning, and the next query's planning may start before this query's
  /// scans drain.)
  std::optional<ScopedCacheWriter> cache_guard;
  /// kParallel only: the executor-owned per-query state (scan buffers,
  /// completion atomics, the forked fault injector). Non-owning; null in
  /// the sequential modes.
  ParallelQueryState* par = nullptr;
};

/// The peers' shared inbox code: delivering a message runs its work at the
/// destination node (against that node's slice of system state) and posts
/// follow-ups. One instance serves every node — which peer acts is carried
/// by the message — so this is a runtime, not per-peer mutable state.
class NodeRuntime {
public:
  explicit NodeRuntime(const SquidSystem* sys) noexcept : sys_(sys) {}

  /// Schedule `message` for delivery on exec's engine. kLockstep: delay 0.
  /// kVirtualTime: at started_at + tick(event of the message). Increments
  /// exec->outstanding; delivery decrements it and, at zero, posts the
  /// query's Reply (whose own delivery finalizes).
  void post(const std::shared_ptr<QueryExec>& exec, msg::Message message) const;

  /// Run one delivered message's work at its destination. Takes the shared
  /// exec because resolve/dispatch work posts follow-up messages.
  void deliver(const std::shared_ptr<QueryExec>& exec,
               const msg::Message& message) const;

  /// Post the finalizing Reply once nothing is outstanding. Called after
  /// every delivery and once after launch (a query whose start posts no
  /// message — e.g. an unroutable point query — completes immediately).
  void maybe_complete(const std::shared_ptr<QueryExec>& exec) const;

private:
  const SquidSystem* sys_;
};

/// Future-like handle to an in-flight query_async. Completion is driven by
/// the caller running the engine (run()/step()); there is no blocking wait.
class QueryHandle {
public:
  QueryHandle() = default;

  bool valid() const noexcept { return exec_ != nullptr; }
  /// True once the query's Reply has been delivered on the engine.
  bool ready() const noexcept { return exec_ && exec_->finished; }

  /// The completed result. Requires ready().
  const QueryResult& result() const {
    SQUID_REQUIRE(ready(), "query_async result is not ready; run the engine");
    return exec_->result;
  }
  /// Move the completed result out. Requires ready().
  QueryResult take() {
    SQUID_REQUIRE(ready(), "query_async result is not ready; run the engine");
    return std::move(exec_->result);
  }

  /// Engine clock at launch / at Reply delivery; their difference is the
  /// query's virtual completion time (== stats.critical_path_hops when
  /// every timing event delivered a message).
  sim::Time started_at() const {
    SQUID_REQUIRE(valid(), "empty QueryHandle");
    return exec_->started_at;
  }
  sim::Time completed_at() const {
    SQUID_REQUIRE(ready(), "query_async result is not ready; run the engine");
    return exec_->completed_at;
  }

private:
  friend class SquidSystem;
  explicit QueryHandle(std::shared_ptr<QueryExec> exec)
      : exec_(std::move(exec)) {}

  std::shared_ptr<QueryExec> exec_;
};

} // namespace squid::core
