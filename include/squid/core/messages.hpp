// Typed query-protocol messages (DESIGN.md 4e).
//
// The paper's query resolution is a message protocol (3.3-3.4): refinement
// requests descend the cluster tree, sub-queries are dispatched to cluster
// owners (aggregated per peer, 3.4.2), owners scan their stores, and replies
// flow back to the origin. These structs are those messages, made explicit:
// the runtime (core/runtime.hpp) schedules them on the sim::Engine instead
// of walking a C++ call stack, and serialize.cpp gives each a round-trip
// wire encoding (save_message/load_message).
//
// Every message carries the two bookkeeping ids the engine threads through
// resolution: `event`, the QueryResult::timing DAG node its work executes
// under, and `span`, the parent trace span (-1 with tracing off). They are
// simulator metadata — a production encoding would replace them with a
// query id + causality token — but keeping them on the wire makes a
// serialized run replayable against the same timing DAG.

#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "squid/core/aggregate.hpp"
#include "squid/core/types.hpp"
#include "squid/overlay/id_space.hpp"
#include "squid/sfc/refine.hpp"
#include "squid/sfc/types.hpp"

namespace squid::core::msg {

using overlay::NodeId;

/// Sub-clusters aggregated into one message for a common owner (paper
/// 3.4.2, second optimization). Also the payload shape of a root resolve:
/// the whole refinement tree is "the batch {root}".
struct AggregateBatch {
  std::vector<sfc::ClusterNode> clusters;

  friend bool operator==(const AggregateBatch&,
                         const AggregateBatch&) = default;
};

/// Ask node `at` to expand its assigned refinement sub-tree(s) against the
/// query. The origin sends itself one of these with the tree root; every
/// further descent travels as a ClusterDispatch.
struct ResolveRequest {
  std::uint64_t query = 0; ///< runtime id of the owning QueryExec
  NodeId at = 0;
  AggregateBatch clusters;
  std::int32_t event = 0;
  std::int32_t span = -1;

  friend bool operator==(const ResolveRequest&,
                         const ResolveRequest&) = default;
};

/// Ship a head cluster plus its aggregated siblings from the dispatching
/// peer to the owner learned from routing (or the owner cache). Delivery
/// resumes refinement at `to` with {head} + batch.
struct ClusterDispatch {
  std::uint64_t query = 0;
  NodeId from = 0;
  NodeId to = 0;
  sfc::ClusterNode head;
  AggregateBatch batch; ///< aggregated siblings; empty when unaggregated
  std::int32_t event = 0;
  std::int32_t span = -1;

  friend bool operator==(const ClusterDispatch&,
                         const ClusterDispatch&) = default;
};

/// Ask node `at` to sweep its key store over `segment`. `covered` skips the
/// per-key rectangle filter (the whole segment is known to match).
///
/// For aggregate queries `agg.kind != kNone` and the scan site folds its
/// matching elements into an AggregatePartial instead of shipping them;
/// `slot` is the query-wide index of this scan (assigned in post order, so
/// every delivery mode files the partial into the same record).
struct ScanRequest {
  std::uint64_t query = 0;
  NodeId at = 0;
  sfc::Segment segment;
  bool covered = false;
  AggregateSpec agg;
  std::uint32_t slot = 0;
  std::int32_t event = 0;
  std::int32_t span = -1;
  /// Non-zero: answer from the hot-cluster replica entry with this id
  /// (docs/LOAD_BALANCING.md) — `at` is a replica peer and the sweep runs
  /// over the entry's snapshot instead of the live store. A scan whose entry
  /// was invalidated or dropped in flight falls back to the live store, so
  /// it can never serve stale data.
  std::uint64_t replica = 0;

  friend bool operator==(const ScanRequest&, const ScanRequest&) = default;
};

/// Query completion flowing back to the origin: the aggregate answer (or
/// the count, for cardinality probes). In the runtime this is the one
/// message whose delivery finalizes the QueryExec; result data accumulates
/// at the origin as scans complete, so the payload here is the summary.
struct Reply {
  std::uint64_t query = 0;
  NodeId from = 0;
  NodeId to = 0;
  bool complete = true;
  std::uint64_t count = 0;
  std::vector<DataElement> elements;
  /// Aggregation pushdown (DESIGN.md 4g): the merged partial this subtree
  /// contributes. Null for element-shipping replies. Shared-pointer payload
  /// keeps the Message variant small; replies compare by pointee.
  std::shared_ptr<const AggregatePartial> aggregate;

  friend bool operator==(const Reply& a, const Reply& b) {
    const bool agg_equal =
        a.aggregate == b.aggregate ||
        (a.aggregate && b.aggregate && *a.aggregate == *b.aggregate);
    return agg_equal && a.query == b.query && a.from == b.from &&
           a.to == b.to && a.complete == b.complete && a.count == b.count &&
           a.elements == b.elements;
  }
};

/// Routed single-element index update (DESIGN.md 4j): publish `element` at
/// the owner of its key. `seq` is the submit index within one
/// apply_updates run — the commit order every delivery mode replays, and
/// the per-op fault-plan fork index under faults.
struct PublishRequest {
  std::uint64_t seq = 0;
  NodeId origin = 0; ///< peer that issued the update
  NodeId to = 0;     ///< owner of the element's key (route destination)
  DataElement element;
  std::int32_t event = 0;
  std::int32_t span = -1;

  friend bool operator==(const PublishRequest&,
                         const PublishRequest&) = default;
};

/// Routed single-element retract: the update-plane twin of PublishRequest.
/// Delivery unpublishes `element` at the owner (matched by name AND keys)
/// and synchronously invalidates any hot-cluster replica covering its key.
struct RetractRequest {
  std::uint64_t seq = 0;
  NodeId origin = 0;
  NodeId to = 0;
  DataElement element;
  std::int32_t event = 0;
  std::int32_t span = -1;

  friend bool operator==(const RetractRequest&,
                         const RetractRequest&) = default;
};

using Message = std::variant<ResolveRequest, ClusterDispatch, ScanRequest,
                             Reply, PublishRequest, RetractRequest>;

/// Peer the message is addressed to (where its work executes).
inline NodeId destination_of(const Message& m) {
  struct V {
    NodeId operator()(const ResolveRequest& r) const { return r.at; }
    NodeId operator()(const ClusterDispatch& d) const { return d.to; }
    NodeId operator()(const ScanRequest& s) const { return s.at; }
    NodeId operator()(const Reply& r) const { return r.to; }
    NodeId operator()(const PublishRequest& p) const { return p.to; }
    NodeId operator()(const RetractRequest& r) const { return r.to; }
  };
  return std::visit(V{}, m);
}

/// Stable wire/type tag ("resolve", "dispatch", "scan", "reply",
/// "publish", "retract").
inline const char* type_name(const Message& m) noexcept {
  struct V {
    const char* operator()(const ResolveRequest&) const { return "resolve"; }
    const char* operator()(const ClusterDispatch&) const { return "dispatch"; }
    const char* operator()(const ScanRequest&) const { return "scan"; }
    const char* operator()(const Reply&) const { return "reply"; }
    const char* operator()(const PublishRequest&) const { return "publish"; }
    const char* operator()(const RetractRequest&) const { return "retract"; }
  };
  return std::visit(V{}, m);
}

} // namespace squid::core::msg
