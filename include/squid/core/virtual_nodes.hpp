// Virtual-node load balancing (paper 3.5, second runtime algorithm).
//
// Each physical peer hosts several virtual nodes (ring identifiers); the
// peer's load is the sum over its virtual nodes. When a virtual node's load
// crosses a threshold it splits in two; when a physical peer is overloaded
// it migrates virtual nodes to less-loaded peers (its neighbors or fingers
// in the paper — here a small random sample, which models the same limited
// view). Migration moves only the hosting assignment, so it is much cheaper
// than the identifier moves of the boundary-exchange algorithm.

#pragma once

#include <map>
#include <vector>

#include "squid/core/system.hpp"

namespace squid::core {

class VirtualNodeManager {
public:
  /// Takes over topology management of `sys` (which must have an empty
  /// network): creates `physical_peers * virtuals_per_peer` virtual nodes
  /// with random identifiers and deals them out round-robin.
  VirtualNodeManager(SquidSystem& sys, std::size_t physical_peers,
                     unsigned virtuals_per_peer, Rng& rng);

  std::size_t physical_count() const noexcept { return physical_count_; }
  std::size_t virtual_count() const noexcept { return host_of_.size(); }

  /// Sum of virtual-node loads per physical peer.
  std::vector<std::size_t> physical_loads() const;

  /// One balancing round: split virtual nodes whose load exceeds
  /// `split_threshold` times the average virtual load, then migrate virtual
  /// nodes away from physical peers whose load exceeds `migrate_threshold`
  /// times the average physical load. Returns splits + migrations done.
  std::size_t balance_round(double split_threshold, double migrate_threshold,
                            Rng& rng);

  std::size_t splits() const noexcept { return splits_; }
  std::size_t migrations() const noexcept { return migrations_; }

private:
  std::size_t load_of_virtual(SquidSystem::NodeId id) const;

  SquidSystem& sys_;
  std::size_t physical_count_;
  std::map<SquidSystem::NodeId, std::size_t> host_of_; ///< virtual -> peer
  std::size_t splits_ = 0;
  std::size_t migrations_ = 0;
};

} // namespace squid::core
