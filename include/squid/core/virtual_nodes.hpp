// Virtual-node load balancing (paper 3.5, second runtime algorithm).
//
// Each physical peer hosts several virtual nodes (ring identifiers); the
// peer's load is the sum over its virtual nodes. When a virtual node's load
// crosses a threshold it splits in two; when a physical peer is overloaded
// it migrates virtual nodes to less-loaded peers (its neighbors or fingers
// in the paper — here a small random sample, which models the same limited
// view). Migration moves only the hosting assignment, so it is much cheaper
// than the identifier moves of the boundary-exchange algorithm.
//
// The split/migrate actions are exposed as event-driven primitives
// (split_virtual, migrate_heaviest): the periodic balance_round sweep is
// now one caller among two — the reaction controller (core/reaction.hpp)
// invokes the same primitives from `hotspot.onset` events, so a flash crowd
// is answered when the detector fires instead of whenever the next round
// happens to run (docs/LOAD_BALANCING.md).

#pragma once

#include <map>
#include <optional>
#include <vector>

#include "squid/core/system.hpp"

namespace squid::core {

class VirtualNodeManager {
public:
  /// Takes over topology management of `sys` (which must have an empty
  /// network): creates `physical_peers * virtuals_per_peer` virtual nodes
  /// with random identifiers and deals them out round-robin.
  VirtualNodeManager(SquidSystem& sys, std::size_t physical_peers,
                     unsigned virtuals_per_peer, Rng& rng);

  std::size_t physical_count() const noexcept { return physical_count_; }
  std::size_t virtual_count() const noexcept { return host_of_.size(); }

  /// Sum of virtual-node loads per physical peer.
  std::vector<std::size_t> physical_loads() const;

  // --- Event-driven primitives (docs/LOAD_BALANCING.md) --------------------

  /// Split virtual node `hot` at its median key: the new identifier takes
  /// the first half of `hot`'s keys as a fresh virtual node, hosted by the
  /// least-loaded of `probes` sampled peers (a cold peer under a crowd).
  /// This is balance_round's phase-1 step and the reaction controller's
  /// `hotspot.onset` handler. Returns the new virtual node's id; nullopt
  /// when `hot` has too few keys or its median id is unusable.
  std::optional<SquidSystem::NodeId> split_virtual(SquidSystem::NodeId hot,
                                                   unsigned probes, Rng& rng);

  /// Move the heaviest virtual node hosted by `peer` to the least-loaded
  /// sampled peer, when that strictly lowers the gap. Only the hosting
  /// assignment changes — no keys or identifiers move. balance_round's
  /// phase-2 step. Returns true when a migration happened.
  bool migrate_heaviest(std::size_t peer, unsigned probes, Rng& rng);

  /// Peer hosting virtual node `id` (it must be one of ours).
  std::size_t host_of(SquidSystem::NodeId id) const;

  /// The full virtual → peer hosting map (split-determinism tests compare
  /// it across runs and shard counts).
  const std::map<SquidSystem::NodeId, std::size_t>& hosts() const noexcept {
    return host_of_;
  }

  /// One balancing round over the primitives above: split virtual nodes
  /// whose load exceeds `split_threshold` times the average virtual load,
  /// then migrate virtual nodes away from physical peers whose load exceeds
  /// `migrate_threshold` times the average physical load. Returns splits +
  /// migrations done.
  std::size_t balance_round(double split_threshold, double migrate_threshold,
                            Rng& rng);

  std::size_t splits() const noexcept { return splits_; }
  std::size_t migrations() const noexcept { return migrations_; }

private:
  std::size_t load_of_virtual(SquidSystem::NodeId id) const;
  /// The least-loaded of `probes` uniform draws (the paper's constant-size
  /// "neighbors or fingers" view; never a global argmin).
  std::size_t sample_cold_peer(const std::vector<std::size_t>& loads,
                               unsigned probes, Rng& rng) const;

  SquidSystem& sys_;
  std::size_t physical_count_;
  std::map<SquidSystem::NodeId, std::size_t> host_of_; ///< virtual -> peer
  std::size_t splits_ = 0;
  std::size_t migrations_ = 0;
};

} // namespace squid::core
