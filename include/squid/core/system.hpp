// SquidSystem: the paper's P2P information-discovery system, end to end
// (paper 3): SFC-based locality-preserving index over a Chord ring, with a
// distributed query engine (recursive refinement + pruning + sub-cluster
// aggregation) and load balancing at join time and at runtime.
//
// This is a simulator in the same sense as the paper's evaluation vehicle:
// all peers live in one address space, but queries follow the distributed
// algorithm faithfully — every piece of state a step consumes is local to
// the peer performing it, every cross-peer interaction is dispatched through
// overlay routing and counted.

#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "squid/core/runtime.hpp"
#include "squid/core/types.hpp"
#include "squid/keyword/space.hpp"
#include "squid/overlay/chord.hpp"
#include "squid/sfc/curve.hpp"
#include "squid/sfc/refine.hpp"
#include "squid/util/rng.hpp"
#include "squid/util/store.hpp"

namespace squid::sim {
class FaultInjector; // sim/fault.hpp
}

namespace squid::core {

struct ScanBuffer;        // core/parallel.hpp
struct ParallelQuerySpec; // core/parallel.hpp
struct ParallelOptions;   // core/parallel.hpp
struct ParallelRun;       // core/parallel.hpp

class SquidSystem {
public:
  using NodeId = overlay::NodeId;

  SquidSystem(keyword::KeywordSpace space, SquidConfig config = {});

  const keyword::KeywordSpace& space() const noexcept { return space_; }
  const sfc::Curve& curve() const noexcept { return *curve_; }
  const overlay::ChordRing& ring() const noexcept { return ring_; }
  const SquidConfig& config() const noexcept { return config_; }

  // --- Topology -----------------------------------------------------------

  /// Bootstrap a network of `count` peers with random identifiers and exact
  /// routing state (experiment setup).
  void build_network(std::size_t count, Rng& rng);

  /// One peer joins. With config().join_samples > 1 this is the paper's
  /// load-balancing join: the newcomer probes several candidate identifiers
  /// and picks the one absorbing the most keys (3.5). Returns the chosen id.
  NodeId join_node(Rng& rng);

  void leave_node(NodeId id);
  void fail_node(NodeId id);

  /// Insert a peer at a chosen identifier with exact wiring. Used by the
  /// virtual-node load balancer, whose split points are computed ids.
  void add_node_at(NodeId id) { ring_.add_node_exact(id); }

  /// Run `rounds` stabilization sweeps over every live peer (repairs
  /// successors, predecessors, and one random finger each — the honest
  /// incremental protocol of paper 3.2).
  void stabilize(Rng& rng, unsigned rounds = 1) {
    ring_.stabilize_all(rng, rounds);
  }

  /// Oracle repair: recompute every routing table exactly. Experiment
  /// setup only — models the state periodic maintenance converges to,
  /// without paying for the convergence inside a build phase.
  void repair_routing() { ring_.repair_all(); }

  // --- Data ---------------------------------------------------------------

  /// Index a data element (instant placement; experiment setup).
  ///
  /// Update contract (DESIGN.md 4j): element identity is (key, name) —
  /// publishing an element whose name already exists under the same key
  /// REPLACES the stored element in place (last write wins, element_count()
  /// unchanged, arrival position preserved). publish_batch applies the same
  /// rule, with later batch positions winning. Single-key cost is
  /// O(log K + |delta|) amortized on the tiered store, not O(K).
  void publish(const DataElement& element);

  /// Index a whole corpus in one sort-merge pass: equivalent to publishing
  /// the elements one by one, in order (same last-write-wins contract), but
  /// O((K+E)·log E) instead of one store insert per new key. This is how
  /// fixtures load their 2·10^4-10^5-key corpora.
  void publish_batch(const std::vector<DataElement>& elements);

  /// Protocol-faithful publish: routes the element's key from `origin` to
  /// its owner; the result carries the overlay path.
  overlay::RouteResult publish_routed(const DataElement& element,
                                      NodeId origin);

  /// Remove one published element (matched by name AND keys). Returns true
  /// when something was removed; the key vanishes with its last element.
  /// O(log K + |delta|) amortized: the slot is tombstoned, not shifted out.
  bool unpublish(const DataElement& element);

  /// Protocol-faithful retract: routes the element's key from `origin` to
  /// its owner, then unpublishes there. `removed` (when non-null) reports
  /// whether the owner actually held the element.
  overlay::RouteResult retract_routed(const DataElement& element,
                                      NodeId origin, bool* removed = nullptr);

  std::size_t key_count() const noexcept { return store_.size(); }
  std::size_t element_count() const noexcept { return element_count_; }

  /// Number of distinct keys owned by each live node, in ring order —
  /// the load metric of Figs 18-19.
  std::vector<std::pair<NodeId, std::size_t>> node_loads() const;

  /// Keys owned by `id` given current ring membership: indices in
  /// (predecessor(id), id], wrapping.
  std::size_t load_of(NodeId id) const;

  /// Identifier that splits node `s`'s keys in half (the index of its median
  /// stored key), when that is a usable fresh id.
  std::optional<NodeId> median_split_id(NodeId s) const;

  /// Ground truth: the node currently owning `index`.
  NodeId owner_of(u128 index) const { return ring_.successor_of(index); }

  /// All stored key indices in ascending order (Fig 18's raw data; also the
  /// "a priori knowledge" granted to the Chord-lookup baseline). Since the
  /// tiered store (DESIGN.md 4j) this is a materialized export — O(K) per
  /// call — not a reference into the store; callers treat it as a snapshot.
  std::vector<u128> key_indices() const { return store_.materialize_keys(); }

  /// Visit every live key in ascending index order (tombstones skipped; a
  /// three-way lockstep sweep over the store's tiers).
  void for_each_key(
      const std::function<void(u128 index, const sfc::Point& point,
                               const std::vector<DataElement>& elements)>& fn)
      const {
    store_.for_each([&](u128 index, const StoredKey& key) {
      fn(index, key.point, key.elements);
    });
  }

  /// Tiered-store introspection (DESIGN.md 4j): pending delta entries,
  /// tombstoned base slots, and the merge counters — benches and the store
  /// differential suite read these; queries never do.
  std::size_t store_delta_size() const noexcept { return store_.delta_size(); }
  std::size_t store_tombstones() const noexcept { return store_.tombstones(); }
  const util::TieredStoreStats& store_stats() const noexcept {
    return store_.stats();
  }

  // --- Queries ------------------------------------------------------------

  /// Resolve a flexible query starting at `origin`, using the distributed
  /// refinement engine (3.4). Returns all matching elements plus the cost
  /// accounting. The system guarantees completeness: every stored element
  /// matching the query is returned.
  QueryResult query(const keyword::Query& query, NodeId origin) const;

  /// Convenience: parse-and-query from a random origin.
  QueryResult query(const std::string& text, Rng& rng) const;

  /// Cardinality probe: how many elements match, without shipping any of
  /// them back (data nodes reply with counts). Same completeness guarantee
  /// and resolution cost as query().
  std::size_t count(const keyword::Query& query, NodeId origin) const;

  // --- Aggregation pushdown (core/aggregate.hpp, DESIGN.md 4g) --------------

  /// Resolve `query` but compute `spec` inside the overlay: scan sites fold
  /// their matching elements into partials, partials merge up the
  /// cluster-dispatch tree, and the origin finalizes. Planning (routing,
  /// refinement, fault draws, timing DAG) is identical to query(); only the
  /// reply path changes, which is where the message/byte savings come from
  /// (QueryStats::bytes_shipped/reply_messages account both paths through
  /// the real serializer). The answer rides QueryResult::aggregate and is
  /// bit-identical across delivery modes, shard counts, and merge orders —
  /// and bit-equal to folding `spec` at the origin over query()'s elements.
  /// Throws std::invalid_argument for invalid specs (see validate_aggregate).
  QueryResult query_aggregate(const keyword::Query& query,
                              const AggregateSpec& spec, NodeId origin) const;

  /// query_async twin of query_aggregate: same overlay pushdown, scheduled
  /// on the caller's shared virtual clock.
  QueryHandle query_aggregate_async(const keyword::Query& query,
                                    const AggregateSpec& spec, NodeId origin,
                                    sim::Engine& engine) const;

  /// Spec sanity, shared by every aggregate entry point: a real kind,
  /// dim < space().dims(), numeric dimension for the value-based kinds
  /// (kSum/kMin/kMax/kTopK), k >= 1 for kTopK. Throws std::invalid_argument.
  void validate_aggregate(const AggregateSpec& spec) const;

  /// Convenience wrappers over query_aggregate.
  std::uint64_t query_count(const keyword::Query& query, NodeId origin) const;
  double query_sum(const keyword::Query& query, std::uint32_t dim,
                   NodeId origin) const;
  /// (min, max) over the dimension; nullopt when nothing matched.
  std::pair<std::optional<double>, std::optional<double>> query_min_max(
      const keyword::Query& query, std::uint32_t dim, NodeId origin) const;
  std::vector<GroupCount> query_group_by(const keyword::Query& query,
                                         std::uint32_t dim,
                                         NodeId origin) const;
  std::vector<TopEntry> query_top_k(const keyword::Query& query,
                                    std::uint32_t dim, std::uint32_t k,
                                    NodeId origin, bool largest = true) const;

  /// Launch a query on the caller's engine without draining it: resolution
  /// proceeds as typed messages (core/messages.hpp) scheduled at their
  /// timing-DAG ticks, so several queries can be in flight on ONE virtual
  /// clock and their completion times reflect the honest interleaving. The
  /// handle becomes ready() once the caller runs the engine past the
  /// query's Reply. The engine's attached fault injector (if any) judges
  /// every leg; the system and engine must outlive the handle's run.
  /// Caveat: with cache_cluster_owners on, a second in-flight query throws
  /// (the owner cache is single-writer; see ScopedCacheWriter).
  QueryHandle query_async(const keyword::Query& query, NodeId origin,
                          sim::Engine& engine) const;

  /// Resolve a batch of queries on a sharded multi-core runtime
  /// (core/parallel.hpp, DESIGN.md 4f): node space partitioned across
  /// `opts.shards` worker threads, each with a private engine; planning
  /// replays the lockstep order on each query's home shard while store
  /// scans hand off to the shard owning the scanned node. Every per-query
  /// result — element order, QueryStats, trace span multiset, completion
  /// flag — is bit-equal to query() on this system, regardless of thread
  /// interleaving (tests/core/parallel_differential_test.cpp). With
  /// opts.faults set, query k runs under an injector forked from the plan
  /// by submit index; the per-query tallies come back in ParallelRun so
  /// harnesses can replay the same forks sequentially and compare.
  ParallelRun query_parallel(const std::vector<ParallelQuerySpec>& specs,
                             const ParallelOptions& opts) const;

  // --- Reference oracle (tests/core/async_differential_test.cpp) -----------
  // The seed synchronous resolver, frozen verbatim in
  // query_engine_reference.cpp. query()/count()/query_centralized() above
  // run the message-driven runtime and are locked bit-identical to these
  // (results, QueryStats, traces, timing DAG, fault RNG stream). Test-only:
  // no registry metrics are published.
  QueryResult query_reference(const keyword::Query& query,
                              NodeId origin) const;
  std::size_t count_reference(const keyword::Query& query,
                              NodeId origin) const;
  QueryResult query_centralized_reference(const keyword::Query& query,
                                          NodeId origin,
                                          std::size_t max_segments = 4096) const;

  /// Naive centralized resolution (the strawman of paper 3.4.1): the origin
  /// materializes the cluster decomposition itself (progressively deepened
  /// until `max_segments`) and sends one message per cluster. Complete, but
  /// its message count scales with the cluster count instead of with the
  /// data — the comparison bench quantifies the gap.
  QueryResult query_centralized(const keyword::Query& query, NodeId origin,
                                std::size_t max_segments = 4096) const;

  // --- Load balancing -----------------------------------------------------

  /// One sweep of the paper's runtime local load balancing: every node
  /// compares load with its predecessor; when the imbalance exceeds
  /// `threshold` (ratio), the boundary between them moves so both end up
  /// near the average. Returns the number of boundary adjustments.
  std::size_t runtime_balance_sweep(double threshold = 1.5);

  /// Total number of node-identifier moves performed by runtime balancing
  /// since construction (each corresponds to an O(log N) rewiring in a real
  /// deployment).
  std::size_t balance_moves() const noexcept { return balance_moves_; }

  // --- Cluster-owner caching (config().cache_cluster_owners) ---------------

  const CacheStats& cache_stats() const noexcept { return cache_stats_; }
  void clear_caches() {
    owner_cache_.clear();
    cache_stats_ = {};
  }

  // --- Hot-cluster replica cache (docs/LOAD_BALANCING.md) -------------------
  // The reaction controller's serving tier: a replicated, versioned snapshot
  // of one cluster's stored keys, keyed by cluster id (level, prefix).
  // dispatch_clusters consults it before routing — a dispatch whose cluster
  // falls inside a *valid* entry is sent one hop to one of the entry's
  // replica peers, which answers from the snapshot. publish / publish_batch /
  // unpublish of any key inside an entry's segment invalidates the entry
  // (version bump, valid=false): an invalid entry stops serving (dispatches
  // fall back to routing, so a stale read is structurally impossible) until
  // refresh_replica() re-snapshots it. With no entries installed the consult
  // is a single empty() branch, which is the reaction layer's half of the
  // bit-transparency lock (tests/core/reaction_test.cpp).

  struct ReplicaCacheStats {
    std::uint64_t serves = 0;        ///< dispatches answered from a replica
    std::uint64_t stale_skips = 0;   ///< consults finding only invalid entries
    std::uint64_t invalidations = 0; ///< valid → invalid transitions
    std::uint64_t refreshes = 0;     ///< re-snapshots (refresh_replica)
  };

  /// Install (or replace) the replica set serving reads for the cluster
  /// (level, prefix): snapshots the cluster's stored keys now and serves
  /// later dispatches of that cluster — or any descendant — from `replicas`.
  /// Returns the entry id (stable until drop_replica). Replicas must be live
  /// peers; the set must be non-empty.
  std::uint64_t install_replica(unsigned level, u128 prefix,
                                std::vector<NodeId> replicas);
  /// Re-snapshot an (invalidated) entry from the live store and mark it
  /// valid again, bumping its version. Returns false for unknown ids.
  bool refresh_replica(std::uint64_t id);
  /// Remove an entry; its cluster is served by routing again.
  bool drop_replica(std::uint64_t id);
  std::size_t replica_entries() const noexcept { return replica_cache_.size(); }
  /// False for unknown or invalidated entries.
  bool replica_valid(std::uint64_t id) const;
  /// Monotone per-entry version: bumped on every invalidation and refresh;
  /// 0 for unknown ids.
  std::uint64_t replica_version(std::uint64_t id) const;
  /// Load the entry has absorbed so far, in owner scan_hits units (keys its
  /// replica scans matched; 0 for unknown ids) — the reaction controller's
  /// per-entry demand signal.
  std::uint64_t replica_serves(std::uint64_t id) const;
  ReplicaCacheStats replica_stats() const;

  // --- Observability (obs/trace.hpp) ---------------------------------------

  /// Toggle span-level query tracing at runtime. Seeded from
  /// SquidConfig::trace_queries. While on, every query() attaches a trace
  /// to QueryResult::trace; a no-op (and always false) when the
  /// observability layer is compiled out (SQUID_OBS_ENABLED=0).
  void set_tracing(bool on) noexcept;
  bool tracing() const noexcept { return trace_enabled_; }

  /// Attach (or detach, with nullptr) an epoch sampler (obs/telemetry.hpp):
  /// every query then accumulates per-node load events in private scratch
  /// and flushes them into the sampler at finalize; publish sites record
  /// directly at the sampler's current virtual time. Recording is purely
  /// passive — results, QueryStats, traces, and fault RNG streams are
  /// bit-identical with or without a sampler (the telemetry differential
  /// lock). Not owned; must outlive its use. Stamps the sampler's id_bits
  /// from the curve so heatmap positions normalize. No-op with the
  /// observability layer compiled out.
  void set_telemetry(obs::EpochSampler* sampler) noexcept;
  obs::EpochSampler* telemetry() const noexcept { return telemetry_; }

  // --- Fault injection (sim/fault.hpp, docs/FAULT_MODEL.md) -----------------

  /// Attach (or detach, with nullptr) a fault injector: every query message
  /// leg then consults it and retries lost legs with exponential backoff
  /// (config().send_retries / retry_backoff). Not owned; must outlive its
  /// use. An injector with an empty plan leaves every query bit-identical
  /// to running without one (the zero-fault differential lock).
  void set_fault_injector(sim::FaultInjector* injector) noexcept {
    fault_ = injector;
  }
  sim::FaultInjector* fault_injector() const noexcept { return fault_; }

  /// Periodic maintenance: drain the injector's queued timeout reports into
  /// ChordRing::note_timeout (successor-list fallback + finger
  /// invalidation). Queries run const and only *accumulate* suspicion; this
  /// is where it becomes repair. Returns reports applied.
  std::size_t process_timeouts();

private:
  struct StoredKey {
    sfc::Point point; ///< cached coordinates (avoids inverse mapping)
    std::vector<DataElement> elements;
  };

  struct RefQueryContext; // defined in query_engine_reference.cpp

  /// Delivers query messages into the private handlers below.
  friend class NodeRuntime;
  /// Runs kParallel queries through start_exec/begin_resolution/
  /// perform_scan_parallel/finalize_query (core/parallel.cpp).
  friend class ParallelExecutor;

  u128 index_of_element(const DataElement& element) const;

  /// Keys a newcomer with identifier `candidate` would absorb.
  std::size_t absorbed_load(NodeId candidate) const;
  /// Count of stored keys in the wrapped ring interval (from, to].
  std::size_t keys_in_range(NodeId from, NodeId to) const;

  // --- Message-driven query runtime (core/runtime.hpp, DESIGN.md 4e) -------
  // Handlers run at message delivery. All order-sensitive "planning" work
  // (routing, fault verdicts, budget, cache consults, timing events, every
  // non-scan span) happens inside them in the seed recursion's order — the
  // lockstep bit-identicality lock rests on that. The methods thread two
  // ids alongside the work: `event`, the timing-DAG event the step executes
  // under, and `span`, the parent trace span (-1 / ignored when tracing is
  // off).
  std::shared_ptr<QueryExec> start_exec(sim::Engine& engine, DeliveryMode mode,
                                        const keyword::Query& query,
                                        NodeId origin, bool count_only,
                                        bool want_trace, bool publish,
                                        bool arm_guard,
                                        const AggregateSpec* aggregate =
                                            nullptr) const;
  /// Post the root work: the point-query fast path (paper 3.4.1) or the
  /// origin's ResolveRequest for the refinement-tree root.
  void begin_resolution(const std::shared_ptr<QueryExec>& exec,
                        bool allow_point) const;
  void handle_resolve(const std::shared_ptr<QueryExec>& exec, NodeId at,
                      std::vector<sfc::ClusterNode> clusters,
                      std::int32_t event, std::int32_t span) const;
  /// Plan the owner-chain walk over `segment` (routing + neighbor forwards,
  /// eagerly), posting one ScanRequest per owner visited.
  void plan_chain(const std::shared_ptr<QueryExec>& exec, NodeId at,
                  sfc::Segment segment, bool covered, std::int32_t event,
                  std::int32_t span) const;
  /// Clusters arrive paired with their precomputed segment-lo key, sorted
  /// ascending, so batching never re-derives segments. Posts one
  /// ClusterDispatch per owner batch.
  void dispatch_clusters(
      const std::shared_ptr<QueryExec>& exec, NodeId from,
      const std::vector<std::pair<u128, sfc::ClusterNode>>& clusters,
      std::int32_t event, std::int32_t span) const;
  /// ScanRequest delivery: sweep this peer's slice of the flat store. For
  /// aggregate requests (scan.agg.kind != kNone) the matches fold into the
  /// scan's AggScanRecord slot instead of exec.results.
  void perform_scan(QueryExec& exec, const msg::ScanRequest& scan) const;
  /// The store sweep itself, shared by perform_scan and the parallel path:
  /// walk stored keys in [segment.lo, segment.hi], filter by `rect` unless
  /// `covered`, and accumulate into the caller's sinks. With `agg` non-null
  /// matching elements fold into the record (elements/count untouched).
  void scan_segment(const sfc::Rect& rect, sfc::Segment segment, bool covered,
                    bool count_only, std::vector<DataElement>& elements,
                    std::size_t& count, std::uint64_t& keys_scanned,
                    std::uint64_t& keys_matched, std::uint64_t& matches,
                    AggScanRecord* agg = nullptr) const;
  /// The sweep over an explicit (index, payload) array pair: replica scans
  /// (ScanRequest::replica != 0) run it over the entry's flat snapshot.
  /// Same per-key filter/fold body as the live-store walk in scan_segment.
  void scan_arrays(const std::vector<u128>& index,
                   const std::vector<StoredKey>& data, const sfc::Rect& rect,
                   sfc::Segment segment, bool covered, bool count_only,
                   std::vector<DataElement>& elements, std::size_t& count,
                   std::uint64_t& keys_scanned, std::uint64_t& keys_matched,
                   std::uint64_t& matches, AggScanRecord* agg) const;
  /// Dispatch a scan to its arrays: replica == 0 sweeps the live store
  /// (scan_segment); otherwise the entry's snapshot when it is still present
  /// and valid, else the live store (an entry invalidated or dropped while
  /// the scan was in flight must not serve its stale snapshot).
  void scan_slice(std::uint64_t replica, const sfc::Rect& rect,
                  sfc::Segment segment, bool covered, bool count_only,
                  std::vector<DataElement>& elements, std::size_t& count,
                  std::uint64_t& keys_scanned, std::uint64_t& keys_matched,
                  std::uint64_t& matches, AggScanRecord* agg) const;
  /// kParallel twin of perform_scan: identical sweep, but every result and
  /// span field lands in the scan's private ScanBuffer (no QueryExec
  /// mutation — executor shards run this concurrently with home-shard
  /// planning). The home shard merges buffers at finalize.
  void perform_scan_parallel(const QueryExec& exec,
                             const msg::ScanRequest& scan,
                             ScanBuffer& out) const;
  /// Reply delivery: assemble QueryResult, close the trace, publish
  /// metrics, release the cache guard, stamp completed_at.
  void finalize_query(QueryExec& exec) const;
  /// Aggregate finalize half: fold per-scan partials per node, merge them
  /// bottom-up along exec.reply_edges (one partial-carrying Reply frame per
  /// edge, accounted through the real serializer), surface the origin's
  /// merged partial as QueryResult::aggregate.
  void finalize_aggregate(QueryExec& exec) const;

  // --- Frozen seed resolver (query_engine_reference.cpp, test oracle) ------
  void ref_resolve_at_node(RefQueryContext& ctx, NodeId at,
                           std::vector<sfc::ClusterNode> clusters,
                           std::int32_t event, std::int32_t span) const;
  void ref_collect_segment(RefQueryContext& ctx, NodeId at,
                           sfc::Segment segment, bool covered,
                           std::int32_t event, std::int32_t span) const;
  void ref_collect_covered(RefQueryContext& ctx, NodeId at,
                           sfc::Segment segment, std::int32_t event,
                           std::int32_t span) const;
  void ref_scan_local(RefQueryContext& ctx, NodeId at, sfc::Segment segment,
                      bool covered, std::int32_t event,
                      std::int32_t span) const;
  void ref_dispatch_remote(
      RefQueryContext& ctx, NodeId from,
      const std::vector<std::pair<u128, sfc::ClusterNode>>& clusters,
      std::int32_t event, std::int32_t span) const;

  /// Rank of the first stored key strictly greater than `v` (== the number
  /// of keys <= v): the primitive behind every load probe and split point.
  std::size_t key_rank_after(u128 v) const;

  // --- Hot-cluster replica cache internals ----------------------------------
  struct ReplicaEntry {
    std::uint64_t id = 0;              ///< cache key, stamped at install
    unsigned level = 0;
    u128 prefix = 0;
    sfc::Segment segment{};            ///< index range the cluster covers
    std::vector<NodeId> replicas;      ///< peers serving the snapshot
    std::uint64_t version = 1;         ///< bumped on invalidate and refresh
    bool valid = true;                 ///< false after a covered republish
    std::vector<u128> snapshot_index;  ///< snapshot: sorted keys in segment
    std::vector<StoredKey> snapshot_data;
    /// Load this entry absorbed, in the owner's units: keys its replica
    /// scans matched (exactly the scan_hits the owner would otherwise have
    /// recorded) — the controller's demand signal for draining entries
    /// after a clear. Atomic behind unique_ptr: bumped on the const query
    /// path, possibly from several shard threads.
    std::unique_ptr<std::atomic<std::uint64_t>> serves =
        std::make_unique<std::atomic<std::uint64_t>>(0);
  };
  /// The deepest valid entry whose cluster contains `cluster` (an entry at
  /// level L serves every descendant dispatch at level >= L with matching
  /// prefix). Counts a stale skip and returns null when only invalidated
  /// entries match.
  const ReplicaEntry* replica_serving(const sfc::ClusterNode& cluster) const;
  /// Scan-side hook: credit `matched` keys of served load to entry `id`
  /// (no-op for id 0 / dropped entries). Called from both scan paths.
  void note_replica_serve(std::uint64_t id, std::uint64_t matched) const;
  /// Copy the live store's keys in `entry.segment` into its snapshot.
  void snapshot_replica(ReplicaEntry& entry);
  /// Publish-side hook: invalidate every valid entry whose segment covers
  /// `index`. O(entries) per publish, entries are O(active hotspots).
  void invalidate_replicas(u128 index);
  /// Batch twin: `touched` is the index-sorted key list of one
  /// publish_batch; each entry is judged with one binary search.
  void invalidate_replicas_batch(const std::vector<u128>& touched);

  keyword::KeywordSpace space_;
  SquidConfig config_;
  std::unique_ptr<sfc::Curve> curve_;
  sfc::ClusterRefiner refiner_;
  overlay::ChordRing ring_;
  /// The key store, tiered (DESIGN.md 4j): the flat sorted base arrays of
  /// 4b plus a small sorted delta buffer and tombstone list, folded back at
  /// a deterministic threshold (config_.store_delta_cap; 0 = sqrt policy).
  /// Scans walk the tiers in lockstep, load probes are tier-corrected rank
  /// queries — reads are bit-identical to a from-scratch flat build.
  util::TieredStore<StoredKey> store_;
  std::size_t element_count_ = 0;
  std::size_t balance_moves_ = 0;
  bool trace_enabled_ = false; ///< runtime half of the tracing switch
  /// Fault injector consulted by every query message leg; null = no faults
  /// (the default, and the zero-overhead path).
  sim::FaultInjector* fault_ = nullptr;
  /// Epoch sampler receiving per-node load telemetry; null = no telemetry
  /// (the default — every recording site is then a dead null check).
  obs::EpochSampler* telemetry_ = nullptr;
  /// Per-peer memory of owners learned from aggregation replies:
  /// peer -> (cluster level, prefix) -> owner. Only the dispatching peer's
  /// own entries are consulted (no global knowledge leaks in).
  mutable std::map<NodeId, std::map<std::pair<unsigned, u128>, NodeId>>
      owner_cache_;
  mutable CacheStats cache_stats_;
  /// query() is a pure reader ONLY while cache_cluster_owners is off; with
  /// the cache on it mutates owner_cache_/cache_stats_. This counter makes
  /// concurrent cached queries fail loudly instead of racing silently.
  /// (Heap-held so the system stays movable; atomics are not.)
  mutable std::unique_ptr<std::atomic<int>> cache_writers_ =
      std::make_unique<std::atomic<int>>(0);
  /// Hot-cluster replica entries, by id. Mutated only between queries (the
  /// controller runs at epoch close, a safe point); the query path reads it.
  std::map<std::uint64_t, ReplicaEntry> replica_cache_;
  std::uint64_t next_replica_id_ = 1;
  /// Query-path counters: bumped inside const planning, which kParallel
  /// replays concurrently on home shards — hence atomics (heap-held for
  /// movability, same pattern as cache_writers_).
  struct ReplicaCounters {
    std::atomic<std::uint64_t> serves{0};
    std::atomic<std::uint64_t> stale_skips{0};
    std::atomic<std::uint64_t> invalidations{0};
    std::atomic<std::uint64_t> refreshes{0};
  };
  mutable std::unique_ptr<ReplicaCounters> replica_counters_ =
      std::make_unique<ReplicaCounters>();
};

} // namespace squid::core
