// Sharded multi-core message runtime (DESIGN.md 4f).
//
// kLockstep replays a query's planning on one private engine; kVirtualTime
// interleaves queries on one shared clock — both single-threaded. This
// layer partitions the node space across S shards, gives each shard a
// worker thread with a private sim::Engine, and runs queries with REAL
// parallelism while keeping every per-query answer bit-equal to the
// sequential modes:
//
//   * Planning is sequential per query, on its HOME shard (the shard of
//     its origin node). All order-sensitive work — routing, fault
//     verdicts, dispatch budget, cache consults, timing-DAG events, every
//     non-scan span — happens there at delay 0, so the home engine's FIFO
//     replays exactly the lockstep planning order. Scans never feed back
//     into planning state, so diverting them cannot perturb it.
//   * ScanRequests hand off to the shard owning the scanned node (the
//     coordinator/executor split of YTsaurus' CoordinateAndExecute) and
//     sweep the immutable key store into PRIVATE ScanBuffers, one per
//     posted scan. The home shard merges buffers in scan-post order at
//     finalize, reconstructing the exact lockstep element order, stats,
//     and span multiset no matter how shard threads interleaved.
//   * Fault verdicts stay deterministic because each query gets its own
//     injector forked from the base plan by submit index (sim::fork_plan);
//     Engine::admit on the home engine remains the single choke point.
//   * Cross-shard messages move through ShardMailbox queues via a
//     HandoffStager: jobs accumulate in per-destination staging buffers
//     and flush in batches at safe points (after each engine step /
//     drained batch), so the mailbox lock is amortized and intra-shard
//     work never touches it.
//
// With cache_cluster_owners on, planning is additionally serialized in
// submit order across shards (query k+1's planning launches only when k's
// planning finishes — scans still overlap), because consecutive queries
// couple through the owner cache; the mailbox mutex carries the
// happens-before. The differential suite (tests/core/
// parallel_differential_test.cpp) locks all of this against kLockstep over
// the full config matrix at S ∈ {1, 2, 4}, faults off and on.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "squid/core/messages.hpp"
#include "squid/core/runtime.hpp"
#include "squid/core/types.hpp"
#include "squid/keyword/space.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {

class SquidSystem; // core/system.hpp

/// The node -> shard map: a pure function of (node id, shard count) — no
/// membership state — so the assignment is trivially stable across joins,
/// crashes, and rejoins, and any two parties compute it identically
/// (tests/core/shard_map_test.cpp). splitmix64 over the folded id spreads
/// ring-adjacent nodes across shards.
inline unsigned shard_of_node(overlay::NodeId id, unsigned shards) noexcept {
  std::uint64_t mix = static_cast<std::uint64_t>(id) ^
                      static_cast<std::uint64_t>(id >> 64);
  return static_cast<unsigned>(splitmix64(mix) % shards);
}

/// One scan's private result slot. The executing shard fills it; the home
/// shard reads it at finalize. The scans_outstanding release/acquire pair
/// (ParallelQueryState) orders the writes before the merge.
struct ScanBuffer {
  overlay::NodeId at = 0;
  bool touched_data = false; ///< at least one key matched here
  std::vector<DataElement> elements;
  std::size_t count = 0; ///< count-only queries accumulate here instead
  // Raw kLocalScan span fields, replayed into the query's recorder at
  // merge time (span record order differs from lockstep; the multiset and
  // every derive_stats aggregate are identical).
  std::uint64_t keys_scanned = 0;
  std::uint64_t keys_matched = 0;
  std::uint64_t matches = 0;
  sfc::Segment segment{0, 0};
  std::int32_t event = 0;
  std::int32_t span = -1;
  /// Aggregate pushdown: the scan folds into this record instead of filling
  /// `elements`; finalize moves it into QueryExec::agg_scans in post order.
  AggScanRecord agg;
  /// Element/count queries: measured reply wire cost of this scan's answer
  /// (see QueryStats::bytes_shipped); accumulated at finalize.
  std::uint64_t reply_bytes = 0;
  std::uint64_t reply_frames = 0;
};

class ParallelExecutor;

/// Executor-owned per-query state; QueryExec::par points here while the
/// query runs under kParallel.
struct ParallelQueryState {
  std::size_t index = 0; ///< submit index; the fault-stream fork key
  unsigned home = 0;     ///< home shard: planning + finalize run here
  std::shared_ptr<QueryExec> exec;
  /// Forked per-query injector (set only when the run has a fault plan);
  /// attached to the home engine for this query's planning drain.
  std::optional<sim::FaultInjector> injector;
  /// One slot per posted scan, in post order (== the lockstep execution
  /// order among scans). Deque: growing it never moves filled slots out
  /// from under executor threads holding ScanBuffer pointers.
  std::deque<ScanBuffer> scans;
  std::atomic<std::size_t> scans_outstanding{0};
  std::atomic<bool> planning_done{false};
  std::atomic<bool> finalize_staged{false};
  bool planning_hook_ran = false; ///< home-thread-only idempotence guard
  ParallelExecutor* executor = nullptr;
};

/// One unit of cross-shard work. kLaunch starts a query's planning on its
/// home shard; kScan executes one handed-off store sweep; kFinalize merges
/// scan buffers and completes the query (home shard again).
struct ShardJob {
  enum class Kind : std::uint8_t { kLaunch, kScan, kFinalize };
  Kind kind = Kind::kScan;
  ParallelQueryState* query = nullptr;
  ScanBuffer* buffer = nullptr; ///< kScan only
  msg::ScanRequest scan;        ///< kScan only
};

/// A shard's inbox: a mutex-guarded vector drained whole, so one lock
/// round-trip moves a batch of jobs. Senders batch on their side too
/// (HandoffStager); the queue preserves push order end to end.
class ShardMailbox {
public:
  void push(ShardJob job);
  /// Append `batch` in order (one lock), leaving it empty.
  void push_batch(std::vector<ShardJob>& batch);
  /// Block until jobs arrive or the mailbox closes; returns the whole
  /// pending queue (empty only when closed). `idle_waits`, when non-null,
  /// is bumped every time the worker actually goes to sleep.
  std::vector<ShardJob> drain_wait(std::uint64_t* idle_waits);
  /// Non-blocking drain into `out` (appending). Returns jobs taken.
  std::size_t try_drain(std::vector<ShardJob>& out);
  void close();

private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ShardJob> jobs_;
  bool closed_ = false;
};

/// Per-destination-shard staging for cross-shard handoff: jobs accumulate
/// lock-free in the sender's private buffers and flush as one batch per
/// destination at safe points, or earlier when a buffer reaches
/// `batch_limit`. Staging preserves per-destination FIFO order, so
/// resharding a pending stream re-partitions it stably
/// (tests/core/shard_map_test.cpp).
class HandoffStager {
public:
  HandoffStager(std::vector<ShardMailbox>& inboxes, unsigned self,
                std::size_t batch_limit);
  /// Stage one job for the shard owning `dest`.
  void stage(overlay::NodeId dest, ShardJob job);
  /// Push every staged batch to its mailbox (in shard order).
  void flush();
  std::uint64_t handoffs() const noexcept { return handoffs_; }

private:
  std::vector<ShardMailbox>* inboxes_;
  std::vector<std::vector<ShardJob>> staging_;
  unsigned self_ = 0;
  std::size_t limit_ = 16;
  std::uint64_t handoffs_ = 0; ///< jobs staged for a different shard
};

/// One query of a parallel batch.
struct ParallelQuerySpec {
  keyword::Query query;
  overlay::NodeId origin = 0;
  /// When set, the query runs as an aggregation pushdown (DESIGN.md 4g):
  /// scan shards fold partials, finalize merges them up the dispatch tree.
  std::optional<AggregateSpec> aggregate;
};

struct ParallelOptions {
  unsigned shards = 2;
  /// Staging flush threshold (jobs per destination before an early push).
  std::size_t handoff_batch = 16;
  /// When set, query k runs under an injector built from
  /// fork_plan(*faults, k). Not owned.
  const sim::FaultPlan* faults = nullptr;
};

/// Per-query injector tallies, reported so harnesses can compare the
/// parallel fault streams draw-for-draw against a sequential replay.
struct ParallelFaultTallies {
  std::uint64_t rng_draws = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
};

struct ParallelRun {
  std::vector<QueryResult> results; ///< one per spec, in submit order
  std::vector<ParallelFaultTallies> faults; ///< empty without a fault plan
};

/// The shard fleet: S worker threads, each owning a private engine and
/// inbox. One-shot: construct, run(specs), destroy. SquidSystem::
/// query_parallel wraps exactly that.
class ParallelExecutor {
public:
  ParallelExecutor(const SquidSystem& sys, ParallelOptions opts);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  ParallelRun run(const std::vector<ParallelQuerySpec>& specs);

private:
  friend void parallel_post_scan(QueryExec& ex, msg::ScanRequest scan);
  friend void parallel_planning_finished(
      const std::shared_ptr<QueryExec>& exec);

  struct Shard;

  void worker(unsigned shard);
  void execute(Shard& sh, ShardJob& job);
  void launch(Shard& sh, ParallelQueryState& q);
  void finalize(ParallelQueryState& q);
  void stage_finalize(ParallelQueryState& q);

  const SquidSystem* sys_;
  ParallelOptions opts_;
  bool serialize_planning_ = false; ///< owner cache couples queries
  const std::vector<ParallelQuerySpec>* specs_ = nullptr;
  std::deque<ParallelQueryState> states_;
  std::vector<ShardMailbox> inboxes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> remaining_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

// NodeRuntime's kParallel seams (src/core/runtime.cpp calls these).
void parallel_post_scan(QueryExec& ex, msg::ScanRequest scan);
void parallel_planning_finished(const std::shared_ptr<QueryExec>& exec);

} // namespace squid::core
