// Public value types of the Squid core.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "squid/keyword/space.hpp"
#include "squid/sim/engine.hpp"

namespace squid::obs {
struct Trace;
}

namespace squid::core {

struct AggregatePartial;

/// A published piece of information: a name/URI plus one descriptive token
/// per keyword-space dimension (paper: "a data element can be a document, a
/// file, an XML file describing a resource, ...").
struct DataElement {
  std::string name;
  std::vector<keyword::Token> keys;

  friend bool operator==(const DataElement&, const DataElement&) = default;
};

/// Per-query accounting, matching the metrics of the paper's evaluation
/// (4.1): routing nodes, processing nodes, data nodes, and messages.
/// `messages` counts query messages (cluster dispatches, identifier replies,
/// and aggregated batches), not per-hop transmissions; `routing_nodes` is
/// the set of peers that forwarded any dispatch.
struct QueryStats {
  std::size_t matches = 0;
  std::size_t routing_nodes = 0;
  std::size_t processing_nodes = 0;
  std::size_t data_nodes = 0;
  std::size_t messages = 0;
  /// Latency proxy: overlay hops along the longest chain of *dependent*
  /// messages (independent sub-queries proceed in parallel, so this is the
  /// critical path, not the message total). Under fault injection, retry
  /// backoff waits and delivery delays count as hops on this path.
  std::size_t critical_path_hops = 0;
  /// Fault accounting (docs/FAULT_MODEL.md); both stay 0 without an
  /// injector. `retries`: message legs resent after a presumed loss.
  /// `failed_clusters`: sub-queries abandoned after exhausting retries (or
  /// unroutable under churn) — each one a potential hole in the result.
  std::size_t retries = 0;
  std::size_t failed_clusters = 0;
  /// Reply-path wire accounting (DESIGN.md 4g): bytes and frames the result
  /// replies occupy on the wire, measured through the real serializer with a
  /// canonical query id of 0 so the numbers are comparable across runs.
  /// Element queries count one reply per scan site (split into
  /// SquidConfig::reply_frame_bytes frames); aggregate queries count one
  /// partial-carrying reply per dispatch-tree edge. Identical across
  /// delivery modes and shard counts; not part of the frozen-seed lock.
  std::uint64_t bytes_shipped = 0;
  std::uint64_t reply_messages = 0;
};

/// One message event in a query's dependency DAG: it could only be sent
/// after its parent event completed, and it took `hops` overlay hops.
/// Event 0 is the query's start at the origin (parent -1, hops 0).
struct TimingEvent {
  std::int32_t parent = -1;
  std::uint32_t hops = 0;
};

struct QueryResult {
  QueryStats stats;
  /// False when any sub-query was abandoned (stats.failed_clusters > 0):
  /// `elements` is then a partial answer — the completeness guarantee holds
  /// only for the curve regions that resolved. Always true without fault
  /// injection on a consistent ring.
  bool complete = true;
  std::vector<DataElement> elements;
  /// The query's message-dependency DAG, for wall-clock replay under a
  /// link-latency model (core/timing.hpp).
  std::vector<TimingEvent> timing;
  /// Span-level trace of the resolution (obs/trace.hpp). Populated only
  /// when tracing is compiled in AND enabled on the system
  /// (SquidSystem::set_tracing / SquidConfig::trace_queries); null
  /// otherwise. `stats` is derivable from it (obs::derive_stats).
  std::shared_ptr<const obs::Trace> trace;
  /// For aggregate queries (SquidSystem::query_aggregate and friends): the
  /// fully-merged partial — the answer computed in the overlay. Null for
  /// element-returning queries. `elements` is always empty when set.
  std::shared_ptr<const AggregatePartial> aggregate;
};

struct SquidConfig {
  /// Curve family: "hilbert" (paper), "zorder"/"gray" for ablation.
  std::string curve = "hilbert";
  /// Chord successor-list length.
  unsigned successor_list = 8;
  /// Chord finger base: 2 = classic fingers; larger bases trade bigger
  /// tables for shorter routes (log_base N hops).
  unsigned finger_base = 2;
  /// Identifiers sampled by the load-balancing join (paper suggests 5-10;
  /// 1 disables the optimization and joins at a random id).
  unsigned join_samples = 1;
  /// Enable the sub-cluster aggregation optimization (paper 3.4.2, second
  /// optimization). Off only for the ablation bench.
  bool aggregate_subclusters = true;
  /// Hot-spot extension (paper 5 future work): each peer remembers the
  /// owner identifiers learned from aggregation replies, keyed by cluster
  /// prefix, and sends later sub-queries for cached prefixes directly
  /// (verified on arrival; stale entries fall back to routing).
  bool cache_cluster_owners = false;
  /// Record a span-level trace for every query() (obs/trace.hpp) and
  /// attach it as QueryResult::trace. Runtime half of the zero-cost
  /// contract; SquidSystem::set_tracing toggles it after construction.
  bool trace_queries = false;
  /// Fault tolerance (docs/FAULT_MODEL.md): resends attempted per message
  /// leg after a presumed loss, before the leg is abandoned. Only consulted
  /// while a fault injector is attached.
  unsigned send_retries = 3;
  /// Base retry backoff in virtual ticks; attempt k waits
  /// retry_backoff << k before resending (exponential).
  sim::Time retry_backoff = 2;
  /// Reply-path MTU for wire accounting: a reply of B bytes counts as
  /// ceil(B / reply_frame_bytes) frames in QueryStats::reply_messages.
  std::size_t reply_frame_bytes = 1024;
  /// Hotspot-detector floor calibration (docs/LOAD_BALANCING.md): the
  /// effective HotspotConfig::min_load is raised to this factor × the p95
  /// of per-node epoch load totals over a calibration window
  /// (obs::calibrated_min_load), so steady-state hum never trips the
  /// detector. 2x-p95 is the documented default; the CLI heatmap report
  /// and bench/ext_hotspot both read it from here so they agree.
  double hotspot_min_load_factor = 2.0;
  /// Tiered key store (DESIGN.md 4j): pending delta entries + tombstones
  /// allowed before the amortized fold into the base arrays. 0 = automatic
  /// max(64, 4·sqrt(K)) policy; 1 = merge after every mutation, which is
  /// exactly the PR-2 flat store (bench/micro_store's "before" arm).
  std::size_t store_delta_cap = 0;
};

/// Hit/miss counters for the cluster-owner cache.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t stale = 0; ///< cached owner no longer responsible
};

} // namespace squid::core
