// Wall-clock replay of a query's message-dependency DAG.
//
// The engine records, for every message, which earlier message it waited on
// and how many overlay hops it took (QueryResult::timing). Replaying that
// DAG under a per-hop link-latency model yields a wall-clock completion
// estimate: independent branches overlap, dependent chains add up — the
// structure a deployed Squid would exhibit, without an asynchronous
// network stack in the simulator.

#pragma once

#include "squid/core/types.hpp"
#include "squid/stats/summary.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {

/// Per-hop cost model: each overlay hop costs base + U[0, jitter) ms, and
/// each message additionally pays the receiving peer's processing time.
struct LinkModel {
  double base_ms = 20.0;
  double jitter_ms = 20.0;
  double processing_ms = 1.0;
};

/// One replayed event: when its message finished arriving, plus the DAG
/// edge it rode. Indexed by timing-event id — the same ids trace spans
/// carry in obs::Span::event, so a breakdown row joins directly onto the
/// span that caused it.
struct EventCompletion {
  double at_ms = 0.0;       ///< arrival time of this event's message
  std::int32_t parent = -1; ///< the event it waited on (-1: query start)
  std::uint32_t hops = 0;   ///< overlay hops the message took
};

/// Replay the DAG once under `model`, reporting the per-event arrival
/// times. Entry 0 is the query start (0 ms). Consumes the rng in event
/// order, one draw per hop — exactly the stream sample_completion_ms
/// consumes, which is implemented on top of this.
std::vector<EventCompletion> sample_completion_breakdown(
    const std::vector<TimingEvent>& timing, const LinkModel& model, Rng& rng);

/// One sampled wall-clock completion time (ms) of the query whose timing
/// DAG is `timing`, under `model`: the latest arrival in one replayed
/// breakdown.
double sample_completion_ms(const std::vector<TimingEvent>& timing,
                            const LinkModel& model, Rng& rng);

/// Distribution of completion times over `samples` independent replays.
Summary estimate_latency_ms(const QueryResult& result, const LinkModel& model,
                            Rng& rng, std::size_t samples = 100);

} // namespace squid::core
