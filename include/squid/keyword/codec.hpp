// Dimension codecs: keywords and attribute values to coordinates (paper 3.1).
//
// Each dimension of the keyword space carries either textual keywords
// (documents described by words — "the keywords can be viewed as base-n
// numbers") or a numeric attribute (grid resources described by memory, CPU,
// bandwidth). A codec maps tokens to integer coordinates such that
// lexicographic / numeric order is preserved, which is what turns partial
// keywords and value ranges into contiguous coordinate intervals.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "squid/sfc/types.hpp"

namespace squid::keyword {

/// Fixed-length base-(alphabet+1) string codec. Digit 0 is reserved as the
/// end-of-string pad so that "comp" and "compa" encode distinctly and
/// shorter words sort before their extensions, exactly like base-n numbers
/// left-aligned in the paper's keyword space.
class StringCodec {
public:
  /// `alphabet`: ordered characters allowed in keywords (e.g. "a..z").
  /// `max_len`: keywords longer than this are truncated — the index then
  /// treats them by their first `max_len` characters, as the paper's base-n
  /// digit view does.
  StringCodec(std::string alphabet, unsigned max_len);

  unsigned bits() const noexcept { return bits_; }
  unsigned max_len() const noexcept { return max_len_; }
  std::uint64_t base() const noexcept { return base_; }
  /// Largest coordinate any keyword can take: base^max_len - 1.
  std::uint64_t max_coord() const noexcept { return max_coord_; }

  /// Whole-keyword coordinate. Unknown characters throw.
  std::uint64_t encode(std::string_view word) const;

  /// Recover the (possibly truncated) keyword from a coordinate.
  std::string decode(std::uint64_t coord) const;

  /// Coordinates of all keywords extending `prefix` — the interval a
  /// partial-keyword term like "comp*" selects.
  sfc::Interval prefix_interval(std::string_view prefix) const;

  /// The full axis as seen by keywords (excludes the unused coordinates
  /// above base^max_len, so wildcards do not drag dead space into queries).
  sfc::Interval any_interval() const noexcept { return {0, max_coord_}; }

  sfc::Interval whole_interval(std::string_view word) const {
    const std::uint64_t c = encode(word);
    return {c, c};
  }

private:
  std::uint64_t digit_of(char c) const;

  std::string alphabet_;
  unsigned max_len_;
  std::uint64_t base_;      // alphabet size + 1 (pad digit)
  std::uint64_t max_coord_; // base^max_len - 1
  unsigned bits_;
};

/// Linear quantizer for a numeric attribute over [lo, hi] into 2^bits
/// buckets. Order preserving, so value ranges become coordinate intervals.
class NumericCodec {
public:
  NumericCodec(double lo, double hi, unsigned bits);

  unsigned bits() const noexcept { return bits_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::uint64_t max_coord() const noexcept {
    return (std::uint64_t{1} << bits_) - 1;
  }

  /// Bucket of `value`; values outside [lo, hi] clamp to the edge buckets.
  std::uint64_t encode(double value) const noexcept;

  /// Lower edge of a bucket.
  double decode(std::uint64_t coord) const;

  /// Coordinates selected by the value range [value_lo, value_hi].
  sfc::Interval range_interval(double value_lo, double value_hi) const;

  sfc::Interval any_interval() const noexcept { return {0, max_coord()}; }

private:
  double lo_;
  double hi_;
  unsigned bits_;
};

} // namespace squid::keyword
