// The multidimensional keyword space and the flexible query model
// (paper 3.1, 3.3).
//
// A KeywordSpace fixes the number of dimensions and the codec for each
// (textual keywords or a numeric attribute). Data elements are described by
// one token per dimension and become points; queries combine per-dimension
// terms — whole keyword, partial keyword ("comp*"), wildcard ("*"), numeric
// range ("256-512", "1000-*") — and become axis-aligned rectangles, which is
// what makes them resolvable as SFC clusters.

#pragma once

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "squid/keyword/codec.hpp"
#include "squid/sfc/types.hpp"

namespace squid::keyword {

/// One descriptor of a data element along one dimension.
using Token = std::variant<std::string, double>;

/// Query terms, one per dimension.
struct Whole {
  std::string word;
};
struct Prefix {
  std::string prefix; ///< written "prefix*" in query syntax
};
struct Any {}; ///< written "*"
struct NumRange {
  double lo;
  double hi;
};
/// Lexicographic keyword range, written "alpha-beta": selects every keyword
/// w with lo <= w <= hi in dictionary order (extensions of hi, such as
/// "betas", sort after it and are excluded).
struct StrRange {
  std::string lo;
  std::string hi;
};
struct NumExact {
  double value;
};
using QueryTerm =
    std::variant<Whole, Prefix, Any, NumRange, NumExact, StrRange>;

struct Query {
  std::vector<QueryTerm> terms;
};

/// Render a query in the paper's "(comp*, network, *)" notation.
std::string to_string(const Query& query);
std::string to_string(const Token& token);

class KeywordSpace {
public:
  using Dimension = std::variant<StringCodec, NumericCodec>;

  explicit KeywordSpace(std::vector<Dimension> dimensions);

  unsigned dims() const noexcept {
    return static_cast<unsigned>(dimensions_.size());
  }
  /// Uniform per-dimension coordinate width required by the curve: the
  /// widest codec; narrower dimensions simply leave their top coordinates
  /// unused (the space is sparse anyway).
  unsigned bits_per_dim() const noexcept { return bits_per_dim_; }

  const Dimension& dimension(unsigned i) const;

  /// Point for a fully-described data element (one token per dimension).
  sfc::Point encode(const std::vector<Token>& tokens) const;

  /// Human-readable tokens for a point (string dims decode to keywords,
  /// numeric dims to bucket lower edges).
  std::vector<Token> decode(const sfc::Point& point) const;

  /// Query rectangle: the coordinate interval each term selects.
  sfc::Rect to_rect(const Query& query) const;

  /// True when the element's point falls inside the query's rectangle.
  bool matches(const Query& query, const std::vector<Token>& tokens) const;

  /// Parse one term for dimension `dim`:
  ///   "*"        -> Any
  ///   "comp*"    -> Prefix (string dims)
  ///   "word"     -> Whole (string dims)
  ///   "a-b"      -> NumRange (numeric dims; either bound may be "*")
  ///   "3.5"      -> NumExact (numeric dims)
  ///   "cat-dog"  -> StrRange (string dims; either bound may be "*")
  QueryTerm parse_term(unsigned dim, std::string_view text) const;

  /// Parse "(t1, t2, ...)" — parentheses optional — with one term per
  /// dimension.
  Query parse(std::string_view text) const;

private:
  std::vector<Dimension> dimensions_;
  unsigned bits_per_dim_ = 0;
};

} // namespace squid::keyword
