// Gnutella-style unstructured search baseline (paper 2, Related Work).
//
// Peers form a random connected graph; data elements live wherever their
// publisher happens to be; queries flood with a TTL. Flooding supports
// arbitrary predicates but offers no completeness guarantee short of
// TTL = diameter, at which point it contacts essentially every peer — the
// cost Squid's evaluation is contrasted against ("a keyword search system
// like Gnutella would have to query the entire network").

#pragma once

#include <cstdint>
#include <vector>

#include "squid/core/types.hpp"
#include "squid/keyword/space.hpp"
#include "squid/util/rng.hpp"

namespace squid::baselines {

class FloodingNetwork {
public:
  /// Connected random graph: a ring backbone plus random chords until the
  /// average degree reaches `degree`.
  FloodingNetwork(std::size_t nodes, unsigned degree, Rng& rng);

  std::size_t size() const noexcept { return adjacency_.size(); }

  /// The element is stored at a random peer (unstructured placement).
  void publish(const core::DataElement& element, Rng& rng);

  struct FloodResult {
    std::size_t matches = 0;
    std::size_t nodes_visited = 0;
    std::size_t messages = 0;
    std::vector<core::DataElement> elements;
  };

  /// Flood `query` from a random origin with the given TTL.
  FloodResult query(const keyword::KeywordSpace& space,
                    const keyword::Query& query, unsigned ttl,
                    Rng& rng) const;

  /// Matches reachable by an unbounded flood — the ground truth a TTL-bound
  /// flood should be compared against.
  std::size_t total_matches(const keyword::KeywordSpace& space,
                            const keyword::Query& query) const;

private:
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<std::vector<core::DataElement>> storage_;
};

} // namespace squid::baselines
