// The Andrzejak-Xu range-query system (P2P 2002) — the one other
// Hilbert-SFC P2P discovery system the paper discusses (paper 2): a single
// numeric attribute is mapped through the *inverse* SFC from its
// 1-dimensional value domain onto CAN's d-dimensional coordinate space, so
// a value range becomes one contiguous curve segment crossing a set of CAN
// zones.
//
// Contrast with Squid (which this repository reproduces): Squid encodes d
// attributes through the *forward* SFC into one index, so it resolves
// multi-attribute queries with a single index; this system needs one
// overlay instance per attribute and client-side intersection.

#pragma once

#include <string>
#include <vector>

#include "squid/overlay/can.hpp"
#include "squid/sfc/hilbert.hpp"
#include "squid/sfc/refine.hpp"
#include "squid/util/rng.hpp"

namespace squid::baselines {

class CanInverseSfcIndex {
public:
  /// Index one attribute with values in [domain_lo, domain_hi) over a CAN
  /// of `nodes` zones in a `dims`-dimensional space with 2^bits_per_dim
  /// cells per side. The attribute resolution is dims*bits_per_dim bits.
  CanInverseSfcIndex(unsigned dims, unsigned bits_per_dim, std::size_t nodes,
                     double domain_lo, double domain_hi, Rng& rng);

  const overlay::CanOverlay& can() const noexcept { return can_; }

  void publish(const std::string& name, double value);
  std::size_t element_count() const noexcept { return elements_; }

  struct RangeResult {
    std::size_t matches = 0;
    std::size_t messages = 0;
    std::size_t nodes_visited = 0; ///< zones scanned for matches
    std::size_t routing_nodes = 0; ///< zones that forwarded anything
    std::vector<std::string> names;
  };

  /// Resolve the value range [lo, hi]: the 1-D interval becomes a curve
  /// segment, recursively refined into zone-sized cells and visited in
  /// curve order (one message per zone transition).
  RangeResult range_query(double lo, double hi, Rng& rng) const;

private:
  u128 index_of_value(double value) const;
  sfc::Point point_of_value(double value) const;

  sfc::HilbertCurve curve_;
  overlay::CanOverlay can_;
  sfc::ClusterRefiner refiner_;
  double domain_lo_;
  double domain_hi_;
  /// Per-zone storage: (curve index, name, value).
  struct Entry {
    u128 index;
    std::string name;
    double value;
  };
  std::vector<std::vector<Entry>> storage_;
  std::size_t elements_ = 0;
};

} // namespace squid::baselines
