// Distributed inverted-index keyword search over a DHT (paper 2: the
// "structured keyword search systems" of Gnawali's KSS and PeerSearch).
//
// Each keyword hashes to a posting node that stores the posting list of
// elements carrying that keyword; a conjunctive query looks up one posting
// list per keyword and intersects them. This supports whole-keyword search
// well, but partial keywords require expanding the prefix over the
// vocabulary (one lookup per matching word — we grant the baseline a free
// global vocabulary, a strictly optimistic assumption), and numeric ranges
// are not expressible at all. Squid's single index handles all three.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "squid/core/types.hpp"
#include "squid/overlay/chord.hpp"
#include "squid/util/rng.hpp"

namespace squid::baselines {

class InvertedIndexDht {
public:
  InvertedIndexDht(std::size_t nodes, Rng& rng);

  const overlay::ChordRing& ring() const noexcept { return ring_; }

  /// Index `element` under each of its (string) keywords. Numeric tokens
  /// are indexed under their decimal rendering — the only option an
  /// inverted index has.
  void publish(const core::DataElement& element);

  struct LookupResult {
    std::size_t matches = 0;
    std::size_t messages = 0;
    std::size_t routing_nodes = 0;
    std::size_t posting_nodes = 0;
    std::vector<core::DataElement> elements;
  };

  /// Conjunctive whole-keyword query: one posting-list lookup per term
  /// ("*" terms are free), intersect by element name, then verify the
  /// element's tokens dimension-wise.
  LookupResult query_whole(const std::vector<std::string>& terms,
                           Rng& rng) const;

  /// Partial-keyword query: expand `prefix` over `vocabulary`, then one
  /// posting lookup per expansion. `dim` selects which dimension the term
  /// constrains; other dimensions are unconstrained.
  LookupResult query_prefix(unsigned dim, const std::string& prefix,
                            const std::vector<std::string>& vocabulary,
                            Rng& rng) const;

private:
  struct Posting {
    core::DataElement element;
    unsigned dim; ///< which dimension carried the keyword
  };

  u128 keyword_key(const std::string& word) const;
  void lookup(const std::string& word, overlay::NodeId origin,
              LookupResult& result,
              std::map<std::string, std::vector<Posting>>& found) const;

  overlay::ChordRing ring_;
  /// posting node -> keyword -> postings.
  std::map<overlay::NodeId, std::map<std::string, std::vector<Posting>>>
      postings_;
};

} // namespace squid::baselines
