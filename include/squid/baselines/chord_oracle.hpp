// Chord exact-lookup baseline (paper 4.1.1): "in the case of a data lookup
// system such as Chord, one would have to know all the matches a priori and
// look them up individually."
//
// This baseline is granted that impossible a-priori knowledge: it reads the
// global key set, selects the keys matching the query, and performs one
// Chord lookup per key. Its cost therefore scales with the number of
// matching keys — and it answers nothing without an external index.

#pragma once

#include "squid/core/system.hpp"
#include "squid/util/rng.hpp"

namespace squid::baselines {

struct OracleResult {
  std::size_t matches = 0;
  std::size_t matching_keys = 0;
  std::size_t messages = 0;
  std::size_t routing_nodes = 0;
  std::size_t data_nodes = 0;
};

/// Resolve `query` against `sys`'s data by individual Chord lookups of
/// every matching key (which a real deployment could not enumerate).
OracleResult chord_oracle_query(const core::SquidSystem& sys,
                                const keyword::Query& query, Rng& rng);

} // namespace squid::baselines
