// Deterministic fault injection (docs/FAULT_MODEL.md).
//
// The paper evaluates Squid on a stable overlay; its future-work section
// (5) and the follow-up churn literature make the interesting questions
// adversarial: what happens when peers crash, messages vanish, or the
// network splits. FaultPlan is a *seeded, declarative* schedule of exactly
// those events — node crash/rejoin waves, per-message drop/delay/duplicate
// probabilities, and timed partitions — and FaultInjector is its runtime:
// every simulated send asks the injector for a verdict before it is
// scheduled.
//
// Determinism contract: the injector owns a private xoshiro generator
// seeded from the plan, and consults it only for hazards the plan actually
// enables. Two consequences, both load-bearing:
//   1. the same (seed, plan) replays the same fault sequence bit-for-bit
//      (tests/fault/fault_plan_test.cpp), and
//   2. an EMPTY plan consumes zero randomness, so attaching an injector
//      with no faults leaves every experiment bit-identical to running
//      without one (tests/fault/zero_fault_differential_test.cpp).
//
// The injector never mutates the overlay. Crash/rejoin events fire through
// a harness callback (the injector owns *when*, the system owns *who*), and
// failure suspicion raised on the const query path is queued as timeout
// reports for SquidSystem::process_timeouts() to drain into ring repair.

#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "squid/overlay/id_space.hpp"
#include "squid/sim/engine.hpp"
#include "squid/util/rng.hpp"

namespace squid::sim {

/// A declarative, seeded schedule of faults. Plain data: harnesses build
/// one, hand it to a FaultInjector, and the run is reproducible from the
/// plan alone. All probabilities are per-message; defaults are all-zero
/// (the empty plan injects nothing and consumes no randomness).
struct FaultPlan {
  /// Seed for the injector's private generator (independent of every other
  /// stream in the experiment, so enabling faults never perturbs workload
  /// or topology draws).
  std::uint64_t seed = 0x4a11;

  /// Probability that a message is silently dropped.
  double drop_probability = 0;
  /// Probability that a delivered message is delayed by extra ticks,
  /// uniform in [1, max_delay].
  double delay_probability = 0;
  Time max_delay = 4;
  /// Probability that a delivered message arrives twice (the copy is
  /// delivered at the same tick; receivers are modeled as deduplicating,
  /// so duplication costs messages, never correctness).
  double duplicate_probability = 0;

  /// Timed crash/rejoin waves. The injector schedules *when* each wave
  /// fires (FaultInjector::schedule_events); the harness callback decides
  /// *which* peers crash or rejoin, typically with its own forked rng.
  struct NodeEvent {
    Time at = 0;
    bool crash = true;       ///< false: a rejoin wave
    std::uint32_t count = 1; ///< peers affected
  };
  std::vector<NodeEvent> events;

  /// A network partition active during [start, end): messages between the
  /// two sides are dropped. Sides are by identifier: id < pivot vs
  /// id >= pivot (a contiguous arc split — the classic net-split shape on
  /// a ring).
  struct Partition {
    Time start = 0;
    Time end = 0;
    overlay::NodeId pivot = 0;
  };
  std::vector<Partition> partitions;

  bool empty() const noexcept {
    return drop_probability <= 0 && delay_probability <= 0 &&
           duplicate_probability <= 0 && events.empty() &&
           partitions.empty();
  }
};

/// Derive stream `k` of a base plan: the same hazards, driven by an
/// independent generator seeded from (base.seed, k). The sharded parallel
/// runtime (core/parallel.hpp) gives each query its own forked injector so
/// fault verdicts stay a pure per-query function of (plan, submit index) no
/// matter how shard threads interleave — and a sequential harness forking
/// identically replays the exact same streams, which is what the parallel
/// differential suite compares against.
FaultPlan fork_plan(const FaultPlan& base, std::uint64_t k);

class FaultInjector {
public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Verdict on one message send.
  struct Delivery {
    bool delivered = true;
    Time extra_delay = 0;  ///< additional ticks before arrival
    bool duplicate = false;///< a second copy arrives too
  };

  /// Decide the fate of a message from -> to at the current virtual time.
  /// Consults the generator only for hazards the plan enables, so an empty
  /// plan is bit-transparent (decide() then always delivers and draws
  /// nothing).
  Delivery decide(overlay::NodeId from, overlay::NodeId to);

  /// True when a plan partition active at the current time separates the
  /// two peers.
  bool partitioned(overlay::NodeId a, overlay::NodeId b) const noexcept;

  /// The injector's virtual clock. Engine::run advances it automatically
  /// when the injector is attached; standalone harnesses (the query engine
  /// runs synchronously) set it directly to time-travel through partition
  /// windows.
  void set_now(Time now) noexcept { now_ = now; }
  Time now() const noexcept { return now_; }

  /// Install the plan's crash/rejoin waves on `engine`: at each event's
  /// time, `apply(event)` runs. The callback owns victim selection and the
  /// actual membership mutation (e.g. ReplicationManager::fail_node).
  void schedule_events(Engine& engine,
                       std::function<void(const FaultPlan::NodeEvent&)> apply);

  /// Failure suspicion from the const query path: `observer` exhausted its
  /// retries against `dead`. Queued, not applied — SquidSystem::
  /// process_timeouts() drains the queue into ChordRing::note_timeout
  /// during maintenance, keeping query() a pure reader of ring state.
  void report_timeout(overlay::NodeId observer, overlay::NodeId dead);
  std::vector<std::pair<overlay::NodeId, overlay::NodeId>>
  take_timeout_reports();
  std::size_t pending_timeout_reports() const noexcept {
    return reports_.size();
  }

  // Running tallies (also published as squid.fault.* metrics when the obs
  // layer is compiled in; these stay available with it off).
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t delayed() const noexcept { return delayed_; }
  std::uint64_t duplicated() const noexcept { return duplicated_; }
  std::uint64_t partition_drops() const noexcept { return partition_drops_; }
  /// Generator consultations so far; stays 0 under an empty plan (the
  /// zero-fault differential lock asserts this).
  std::uint64_t rng_draws() const noexcept { return rng_draws_; }

private:
  bool draw(double p);

  FaultPlan plan_;
  Rng rng_;
  Time now_ = 0;
  std::vector<std::pair<overlay::NodeId, overlay::NodeId>> reports_;
  std::uint64_t dropped_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t partition_drops_ = 0;
  std::uint64_t rng_draws_ = 0;
};

} // namespace squid::sim
