// Minimal discrete-event simulation kernel.
//
// The paper evaluates Squid with a simulator (4): queries run against an
// in-memory overlay while the harness counts messages and nodes. Most
// experiments are request/response shaped and execute synchronously, but
// churn and stabilization are genuinely time-driven; Engine provides the
// virtual clock and event queue those experiments schedule against.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "squid/overlay/id_space.hpp"

namespace squid::sim {

/// Virtual time in abstract ticks (experiments decide the unit).
using Time = std::uint64_t;

class FaultInjector; // sim/fault.hpp

class Engine {
public:
  using Action = std::function<void()>;

  Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` ticks from now. Events at equal times
  /// run in scheduling order (FIFO), keeping runs deterministic.
  void schedule(Time delay, Action action);

  /// Schedule `action` every `period` ticks, starting `period` from now,
  /// until it returns false.
  void schedule_periodic(Time period, std::function<bool()> action);

  /// Attach (or detach, with nullptr) a fault injector. While attached,
  /// send() consults it for every message and run() keeps its virtual
  /// clock aligned with the engine's. Not owned; must outlive the engine's
  /// use of it.
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return fault_; }

  /// Schedule a *message* from one peer to another: `action` models its
  /// arrival after `delay` ticks of transit. With a fault injector attached
  /// the message may be dropped (never scheduled; returns false), delayed
  /// (extra ticks added), or duplicated (scheduled twice at the same
  /// arrival tick; FIFO tie-break keeps the order deterministic). Without
  /// an injector this is exactly schedule().
  bool send(Time delay, overlay::NodeId from, overlay::NodeId to,
            Action action);

  /// Run events until the queue drains or `until` is passed (events with
  /// timestamps beyond `until` stay queued). Returns events executed.
  std::size_t run(Time until = ~Time{0});

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

private:
  struct Event {
    Time at;
    std::uint64_t seq; // tie-break: FIFO among equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  FaultInjector* fault_ = nullptr;
};

} // namespace squid::sim
