// Minimal discrete-event simulation kernel.
//
// The paper evaluates Squid with a simulator (4): queries run against an
// in-memory overlay while the harness counts messages and nodes. Churn and
// stabilization are genuinely time-driven, and since the message-driven
// query runtime (DESIGN.md 4e) every query leg is itself an engine event;
// Engine provides the virtual clock, the event queue, and the single fault
// interception point (admit) those paths schedule against.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "squid/overlay/id_space.hpp"

namespace squid::sim {

/// Virtual time in abstract ticks (experiments decide the unit).
using Time = std::uint64_t;

class FaultInjector; // sim/fault.hpp

/// Verdict on one fault-checked message admission (Engine::admit). Without
/// an injector every field keeps its default: a clean immediate delivery.
struct SendOutcome {
  bool delivered = true;
  Time extra_delay = 0;  ///< additional ticks before arrival
  bool duplicate = false; ///< a second copy was paid for (receivers dedup)
};

class Engine {
public:
  /// Sentinel "no event" timestamp (peek_time on an empty queue; also the
  /// default `until` of run()).
  static constexpr Time kNever = ~Time{0};

  /// An engine whose clock starts at `start`. The query runtime uses this
  /// to keep an attached injector's clock unperturbed: a synchronous query
  /// drains its private engine at the injector's current time.
  explicit Engine(Time start = 0) noexcept : now_(start) {}

  using Action = std::function<void()>;

  Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` ticks from now. Events at equal times
  /// run in scheduling order (FIFO), keeping runs deterministic.
  void schedule(Time delay, Action action);

  /// Schedule `action` every `period` ticks, starting `period` from now,
  /// until it returns false.
  void schedule_periodic(Time period, std::function<bool()> action);

  /// Attach (or detach, with nullptr) a fault injector. While attached,
  /// admit()/send() consult it for every message and run()/step() keep its
  /// virtual clock aligned with the engine's. Not owned; must outlive the
  /// engine's use of it.
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return fault_; }

  /// Fault-checked admission of one message leg from -> to: THE uniform
  /// interception point every simulated message passes through. Consults
  /// the attached injector for a verdict (drop/delay/duplicate, tallied by
  /// the injector); without one, every leg is admitted clean and no
  /// randomness is drawn. The caller schedules the delivery according to
  /// its own latency model — send() below is the classic packaging, the
  /// query runtime (core/runtime.hpp) folds the verdict into its
  /// timing-DAG hops instead.
  SendOutcome admit(overlay::NodeId from, overlay::NodeId to);

  /// Schedule a *message* from one peer to another: `action` models its
  /// arrival after `delay` ticks of transit. Built on admit(): the message
  /// may be dropped (never scheduled; returns false), delayed (extra ticks
  /// added), or duplicated (scheduled twice at the same arrival tick; FIFO
  /// tie-break keeps the order deterministic). Without an injector this is
  /// exactly schedule().
  bool send(Time delay, overlay::NodeId from, overlay::NodeId to,
            Action action);

  /// Run events until the queue drains or `until` is passed (events with
  /// timestamps beyond `until` stay queued). Returns events executed.
  std::size_t run(Time until = kNever);

  /// Execute exactly one event (the earliest; FIFO among equal times),
  /// advancing the clock to it. Returns false (and does nothing) when the
  /// queue is empty. The async drain loop steps until its query completes,
  /// and single-stepping makes event interleavings inspectable in tests.
  bool step();

  /// Timestamp of the next queued event, kNever when the queue is empty.
  /// step() executed now would advance the clock to exactly this time.
  Time peek_time() const noexcept {
    if (!ready_.empty()) return ready_.front().at; // == now()
    return heap_.empty() ? kNever : heap_.front().at;
  }

  bool empty() const noexcept { return ready_.empty() && heap_.empty(); }
  std::size_t pending() const noexcept { return ready_.size() + heap_.size(); }

private:
  struct Event {
    Time at;
    std::uint64_t seq; // tie-break: FIFO among equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  // Two lanes, one logical (at, seq)-ordered queue. Delay-0 events — the
  // entirety of a lockstep query and most of the async runtime's traffic —
  // land in ready_, a plain FIFO whose entries all carry at == now_ (pushed
  // at the current time; the clock only advances once ready_ is empty, save
  // for heap events at the same timestamp with earlier seqs, which do not
  // move it). Everything else goes through heap_, a vector min-heap whose
  // pops MOVE the event out. The old single priority_queue deep-copied
  // every Action (with its captured message payload) on execution and paid
  // O(log pending) comparisons for delay-0 traffic, which is where the
  // many-in-flight query_async throughput went.
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::deque<Event> ready_;
  std::vector<Event> heap_;
  FaultInjector* fault_ = nullptr;
};

} // namespace squid::sim
