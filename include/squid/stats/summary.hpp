// Descriptive statistics used by the experiment harnesses.
//
// The paper's evaluation reports node/message counts per query and load
// distributions across nodes (Figs 18-19). Summary collects a sample and
// exposes mean, percentiles, and the imbalance metrics used to judge the
// load-balancing algorithms (coefficient of variation, max/mean, Gini).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace squid {

class Summary {
public:
  Summary() = default;
  explicit Summary(std::vector<double> samples);

  void add(double value) { samples_.push_back(value); }

  std::size_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept;
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Population standard deviation. 0 for fewer than two samples.
  double stddev() const noexcept;
  /// Coefficient of variation: stddev/mean. 0 when the mean is 0.
  double cv() const noexcept;
  /// max/mean ratio; a perfectly balanced distribution gives 1.0.
  double max_over_mean() const noexcept;
  /// Gini coefficient in [0,1); 0 is perfect equality.
  double gini() const;
  /// Linear-interpolated percentile, p in [0,100].
  double percentile(double p) const;

  const std::vector<double>& samples() const noexcept { return samples_; }

private:
  std::vector<double> samples_;
};

/// Fixed-width histogram over [lo, hi) with `buckets` equal intervals.
/// Values outside the range clamp into the first/last bucket; Fig 18
/// partitions the whole index space so nothing is actually out of range in
/// the experiments.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value, std::uint64_t weight = 1);

  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::uint64_t total() const noexcept;
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
};

} // namespace squid
