// Plain-text table / CSV emitter for the benchmark harnesses.
//
// Every figure-reproduction binary prints one or more tables whose rows match
// the series the paper plots, so EXPERIMENTS.md can quote them directly.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace squid {

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with %g-style trimming.
  static std::string cell(double value);
  static std::string cell(std::uint64_t value);

  /// Aligned, pipe-separated rendering for terminals.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace squid
