// Reproduces Fig 12 (Q1, 3D): growth of matches / processing nodes / data nodes
// (plus routing nodes and messages) as the system scales 1000->5400 nodes
// and 2e4->1e5 keys. See DESIGN.md and EXPERIMENTS.md.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  run_growth_figure("Fig 12 (Q1, 3D)", flags, [&flags](const ScalePoint& scale) {
    KeywordFixture fx = build_keyword_fixture(3, scale, flags.seed);
    FigureSetup setup;
    setup.queries = q1_queries(fx);
    setup.sys = std::move(fx.sys);
    return setup;
  });
  return 0;
}
