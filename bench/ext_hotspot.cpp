// Flash-crowd hotspot detection panel (DESIGN.md 4h, EXPERIMENTS.md):
// attach the virtual-time telemetry pipeline to a paper-scale fixture,
// drive a FlashCrowdWorkload through it — baseline Q1/Q2 hum, then a
// window where most queries converge on one keyword prefix — and measure
// what the observability layer sees: per-epoch load imbalance (Gini/CV/
// max-mean over the ring-space heatmap) before, during, and after the
// crowd, and the online detector's latency from workload onset to its
// first hotspot.onset event. Writes BENCH_hotspot.json (the raw heatmap
// and imbalance exports are available through `squid_cli heatmap`).

#include <cstdio>
#include <string>
#include <vector>

#include "common/fixture.hpp"
#include "squid/obs/export.hpp"
#include "squid/obs/hotspot.hpp"
#include "squid/obs/telemetry.hpp"
#include "squid/stats/summary.hpp"

namespace {

using namespace squid;
using namespace squid::bench;

constexpr sim::Time kEpochTicks = 256; // lockstep queries fit well inside
constexpr std::uint64_t kEpochs = 24;
constexpr std::size_t kQueriesPerEpoch = 32;

double mean_gini(const std::vector<obs::ImbalanceRow>& rows,
                 std::uint64_t lo, std::uint64_t hi) {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& row : rows)
    if (row.epoch >= lo && row.epoch < hi) {
      sum += row.gini;
      ++n;
    }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

} // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  if constexpr (!obs::kEnabled) {
    std::printf("ext_hotspot: observability compiled out (SQUID_OBS=OFF); "
                "nothing to measure\n");
    return 0;
  }

  const ScalePoint scale = paper_scales(flags)[0];
  KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed);

  workload::FlashCrowdConfig crowd;
  crowd.onset_epoch = 8;
  crowd.end_epoch = 16;
  const workload::FlashCrowdWorkload wl(*fx.corpus, crowd);

  obs::EpochSampler sampler(kEpochTicks);
  fx.sys->set_telemetry(&sampler);

  Rng rng(flags.seed ^ 0x40075);
  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (std::size_t q = 0; q < kQueriesPerEpoch; ++q) {
      const keyword::Query query = wl.draw(epoch, rng);
      (void)fx.sys->query(query, fx.sys->ring().random_node(rng));
    }
    sampler.advance_to(static_cast<sim::Time>(epoch + 1) * kEpochTicks);
  }
  fx.sys->set_telemetry(nullptr);

  const obs::LoadSeries series = sampler.finish();

  // Calibrate the detector's absolute floor on the pre-crowd hum: shared
  // keyword prefixes concentrate baseline routes on cluster entry nodes, so
  // the busy tail of normal traffic sits far above the default idle-ring
  // floor. Everything past the floor is the EWMA ratio test's job.
  Summary hum;
  for (const auto& sample : series.epochs)
    if (sample.epoch < crowd.onset_epoch)
      for (const auto& [node, load] : sample.nodes)
        hum.add(static_cast<double>(load.total()));
  obs::HotspotConfig cfg;
  cfg.min_load =
      std::max(cfg.min_load, 2.0 * hum.percentile(95));
  obs::HotspotDetector detector(cfg);
  detector.observe_all(series);
  const auto imbalance = obs::derive_imbalance(series);

  const auto latency = detector.detection_latency(crowd.onset_epoch);
  const double gini_before = mean_gini(imbalance, 0, crowd.onset_epoch);
  const double gini_during =
      mean_gini(imbalance, crowd.onset_epoch, crowd.end_epoch);
  const double gini_after = mean_gini(imbalance, crowd.end_epoch, kEpochs);

  Table table({"phase", "epochs", "mean gini"});
  table.add_row({"before", "0-7", Table::cell(gini_before)});
  table.add_row({"during", "8-15", Table::cell(gini_during)});
  table.add_row({"after", "16-23", Table::cell(gini_after)});
  emit("Flash crowd: ring-space load imbalance by phase", table, flags);

  std::printf("detection latency: ");
  if (latency.has_value())
    std::printf("%llu epoch(s) after onset\n",
                static_cast<unsigned long long>(*latency));
  else
    std::printf("crowd not detected\n");
  std::printf("hotspot events: %zu (onsets+clears), active at end: %zu\n",
              detector.events().size(), detector.active());

  // Top hot nodes with keyword attribution: a node's stored region starts
  // at its own ring position, so decoding that position names the keyword
  // prefix the crowd converged on.
  for (const auto& hot : detector.top_hot(3)) {
    const auto tokens =
        fx.sys->space().decode(fx.sys->curve().point_of(hot.node));
    std::string label;
    for (const auto& t : tokens) {
      if (!label.empty()) label += ",";
      label += keyword::to_string(t);
    }
    std::printf("  hot node load=%.0f baseline=%.1f keywords~(%s)%s\n",
                hot.load, hot.baseline, label.c_str(),
                hot.hot ? " [hot]" : "");
  }

  std::string json = "{\n";
  json += "  \"onset_epoch\": " + std::to_string(crowd.onset_epoch) + ",\n";
  json += "  \"end_epoch\": " + std::to_string(crowd.end_epoch) + ",\n";
  json += "  \"detection_latency_epochs\": " +
          (latency.has_value() ? std::to_string(*latency)
                               : std::string("null")) +
          ",\n";
  json += "  \"hotspot_events\": " + std::to_string(detector.events().size()) +
          ",\n";
  json += "  \"active_at_end\": " + std::to_string(detector.active()) + ",\n";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  \"gini_before\": %.4f,\n  \"gini_during\": %.4f,\n"
                "  \"gini_after\": %.4f,\n",
                gini_before, gini_during, gini_after);
  json += buf;
  json += "  \"gini_series\": [";
  for (std::size_t i = 0; i < imbalance.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s%.4f", i ? ", " : "",
                  imbalance[i].gini);
    json += buf;
  }
  json += "]\n}\n";

  const std::string out = "BENCH_hotspot.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  maybe_dump_metrics(flags);
  return 0;
}
