// Flash-crowd hotspot panel (DESIGN.md 4h/4i, EXPERIMENTS.md): attach the
// virtual-time telemetry pipeline to a paper-scale fixture, drive an
// adversarial workload through it, and measure both halves of the hotspot
// loop:
//
//   detection — per-epoch load imbalance (Gini over the ring-space heatmap)
//   and the online detector's latency from workload onset to its first
//   hotspot.onset event (the PR 8 panel);
//
//   reaction — the same run with the ReactionController closing the loop
//   (median-key splits onto cold peers, hot-cluster replication with
//   invalidation on republish; docs/LOAD_BALANCING.md), reported as
//   before/after-onset Gini and critical-path latency percentiles, for all
//   three delivery modes (kLockstep / kVirtualTime / kParallel).
//
// Flags (before the common bench flags):
//   --react / --no-react   run the reaction comparison (default on; off
//                          reproduces the detection-only panel, lockstep)
//   --scenario=flash|diurnal|skew
//       flash    one suddenly popular keyword prefix (default)
//       diurnal  the popularity focus relocates every few epochs
//       skew     concentrated publishes invalidating a served replica
//
// The detector's absolute floor is calibrated on the pre-onset hum via
// obs::calibrated_min_load with SquidConfig::hotspot_min_load_factor — the
// same documented rule `squid_cli heatmap` applies, so CLI and bench agree.
// Writes BENCH_hotspot.json (detection fields plus one reaction row per
// mode × controller arm).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/fixture.hpp"
#include "squid/core/parallel.hpp"
#include "squid/core/reaction.hpp"
#include "squid/obs/export.hpp"
#include "squid/obs/hotspot.hpp"
#include "squid/obs/telemetry.hpp"
#include "squid/sim/engine.hpp"
#include "squid/stats/summary.hpp"

namespace {

using namespace squid;
using namespace squid::bench;

constexpr sim::Time kEpochTicks = 256; // lockstep queries fit well inside
constexpr std::uint64_t kEpochs = 24;
constexpr std::size_t kQueriesPerEpoch = 32;
constexpr std::size_t kCrowdMultiplier = 3;    // a flash crowd ADDS traffic
constexpr std::size_t kPublishesPerEpoch = 16; // skew scenario only
constexpr unsigned kParallelShards = 4;

enum class Mode { kLockstep, kVirtual, kParallel };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kLockstep: return "lockstep";
    case Mode::kVirtual: return "virtual";
    case Mode::kParallel: return "parallel";
  }
  return "?";
}

/// The fixed per-epoch request stream, precomputed once so every mode and
/// both controller arms replay byte-identical queries and publishes.
struct EpochPlan {
  std::vector<keyword::Query> queries;
  std::vector<core::DataElement> publishes;
};

struct Scenario {
  std::string name;
  std::uint64_t onset = 8; ///< first adversarial epoch (calibration window end)
  std::uint64_t end = 16;  ///< first calm epoch again (flash only; else kEpochs)
  std::vector<EpochPlan> plan;
};

Scenario build_scenario(const std::string& name,
                        const workload::KeywordCorpus& corpus,
                        std::uint64_t seed) {
  Scenario sc;
  sc.name = name;
  sc.plan.resize(kEpochs);
  Rng rng(seed ^ 0x5ce7a110);
  if (name == "flash") {
    workload::FlashCrowdConfig crowd;
    crowd.onset_epoch = 8;
    crowd.end_epoch = 16;
    sc.onset = crowd.onset_epoch;
    sc.end = crowd.end_epoch;
    const workload::FlashCrowdWorkload wl(corpus, crowd);
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      // A flash crowd multiplies request volume, it does not merely re-mix
      // the baseline stream — the extra draws carry the crowd/baseline mix
      // the workload already models for that epoch.
      const bool crowded = e >= sc.onset && e < sc.end;
      const std::size_t n = kQueriesPerEpoch * (crowded ? kCrowdMultiplier : 1);
      for (std::size_t q = 0; q < n; ++q)
        sc.plan[e].queries.push_back(wl.draw(e, rng));
    }
  } else if (name == "diurnal") {
    workload::DiurnalShiftConfig cfg; // focus relocates every period_epochs
    const workload::DiurnalShiftWorkload wl(corpus, cfg);
    // Night first: the calibration window draws the same stream with the
    // focus turned off, so the detector's floor measures the diffuse hum —
    // calibrating on already-focused traffic would put 2x its own p95 above
    // every later peak and the relocations could never register as surges.
    workload::DiurnalShiftConfig diffuse = cfg;
    diffuse.focus_fraction = 0.0;
    const workload::DiurnalShiftWorkload night(corpus, diffuse);
    sc.onset = cfg.period_epochs; // daybreak: the focus switches on here
    sc.end = kEpochs;             // and then relocates every period
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      const workload::DiurnalShiftWorkload& src = e < sc.onset ? night : wl;
      for (std::size_t q = 0; q < kQueriesPerEpoch; ++q)
        sc.plan[e].queries.push_back(src.draw(e, rng));
    }
  } else if (name == "skew") {
    const workload::SkewedPublisherWorkload wl(corpus, {});
    sc.onset = 8;
    sc.end = kEpochs;
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      const bool hot = e >= sc.onset;
      for (std::size_t q = 0; q < kQueriesPerEpoch; ++q) {
        if (hot && rng.chance(0.6))
          sc.plan[e].queries.push_back(wl.hot_query());
        else
          sc.plan[e].queries.push_back(wl.draw(rng));
      }
      if (hot)
        for (std::size_t p = 0; p < kPublishesPerEpoch; ++p)
          sc.plan[e].publishes.push_back(wl.make_element(rng));
    }
  } else {
    std::fprintf(stderr, "unknown --scenario=%s (flash|diurnal|skew)\n",
                 name.c_str());
    std::exit(2);
  }
  return sc;
}

struct ArmOutcome {
  obs::LoadSeries series;
  std::vector<obs::ImbalanceRow> imbalance;
  Summary lat_pre;    ///< critical-path hops, epochs before onset
  Summary lat_during; ///< critical-path hops, [onset, end)
  Summary lat_after;  ///< critical-path hops, [end, kEpochs)
  core::ReactionReport totals;
  std::optional<std::uint64_t> detection_latency;
  std::vector<obs::HotspotDetector::HotNode> top_hot;
  std::size_t events = 0;
  std::size_t active_at_end = 0;
  std::size_t nodes_end = 0;
  double min_load = 0; ///< the calibrated detector floor actually used
};

/// Mean Gini over the epoch window [lo, hi), computed over the nodes active
/// *within that window*. Restricting the node set matters for the reaction
/// arms: derive_imbalance over the full series would charge nodes created by
/// mid-run splits as zero-load rows to epochs before they existed, inflating
/// early-window inequality retroactively.
double windowed_gini(const obs::LoadSeries& series, std::uint64_t lo,
                     std::uint64_t hi) {
  obs::LoadSeries window;
  window.epoch_ticks = series.epoch_ticks;
  window.id_bits = series.id_bits;
  for (const auto& sample : series.epochs)
    if (sample.epoch >= lo && sample.epoch < hi)
      window.epochs.push_back(sample);
  const auto rows = obs::derive_imbalance(window);
  double sum = 0;
  for (const auto& row : rows) sum += row.gini;
  return rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
}

/// One full run of the scenario in one delivery mode, controller on or off
/// (off = detection only, the PR 8 behavior). Fresh fixture per arm: the
/// controller mutates the overlay, so arms must not share topology.
ArmOutcome run_arm(const Scenario& sc, Mode mode, const Flags& flags,
                   bool react) {
  const ScalePoint scale = paper_scales(flags)[0];
  KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed);

  obs::EpochSampler sampler(kEpochTicks);
  fx.sys->set_telemetry(&sampler);

  ArmOutcome out;
  Rng origin_rng(flags.seed ^ 0x40075);
  std::unique_ptr<core::ReactionController> controller;

  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (const auto& element : sc.plan[epoch].publishes)
      fx.sys->publish(element);

    const auto& queries = sc.plan[epoch].queries;
    Summary& lat = epoch < sc.onset
                       ? out.lat_pre
                       : (epoch < sc.end ? out.lat_during : out.lat_after);
    switch (mode) {
      case Mode::kLockstep:
        for (const auto& query : queries) {
          const auto result =
              fx.sys->query(query, fx.sys->ring().random_node(origin_rng));
          lat.add(static_cast<double>(result.stats.critical_path_hops));
        }
        break;
      case Mode::kVirtual: {
        sim::Engine engine;
        std::vector<core::QueryHandle> handles;
        handles.reserve(queries.size());
        for (const auto& query : queries)
          handles.push_back(fx.sys->query_async(
              query, fx.sys->ring().random_node(origin_rng), engine));
        engine.run();
        for (const auto& h : handles)
          lat.add(static_cast<double>(h.result().stats.critical_path_hops));
        break;
      }
      case Mode::kParallel: {
        std::vector<core::ParallelQuerySpec> specs;
        specs.reserve(queries.size());
        for (const auto& query : queries) {
          core::ParallelQuerySpec spec;
          spec.query = query;
          spec.origin = fx.sys->ring().random_node(origin_rng);
          specs.push_back(std::move(spec));
        }
        core::ParallelOptions opts;
        opts.shards = kParallelShards;
        const core::ParallelRun run = fx.sys->query_parallel(specs, opts);
        for (const auto& r : run.results)
          lat.add(static_cast<double>(r.stats.critical_path_hops));
        break;
      }
    }

    // Epoch close: a safe point in every mode — no query in flight.
    sampler.advance_to(static_cast<sim::Time>(epoch + 1) * kEpochTicks);
    const obs::LoadSeries so_far = sampler.finish();
    if (epoch + 1 == sc.onset) {
      // Calibrate the detector's absolute floor on the pre-onset hum, then
      // bring the controller online and replay the calibration window so
      // its EWMA baselines match an always-on detector.
      obs::HotspotConfig hcfg;
      hcfg.min_load =
          obs::calibrated_min_load(hcfg.min_load, so_far, sc.onset,
                                   fx.sys->config().hotspot_min_load_factor);
      out.min_load = hcfg.min_load;
      core::ReactionConfig rcfg;
      rcfg.enabled = react;
      controller = std::make_unique<core::ReactionController>(
          *fx.sys, hcfg, rcfg, flags.seed ^ 0xbead);
      for (std::uint64_t i = 0; i <= epoch && i < so_far.epochs.size(); ++i)
        controller->on_epoch(so_far.epochs[i]);
    } else if (controller && epoch < so_far.epochs.size()) {
      const auto r = controller->on_epoch(so_far.epochs[epoch]);
      if (std::getenv("SQUID_REACT_TRACE") && mode == Mode::kLockstep &&
          react) {
        const auto& sample = so_far.epochs[epoch];
        std::vector<std::uint64_t> loads;
        const obs::LoadVector* top = nullptr;
        for (const auto& [node, lv] : sample.nodes) {
          loads.push_back(lv.total());
          if (top == nullptr || lv.total() > top->total()) top = &lv;
        }
        std::sort(loads.rbegin(), loads.rend());
        if (top != nullptr)
          std::fprintf(stderr,
                       "  top1: scan=%llu routes=%llu pub=%llu cache=%llu "
                       "replies=%llu\n",
                       static_cast<unsigned long long>(top->scan_hits),
                       static_cast<unsigned long long>(top->routes_through),
                       static_cast<unsigned long long>(top->publishes),
                       static_cast<unsigned long long>(top->cache_hits),
                       static_cast<unsigned long long>(top->replies_forwarded));
        std::fprintf(stderr,
                     "epoch %llu: onsets=%zu clears=%zu repl=%zu drops=%zu "
                     "gini=%.3f top5=",
                     static_cast<unsigned long long>(epoch), r.onsets,
                     r.clears, r.replications, r.drops,
                     windowed_gini(so_far, epoch, epoch + 1));
        for (std::size_t i = 0; i < loads.size() && i < 5; ++i)
          std::fprintf(stderr, "%llu ",
                       static_cast<unsigned long long>(loads[i]));
        std::fprintf(stderr, "n=%zu\n", sample.nodes.size());
      }
    }
  }
  fx.sys->set_telemetry(nullptr);

  out.series = sampler.finish();
  out.imbalance = obs::derive_imbalance(out.series);
  if (controller) {
    out.totals = controller->totals();
    out.detection_latency = controller->detector().detection_latency(sc.onset);
    out.top_hot = controller->detector().top_hot(3);
    out.events = controller->detector().events().size();
    out.active_at_end = controller->detector().active();
  }
  out.nodes_end = fx.sys->ring().size();
  return out;
}

std::string keyword_label(const core::SquidSystem& sys,
                          overlay::NodeId node) {
  std::string label;
  for (const auto& t : sys.space().decode(sys.curve().point_of(node))) {
    if (!label.empty()) label += ",";
    label += keyword::to_string(t);
  }
  return label;
}

} // namespace

int main(int argc, char** argv) {
  // Strip this bench's own flags before the common parser (which rejects
  // unknown flags) sees the command line.
  bool react = true;
  std::string scenario = "flash";
  std::vector<char*> pass{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--react") {
      react = true;
    } else if (arg == "--no-react") {
      react = false;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario = arg.substr(std::string("--scenario=").size());
    } else {
      pass.push_back(argv[i]);
    }
  }
  const Flags flags = Flags::parse(static_cast<int>(pass.size()), pass.data());
  if constexpr (!obs::kEnabled) {
    std::printf("ext_hotspot: observability compiled out (SQUID_OBS=OFF); "
                "nothing to measure\n");
    return 0;
  }

  // The corpus only feeds schedule construction here; every arm builds its
  // own identical fixture (same seed) so queries stay valid across them.
  const ScalePoint scale = paper_scales(flags)[0];
  KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed);
  const Scenario sc = build_scenario(scenario, *fx.corpus, flags.seed);

  // --- Detection panel (lockstep, controller off) --------------------------
  const ArmOutcome detect = run_arm(sc, Mode::kLockstep, flags, false);
  const double gini_before = windowed_gini(detect.series, 0, sc.onset);
  const double gini_during = windowed_gini(detect.series, sc.onset, sc.end);
  const double gini_after = windowed_gini(detect.series, sc.end, kEpochs);

  Table table({"phase", "epochs", "mean gini"});
  table.add_row({"before", "0-" + std::to_string(sc.onset - 1),
                 Table::cell(gini_before)});
  table.add_row({"during",
                 std::to_string(sc.onset) + "-" + std::to_string(sc.end - 1),
                 Table::cell(gini_during)});
  table.add_row({"after", std::to_string(sc.end) + "-", Table::cell(gini_after)});
  emit("Scenario '" + sc.name + "': ring-space load imbalance by phase",
       table, flags);

  std::printf("calibrated min_load: %.1f (factor %.1f, pre-onset p95)\n",
              detect.min_load, fx.sys->config().hotspot_min_load_factor);
  std::printf("detection latency: ");
  if (detect.detection_latency.has_value())
    std::printf("%llu epoch(s) after onset\n",
                static_cast<unsigned long long>(*detect.detection_latency));
  else
    std::printf("workload shift not detected\n");
  std::printf("hotspot events: %zu (onsets+clears), active at end: %zu\n",
              detect.events, detect.active_at_end);

  // Top hot nodes with keyword attribution: a node's stored region starts
  // at its own ring position, so decoding that position names the keyword
  // prefix the crowd converged on.
  for (const auto& hot : detect.top_hot)
    std::printf("  hot node load=%.0f baseline=%.1f keywords~(%s)%s\n",
                hot.load, hot.baseline,
                keyword_label(*fx.sys, hot.node).c_str(),
                hot.hot ? " [hot]" : "");

  // --- Reaction panel (three modes × controller off/on) --------------------
  struct ReactionRow {
    Mode mode;
    bool react;
    ArmOutcome arm;
  };
  std::vector<ReactionRow> rows;
  if (react) {
    Table rt({"mode", "controller", "gini pre", "gini during", "gini after",
              "p99 pre", "p99 during", "p99 after", "splits", "repl",
              "drops", "nodes"});
    for (const Mode mode :
         {Mode::kLockstep, Mode::kVirtual, Mode::kParallel}) {
      for (const bool on : {false, true}) {
        ArmOutcome arm = (mode == Mode::kLockstep && !on)
                             ? detect // already measured above
                             : run_arm(sc, mode, flags, on);
        rt.add_row({mode_name(mode), on ? "react" : "detect",
                    Table::cell(windowed_gini(arm.series, 0, sc.onset)),
                    Table::cell(windowed_gini(arm.series, sc.onset, sc.end)),
                    Table::cell(windowed_gini(arm.series, sc.end, kEpochs)),
                    Table::cell(arm.lat_pre.percentile(99)),
                    Table::cell(arm.lat_during.percentile(99)),
                    Table::cell(arm.lat_after.percentile(99)),
                    Table::cell(std::uint64_t{arm.totals.splits}),
                    Table::cell(std::uint64_t{arm.totals.replications}),
                    Table::cell(std::uint64_t{arm.totals.drops}),
                    Table::cell(std::uint64_t{arm.nodes_end})});
        rows.push_back({mode, on, std::move(arm)});
      }
    }
    emit("Reaction: detector-driven split/replicate vs detection only", rt,
         flags);
  }

  // --- BENCH_hotspot.json --------------------------------------------------
  char buf[256];
  std::string json = "{\n";
  json += "  \"scenario\": \"" + sc.name + "\",\n";
  json += "  \"onset_epoch\": " + std::to_string(sc.onset) + ",\n";
  json += "  \"end_epoch\": " + std::to_string(sc.end) + ",\n";
  std::snprintf(buf, sizeof buf, "  \"calibrated_min_load\": %.2f,\n",
                detect.min_load);
  json += buf;
  json += "  \"detection_latency_epochs\": " +
          (detect.detection_latency.has_value()
               ? std::to_string(*detect.detection_latency)
               : std::string("null")) +
          ",\n";
  json += "  \"hotspot_events\": " + std::to_string(detect.events) + ",\n";
  json += "  \"active_at_end\": " + std::to_string(detect.active_at_end) +
          ",\n";
  std::snprintf(buf, sizeof buf,
                "  \"gini_before\": %.4f,\n  \"gini_during\": %.4f,\n"
                "  \"gini_after\": %.4f,\n",
                gini_before, gini_during, gini_after);
  json += buf;
  json += "  \"gini_series\": [";
  for (std::size_t i = 0; i < detect.imbalance.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s%.4f", i ? ", " : "",
                  detect.imbalance[i].gini);
    json += buf;
  }
  json += "],\n";
  json += "  \"reaction\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ReactionRow& row = rows[i];
    const ArmOutcome& arm = row.arm;
    json += i ? ",\n    " : "\n    ";
    std::snprintf(
        buf, sizeof buf,
        "{\"mode\": \"%s\", \"controller\": %s, "
        "\"gini_pre\": %.4f, \"gini_during\": %.4f, \"gini_after\": %.4f, ",
        mode_name(row.mode), row.react ? "true" : "false",
        windowed_gini(arm.series, 0, sc.onset),
        windowed_gini(arm.series, sc.onset, sc.end),
        windowed_gini(arm.series, sc.end, kEpochs));
    json += buf;
    std::snprintf(buf, sizeof buf,
                  "\"p50_pre\": %.1f, \"p99_pre\": %.1f, "
                  "\"p50_during\": %.1f, \"p99_during\": %.1f, "
                  "\"p50_after\": %.1f, \"p99_after\": %.1f, ",
                  arm.lat_pre.percentile(50), arm.lat_pre.percentile(99),
                  arm.lat_during.percentile(50), arm.lat_during.percentile(99),
                  arm.lat_after.count() ? arm.lat_after.percentile(50) : 0.0,
                  arm.lat_after.count() ? arm.lat_after.percentile(99) : 0.0);
    json += buf;
    std::snprintf(buf, sizeof buf,
                  "\"onsets\": %zu, \"splits\": %zu, \"replications\": %zu, "
                  "\"refreshes\": %zu, \"drops\": %zu, \"nodes_end\": %zu}",
                  arm.totals.onsets, arm.totals.splits,
                  arm.totals.replications, arm.totals.refreshes,
                  arm.totals.drops, arm.nodes_end);
    json += buf;
  }
  json += rows.empty() ? "]\n}\n" : "\n  ]\n}\n";

  const std::string out = "BENCH_hotspot.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  maybe_dump_metrics(flags);
  return 0;
}
