// Churn sweep under full fault injection (docs/FAULT_MODEL.md,
// EXPERIMENTS.md "measuring recall under churn"): drive a seeded FaultPlan
// — crash waves, a timed partition, a rejoin wave, and ambient message
// loss/delay/duplication — through the sim engine against a paper-scale
// fixture, and measure query recall, cost, and retry traffic at four
// phases: clean baseline, mid-partition, post-churn (no repair yet), and
// after the periodic repair window (stabilization + timeout processing +
// replica repair). Writes BENCH_churn.json; the repaired phase is expected
// to recover >= 99% of the baseline recall.

#include <cstdio>
#include <string>
#include <vector>

#include "common/fixture.hpp"
#include "common/query_sets.hpp"
#include "squid/core/replication.hpp"
#include "squid/sim/fault.hpp"

namespace {

using namespace squid;
using namespace squid::bench;

struct PhaseStats {
  double recall = 0; // % of the clean-baseline matches recovered
  double messages = 0;
  double critical = 0;
  double retries = 0;
  double failed = 0;
};

PhaseStats measure(const core::SquidSystem& sys,
                   const std::vector<NamedQuery>& queries,
                   const std::vector<std::size_t>& truth, Rng& rng) {
  PhaseStats p;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto r = sys.query(queries[q].query, sys.ring().random_node(rng));
    p.recall += truth[q] == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(r.stats.matches) /
                          static_cast<double>(truth[q]);
    p.messages += static_cast<double>(r.stats.messages);
    p.critical += static_cast<double>(r.stats.critical_path_hops);
    p.retries += static_cast<double>(r.stats.retries);
    p.failed += static_cast<double>(r.stats.failed_clusters);
  }
  const double n = static_cast<double>(queries.size());
  p.recall /= n;
  p.messages /= n;
  p.critical /= n;
  p.retries /= n;
  p.failed /= n;
  return p;
}

} // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[0];

  Table table({"churn %", "phase", "recall %", "messages",
               "critical path", "retries", "failed clusters"});
  std::string json = "[\n";
  bool first_row = true;
  const auto add_row = [&](double churn_pct, const char* phase,
                           const PhaseStats& p) {
    table.add_row({Table::cell(churn_pct), phase,
                   Table::cell(p.recall), Table::cell(p.messages),
                   Table::cell(p.critical), Table::cell(p.retries),
                   Table::cell(p.failed)});
    char entry[320];
    std::snprintf(entry, sizeof entry,
                  "  {\"churn_pct\": %.0f, \"phase\": \"%s\", "
                  "\"recall_pct\": %.2f, \"messages\": %.1f, "
                  "\"critical_path_hops\": %.2f, \"retries\": %.2f, "
                  "\"failed_clusters\": %.2f}",
                  churn_pct, phase, p.recall, p.messages, p.critical,
                  p.retries, p.failed);
    if (!first_row) json += ",\n";
    json += entry;
    first_row = false;
  };

  for (const double churn : {0.10, 0.20, 0.30}) {
    KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed);
    core::ReplicationManager replication(*fx.sys, 3);
    replication.set_auto_repair(true);

    Rng churn_rng(flags.seed ^ 0xc4a5);
    Rng measure_rng(flags.seed ^ 0x3ea5);
    const auto queries = q1_queries(fx);
    std::vector<std::size_t> truth;
    for (const auto& nq : queries)
      truth.push_back(
          fx.sys->query(nq.query, fx.sys->ring().random_node(measure_rng))
              .stats.matches);
    add_row(churn * 100, "baseline",
            measure(*fx.sys, queries, truth, measure_rng));

    // The seeded fault schedule: three crash waves, a ring-splitting
    // partition over the second measurement, ambient message faults
    // throughout, and a partial rejoin before repair starts.
    const std::size_t kill = static_cast<std::size_t>(
        churn * static_cast<double>(fx.sys->ring().size()));
    sim::FaultPlan plan;
    plan.seed = flags.seed ^ 0xfau;
    plan.drop_probability = 0.05;
    plan.delay_probability = 0.2;
    plan.max_delay = 4;
    plan.duplicate_probability = 0.02;
    plan.events.push_back({40, /*crash=*/true, static_cast<std::uint32_t>(kill / 3)});
    plan.events.push_back({80, /*crash=*/true, static_cast<std::uint32_t>(kill / 3)});
    plan.events.push_back(
        {120, /*crash=*/true, static_cast<std::uint32_t>(kill - 2 * (kill / 3))});
    plan.events.push_back({200, /*crash=*/false, static_cast<std::uint32_t>(kill / 3)});
    plan.partitions.push_back(
        {140, 180,
         static_cast<overlay::NodeId>(static_cast<u128>(1)
                                      << (fx.sys->curve().index_bits() - 1))});

    sim::FaultInjector injector(plan);
    fx.sys->set_fault_injector(&injector);
    sim::Engine engine;
    engine.set_fault_injector(&injector);
    injector.schedule_events(engine, [&](const sim::FaultPlan::NodeEvent& e) {
      for (std::uint32_t i = 0; i < e.count; ++i) {
        if (e.crash) {
          replication.fail_node(fx.sys->ring().random_node(churn_rng));
        } else {
          (void)replication.join_node(churn_rng);
        }
      }
    });

    engine.run(150); // through the crash waves, into the partition window
    add_row(churn * 100, "partitioned",
            measure(*fx.sys, queries, truth, measure_rng));

    engine.run(220); // partition healed, rejoin wave landed; still no repair
    add_row(churn * 100, "churn",
            measure(*fx.sys, queries, truth, measure_rng));

    // The repair window: periodic maintenance — drain timeout suspicions
    // into ring repair, stabilize, re-replicate — until the clock hits 500.
    std::size_t timeouts_drained = 0;
    engine.schedule_periodic(30, [&] {
      timeouts_drained += fx.sys->process_timeouts();
      fx.sys->stabilize(churn_rng, 2);
      (void)replication.repair();
      return engine.now() < 500;
    });
    engine.run();
    add_row(churn * 100, "repaired",
            measure(*fx.sys, queries, truth, measure_rng));

    std::printf("churn %2.0f%%: drops=%llu delays=%llu dups=%llu "
                "partition_drops=%llu timeouts_drained=%llu lost_keys=%zu\n",
                churn * 100,
                static_cast<unsigned long long>(injector.dropped()),
                static_cast<unsigned long long>(injector.delayed()),
                static_cast<unsigned long long>(injector.duplicated()),
                static_cast<unsigned long long>(injector.partition_drops()),
                static_cast<unsigned long long>(timeouts_drained),
                replication.lost_keys());

    maybe_capture_trace(*fx.sys, queries.front().query, flags, measure_rng);
    fx.sys->set_fault_injector(nullptr);
  }
  json += "\n]\n";

  emit("Churn sweep: recall and cost through crash/partition/repair phases",
       table, flags);
  const std::string out = "BENCH_churn.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  maybe_dump_metrics(flags);
  return 0;
}
