// Churn bench (paper 3.2 / future-work fault tolerance): query completeness
// and cost as a function of the fraction of abruptly failed peers and of
// the number of stabilization rounds run afterwards.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[0];

  Table table({"failed %", "stabilize rounds", "completeness %",
               "messages", "processing nodes"});
  for (const double fail_fraction : {0.0, 0.1, 0.2, 0.3}) {
    for (const unsigned rounds : {0u, 1u, 3u}) {
      if (fail_fraction == 0.0 && rounds > 0) continue;
      KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed);
      Rng rng(flags.seed ^ 0xc0de);
      // True match counts recorded before any failure.
      const auto queries = q1_queries(fx);
      std::vector<std::size_t> truth;
      for (const auto& nq : queries)
        truth.push_back(
            fx.sys->query(nq.query, fx.sys->ring().random_node(rng))
                .stats.matches);

      const auto kill =
          static_cast<std::size_t>(fail_fraction *
                                   static_cast<double>(fx.sys->ring().size()));
      for (std::size_t i = 0; i < kill; ++i)
        fx.sys->fail_node(fx.sys->ring().random_node(rng));
      fx.sys->stabilize(rng, rounds);

      double complete = 0, messages = 0, processing = 0;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto result =
            fx.sys->query(queries[q].query, fx.sys->ring().random_node(rng));
        complete += truth[q] == 0
                        ? 100.0
                        : 100.0 * static_cast<double>(result.stats.matches) /
                              static_cast<double>(truth[q]);
        messages += static_cast<double>(result.stats.messages);
        processing += static_cast<double>(result.stats.processing_nodes);
      }
      const double n = static_cast<double>(queries.size());
      table.add_row({Table::cell(fail_fraction * 100),
                     Table::cell(std::uint64_t{rounds}),
                     Table::cell(complete / n), Table::cell(messages / n),
                     Table::cell(processing / n)});
    }
  }
  emit("Churn: completeness and cost vs failures and stabilization", table,
       flags);
  return 0;
}
