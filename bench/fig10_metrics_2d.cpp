// Reproduces Fig 10: all metrics (matches, routing nodes, messages,
// processing nodes, data nodes) for the Q1 2D queries at the paper's two
// reference scales — 3200 nodes / 6e4 keys and 5400 nodes / 1e5 keys.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const auto scales = paper_scales(flags);
  run_metrics_figure("Fig 10 (Q1 metrics, 2D)", flags,
                     {scales[2], scales[4]},
                     [&flags](const ScalePoint& scale) {
                       KeywordFixture fx =
                           build_keyword_fixture(2, scale, flags.seed);
                       FigureSetup setup;
                       setup.queries = q1_queries(fx);
                       setup.sys = std::move(fx.sys);
                       return setup;
                     });
  return 0;
}
