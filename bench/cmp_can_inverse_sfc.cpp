// Squid vs the Andrzejak-Xu CAN + inverse-SFC range index (paper 2).
//
// Single-attribute ranges: both systems resolve them with bounded cost.
// Multi-attribute ranges: Squid's forward-SFC index answers them with one
// query; the inverse-SFC design needs one overlay per attribute and a
// client-side intersection, paying every per-attribute cost and shipping
// every per-attribute candidate — the architectural difference the paper
// claims ("we can map and search a resource using multiple attributes").

#include <algorithm>
#include <set>

#include "common/fixture.hpp"
#include "squid/baselines/can_inverse_sfc.hpp"
#include "squid/workload/corpus.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t nodes =
      std::max<std::size_t>(32, static_cast<std::size_t>(1000 * flags.shrink()));
  const std::size_t machines = nodes * 20;

  Rng rng(flags.seed);
  workload::ResourceCorpus corpus;
  core::SquidSystem squid(corpus.make_space(), balanced_config());
  const auto fleet = corpus.make_elements(machines, rng);
  for (const auto& m : fleet) squid.publish(m);
  squid.build_network(1, rng);
  for (std::size_t i = 1; i < nodes; ++i) (void)squid.join_node(rng);
  for (int s = 0; s < 6; ++s) (void)squid.runtime_balance_sweep(1.3);
  squid.repair_routing();

  // One inverse-SFC overlay per attribute (storage, bandwidth, cost).
  const double domains[3][2] = {{0, 4096}, {0, 10000}, {0, 1000}};
  std::vector<std::unique_ptr<baselines::CanInverseSfcIndex>> per_attribute;
  for (int a = 0; a < 3; ++a) {
    per_attribute.push_back(std::make_unique<baselines::CanInverseSfcIndex>(
        2, 10, nodes, domains[a][0], domains[a][1], rng));
    for (const auto& m : fleet)
      per_attribute[a]->publish(m.name, std::get<double>(m.keys[a]));
  }

  Table table({"query", "system", "matches", "messages", "nodes touched",
               "records shipped"});

  // Case 1: single-attribute range (storage in [200, 600]).
  {
    const keyword::Query q = corpus.q3_all_ranges(200, 600, 0, 10000, 0, 1000);
    const auto sq = squid.query(q, squid.ring().random_node(rng));
    table.add_row({"storage 200-600", "squid (one 3D index)",
                   Table::cell(std::uint64_t{sq.stats.matches}),
                   Table::cell(std::uint64_t{sq.stats.messages}),
                   Table::cell(std::uint64_t{sq.stats.routing_nodes}),
                   Table::cell(std::uint64_t{sq.stats.matches})});
    const auto cs = per_attribute[0]->range_query(200, 600, rng);
    table.add_row({"storage 200-600", "CAN inverse-SFC (1 attribute)",
                   Table::cell(std::uint64_t{cs.matches}),
                   Table::cell(std::uint64_t{cs.messages}),
                   Table::cell(std::uint64_t{cs.routing_nodes}),
                   Table::cell(std::uint64_t{cs.matches})});
  }

  // Case 2: three-attribute range. Squid: one query. Inverse-SFC: query
  // each attribute index and intersect names client-side.
  {
    const keyword::Query q =
        corpus.q3_all_ranges(200, 600, 900, 2600, 0, 200);
    const auto sq = squid.query(q, squid.ring().random_node(rng));
    table.add_row({"storage+bw+cost ranges", "squid (one 3D index)",
                   Table::cell(std::uint64_t{sq.stats.matches}),
                   Table::cell(std::uint64_t{sq.stats.messages}),
                   Table::cell(std::uint64_t{sq.stats.routing_nodes}),
                   Table::cell(std::uint64_t{sq.stats.matches})});

    const double ranges[3][2] = {{200, 600}, {900, 2600}, {0, 200}};
    std::size_t messages = 0, touched = 0, shipped = 0;
    std::vector<std::string> intersection;
    for (int a = 0; a < 3; ++a) {
      const auto r =
          per_attribute[a]->range_query(ranges[a][0], ranges[a][1], rng);
      messages += r.messages;
      touched += r.routing_nodes;
      shipped += r.matches; // every per-attribute candidate travels back
      if (a == 0) {
        intersection = r.names;
      } else {
        std::vector<std::string> next;
        std::set_intersection(intersection.begin(), intersection.end(),
                              r.names.begin(), r.names.end(),
                              std::back_inserter(next));
        intersection = std::move(next);
      }
    }
    table.add_row({"storage+bw+cost ranges",
                   "CAN inverse-SFC (3 overlays + intersect)",
                   Table::cell(std::uint64_t{intersection.size()}),
                   Table::cell(std::uint64_t{messages}),
                   Table::cell(std::uint64_t{touched}),
                   Table::cell(std::uint64_t{shipped})});
  }

  emit("Squid vs CAN inverse-SFC (" + std::to_string(nodes) + " peers, " +
           std::to_string(machines) + " machines)",
       table, flags);
  return 0;
}
