// Latency extension bench: critical-path hops (the longest chain of
// dependent messages) vs system size, per query family. Messages measure
// network load; the critical path is what a user waits for — independent
// sub-queries travel in parallel.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"
#include "squid/core/timing.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);

  Table table({"nodes", "keys", "query", "critical path (hops)", "messages",
               "chord lookup (hops)", "est. latency p50 (ms)",
               "est. latency p95 (ms)"});
  const core::LinkModel link{20.0, 20.0, 1.0}; // WAN-ish: 20-40ms per hop
  for (const auto& scale : paper_scales(flags)) {
    KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed);
    Rng rng(flags.seed ^ 0x1a7);
    // Reference: a plain Chord lookup at this scale.
    double lookup_hops = 0;
    for (int i = 0; i < 50; ++i) {
      const auto r = fx.sys->ring().route(
          fx.sys->ring().random_node(rng),
          rng.next128() & fx.sys->ring().id_mask());
      lookup_hops += static_cast<double>(r.hops());
    }
    lookup_hops /= 50;

    const auto queries = q1_queries(fx);
    for (std::size_t qi = 0; qi < 2; ++qi) { // broad + mid query suffice
      double critical = 0, messages = 0;
      Summary latency;
      for (int i = 0; i < 10; ++i) {
        const auto result = fx.sys->query(queries[qi].query,
                                          fx.sys->ring().random_node(rng));
        critical += static_cast<double>(result.stats.critical_path_hops);
        messages += static_cast<double>(result.stats.messages);
        const Summary est = core::estimate_latency_ms(result, link, rng, 20);
        for (const double sample : est.samples()) latency.add(sample);
      }
      table.add_row({Table::cell(std::uint64_t{scale.nodes}),
                     Table::cell(std::uint64_t{scale.keys}),
                     queries[qi].label, Table::cell(critical / 10),
                     Table::cell(messages / 10), Table::cell(lookup_hops),
                     Table::cell(latency.percentile(50)),
                     Table::cell(latency.percentile(95))});
    }
  }
  emit("Query latency: critical-path hops vs system size", table, flags);
  return 0;
}
