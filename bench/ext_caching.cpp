// Hot-spot extension bench: a Zipf-repeating query workload with and
// without the cluster-owner cache — hit rate, messages, peers touched.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[1]; // 2000 nodes / 4e4 keys
  constexpr int kWorkload = 300;                   // queries per run

  Table table({"variant", "messages", "routing nodes", "hit rate %"});
  for (const bool caching : {false, true}) {
    core::SquidConfig config = balanced_config();
    config.cache_cluster_owners = caching;
    KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed, config);
    const auto queries = q1_queries(fx);
    Rng rng(flags.seed ^ 0xcac4e);
    ZipfSampler popularity(queries.size(), 1.1);

    double messages = 0, routing = 0;
    for (int i = 0; i < kWorkload; ++i) {
      const auto& nq = queries[popularity.sample(rng)];
      const auto result =
          fx.sys->query(nq.query, fx.sys->ring().random_node(rng));
      messages += static_cast<double>(result.stats.messages);
      routing += static_cast<double>(result.stats.routing_nodes);
    }
    const auto& stats = fx.sys->cache_stats();
    const double rate =
        stats.hits + stats.misses == 0
            ? 0.0
            : 100.0 * static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses);
    table.add_row({caching ? "owner cache on" : "owner cache off",
                   Table::cell(messages / kWorkload),
                   Table::cell(routing / kWorkload), Table::cell(rate)});
  }
  emit("Cluster-owner caching under a repeating workload", table, flags);
  return 0;
}
