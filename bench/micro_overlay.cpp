// Micro-benchmarks: Chord routing, joins, and stabilization throughput.

#include <benchmark/benchmark.h>

#include "squid/overlay/chord.hpp"
#include "squid/util/rng.hpp"

namespace {

using namespace squid;
using namespace squid::overlay;

void BM_Route(benchmark::State& state) {
  Rng rng(1);
  ChordRing ring(48);
  ring.build(static_cast<std::size_t>(state.range(0)), rng);
  const auto ids = ring.node_ids();
  std::size_t hops = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = ring.route(ids[i++ % ids.size()],
                              rng.below128(static_cast<u128>(1) << 48));
    hops += r.hops();
    benchmark::DoNotOptimize(r.dest);
  }
  state.counters["hops/route"] =
      static_cast<double>(hops) / static_cast<double>(state.iterations());
}

void BM_Join(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    ChordRing ring(48);
    ring.build(static_cast<std::size_t>(state.range(0)), rng);
    state.ResumeTiming();
    for (int i = 0; i < 16; ++i)
      (void)ring.join(ring.random_free_id(rng), ring.random_node(rng));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}

void BM_StabilizeSweep(benchmark::State& state) {
  Rng rng(3);
  ChordRing ring(48);
  ring.build(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    ring.stabilize_all(rng, 1);
  }
}

void BM_Build(benchmark::State& state) {
  Rng rng(4);
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ChordRing ring(48);
    ring.build(count, rng);
    benchmark::DoNotOptimize(ring.size());
  }
}

void BM_RepairAll(benchmark::State& state) {
  Rng rng(5);
  ChordRing ring(48);
  ring.build(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    ring.repair_all();
    benchmark::DoNotOptimize(ring.size());
  }
}

void BM_RandomNode(benchmark::State& state) {
  Rng rng(6);
  ChordRing ring(48);
  ring.build(static_cast<std::size_t>(state.range(0)), rng);
  u128 acc = 0;
  for (auto _ : state) acc += ring.random_node(rng);
  benchmark::DoNotOptimize(acc);
}

void BM_SuccessorOf(benchmark::State& state) {
  Rng rng(7);
  ChordRing ring(48);
  ring.build(static_cast<std::size_t>(state.range(0)), rng);
  u128 acc = 0;
  for (auto _ : state)
    acc += ring.successor_of(rng.below128(static_cast<u128>(1) << 48));
  benchmark::DoNotOptimize(acc);
}

} // namespace

BENCHMARK(BM_Route)->Arg(1000)->Arg(5000)->Arg(20000);
BENCHMARK(BM_Join)->Arg(1000)->Arg(5000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StabilizeSweep)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Build)->Arg(1000)->Arg(5400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RepairAll)->Arg(1000)->Arg(5400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RandomNode)->Arg(1000)->Arg(5400);
BENCHMARK(BM_SuccessorOf)->Arg(1000)->Arg(5400);
