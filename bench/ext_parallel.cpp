// Parallel execution panels (DESIGN.md 4f).
//
//   1. Host: core count + measurement protocol, so recorded JSON is
//      interpretable (thread scaling on a 1-core container is honest noise,
//      not a regression).
//   2. Thread scaling of independent client queries: SquidSystem::query is
//      a pure reader (owner cache off), so N threads run N private lockstep
//      engines. The classic embarrassingly-parallel ceiling.
//   3. Shard scaling of ONE batch through the sharded runtime
//      (query_parallel): S worker threads, per-shard engines, cross-shard
//      scan handoff — the tentpole curve. Same answers at every S (the
//      differential suite locks that); this measures the wall-clock.
//   4. Concurrent in-flight queries on one engine clock (query_async):
//      single-threaded message runtime; the virtual completion-time
//      distribution is the honest overlap.
//
// Measurement protocol (every timed row): one untimed warmup pass, then
// kRuns timed passes, report the MEDIAN rate. On quiet multi-core hosts the
// spread is small; on shared 1-core CI containers the median shields the
// recorded numbers from scheduler spikes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fixture.hpp"
#include "common/query_sets.hpp"
#include "squid/core/parallel.hpp"
#include "squid/sim/engine.hpp"
#include "squid/stats/summary.hpp"

namespace {

constexpr int kRuns = 3; // timed passes per row; median reported

/// One untimed warmup, then kRuns timed passes of `body` (which reports the
/// number of queries it resolved); returns the median queries/second.
template <typename Body>
double median_rate(Body&& body) {
  (void)body(); // warmup: touch every cache line the timed passes will
  std::vector<double> rates;
  rates.reserve(kRuns);
  for (int r = 0; r < kRuns; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t queries = body();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    rates.push_back(static_cast<double>(queries) / seconds);
  }
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

} // namespace

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[1]; // 2000 nodes / 4e4 keys

  KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed);
  const auto queries = q1_queries(fx);

  // --- Host / protocol metadata --------------------------------------------
  Table host({"host_cores", "median_runs", "warmup_runs"});
  host.add_row({Table::cell(std::uint64_t{std::thread::hardware_concurrency()}),
                Table::cell(std::uint64_t{kRuns}),
                Table::cell(std::uint64_t{1})});
  emit("Host and measurement protocol", host, flags);

  // Sweep to at least 4 threads/shards even on small machines:
  // oversubscribed rows still measure contention honestly (speedup < 1),
  // and the concurrent paths get exercised on every host (the TSan smoke
  // relies on this).
  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());

  // --- Independent client queries across threads ---------------------------
  Table table({"threads", "queries/s", "speedup"});
  double base_rate = 0;
  for (unsigned threads = 1; threads <= hw; threads *= 2) {
    constexpr int kPerThread = 40;
    // Keeps the per-query result live so the compiler cannot drop the work.
    std::atomic<std::size_t> benchmark_sink{0};
    const double rate = median_rate([&] {
      std::vector<std::thread> pool;
      for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          // splitmix64 decorrelates the per-thread streams; a plain xor
          // left thread 0 running on the unmixed base seed.
          std::uint64_t mix = flags.seed + t;
          Rng rng(splitmix64(mix));
          for (int i = 0; i < kPerThread; ++i) {
            const auto& nq = queries[rng.below(queries.size())];
            const auto result =
                fx.sys->query(nq.query, fx.sys->ring().random_node(rng));
            benchmark_sink.fetch_add(result.stats.matches,
                                     std::memory_order_relaxed);
          }
        });
      }
      for (auto& th : pool) th.join();
      return static_cast<std::size_t>(threads) * kPerThread;
    });
    if (threads == 1) base_rate = rate;
    table.add_row({Table::cell(std::uint64_t{threads}), Table::cell(rate),
                   Table::cell(rate / base_rate)});
  }
  emit("Parallel query throughput (read-only engine, owner cache off)",
       table, flags);

  // --- Sharded runtime: one batch across S shard workers -------------------
  constexpr std::size_t kBatch = 96;
  std::vector<core::ParallelQuerySpec> specs;
  {
    std::uint64_t mix = flags.seed + 0x54a2d;
    Rng rng(splitmix64(mix));
    specs.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      core::ParallelQuerySpec spec;
      spec.query = queries[rng.below(queries.size())].query;
      spec.origin = fx.sys->ring().random_node(rng);
      specs.push_back(std::move(spec));
    }
  }
  Table shard_table({"shards", "queries/s", "speedup"});
  double shard_base = 0;
  for (unsigned shards = 1; shards <= hw; shards *= 2) {
    std::atomic<std::size_t> benchmark_sink{0};
    const double rate = median_rate([&] {
      core::ParallelOptions opts;
      opts.shards = shards;
      const core::ParallelRun run = fx.sys->query_parallel(specs, opts);
      for (const auto& r : run.results)
        benchmark_sink.fetch_add(r.stats.matches, std::memory_order_relaxed);
      return specs.size();
    });
    if (shards == 1) shard_base = rate;
    shard_table.add_row({Table::cell(std::uint64_t{shards}), Table::cell(rate),
                         Table::cell(rate / shard_base)});
  }
  emit("Sharded runtime scaling (query_parallel, one batch)", shard_table,
       flags);

  // --- Concurrent in-flight queries on one engine clock --------------------
  constexpr int kTotalAsync = 192; // divisible by every in_flight level
  Table async_table({"in_flight", "queries/s", "virt_min", "virt_mean",
                     "virt_p95", "virt_max"});
  for (const std::size_t in_flight : {1u, 4u, 16u, 64u}) {
    Summary virt; // deterministic across passes; kept from the last one
    std::size_t sink = 0;
    const double rate = median_rate([&] {
      std::uint64_t mix = flags.seed + 0xa51c;
      Rng rng(splitmix64(mix));
      virt = Summary();
      for (int launched = 0; launched < kTotalAsync;
           launched += static_cast<int>(in_flight)) {
        sim::Engine engine;
        std::vector<core::QueryHandle> handles;
        handles.reserve(in_flight);
        for (std::size_t i = 0; i < in_flight; ++i) {
          const auto& nq = queries[rng.below(queries.size())];
          handles.push_back(fx.sys->query_async(
              nq.query, fx.sys->ring().random_node(rng), engine));
        }
        engine.run();
        for (const core::QueryHandle& h : handles) {
          virt.add(static_cast<double>(h.completed_at() - h.started_at()));
          sink += h.result().stats.matches;
        }
      }
      return static_cast<std::size_t>(kTotalAsync);
    });
    if (sink == static_cast<std::size_t>(-1)) return 1; // keep results live
    async_table.add_row({Table::cell(std::uint64_t{in_flight}),
                         Table::cell(rate), Table::cell(virt.min()),
                         Table::cell(virt.mean()),
                         Table::cell(virt.percentile(95)),
                         Table::cell(virt.max())});
  }
  emit("Concurrent in-flight queries (query_async, one engine clock)",
       async_table, flags);
  maybe_dump_metrics(flags);
  return 0;
}
