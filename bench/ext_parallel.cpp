// Parallel query throughput: SquidSystem::query is a pure reader (with the
// owner cache disabled), so independent client queries scale across
// threads. Measures simulator queries/second at 1..hardware threads.
//
// Second panel: concurrent-in-flight queries on ONE sim::Engine clock
// (query_async, DESIGN.md 4e). Batches of in_flight queries are launched
// together and their messages interleave on the shared virtual clock, so
// the virtual completion-time distribution is the honest overlap, not a
// serialization artifact; wall time measures the single-threaded
// message-driven runtime against the same workload.

#include <atomic>
#include <chrono>
#include <thread>

#include "common/fixture.hpp"
#include "common/query_sets.hpp"
#include "squid/sim/engine.hpp"
#include "squid/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[1]; // 2000 nodes / 4e4 keys

  KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed);
  const auto queries = q1_queries(fx);

  // Sweep to at least 4 threads even on small machines: oversubscribed
  // rows still measure contention honestly (speedup < 1), and the reader
  // paths get exercised concurrently on every host (the TSan smoke relies
  // on this).
  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  Table table({"threads", "queries/s", "speedup"});
  double base_rate = 0;
  for (unsigned threads = 1; threads <= hw; threads *= 2) {
    std::atomic<std::size_t> done{0};
    // Keeps the per-query result live so the compiler cannot drop the work.
    std::atomic<std::size_t> benchmark_sink{0};
    constexpr int kPerThread = 40;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        // splitmix64 decorrelates the per-thread streams; a plain xor left
        // thread 0 running on the unmixed base seed.
        std::uint64_t mix = flags.seed + t;
        Rng rng(splitmix64(mix));
        for (int i = 0; i < kPerThread; ++i) {
          const auto& nq = queries[rng.below(queries.size())];
          const auto result =
              fx.sys->query(nq.query, fx.sys->ring().random_node(rng));
          done.fetch_add(1, std::memory_order_relaxed);
          benchmark_sink.fetch_add(result.stats.matches,
                                   std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : pool) th.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate = static_cast<double>(done.load()) / seconds;
    if (threads == 1) base_rate = rate;
    table.add_row({Table::cell(std::uint64_t{threads}), Table::cell(rate),
                   Table::cell(rate / base_rate)});
  }
  emit("Parallel query throughput (read-only engine, owner cache off)",
       table, flags);

  // --- Concurrent in-flight queries on one engine clock --------------------
  constexpr int kTotalAsync = 192; // divisible by every in_flight level
  Table async_table({"in_flight", "queries/s", "virt_min", "virt_mean",
                     "virt_p95", "virt_max"});
  for (const std::size_t in_flight : {1u, 4u, 16u, 64u}) {
    std::uint64_t mix = flags.seed + 0xa51c;
    Rng rng(splitmix64(mix));
    Summary virt;
    std::size_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int launched = 0; launched < kTotalAsync;
         launched += static_cast<int>(in_flight)) {
      sim::Engine engine;
      std::vector<core::QueryHandle> handles;
      handles.reserve(in_flight);
      for (std::size_t i = 0; i < in_flight; ++i) {
        const auto& nq = queries[rng.below(queries.size())];
        handles.push_back(fx.sys->query_async(
            nq.query, fx.sys->ring().random_node(rng), engine));
      }
      engine.run();
      for (const core::QueryHandle& h : handles) {
        virt.add(static_cast<double>(h.completed_at() - h.started_at()));
        sink += h.result().stats.matches;
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (sink == static_cast<std::size_t>(-1)) return 1; // keep results live
    async_table.add_row({Table::cell(std::uint64_t{in_flight}),
                         Table::cell(kTotalAsync / seconds),
                         Table::cell(virt.min()), Table::cell(virt.mean()),
                         Table::cell(virt.percentile(95)),
                         Table::cell(virt.max())});
  }
  emit("Concurrent in-flight queries (query_async, one engine clock)",
       async_table, flags);
  maybe_dump_metrics(flags);
  return 0;
}
