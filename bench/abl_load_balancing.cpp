// Load-balancing ablation: none / join-time sampling / join + boundary
// exchange / virtual nodes with split + migrate — CV, Gini, and max/mean of
// the physical load distribution on the same skewed corpus.

#include "common/fixture.hpp"
#include "squid/core/virtual_nodes.hpp"
#include "squid/stats/summary.hpp"

namespace {

using namespace squid;
using namespace squid::bench;

Summary summarize(const std::vector<std::size_t>& loads) {
  Summary s;
  for (const auto l : loads) s.add(static_cast<double>(l));
  return s;
}

std::vector<core::DataElement> make_corpus(const Flags& flags,
                                           std::size_t keys,
                                           workload::KeywordCorpus& corpus,
                                           Rng& rng) {
  std::vector<core::DataElement> elements;
  // Oversample: duplicates collapse into existing keys.
  for (std::size_t i = 0; i < keys * 3; ++i)
    elements.push_back(corpus.make_element(rng));
  (void)flags;
  return elements;
}

} // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[1]; // 2000 nodes / 4e4 keys

  Table table({"variant", "mean", "max/mean", "cv", "gini", "ops"});
  const auto add_row = [&](const std::string& name, const Summary& s,
                           std::size_t ops) {
    table.add_row({name, Table::cell(s.mean()), Table::cell(s.max_over_mean()),
                   Table::cell(s.cv()), Table::cell(s.gini()),
                   Table::cell(std::uint64_t{ops})});
  };

  // Variants 1-3: physical peers directly on the ring.
  struct Direct {
    std::string name;
    unsigned join_samples;
    int sweeps;
  };
  for (const auto& variant :
       {Direct{"none (random ids)", 1, 0},
        Direct{"join-time sampling", 8, 0},
        Direct{"join + boundary exchange", 8, 40}}) {
    Rng rng(flags.seed);
    workload::KeywordCorpus corpus(2, std::max<std::size_t>(600, scale.keys / 40),
                                   0.8, rng);
    core::SquidConfig config;
    config.join_samples = variant.join_samples;
    core::SquidSystem sys(corpus.make_space(), config);
    for (const auto& e : make_corpus(flags, scale.keys, corpus, rng))
      sys.publish(e);
    sys.build_network(1, rng);
    for (std::size_t i = 1; i < scale.nodes; ++i) (void)sys.join_node(rng);
    std::size_t ops = 0;
    for (int s = 0; s < variant.sweeps; ++s)
      ops += sys.runtime_balance_sweep(1.2);
    std::vector<std::size_t> loads;
    for (const auto& [id, load] : sys.node_loads()) loads.push_back(load);
    add_row(variant.name, summarize(loads), ops);
  }

  // Variant 4: virtual nodes (4 per peer) with split + migrate.
  {
    Rng rng(flags.seed);
    workload::KeywordCorpus corpus(2, std::max<std::size_t>(600, scale.keys / 40),
                                   0.8, rng);
    core::SquidSystem sys(corpus.make_space());
    for (const auto& e : make_corpus(flags, scale.keys, corpus, rng))
      sys.publish(e);
    core::VirtualNodeManager manager(sys, scale.nodes, 4, rng);
    std::size_t ops = 0;
    for (int round = 0; round < 40; ++round)
      ops += manager.balance_round(2.0, 1.3, rng);
    add_row("virtual nodes (split+migrate)", summarize(manager.physical_loads()),
            ops);
  }

  emit("Load-balancing ablation (" + std::to_string(scale.nodes) +
           " peers, skewed 2D corpus)",
       table, flags);
  return 0;
}
