// Reproduces Fig 16: all metrics for range queries at the paper's two
// reference scales — 2750 nodes / 6e4 keys and 4700 nodes / 1e5 keys.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const double f = flags.shrink();
  const auto pt = [f](std::size_t nodes, std::size_t keys) {
    return ScalePoint{std::max<std::size_t>(16, std::size_t(nodes * f)),
                      std::max<std::size_t>(16, std::size_t(keys * f))};
  };
  run_metrics_figure("Fig 16 (Q3 metrics)", flags,
                     {pt(2750, 60000), pt(4700, 100000)},
                     [&flags](const ScalePoint& scale) {
                       ResourceFixture fx =
                           build_resource_fixture(scale, flags.seed);
                       FigureSetup setup;
                       setup.queries = q3_keyword_range_queries(fx);
                       auto rrr = q3_all_range_queries(fx);
                       setup.queries.insert(setup.queries.end(),
                                            rrr.begin(), rrr.end());
                       setup.sys = std::move(fx.sys);
                       return setup;
                     });
  return 0;
}
