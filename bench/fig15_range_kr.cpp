// Reproduces Fig 15: range queries of the form (keyword, range, *) over the
// 3D grid-resource space — matches, processing nodes, data nodes as the
// system grows.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  run_growth_figure("Fig 15 (Q3 (keyword, range, *))", flags,
                    [&flags](const ScalePoint& scale) {
                      ResourceFixture fx =
                          build_resource_fixture(scale, flags.seed);
                      FigureSetup setup;
                      setup.queries = q3_keyword_range_queries(fx);
                      setup.sys = std::move(fx.sys);
                      return setup;
                    });
  return 0;
}
