// Micro-benchmarks: the observability layer's overhead contract
// (DESIGN.md 4c).
//
// Three operating points of the same end-to-end query:
//   - tracing disabled at runtime (the default): the per-site cost is one
//     predictable branch on a null pointer plus the metric counter adds —
//     this is the number the <2% regression budget of ISSUE 3 covers
//     relative to a -DSQUID_OBS=OFF build, where every site is dead code;
//   - tracing enabled: full span recording, the price `explain` pays;
//   - raw metric primitives, to show a counter add is a relaxed atomic.
//
// Compare against a -DSQUID_OBS=OFF build of the same binary to measure
// the compiled-out contract; within one build, BM_QueryTracingOff vs
// BM_QueryTracingOn bounds the runtime toggle's cost.

#include <benchmark/benchmark.h>

#include "squid/core/parallel.hpp"
#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/telemetry.hpp"
#include "squid/obs/trace.hpp"
#include "squid/workload/corpus.hpp"

namespace {

using namespace squid;

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<core::SquidSystem> sys;
  Rng rng{17};
};

World make_world(std::size_t nodes, std::size_t elements) {
  World world;
  world.corpus =
      std::make_unique<workload::KeywordCorpus>(2, 600, 0.8, world.rng);
  world.sys = std::make_unique<core::SquidSystem>(world.corpus->make_space());
  world.sys->build_network(nodes, world.rng);
  world.sys->publish_batch(world.corpus->make_elements(elements, world.rng));
  return world;
}

void BM_QueryTracingOff(benchmark::State& state) {
  World world = make_world(static_cast<std::size_t>(state.range(0)), 20000);
  world.sys->set_tracing(false);
  const keyword::Query q = world.corpus->q1(2, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.sys->query(q, world.sys->ring().random_node(world.rng)));
  }
}

void BM_QueryTracingOn(benchmark::State& state) {
  World world = make_world(static_cast<std::size_t>(state.range(0)), 20000);
  world.sys->set_tracing(true);
  const keyword::Query q = world.corpus->q1(2, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.sys->query(q, world.sys->ring().random_node(world.rng)));
  }
}

/// Epoch-sampler overhead guard (DESIGN.md 4h): the same query sweep with
/// no sampler attached vs. one attached. The delta is the telemetry
/// pipeline's whole per-query price — scratch allocation, the passive
/// record() appends, and one mutex-guarded flush at finalize — and must
/// stay under the <2% budget. Present in both builds: under -DSQUID_OBS=OFF
/// the sampler records nothing and every engine site is a dead null check,
/// so On and Off must be indistinguishable there.
void BM_QuerySamplerOff(benchmark::State& state) {
  World world = make_world(static_cast<std::size_t>(state.range(0)), 20000);
  world.sys->set_tracing(false);
  const keyword::Query q = world.corpus->q1(2, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.sys->query(q, world.sys->ring().random_node(world.rng)));
  }
}

void BM_QuerySamplerOn(benchmark::State& state) {
  World world = make_world(static_cast<std::size_t>(state.range(0)), 20000);
  world.sys->set_tracing(false);
  obs::EpochSampler sampler(/*epoch_ticks=*/256);
  world.sys->set_telemetry(&sampler);
  const keyword::Query q = world.corpus->q1(2, true);
  sim::Time now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.sys->query(q, world.sys->ring().random_node(world.rng)));
    // Advance the epoch clock as a harness would; boundary crossings take
    // the windowed registry snapshot, which is part of the honest price.
    sampler.advance_to(now += 16);
  }
  world.sys->set_telemetry(nullptr);
}

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::Registry::global().counter("squid.bench.counter_add");
  for (auto _ : state) {
    counter.add(1);
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_HistogramObserve(benchmark::State& state) {
  obs::HistogramMetric& histogram = obs::Registry::global().histogram(
      "squid.bench.histogram_observe", 0, 100, 16);
  double v = 0;
  for (auto _ : state) {
    histogram.observe(v);
    v = v < 100 ? v + 1 : 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// One parallel batch end to end: every squid.runtime.shard.* counter site
/// fires on the hot path (delivery tallies, handoff staging, batch
/// histogram, idle polls). Compare against a -DSQUID_OBS=OFF build of the
/// same binary: the shard counters must be zero-cost when compiled out.
void BM_QueryParallelShardCounters(benchmark::State& state) {
  World world = make_world(1000, 20000);
  world.sys->set_tracing(false);
  std::vector<core::ParallelQuerySpec> specs;
  for (int i = 0; i < 16; ++i) {
    core::ParallelQuerySpec spec;
    spec.query = world.corpus->q1(static_cast<std::size_t>(i % 8), true);
    spec.origin = world.sys->ring().random_node(world.rng);
    specs.push_back(std::move(spec));
  }
  core::ParallelOptions opts;
  opts.shards = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.sys->query_parallel(specs, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(specs.size()));
}

void BM_DeriveStats(benchmark::State& state) {
  World world = make_world(1000, 20000);
  world.sys->set_tracing(true);
  const auto result = world.sys->query(
      world.corpus->q1(2, true), world.sys->ring().random_node(world.rng));
  if (!result.trace) {
    state.SkipWithError("observability compiled out");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::derive_stats(*result.trace));
  }
}

} // namespace

BENCHMARK(BM_QueryTracingOff)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryTracingOn)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuerySamplerOff)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuerySamplerOn)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CounterAdd);
BENCHMARK(BM_HistogramObserve);
BENCHMARK(BM_QueryParallelShardCounters)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeriveStats)->Unit(benchmark::kMicrosecond);
