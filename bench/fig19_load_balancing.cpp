// Reproduces Fig 19: the per-node key distribution (a) with load balancing
// at node join only, and (b) with both join-time and runtime local load
// balancing — against the unbalanced baseline implied by Fig 18.
//
// The paper plots keys-per-node across the node sequence; we print sorted
// load deciles plus the imbalance summary for each variant, which captures
// the same comparison numerically.

#include "common/fixture.hpp"
#include "squid/stats/summary.hpp"

namespace {

using namespace squid;
using namespace squid::bench;

struct Variant {
  std::string name;
  Summary loads;
};

Variant build_variant(const std::string& name, const Flags& flags,
                      const ScalePoint& scale, unsigned join_samples,
                      int runtime_sweeps) {
  core::SquidConfig config;
  config.join_samples = join_samples;
  KeywordFixture fx;
  {
    Rng rng(flags.seed);
    auto corpus = std::make_unique<workload::KeywordCorpus>(
        2, std::max<std::size_t>(600, scale.keys / 40), 0.8, rng);
    auto sys = std::make_unique<core::SquidSystem>(corpus->make_space(),
                                                   config);
    while (sys->key_count() < scale.keys)
      sys->publish(corpus->make_element(rng));
    sys->build_network(1, rng);
    for (std::size_t i = 1; i < scale.nodes; ++i) (void)sys->join_node(rng);
    for (int s = 0; s < runtime_sweeps; ++s)
      (void)sys->runtime_balance_sweep(1.2);
    sys->repair_routing();
    fx.corpus = std::move(corpus);
    fx.sys = std::move(sys);
  }
  Variant variant{name, {}};
  for (const auto& [id, load] : fx.sys->node_loads())
    variant.loads.add(static_cast<double>(load));
  return variant;
}

} // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[2]; // 3200 nodes / 6e4 keys

  const std::vector<Variant> variants{
      build_variant("no balancing (random join)", flags, scale, 1, 0),
      build_variant("join-time balancing only (Fig 19a)", flags, scale, 8, 0),
      build_variant("join + runtime balancing (Fig 19b)", flags, scale, 8,
                    40),
  };

  Table summary({"variant", "mean", "max", "max/mean", "cv", "gini"});
  for (const auto& v : variants) {
    summary.add_row({v.name, Table::cell(v.loads.mean()),
                     Table::cell(v.loads.max()),
                     Table::cell(v.loads.max_over_mean()),
                     Table::cell(v.loads.cv()), Table::cell(v.loads.gini())});
  }
  emit("Fig 19: load-balance summary (" + std::to_string(scale.nodes) +
           " nodes, " + std::to_string(scale.keys) + " keys)",
       summary, flags);

  Table deciles({"variant", "p10", "p25", "p50", "p75", "p90", "p99",
                 "p100"});
  for (const auto& v : variants) {
    deciles.add_row({v.name, Table::cell(v.loads.percentile(10)),
                     Table::cell(v.loads.percentile(25)),
                     Table::cell(v.loads.percentile(50)),
                     Table::cell(v.loads.percentile(75)),
                     Table::cell(v.loads.percentile(90)),
                     Table::cell(v.loads.percentile(99)),
                     Table::cell(v.loads.percentile(100))});
  }
  emit("Fig 19: keys-per-node percentiles", deciles, flags);
  return 0;
}
