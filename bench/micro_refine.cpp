// Old-vs-new refinement engine micro-benchmark.
//
// "Old" is the seed's decomposition loop: every tree node re-runs the
// root-depth inverse SFC mapping (cell_of_prefix, two heap allocations per
// call). "New" is the shipped ClusterRefiner on the incremental RefineCursor
// (O(dims) per node, zero allocations). Both are timed on the same window
// queries, their outputs cross-checked, and the per-node / per-decompose
// costs plus speedups written to BENCH_refine.json.
//
// Usage: micro_refine [output.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "squid/sfc/refine.hpp"
#include "squid/util/rng.hpp"

namespace {

using namespace squid;
using namespace squid::sfc;

/// The seed engine's decompose, verbatim: explicit stack, one
/// cell_of_prefix per visited node.
std::vector<Segment> old_decompose(const Curve& curve,
                                   const ClusterRefiner& refiner,
                                   const Rect& query, unsigned max_level) {
  const unsigned depth = std::min(max_level, curve.bits_per_dim());
  std::vector<Segment> out;
  const auto emit = [&out](const Segment& seg) {
    if (!out.empty() && out.back().hi + 1 == seg.lo) {
      out.back().hi = seg.hi;
    } else {
      out.push_back(seg);
    }
  };
  struct Frame {
    ClusterNode node;
    u128 next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({ClusterNode{0, 0}, 0});
  const u128 fanout = static_cast<u128>(1) << curve.dims();
  {
    const Rect cell = curve.cell_of_prefix(0, 0);
    if (!cell.intersects(query)) return {};
    if (query.covers(cell) || depth == 0)
      return {refiner.segment_of(ClusterNode{0, 0})};
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == fanout) {
      stack.pop_back();
      continue;
    }
    const u128 digit = frame.next_child++;
    const ClusterNode child{(frame.node.prefix << curve.dims()) | digit,
                            frame.node.level + 1};
    const Rect cell = curve.cell_of_prefix(child.prefix, child.level);
    if (!cell.intersects(query)) continue;
    if (query.covers(cell) || child.level >= depth) {
      emit(refiner.segment_of(child));
    } else {
      stack.push_back({child, 0});
    }
  }
  return out;
}

struct Case {
  const char* family;
  unsigned dims;
  unsigned bits;
  unsigned depth;  ///< refinement depth (decompose max_level)
  double window;   ///< query extent as a fraction of each axis
};

std::vector<Rect> window_queries(const Curve& curve, double frac,
                                 std::size_t count) {
  Rng rng(90);
  const double span = static_cast<double>(curve.max_coord()) + 1.0;
  const auto width = static_cast<std::uint64_t>(
      std::max(1.0, span * frac));
  std::vector<Rect> rects;
  for (std::size_t q = 0; q < count; ++q) {
    Rect r;
    for (unsigned d = 0; d < curve.dims(); ++d) {
      const std::uint64_t lo = rng.below(curve.max_coord() - width + 2);
      r.dims.push_back({lo, lo + width - 1});
    }
    rects.push_back(r);
  }
  return rects;
}

/// Best-of-3 wall time of `fn` run over all rects, in nanoseconds total.
template <typename Fn>
double time_ns(const Fn& fn, int reps) {
  double best = 0;
  for (int round = 0; round < 3; ++round) {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count() / reps;
    if (round == 0 || ns < best) best = ns;
  }
  return best;
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_refine.json";
  const Case cases[] = {
      {"hilbert", 2, 16, 10, 0.10}, {"hilbert", 3, 16, 7, 0.10},
      {"hilbert", 3, 21, 7, 0.25},  {"hilbert", 4, 12, 5, 0.20},
      {"zorder", 3, 16, 7, 0.10},   {"gray", 3, 16, 7, 0.10},
  };

  std::string json = "[\n";
  bool first = true;
  std::printf("%-22s %10s %12s %12s %12s %12s %8s\n", "config", "nodes",
              "old ns/dec", "new ns/dec", "old ns/node", "new ns/node",
              "speedup");
  for (const Case& c : cases) {
    const auto curve = make_curve(c.family, c.dims, c.bits);
    const ClusterRefiner refiner(*curve);
    const auto rects = window_queries(*curve, c.window, 16);

    // Cross-check before timing: both engines must agree on every query.
    std::size_t nodes = 0;
    for (const Rect& r : rects) {
      if (old_decompose(*curve, refiner, r, c.depth) !=
          refiner.decompose(r, c.depth)) {
        std::fprintf(stderr, "engine mismatch on %s d=%u b=%u\n", c.family,
                     c.dims, c.bits);
        return 1;
      }
      nodes += refiner.count_tree_nodes(r, c.depth);
    }

    // Calibrate repetitions to keep each measurement around ~50ms.
    const auto run_old = [&] {
      for (const Rect& r : rects)
        (void)old_decompose(*curve, refiner, r, c.depth);
    };
    const auto run_new = [&] {
      for (const Rect& r : rects) (void)refiner.decompose(r, c.depth);
    };
    const double probe = time_ns(run_new, 1);
    const int reps =
        std::max(1, static_cast<int>(50e6 / std::max(probe, 1.0)));
    const double old_total = time_ns(run_old, reps);
    const double new_total = time_ns(run_new, reps);

    const double old_dec = old_total / static_cast<double>(rects.size());
    const double new_dec = new_total / static_cast<double>(rects.size());
    const double old_node = old_total / static_cast<double>(nodes);
    const double new_node = new_total / static_cast<double>(nodes);
    const double speedup = old_dec / new_dec;

    char label[64];
    std::snprintf(label, sizeof label, "%s d=%u b=%u L=%u", c.family, c.dims,
                  c.bits, c.depth);
    std::printf("%-22s %10zu %12.0f %12.0f %12.2f %12.2f %7.2fx\n", label,
                nodes / rects.size(), old_dec, new_dec, old_node, new_node,
                speedup);

    char entry[512];
    std::snprintf(entry, sizeof entry,
                  "  {\"family\": \"%s\", \"dims\": %u, \"bits_per_dim\": %u, "
                  "\"depth\": %u, \"window_frac\": %.2f, "
                  "\"tree_nodes_per_query\": %zu, "
                  "\"old_ns_per_decompose\": %.1f, "
                  "\"new_ns_per_decompose\": %.1f, "
                  "\"old_ns_per_node\": %.2f, \"new_ns_per_node\": %.2f, "
                  "\"speedup\": %.2f}",
                  c.family, c.dims, c.bits, c.depth, c.window,
                  nodes / rects.size(), old_dec, new_dec, old_node, new_node,
                  speedup);
    if (!first) json += ",\n";
    json += entry;
    first = false;
  }
  json += "\n]\n";

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
