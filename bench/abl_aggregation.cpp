// Aggregation-pushdown ablation (DESIGN.md 4g): reply traffic and latency
// of query_aggregate (partials folded at the scan sites, merged up the
// dispatch tree) against the ship-all baseline (query() hauling every
// matching element to the origin, aggregate folded there).
//
// Workload: a Zipf-skewed keyword corpus (word dim + numeric attribute
// dim) at popularity exponents s in {0.8, 1.1}; query selectivity is swept
// over {0.1%, 1%, 10%} by calibrating the numeric range cutoff against the
// published element set, so each row reports its ACHIEVED match count, not
// a nominal target. Both sides replay the identical query from the
// identical origin sequence, and the bench REQUIREs the pushdown count to
// equal the ship-all match count before it reports a single number — the
// speedup is only interesting if the answers agree (the differential suite
// locks this bit-exactly; the bench re-checks it end to end).
//
// Routing/dispatch messages are identical by construction (pushdown is
// additive: planning never changes), so the message win is entirely in the
// reply path: one partial-sized frame per tree edge instead of
// element-carrying frames per scan site. Reported bytes and frames come
// from the real serializer via QueryStats (bytes_shipped/reply_messages),
// not from an estimate.
//
// Measurement protocol (every timed row): one untimed warmup pass — which
// also records the deterministic stats — then kRuns timed passes, report
// the MEDIAN microseconds per query.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/fixture.hpp"
#include "squid/core/aggregate.hpp"
#include "squid/core/system.hpp"
#include "squid/util/require.hpp"
#include "squid/workload/corpus.hpp"

namespace {

using namespace squid;

constexpr int kRuns = 3;          // timed passes per row; median reported
constexpr unsigned kOrigins = 12; // queries per pass (distinct random origins)

/// One untimed warmup, then kRuns timed passes of `body` (which reports the
/// number of queries it resolved); returns the median microseconds/query.
template <typename Body>
double median_us_per_query(Body&& body) {
  (void)body();
  std::vector<double> samples;
  samples.reserve(kRuns);
  for (int r = 0; r < kRuns; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t queries = body();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    samples.push_back(seconds * 1e6 / static_cast<double>(queries));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Fixture {
  std::unique_ptr<core::SquidSystem> sys;
  std::vector<core::DataElement> elements; ///< kept for calibration
  std::string top_prefix; ///< 2-char prefix of the most popular word
};

/// Zipf-s keyword corpus over (word, value): words from the syllable
/// vocabulary with popularity exponent s, values uniform in [0, 1000).
Fixture build_fixture(double zipf, std::size_t nodes, std::size_t elements,
                      std::uint64_t seed) {
  Rng rng(seed);
  const workload::Vocabulary vocab(2500, zipf, rng);
  const keyword::KeywordSpace space(
      {keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6),
       keyword::NumericCodec(0.0, 1000.0, 8)});
  Fixture fx;
  fx.sys = std::make_unique<core::SquidSystem>(space, bench::balanced_config());
  fx.top_prefix = vocab.by_rank(0).substr(0, 2);
  fx.elements.reserve(elements);
  for (std::size_t i = 0; i < elements; ++i) {
    const double value = rng.uniform() * 1000.0;
    fx.elements.push_back(
        {"e" + std::to_string(i), {vocab.sample(rng), value}});
  }
  fx.sys->publish_batch(fx.elements);
  fx.sys->build_network(nodes, rng);
  return fx;
}

/// A query achieving ~`selectivity` over the fixture: prefix term on the
/// hottest word cluster when that cluster is big enough, Any otherwise,
/// with the numeric cutoff placed at the matching-value quantile.
keyword::Query calibrated_query(const Fixture& fx, double selectivity) {
  const std::size_t target = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(fx.elements.size()) * selectivity));
  std::vector<double> values;
  for (const auto& e : fx.elements) {
    const auto& word = std::get<std::string>(e.keys[0]);
    if (word.rfind(fx.top_prefix, 0) == 0)
      values.push_back(std::get<double>(e.keys[1]));
  }
  keyword::Query q;
  if (values.size() >= target) {
    q.terms.push_back(keyword::Prefix{fx.top_prefix});
  } else {
    // The hot cluster is smaller than the target; select across all words.
    q.terms.push_back(keyword::Any{});
    values.clear();
    for (const auto& e : fx.elements)
      values.push_back(std::get<double>(e.keys[1]));
  }
  std::sort(values.begin(), values.end());
  const double lo = values[target - 1];
  const double hi =
      target < values.size() ? (lo + values[target]) / 2.0 : 1000.0;
  q.terms.push_back(keyword::NumRange{0.0, hi});
  return q;
}

struct SideStats {
  double matches = 0;
  double messages = 0;       ///< routing + dispatch + scan (identical sides)
  double reply_messages = 0; ///< reply-path frames at the configured MTU
  double bytes = 0;          ///< measured reply bytes (QueryStats)
  double us_per_query = 0;
};

/// Replay a query from kOrigins random origins; `run` executes one query
/// and returns its QueryStats-bearing result. Stats come from the warmup
/// pass (they are deterministic); latency is the median over kRuns passes.
template <typename Run>
SideStats measure(const core::SquidSystem& sys, Run&& run,
                  std::uint64_t origin_seed) {
  SideStats out;
  bool recorded = false;
  out.us_per_query = median_us_per_query([&] {
    Rng rng(origin_seed);
    for (unsigned i = 0; i < kOrigins; ++i) {
      const core::QueryResult result = run(sys.ring().random_node(rng));
      if (!recorded) {
        out.matches += static_cast<double>(result.stats.matches);
        out.messages += static_cast<double>(result.stats.messages);
        out.reply_messages += static_cast<double>(result.stats.reply_messages);
        out.bytes += static_cast<double>(result.stats.bytes_shipped);
      }
    }
    recorded = true;
    return std::size_t{kOrigins};
  });
  const double n = kOrigins;
  out.matches /= n;
  out.messages /= n;
  out.reply_messages /= n;
  out.bytes /= n;
  return out;
}

} // namespace

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t nodes =
      std::max<std::size_t>(16, static_cast<std::size_t>(600 * flags.shrink()));
  const std::size_t elements = std::max<std::size_t>(
      200, static_cast<std::size_t>(20000 * flags.shrink()));

  Table host({"host_cores", "median_runs", "warmup_runs", "nodes", "elements",
              "origins_per_pass"});
  host.add_row(
      {Table::cell(std::uint64_t{std::thread::hardware_concurrency()}),
       Table::cell(std::uint64_t{kRuns}), Table::cell(std::uint64_t{1}),
       Table::cell(std::uint64_t{nodes}), Table::cell(std::uint64_t{elements}),
       Table::cell(std::uint64_t{kOrigins})});
  emit("Host and measurement protocol", host, flags);

  // --- Count pushdown vs ship-all across Zipf skew x selectivity -----------
  Table table({"zipf", "target_sel", "matches", "msgs", "reply_ship",
               "reply_push", "bytes_ship", "bytes_push", "bytes_x", "us_ship",
               "us_push"});
  core::AggregateSpec count_spec;
  count_spec.kind = core::AggregateKind::kCount;
  Fixture last_fixture;
  for (const double zipf : {0.8, 1.1}) {
    Fixture fx = build_fixture(zipf, nodes, elements, flags.seed ^ 0xa99);
    for (const double sel : {0.001, 0.01, 0.1}) {
      const keyword::Query q = calibrated_query(fx, sel);
      const std::uint64_t origin_seed = flags.seed ^ 0x5e1ec7;
      const SideStats ship = measure(
          *fx.sys, [&](overlay::NodeId origin) { return fx.sys->query(q, origin); },
          origin_seed);
      const SideStats push = measure(
          *fx.sys,
          [&](overlay::NodeId origin) {
            return fx.sys->query_aggregate(q, count_spec, origin);
          },
          origin_seed);
      // The ablation is meaningless unless both sides agree on the answer
      // and on the (unchanged) planning traffic.
      SQUID_REQUIRE(ship.matches == push.matches,
                    "pushdown count != ship-all match count");
      SQUID_REQUIRE(ship.messages == push.messages,
                    "pushdown changed planning traffic");
      table.add_row({Table::cell(zipf), Table::cell(sel),
                     Table::cell(ship.matches), Table::cell(ship.messages),
                     Table::cell(ship.reply_messages),
                     Table::cell(push.reply_messages), Table::cell(ship.bytes),
                     Table::cell(push.bytes),
                     Table::cell(ship.bytes / push.bytes),
                     Table::cell(ship.us_per_query),
                     Table::cell(push.us_per_query)});
    }
    last_fixture = std::move(fx);
  }
  emit("Count pushdown vs ship-all (reply path; msgs = planning, identical)",
       table, flags);

  // --- Other aggregate kinds at the 1% operating point ---------------------
  // Partial size varies by kind (a top-k list and a group-by table ship
  // more than one counter) — the reduction must stay honest per kind.
  Table kinds({"kind", "matches", "reply_ship", "reply_push", "bytes_ship",
               "bytes_push", "bytes_x", "us_push"});
  {
    const Fixture& fx = last_fixture; // zipf 1.1
    const keyword::Query q = calibrated_query(fx, 0.01);
    const std::uint64_t origin_seed = flags.seed ^ 0x5e1ec7;
    const SideStats ship = measure(
        *fx.sys, [&](overlay::NodeId origin) { return fx.sys->query(q, origin); },
        origin_seed);
    std::vector<core::AggregateSpec> specs;
    {
      core::AggregateSpec s;
      s.kind = core::AggregateKind::kSum;
      s.dim = 1;
      specs.push_back(s);
      s.kind = core::AggregateKind::kTopK;
      s.k = 10;
      s.largest = true;
      specs.push_back(s);
      s = core::AggregateSpec{};
      s.kind = core::AggregateKind::kGroupBy;
      s.dim = 0;
      specs.push_back(s);
    }
    for (const core::AggregateSpec& spec : specs) {
      const SideStats push = measure(
          *fx.sys,
          [&](overlay::NodeId origin) {
            return fx.sys->query_aggregate(q, spec, origin);
          },
          origin_seed);
      SQUID_REQUIRE(ship.matches == push.matches,
                    "pushdown count != ship-all match count");
      kinds.add_row(
          {core::aggregate_kind_name(spec.kind), Table::cell(push.matches),
           Table::cell(ship.reply_messages), Table::cell(push.reply_messages),
           Table::cell(ship.bytes), Table::cell(push.bytes),
           Table::cell(ship.bytes / push.bytes),
           Table::cell(push.us_per_query)});
    }
  }
  emit("Aggregate kinds at 1% selectivity (zipf 1.1)", kinds, flags);
  maybe_dump_metrics(flags);
  return 0;
}
