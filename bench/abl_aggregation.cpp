// Aggregation ablation (paper 3.4.2, second optimization): message counts
// with and without sub-cluster aggregation, across 2D and 3D keyword spaces.
// Aggregation wins when several sibling sub-clusters share an owner — the
// higher the dimensionality and the denser the data, the bigger the win.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[1];

  Table table({"dims", "query", "messages (aggregated)", "messages (naive)",
               "processing nodes"});
  for (const unsigned dims : {2u, 3u}) {
    core::SquidConfig with = balanced_config();
    core::SquidConfig without = balanced_config();
    without.aggregate_subclusters = false;
    KeywordFixture fa = build_keyword_fixture(dims, scale, flags.seed, with);
    KeywordFixture fn =
        build_keyword_fixture(dims, scale, flags.seed, without);
    Rng rng_a(flags.seed ^ 0x66), rng_n(flags.seed ^ 0x66);
    for (const auto& nq : q1_queries(fa)) {
      const QueryAverages a = run_query(*fa.sys, nq.query, 10, rng_a);
      const QueryAverages n = run_query(*fn.sys, nq.query, 10, rng_n);
      table.add_row({Table::cell(std::uint64_t{dims}), nq.label,
                     Table::cell(a.messages), Table::cell(n.messages),
                     Table::cell(a.processing_nodes)});
    }
  }
  emit("Sub-cluster aggregation ablation", table, flags);
  return 0;
}
