// Micro-benchmarks: publish and end-to-end query throughput of the full
// Squid stack (simulated overlay, real algorithms).

#include <benchmark/benchmark.h>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace {

using namespace squid;

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<core::SquidSystem> sys;
  Rng rng{17};
};

World make_world(std::size_t nodes, std::size_t elements) {
  World world;
  world.corpus = std::make_unique<workload::KeywordCorpus>(2, 600, 0.8,
                                                           world.rng);
  world.sys = std::make_unique<core::SquidSystem>(world.corpus->make_space());
  world.sys->build_network(nodes, world.rng);
  for (const auto& e : world.corpus->make_elements(elements, world.rng))
    world.sys->publish(e);
  return world;
}

void BM_Publish(benchmark::State& state) {
  World world = make_world(1000, 0);
  for (auto _ : state) {
    world.sys->publish(world.corpus->make_element(world.rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_PublishRouted(benchmark::State& state) {
  World world = make_world(1000, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.sys->publish_routed(world.corpus->make_element(world.rng),
                                  world.sys->ring().random_node(world.rng)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_QueryPartialKeyword(benchmark::State& state) {
  World world = make_world(static_cast<std::size_t>(state.range(0)), 20000);
  const keyword::Query q = world.corpus->q1(2, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.sys->query(q, world.sys->ring().random_node(world.rng)));
  }
}

void BM_QueryExactKeyword(benchmark::State& state) {
  World world = make_world(static_cast<std::size_t>(state.range(0)), 20000);
  const keyword::Query q = world.corpus->q2(0, 1, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.sys->query(q, world.sys->ring().random_node(world.rng)));
  }
}

} // namespace

BENCHMARK(BM_Publish);
BENCHMARK(BM_PublishRouted);
BENCHMARK(BM_QueryPartialKeyword)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryExactKeyword)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMicrosecond);
