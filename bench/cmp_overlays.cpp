// Overlay-topology comparison (paper 5 future work): routing hops vs
// per-node state for Chord (base 2 and 16 fingers), Pastry (hex digits),
// and CAN (2D / 3D), all at the same population.

#include "common/fixture.hpp"
#include "squid/overlay/can.hpp"
#include "squid/overlay/pastry.hpp"
#include "squid/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t nodes =
      std::max<std::size_t>(64, static_cast<std::size_t>(4000 * flags.shrink()));
  constexpr int kTrials = 1500;

  Table table({"overlay", "state/node", "mean hops", "p99 hops"});

  for (const unsigned base : {2u, 16u}) {
    Rng rng(flags.seed);
    overlay::ChordRing ring(64, 8, base);
    ring.build(nodes, rng);
    Summary hops;
    for (int i = 0; i < kTrials; ++i) {
      const auto r = ring.route(ring.random_node(rng),
                                rng.below128(static_cast<u128>(1) << 64));
      if (r.ok) hops.add(static_cast<double>(r.hops()));
    }
    table.add_row({"chord (base " + std::to_string(base) + ")",
                   Table::cell(std::uint64_t{ring.finger_count() + 8}),
                   Table::cell(hops.mean()), Table::cell(hops.percentile(99))});
  }

  {
    Rng rng(flags.seed);
    overlay::PastryOverlay pastry(4, 16);
    pastry.build(nodes, rng);
    Summary hops;
    for (int i = 0; i < kTrials; ++i) {
      const auto r = pastry.route(pastry.random_node(rng), rng.next128());
      if (r.ok) hops.add(static_cast<double>(r.hops()));
    }
    table.add_row({"pastry (b=4, L=16)",
                   Table::cell(pastry.mean_table_entries()),
                   Table::cell(hops.mean()), Table::cell(hops.percentile(99))});
  }

  for (const unsigned dims : {2u, 3u}) {
    Rng rng(flags.seed);
    overlay::CanOverlay can(dims, 16);
    can.build(nodes, rng);
    Summary hops;
    double state = 0;
    for (overlay::CanOverlay::NodeIndex v = 0; v < can.size(); ++v)
      state += static_cast<double>(can.neighbors(v).size());
    state /= static_cast<double>(can.size());
    for (int i = 0; i < kTrials; ++i) {
      sfc::Point p(dims);
      for (auto& c : p) c = rng.below(1u << 16);
      const auto r = can.route(can.random_node(rng), p);
      if (r.ok) hops.add(static_cast<double>(r.hops()));
    }
    table.add_row({"can (" + std::to_string(dims) + "D)", Table::cell(state),
                   Table::cell(hops.mean()), Table::cell(hops.percentile(99))});
  }

  emit("Overlay comparison: state vs hops (" + std::to_string(nodes) +
           " nodes)",
       table, flags);
  return 0;
}
