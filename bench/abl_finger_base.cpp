// Routing-geometry ablation (extension; paper 5 lists "other network
// topologies" as future work): k-ary finger tables trade state for hops.
// Base b keeps (b-1)*log_b(2^m) fingers and routes in ~log_b N hops.

#include "common/fixture.hpp"
#include "squid/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t nodes =
      std::max<std::size_t>(64, static_cast<std::size_t>(5000 * flags.shrink()));

  Table table({"finger base", "fingers/node", "mean hops", "p99 hops",
               "max hops"});
  for (const unsigned base : {2u, 4u, 8u, 16u}) {
    Rng rng(flags.seed);
    overlay::ChordRing ring(48, 8, base);
    ring.build(nodes, rng);
    Summary hops;
    for (int trial = 0; trial < 2000; ++trial) {
      const auto r = ring.route(ring.random_node(rng),
                                rng.below128(static_cast<u128>(1) << 48));
      if (r.ok) hops.add(static_cast<double>(r.hops()));
    }
    table.add_row({Table::cell(std::uint64_t{base}),
                   Table::cell(std::uint64_t{ring.finger_count()}),
                   Table::cell(hops.mean()), Table::cell(hops.percentile(99)),
                   Table::cell(hops.max())});
  }
  emit("Finger-base ablation: state vs hops (" + std::to_string(nodes) +
           " nodes)",
       table, flags);
  return 0;
}
