// Micro-benchmarks: SFC mapping throughput (forward and inverse) and
// rectangle decomposition, across curve families and geometries.

#include <benchmark/benchmark.h>

#include "squid/sfc/hilbert.hpp"
#include "squid/sfc/refine.hpp"
#include "squid/sfc/zorder.hpp"
#include "squid/util/rng.hpp"

namespace {

using namespace squid;
using namespace squid::sfc;

std::vector<Point> random_points(const Curve& curve, std::size_t count) {
  Rng rng(1);
  std::vector<Point> points(count);
  for (auto& p : points) {
    p.resize(curve.dims());
    for (auto& c : p)
      c = curve.bits_per_dim() >= 64 ? rng()
                                     : rng.below(curve.max_coord() + 1);
  }
  return points;
}

template <typename CurveT>
void BM_IndexOf(benchmark::State& state) {
  const CurveT curve(static_cast<unsigned>(state.range(0)),
                     static_cast<unsigned>(state.range(1)));
  const auto points = random_points(curve, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.index_of(points[i++ & 1023]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename CurveT>
void BM_PointOf(benchmark::State& state) {
  const CurveT curve(static_cast<unsigned>(state.range(0)),
                     static_cast<unsigned>(state.range(1)));
  Rng rng(2);
  std::vector<u128> indices(1024);
  for (auto& h : indices) h = rng.next128() & curve.max_index();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.point_of(indices[i++ & 1023]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_HilbertDecompose(benchmark::State& state) {
  const HilbertCurve curve(2, static_cast<unsigned>(state.range(0)));
  const ClusterRefiner refiner(curve);
  Rng rng(3);
  std::vector<Rect> rects;
  for (int i = 0; i < 64; ++i) {
    Rect r;
    for (int d = 0; d < 2; ++d) {
      const auto a = rng.below(curve.max_coord() + 1);
      const auto b = rng.below(curve.max_coord() + 1);
      r.dims.push_back({std::min(a, b), std::max(a, b)});
    }
    rects.push_back(std::move(r));
  }
  std::size_t i = 0;
  std::size_t segments = 0;
  for (auto _ : state) {
    segments += refiner.decompose(rects[i++ & 63], 8).size();
  }
  benchmark::DoNotOptimize(segments);
}

} // namespace

BENCHMARK(BM_IndexOf<HilbertCurve>)
    ->Args({2, 24})
    ->Args({3, 40})
    ->Args({8, 16});
BENCHMARK(BM_PointOf<HilbertCurve>)
    ->Args({2, 24})
    ->Args({3, 40})
    ->Args({8, 16});
BENCHMARK(BM_IndexOf<ZOrderCurve>)->Args({2, 24})->Args({3, 40});
BENCHMARK(BM_PointOf<ZOrderCurve>)->Args({2, 24})->Args({3, 40});
BENCHMARK(BM_HilbertDecompose)->Arg(8)->Arg(16)->Arg(24);
