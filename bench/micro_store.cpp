// Micro-benchmarks: the key store's data plane — corpus loading, contiguous
// segment scans, and the rank queries behind load probes and balancing.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace {

using namespace squid;

struct StoreFixture {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<core::SquidSystem> sys;
  /// The raw corpus draw, in publish order (duplicate keys included).
  std::vector<core::DataElement> elements;
  std::vector<core::SquidSystem::NodeId> probe_nodes;
};

/// Build a system holding `keys` distinct keys over `nodes` peers, plus the
/// element sequence that produced it (for the publish benches).
const StoreFixture& store_fixture(std::size_t keys, std::size_t nodes) {
  static std::map<std::pair<std::size_t, std::size_t>, StoreFixture> cache;
  auto& fx = cache[{keys, nodes}];
  if (fx.sys) return fx;
  Rng rng(2003);
  fx.corpus = std::make_unique<workload::KeywordCorpus>(2, 2500, 0.8, rng);
  fx.sys = std::make_unique<core::SquidSystem>(fx.corpus->make_space());
  std::set<u128> seen;
  while (seen.size() < keys) {
    fx.elements.push_back(fx.corpus->make_element(rng));
    seen.insert(
        fx.sys->curve().index_of(fx.sys->space().encode(fx.elements.back().keys)));
  }
  for (const auto& e : fx.elements) fx.sys->publish(e);
  fx.sys->build_network(nodes, rng);
  for (int i = 0; i < 4096; ++i)
    fx.probe_nodes.push_back(fx.sys->ring().random_node(rng));
  return fx;
}

/// Sequential per-element publish of the whole corpus draw (the seed path
/// every fixture used before publish_batch).
void BM_PublishSequential(benchmark::State& state) {
  const auto& fx =
      store_fixture(static_cast<std::size_t>(state.range(0)), 1000);
  for (auto _ : state) {
    core::SquidSystem sys(fx.corpus->make_space());
    for (const auto& e : fx.elements) sys.publish(e);
    benchmark::DoNotOptimize(sys.key_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.elements.size()));
}

/// Bulk sort-merge load of the same corpus draw (the fixture path).
void BM_PublishBatch(benchmark::State& state) {
  const auto& fx =
      store_fixture(static_cast<std::size_t>(state.range(0)), 1000);
  for (auto _ : state) {
    core::SquidSystem sys(fx.corpus->make_space());
    sys.publish_batch(fx.elements);
    benchmark::DoNotOptimize(sys.key_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.elements.size()));
}

/// Contiguous scan over every stored key (the whole-space segment scan).
void BM_SegmentScan(benchmark::State& state) {
  const auto& fx =
      store_fixture(static_cast<std::size_t>(state.range(0)), 1000);
  for (auto _ : state) {
    std::size_t total = 0;
    fx.sys->for_each_key([&](u128, const sfc::Point&,
                             const std::vector<core::DataElement>& elements) {
      total += elements.size();
    });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.sys->key_count()));
}

/// Per-node key counts in ring order (Figs 18-19's load metric).
void BM_NodeLoads(benchmark::State& state) {
  const auto& fx =
      store_fixture(static_cast<std::size_t>(state.range(0)), 5400);
  for (auto _ : state) {
    auto loads = fx.sys->node_loads();
    benchmark::DoNotOptimize(loads.data());
  }
}

/// Rank query: keys owned by one node (the join-probe load report).
void BM_LoadRank(benchmark::State& state) {
  const auto& fx =
      store_fixture(static_cast<std::size_t>(state.range(0)), 5400);
  std::size_t i = 0, acc = 0;
  for (auto _ : state)
    acc += fx.sys->load_of(fx.probe_nodes[i++ % fx.probe_nodes.size()]);
  benchmark::DoNotOptimize(acc);
}

/// Single-key publish -> retract cycle against a loaded store (DESIGN.md
/// 4j): Arg0 = resident keys K, Arg1 = store_delta_cap. Cap 1 forces a
/// merge on every mutation — the PR-2 flat store's O(K) memmove, the
/// "before" arm. Cap 0 is the tiered sqrt policy: the publish lands in the
/// delta tier and the retract removes it there, O(log K + |delta|)
/// amortized. The fresh probe key keeps the resident set at K across
/// iterations in both arms.
void BM_SingleKeyUpdate(benchmark::State& state) {
  const auto& fx =
      store_fixture(static_cast<std::size_t>(state.range(0)), 1000);
  core::SquidConfig config;
  config.store_delta_cap = static_cast<std::size_t>(state.range(1));
  core::SquidSystem sys(fx.corpus->make_space(), config);
  sys.publish_batch(fx.elements);
  // A probe element whose key is not already resident, so publish inserts a
  // key and retract removes it (the mutating path both arms must pay).
  Rng rng(777);
  core::DataElement probe;
  const auto resident = sys.key_indices();
  for (;;) {
    probe = fx.corpus->make_element(rng);
    const u128 index = sys.curve().index_of(sys.space().encode(probe.keys));
    if (!std::binary_search(resident.begin(), resident.end(), index)) break;
  }
  for (auto _ : state) {
    sys.publish(probe);
    sys.unpublish(probe);
  }
  state.SetItemsProcessed(state.iterations() * 2); // one publish, one retract
}

/// Median-split identifier of one node's key arc (balancing split point).
void BM_MedianSplit(benchmark::State& state) {
  const auto& fx =
      store_fixture(static_cast<std::size_t>(state.range(0)), 5400);
  std::size_t i = 0, hits = 0;
  for (auto _ : state) {
    const auto id =
        fx.sys->median_split_id(fx.probe_nodes[i++ % fx.probe_nodes.size()]);
    hits += id.has_value();
  }
  benchmark::DoNotOptimize(hits);
}

} // namespace

BENCHMARK(BM_PublishSequential)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PublishBatch)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SegmentScan)->Arg(20000)->Arg(100000)->Unit(benchmark::kMicrosecond);
// {keys, store_delta_cap}: cap 1 = flat-store "before" arm (linear in keys),
// cap 0 = tiered sqrt policy (log). Compare columns at fixed cap across the
// two key scales.
BENCHMARK(BM_SingleKeyUpdate)
    ->Args({20000, 1})
    ->Args({100000, 1})
    ->Args({20000, 0})
    ->Args({100000, 0});
BENCHMARK(BM_NodeLoads)->Arg(100000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LoadRank)->Arg(100000);
BENCHMARK(BM_MedianSplit)->Arg(100000);
