// Whole-system lifecycle simulation: a deployment lives on the
// discrete-event engine for a simulated hour — peers join and fail, clients
// publish and query continuously, replication repair and stabilization run
// on their own timers. Prints a timeline of health metrics; the shape to
// look for is steady completeness and bounded repair backlog despite churn.

#include <iostream>

#include "common/fixture.hpp"
#include "squid/core/replication.hpp"
#include "squid/sim/engine.hpp"
#include "squid/workload/corpus.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t start_nodes =
      std::max<std::size_t>(50, static_cast<std::size_t>(500 * flags.shrink()));

  Rng rng(flags.seed);
  workload::KeywordCorpus corpus(2, 600, 0.9, rng);
  core::SquidSystem sys(corpus.make_space());
  sys.build_network(start_nodes, rng);
  std::vector<core::DataElement> published = corpus.make_elements(
      start_nodes * 10, rng);
  for (const auto& e : published) sys.publish(e);
  core::ReplicationManager replication(sys, 3);

  sim::Engine engine;
  Rng churn_rng = rng.fork();
  Rng client_rng = rng.fork();
  Rng maint_rng = rng.fork();

  constexpr sim::Time kMinute = 60;
  constexpr sim::Time kHour = 60 * kMinute;

  // Churn: every 10 s, with 50% probability one peer joins or one fails.
  engine.schedule_periodic(10, [&] {
    if (churn_rng.chance(0.5)) {
      if (churn_rng.chance(0.5) || sys.ring().size() < start_nodes / 2) {
        (void)replication.join_node(churn_rng);
      } else {
        replication.fail_node(sys.ring().random_node(churn_rng));
      }
    }
    return engine.now() < kHour;
  });

  // Clients: one publish and two queries per 5 s.
  std::size_t queries_run = 0, matches_total = 0;
  engine.schedule_periodic(5, [&] {
    published.push_back(corpus.make_element(client_rng));
    sys.publish(published.back());
    for (int i = 0; i < 2; ++i) {
      const auto q = corpus.q1(client_rng.below(30), true);
      const auto result = sys.query(q, sys.ring().random_node(client_rng));
      ++queries_run;
      matches_total += result.stats.matches;
    }
    return engine.now() < kHour;
  });

  // Maintenance: stabilization every 30 s, replica repair every minute.
  engine.schedule_periodic(30, [&] {
    sys.stabilize(maint_rng, 1);
    return engine.now() < kHour;
  });
  std::size_t repair_traffic = 0;
  engine.schedule_periodic(kMinute, [&] {
    repair_traffic += replication.repair();
    return engine.now() < kHour;
  });

  // Reporting every 10 minutes.
  Table table({"minute", "peers", "keys", "queries run", "avg matches",
               "under-replicated", "lost keys", "repair transfers"});
  engine.schedule_periodic(10 * kMinute, [&] {
    table.add_row(
        {Table::cell(std::uint64_t{engine.now() / kMinute}),
         Table::cell(std::uint64_t{sys.ring().size()}),
         Table::cell(std::uint64_t{sys.key_count()}),
         Table::cell(std::uint64_t{queries_run}),
         Table::cell(queries_run ? static_cast<double>(matches_total) /
                                       static_cast<double>(queries_run)
                                 : 0.0),
         Table::cell(std::uint64_t{replication.under_replicated()}),
         Table::cell(std::uint64_t{replication.lost_keys()}),
         Table::cell(std::uint64_t{repair_traffic})});
    return engine.now() < kHour;
  });

  engine.run(kHour);
  emit("Lifecycle: one simulated hour under churn (replication factor 3)",
       table, flags);
  std::cout << (replication.lost_keys() == 0 ? "no data lost\n"
                                             : "DATA LOST\n");
  return replication.lost_keys() == 0 ? 0 : 1;
}
