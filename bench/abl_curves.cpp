// Curve-family ablation (DESIGN.md): what Hilbert's locality buys over
// Z-order and Gray-code mappings — clusters per query, nodes touched,
// messages — on identical corpora and queries.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[1]; // 2000 nodes / 4e4 keys

  Table table({"curve", "query", "matches", "clusters(level 8)",
               "processing nodes", "data nodes", "messages"});
  for (const std::string family : {"hilbert", "gray", "zorder"}) {
    core::SquidConfig config = balanced_config();
    config.curve = family;
    KeywordFixture fx = build_keyword_fixture(2, scale, flags.seed, config);
    Rng rng(flags.seed ^ 0xab1);
    // Column-shaped Q1 queries (one dim constrained) are friendly to every
    // hierarchical curve; compact Q2 queries (both dims constrained) are
    // where Hilbert's locality pays (paper Fig 3, Moon et al.).
    std::vector<NamedQuery> queries = q1_queries(fx);
    const auto q2 = q2_queries(fx);
    queries.insert(queries.end(), q2.begin(), q2.end());
    // Broad compact rectangles: single-letter prefixes on both dimensions
    // select 1/27 of each axis — the large-square regime of paper Fig 3.
    for (const std::size_t rank : {0u, 3u, 9u}) {
      keyword::Query q = fx.corpus->q2(rank, rank + 1, true, /*prefix_len=*/1);
      queries.push_back({keyword::to_string(q), std::move(q)});
    }
    for (const auto& nq : queries) {
      const QueryAverages avg = run_query(*fx.sys, nq.query, 10, rng);
      const sfc::ClusterRefiner refiner(fx.sys->curve());
      const auto clusters =
          refiner.decompose(fx.sys->space().to_rect(nq.query), 8);
      table.add_row({family, nq.label, Table::cell(avg.matches),
                     Table::cell(std::uint64_t{clusters.size()}),
                     Table::cell(avg.processing_nodes),
                     Table::cell(avg.data_nodes), Table::cell(avg.messages)});
    }
  }
  emit("Curve ablation: Hilbert vs Gray vs Z-order", table, flags);
  return 0;
}
