// Reproduces Fig 17: range queries of the form (range, range, range) over
// the 3D grid-resource space — matches, processing nodes, data nodes as the
// system grows.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  run_growth_figure("Fig 17 (Q3 (range, range, range))", flags,
                    [&flags](const ScalePoint& scale) {
                      ResourceFixture fx =
                          build_resource_fixture(scale, flags.seed);
                      FigureSetup setup;
                      setup.queries = q3_all_range_queries(fx);
                      setup.sys = std::move(fx.sys);
                      return setup;
                    });
  return 0;
}
