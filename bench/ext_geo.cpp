// Geo moving-objects panel (DESIGN.md 4j, EXPERIMENTS.md): the update-heavy
// workload the mutable key plane exists for.
//
//   1. Host: core count + measurement protocol (thread rows on a 1-core
//      container are honest noise, not speedup).
//   2. Update throughput: one motion tick = objects × (retract + publish)
//      through the routed update plane (core/update.hpp), timed per
//      delivery mode — kLockstep, kVirtualTime, kParallel at S ∈ {2, 4} —
//      with the overlay cost columns (hops/op, frames/op, bytes/op).
//   3. Recall under motion: after every tick, random bbox queries from
//      random origins are checked against the workload's exact ground
//      truth. Commits are synchronous, so recall must be 1.0 — this panel
//      is the bench-level completeness check of the mutable plane — and
//      k-nearest answers must equal a brute-force scan of the truth.
//   4. Churn + faults: the same tick stream with a lossy fault plan and
//      nodes leaving/joining between ticks. Lost retracts strand stale
//      positions and lost publishes hide objects, so recall degrades
//      honestly with the drop rate; the panel records delivered/lost and
//      the measured recall floor.
//
// Writes BENCH_geo.json. Protocol per timed row: one untimed warmup tick,
// then kRuns timed ticks, median rate reported.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fixture.hpp"
#include "squid/core/update.hpp"
#include "squid/sim/fault.hpp"
#include "squid/workload/geo.hpp"

namespace {

using namespace squid;
using namespace squid::bench;

constexpr int kRuns = 3; // timed passes per row; median reported

const char* mode_name(core::DeliveryMode mode) {
  switch (mode) {
  case core::DeliveryMode::kLockstep: return "lockstep";
  case core::DeliveryMode::kVirtualTime: return "virtual";
  case core::DeliveryMode::kParallel: return "parallel";
  }
  return "?";
}

struct GeoFixture {
  workload::GeoConfig world;
  std::unique_ptr<workload::GeoMovingObjectsWorkload> objects;
  std::unique_ptr<core::SquidSystem> sys;
};

GeoFixture build_geo(const Flags& flags, std::size_t nodes,
                     std::size_t objects) {
  GeoFixture fx;
  fx.world.objects = objects;
  Rng rng(flags.seed);
  fx.objects =
      std::make_unique<workload::GeoMovingObjectsWorkload>(fx.world, rng);
  fx.sys = std::make_unique<core::SquidSystem>(fx.objects->make_space(),
                                               balanced_config());
  fx.sys->publish_batch(fx.objects->elements());
  fx.sys->build_network(nodes, rng);
  return fx;
}

/// One motion tick: every object retracts its old position and publishes
/// the new one, batched through one apply_updates run.
core::UpdateRun tick(GeoFixture& fx, Rng& rng, const core::UpdateOptions& opts) {
  std::vector<core::UpdateOp> ops;
  ops.reserve(2 * fx.objects->size());
  for (std::size_t i = 0; i < fx.objects->size(); ++i)
    fx.objects->step(i, fx.sys->ring().random_node(rng), ops, rng);
  return core::apply_updates(*fx.sys, ops, opts);
}

struct ThroughputRow {
  std::string mode;
  double ops_per_sec = 0;
  double hops_per_op = 0;
  double frames_per_op = 0;
  double bytes_per_op = 0;
};

ThroughputRow measure_mode(const Flags& flags, std::size_t nodes,
                           std::size_t objects, core::DeliveryMode mode,
                           unsigned shards) {
  // Fresh fixture per row: every mode pays the same store history.
  GeoFixture fx = build_geo(flags, nodes, objects);
  Rng rng(flags.seed + 17);
  core::UpdateOptions opts;
  opts.mode = mode;
  opts.shards = shards;
  (void)tick(fx, rng, opts); // warmup
  std::vector<double> rates;
  double hops = 0, frames = 0, bytes = 0, ops = 0;
  for (int r = 0; r < kRuns; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const core::UpdateRun run = tick(fx, rng, opts);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    rates.push_back(static_cast<double>(run.results.size()) / seconds);
    ops += static_cast<double>(run.results.size());
    frames += static_cast<double>(run.messages);
    bytes += static_cast<double>(run.bytes);
    for (const core::UpdateResult& res : run.results)
      hops += static_cast<double>(res.hops);
  }
  std::sort(rates.begin(), rates.end());
  ThroughputRow row;
  row.mode = mode_name(mode);
  if (mode == core::DeliveryMode::kParallel)
    row.mode += "-S" + std::to_string(shards);
  row.ops_per_sec = rates[rates.size() / 2];
  row.hops_per_op = hops / ops;
  row.frames_per_op = frames / ops;
  row.bytes_per_op = bytes / ops;
  return row;
}

/// Recall of one bbox query against the workload's exact ground truth:
/// |found ∩ truth| / |truth| (1.0 when the truth set is empty).
double bbox_recall(const core::SquidSystem& sys,
                   const workload::GeoMovingObjectsWorkload& objects,
                   double xlo, double xhi, double ylo, double yhi,
                   overlay::NodeId origin) {
  const auto truth = objects.inside(xlo, xhi, ylo, yhi);
  if (truth.empty()) return 1.0;
  const auto result = sys.query(workload::bbox_query(xlo, xhi, ylo, yhi),
                                origin);
  std::set<std::string> found;
  for (const auto& e : result.elements) found.insert(e.name);
  std::size_t hit = 0;
  for (const auto& name : truth) hit += found.count(name);
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

/// Brute-force k-nearest over the workload truth, the oracle for
/// workload::k_nearest.
std::vector<workload::GeoNeighbor>
brute_nearest(const workload::GeoMovingObjectsWorkload& objects, double x,
              double y, std::size_t k) {
  std::vector<workload::GeoNeighbor> all;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& o = objects.object(i);
    const double dx = o.x - x, dy = o.y - y;
    all.push_back({o.name, o.x, o.y, dx * dx + dy * dy});
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) {
              return a.dist2 != b.dist2 ? a.dist2 < b.dist2 : a.name < b.name;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

} // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const double shrink = flags.shrink();
  const std::size_t nodes =
      std::max<std::size_t>(64, static_cast<std::size_t>(1000 * shrink));
  const std::size_t objects =
      std::max<std::size_t>(256, static_cast<std::size_t>(20000 * shrink));
  const std::size_t probe_queries =
      std::max<std::size_t>(4, static_cast<std::size_t>(32 * shrink));

  // --- Host / protocol metadata --------------------------------------------
  Table host({"host_cores", "median_runs", "warmup_runs", "nodes", "objects"});
  host.add_row({Table::cell(std::uint64_t{std::thread::hardware_concurrency()}),
                Table::cell(std::uint64_t{kRuns}), Table::cell(std::uint64_t{1}),
                Table::cell(std::uint64_t{nodes}),
                Table::cell(std::uint64_t{objects})});
  emit("Host and measurement protocol", host, flags);

  // --- Update throughput per delivery mode ---------------------------------
  std::vector<ThroughputRow> rows;
  rows.push_back(measure_mode(flags, nodes, objects,
                              core::DeliveryMode::kLockstep, 1));
  rows.push_back(measure_mode(flags, nodes, objects,
                              core::DeliveryMode::kVirtualTime, 1));
  for (unsigned s : {2u, 4u})
    rows.push_back(
        measure_mode(flags, nodes, objects, core::DeliveryMode::kParallel, s));
  Table thr({"mode", "updates/s", "hops/op", "frames/op", "bytes/op"});
  for (const ThroughputRow& r : rows)
    thr.add_row({r.mode, Table::cell(r.ops_per_sec),
                 Table::cell(r.hops_per_op), Table::cell(r.frames_per_op),
                 Table::cell(r.bytes_per_op)});
  emit("Moving-object update throughput (retract+publish per tick)", thr,
       flags);

  // --- Recall under motion (fault-free: must be exact) ---------------------
  constexpr std::size_t kMotionTicks = 6;
  double min_recall = 1.0;
  std::size_t knn_exact = 0, knn_total = 0;
  {
    GeoFixture fx = build_geo(flags, nodes, objects);
    Rng rng(flags.seed + 31);
    core::UpdateOptions opts; // lockstep
    for (std::size_t t = 0; t < kMotionTicks; ++t) {
      (void)tick(fx, rng, opts);
      for (std::size_t q = 0; q < probe_queries; ++q) {
        const double w = 32 + rng.uniform() * 96;
        const double x = rng.uniform() * (fx.world.width - w);
        const double y = rng.uniform() * (fx.world.height - w);
        min_recall = std::min(
            min_recall, bbox_recall(*fx.sys, *fx.objects, x, x + w, y, y + w,
                                    fx.sys->ring().random_node(rng)));
      }
      // k-nearest spot checks against the brute-force oracle.
      for (std::size_t q = 0; q < 4; ++q) {
        const double x = rng.uniform() * fx.world.width;
        const double y = rng.uniform() * fx.world.height;
        const auto got = workload::k_nearest(*fx.sys, fx.world, x, y, 8,
                                             fx.sys->ring().random_node(rng));
        knn_exact += got == brute_nearest(*fx.objects, x, y, 8) ? 1 : 0;
        ++knn_total;
      }
    }
  }
  Table recall({"ticks", "bbox_probes", "min_recall", "knn_exact", "knn_total"});
  recall.add_row({Table::cell(std::uint64_t{kMotionTicks}),
                  Table::cell(std::uint64_t{kMotionTicks * probe_queries}),
                  Table::cell(min_recall), Table::cell(std::uint64_t{knn_exact}),
                  Table::cell(std::uint64_t{knn_total})});
  emit("Recall under motion (fault-free)", recall, flags);

  // --- Churn + faults ------------------------------------------------------
  // A lossy plan: updates that lose every retry strand stale positions
  // (lost retract) or hide objects (lost publish); recall measured against
  // the workload truth reports the honest damage.
  double fault_recall = 1.0;
  core::UpdateRun fault_totals;
  std::size_t churn_moves = 0;
  {
    GeoFixture fx = build_geo(flags, nodes, objects);
    Rng rng(flags.seed + 47);
    sim::FaultPlan plan;
    plan.seed = flags.seed;
    plan.drop_probability = 0.05;
    core::UpdateOptions opts;
    opts.faults = &plan;
    for (std::size_t t = 0; t < kMotionTicks; ++t) {
      // Churn between ticks: one peer leaves, one joins.
      fx.sys->leave_node(fx.sys->ring().random_node(rng));
      fx.sys->join_node(rng);
      churn_moves += 2;
      const core::UpdateRun run = tick(fx, rng, opts);
      fault_totals.delivered += run.delivered;
      fault_totals.applied += run.applied;
      fault_totals.lost += run.lost;
      fault_totals.messages += run.messages;
      fault_totals.retries += run.retries;
      for (std::size_t q = 0; q < probe_queries; ++q) {
        const double w = 32 + rng.uniform() * 96;
        const double x = rng.uniform() * (fx.world.width - w);
        const double y = rng.uniform() * (fx.world.height - w);
        fault_recall = std::min(
            fault_recall, bbox_recall(*fx.sys, *fx.objects, x, x + w, y, y + w,
                                      fx.sys->ring().random_node(rng)));
      }
    }
  }
  Table faults({"drop_p", "churn_events", "delivered", "lost", "retries",
                "min_recall"});
  faults.add_row({Table::cell(0.05), Table::cell(std::uint64_t{churn_moves}),
                  Table::cell(std::uint64_t{fault_totals.delivered}),
                  Table::cell(std::uint64_t{fault_totals.lost}),
                  Table::cell(std::uint64_t{fault_totals.retries}),
                  Table::cell(fault_recall)});
  emit("Update stream under churn + message loss", faults, flags);

  // --- BENCH_geo.json ------------------------------------------------------
  std::string json = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"scale\": \"%s\",\n  \"host_cores\": %u,\n"
                "  \"nodes\": %zu,\n  \"objects\": %zu,\n",
                flags.scale.c_str(), std::thread::hardware_concurrency(),
                nodes, objects);
  json += buf;
  json += "  \"throughput\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"mode\": \"%s\", \"updates_per_sec\": %.0f, "
                  "\"hops_per_op\": %.2f, \"frames_per_op\": %.2f, "
                  "\"bytes_per_op\": %.1f}",
                  i ? "," : "", rows[i].mode.c_str(), rows[i].ops_per_sec,
                  rows[i].hops_per_op, rows[i].frames_per_op,
                  rows[i].bytes_per_op);
    json += buf;
  }
  json += "\n  ],\n";
  std::snprintf(buf, sizeof buf,
                "  \"motion_ticks\": %zu,\n  \"bbox_min_recall\": %.4f,\n"
                "  \"knn_exact\": %zu,\n  \"knn_total\": %zu,\n",
                kMotionTicks, min_recall, knn_exact, knn_total);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"faults\": {\"drop_p\": 0.05, \"churn_events\": %zu, "
                "\"delivered\": %zu, \"lost\": %zu, \"retries\": %zu, "
                "\"min_recall\": %.4f}\n}\n",
                churn_moves, fault_totals.delivered, fault_totals.lost,
                fault_totals.retries, fault_recall);
  json += buf;

  const std::string out = "BENCH_geo.json";
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  maybe_dump_metrics(flags);
  return 0;
}
