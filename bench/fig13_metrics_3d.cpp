// Reproduces Fig 13: all metrics for the Q1 3D queries at the paper's two
// reference scales — 3000 nodes / 6e4 keys and 5300 nodes / 1e5 keys.

#include "common/fixture.hpp"
#include "common/query_sets.hpp"

int main(int argc, char** argv) {
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const double f = flags.shrink();
  const auto pt = [f](std::size_t nodes, std::size_t keys) {
    return ScalePoint{std::max<std::size_t>(16, std::size_t(nodes * f)),
                      std::max<std::size_t>(16, std::size_t(keys * f))};
  };
  run_metrics_figure("Fig 13 (Q1 metrics, 3D)", flags,
                     {pt(3000, 60000), pt(5300, 100000)},
                     [&flags](const ScalePoint& scale) {
                       KeywordFixture fx =
                           build_keyword_fixture(3, scale, flags.seed);
                       FigureSetup setup;
                       setup.queries = q1_queries(fx);
                       setup.sys = std::move(fx.sys);
                       return setup;
                     });
  return 0;
}
