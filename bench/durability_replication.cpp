// Durability bench (extension; the paper lists fault tolerance as future
// work): key survival and repair traffic as functions of replication factor
// and churn intensity. Failures arrive in waves; repair runs once between
// waves (so heavier waves defeat lower factors first).

#include "common/fixture.hpp"
#include "squid/core/replication.hpp"
#include "squid/workload/corpus.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t nodes =
      std::max<std::size_t>(40, static_cast<std::size_t>(1000 * flags.shrink()));
  const std::size_t elements = nodes * 20;

  Table table({"factor", "wave size %", "waves", "lost keys %",
               "repair transfers / key"});
  for (const unsigned factor : {1u, 2u, 3u, 4u}) {
    for (const double wave_fraction : {0.02, 0.05, 0.10}) {
      Rng rng(flags.seed);
      workload::KeywordCorpus corpus(2, 600, 0.9, rng);
      core::SquidSystem sys(corpus.make_space());
      sys.build_network(nodes, rng);
      for (const auto& e : corpus.make_elements(elements, rng))
        sys.publish(e);
      core::ReplicationManager replication(sys, factor);

      constexpr int kWaves = 10;
      std::size_t transfers = 0;
      for (int wave = 0; wave < kWaves; ++wave) {
        const auto kill = static_cast<std::size_t>(
            wave_fraction * static_cast<double>(sys.ring().size()));
        for (std::size_t i = 0; i < kill && sys.ring().size() > 3; ++i)
          replication.fail_node(sys.ring().random_node(rng));
        // One newcomer per casualty keeps the population roughly stable.
        for (std::size_t i = 0; i < kill; ++i)
          (void)replication.join_node(rng);
        transfers += replication.repair();
      }
      const double lost = 100.0 *
                          static_cast<double>(replication.lost_keys()) /
                          static_cast<double>(replication.tracked_keys());
      table.add_row({Table::cell(std::uint64_t{factor}),
                     Table::cell(wave_fraction * 100),
                     Table::cell(std::uint64_t{kWaves}), Table::cell(lost),
                     Table::cell(static_cast<double>(transfers) /
                                 static_cast<double>(sys.key_count()))});
    }
  }
  emit("Durability: key loss vs replication factor and churn (" +
           std::to_string(nodes) + " peers)",
       table, flags);
  return 0;
}
