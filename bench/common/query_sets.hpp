// The fixed query sets replayed by the figure benches (paper 4.1).
//
// Q1: one partial keyword, wildcards elsewhere. Q2: two terms, at least one
// partial. Q3: numeric ranges. Vocabulary ranks are fixed so every scale
// point of a growth figure replays the identical query, exactly as the
// paper's query1..queryN series do.

#pragma once

#include "common/fixture.hpp"

namespace squid::bench {

inline std::vector<NamedQuery> q1_queries(const KeywordFixture& fx) {
  struct Def {
    std::size_t rank;
    unsigned prefix_len;
  };
  // Ranks span popular to rare words; prefix lengths vary cluster breadth.
  const Def defs[] = {{0, 3}, {2, 3}, {5, 4}, {12, 3}, {30, 4}, {80, 4}};
  std::vector<NamedQuery> queries;
  for (const auto& def : defs) {
    keyword::Query q = fx.corpus->q1(def.rank, /*partial=*/true, def.prefix_len);
    queries.push_back({keyword::to_string(q), std::move(q)});
  }
  return queries;
}

inline std::vector<NamedQuery> q2_queries(const KeywordFixture& fx) {
  struct Def {
    std::size_t rank_a;
    std::size_t rank_b;
    bool partial_b;
  };
  const Def defs[] = {
      {0, 1, true}, {2, 7, false}, {5, 0, true}, {12, 3, false}, {30, 9, true}};
  std::vector<NamedQuery> queries;
  for (const auto& def : defs) {
    keyword::Query q = fx.corpus->q2(def.rank_a, def.rank_b, def.partial_b);
    queries.push_back({keyword::to_string(q), std::move(q)});
  }
  return queries;
}

/// Q3 of the form (keyword, range, *): storage tier fixed, bandwidth range.
inline std::vector<NamedQuery> q3_keyword_range_queries(
    const ResourceFixture& fx) {
  struct Def {
    double storage;
    double bw_lo, bw_hi;
  };
  const Def defs[] = {{256, 90, 1100}, {1024, 900, 2600}, {128, 0, 110},
                      {512, 2200, 10000}};
  std::vector<NamedQuery> queries;
  for (const auto& def : defs) {
    keyword::Query q = fx.corpus->q3_keyword_range(def.storage, def.bw_lo,
                                                   def.bw_hi);
    queries.push_back({keyword::to_string(q), std::move(q)});
  }
  return queries;
}

/// Q3 of the form (range, range, range).
inline std::vector<NamedQuery> q3_all_range_queries(const ResourceFixture& fx) {
  struct Def {
    double st_lo, st_hi, bw_lo, bw_hi, c_lo, c_hi;
  };
  const Def defs[] = {{200, 600, 0, 10000, 0, 1000},
                      {60, 140, 90, 1100, 0, 100},
                      {1000, 4096, 900, 10000, 0, 1000},
                      {450, 1100, 2200, 2700, 10, 200},
                      {0, 4096, 0, 10000, 500, 1000}};
  std::vector<NamedQuery> queries;
  for (const auto& def : defs) {
    keyword::Query q = fx.corpus->q3_all_ranges(def.st_lo, def.st_hi,
                                                def.bw_lo, def.bw_hi,
                                                def.c_lo, def.c_hi);
    queries.push_back({keyword::to_string(q), std::move(q)});
  }
  return queries;
}

} // namespace squid::bench
