#include "common/fixture.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <set>

#include "squid/obs/export.hpp"
#include "squid/util/require.hpp"

namespace squid::bench {

Flags Flags::parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      flags.csv = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--scale=", 0) == 0) {
      flags.scale = arg.substr(8);
      SQUID_REQUIRE(flags.scale == "paper" || flags.scale == "small",
                    "--scale must be 'paper' or 'small'");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      flags.metrics_out = arg.substr(14);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      flags.trace_out = arg.substr(12);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--csv] [--seed=N] [--scale=paper|small]"
                << " [--metrics-out=FILE] [--trace-out=FILE]\n";
      std::exit(2);
    }
  }
  return flags;
}

core::SquidConfig balanced_config() {
  core::SquidConfig config;
  config.join_samples = 8;
  return config;
}

std::vector<ScalePoint> paper_scales(const Flags& flags) {
  const double f = flags.shrink();
  const auto scaled = [f](std::size_t v) {
    return std::max<std::size_t>(16, static_cast<std::size_t>(v * f));
  };
  return {{scaled(1000), scaled(20000)},
          {scaled(2000), scaled(40000)},
          {scaled(3200), scaled(60000)},
          {scaled(4300), scaled(80000)},
          {scaled(5400), scaled(100000)}};
}

namespace {

/// Publish corpus elements until the system holds `keys` distinct keys.
/// Draws the exact element sequence sequential publishing would (same rng
/// consumption, same stopping rule, duplicates included), but loads it with
/// one sort-merge publish_batch instead of one array insert per new key.
template <typename Corpus>
void fill_keys(core::SquidSystem& sys, const Corpus& corpus, std::size_t keys,
               Rng& rng) {
  SQUID_REQUIRE(sys.key_count() == 0, "fill_keys expects an empty store");
  const std::size_t attempt_cap = keys * 40 + 1000;
  std::size_t attempts = 0;
  std::vector<core::DataElement> pending;
  std::set<u128> distinct;
  while (distinct.size() < keys && attempts++ < attempt_cap) {
    pending.push_back(corpus.make_element(rng));
    distinct.insert(
        sys.curve().index_of(sys.space().encode(pending.back().keys)));
  }
  sys.publish_batch(pending);
  SQUID_REQUIRE(sys.key_count() >= keys * 9 / 10,
                "corpus too small to reach the requested key count");
}

void grow_network(core::SquidSystem& sys, std::size_t nodes, Rng& rng) {
  sys.build_network(1, rng);
  for (std::size_t i = 1; i < nodes; ++i) (void)sys.join_node(rng);
  for (int sweep = 0; sweep < 6; ++sweep)
    (void)sys.runtime_balance_sweep(1.3);
  // Boundary moves leave stale fingers behind (each move is a leave +
  // rejoin). Measurements assume a converged overlay, so repair exactly
  // rather than paying for stabilization convergence in the build phase.
  sys.repair_routing();
}

} // namespace

KeywordFixture build_keyword_fixture(unsigned dims, const ScalePoint& scale,
                                     std::uint64_t seed,
                                     core::SquidConfig config) {
  Rng rng(seed);
  // Vocabulary size is FIXED per dimensionality (not scaled with the key
  // target): growth figures replay the identical query at every scale
  // point, so the vocabulary — and hence q1(rank)/q2(ranks) — must not
  // change between points. |V|^d comfortably exceeds 1e5 keys either way.
  const std::size_t vocab = dims >= 3 ? 400 : 2500;
  KeywordFixture fixture;
  fixture.corpus =
      std::make_unique<workload::KeywordCorpus>(dims, vocab, 0.8, rng);
  fixture.sys = std::make_unique<core::SquidSystem>(
      fixture.corpus->make_space(), config);
  fill_keys(*fixture.sys, *fixture.corpus, scale.keys, rng);
  grow_network(*fixture.sys, scale.nodes, rng);
  return fixture;
}

ResourceFixture build_resource_fixture(const ScalePoint& scale,
                                       std::uint64_t seed,
                                       core::SquidConfig config) {
  Rng rng(seed);
  ResourceFixture fixture;
  fixture.corpus = std::make_unique<workload::ResourceCorpus>();
  fixture.sys = std::make_unique<core::SquidSystem>(
      fixture.corpus->make_space(), config);
  fill_keys(*fixture.sys, *fixture.corpus, scale.keys, rng);
  grow_network(*fixture.sys, scale.nodes, rng);
  return fixture;
}

QueryAverages run_query(const core::SquidSystem& sys,
                        const keyword::Query& query, unsigned repeats,
                        Rng& rng) {
  QueryAverages avg;
  SQUID_REQUIRE(repeats > 0, "need at least one repeat");
  for (unsigned r = 0; r < repeats; ++r) {
    const auto result = sys.query(query, sys.ring().random_node(rng));
    avg.matches += static_cast<double>(result.stats.matches);
    avg.routing_nodes += static_cast<double>(result.stats.routing_nodes);
    avg.processing_nodes += static_cast<double>(result.stats.processing_nodes);
    avg.data_nodes += static_cast<double>(result.stats.data_nodes);
    avg.messages += static_cast<double>(result.stats.messages);
  }
  const double n = repeats;
  avg.matches /= n;
  avg.routing_nodes /= n;
  avg.processing_nodes /= n;
  avg.data_nodes /= n;
  avg.messages /= n;
  return avg;
}

void emit(const std::string& title, const Table& table, const Flags& flags) {
  std::cout << "== " << title << " ==\n";
  if (flags.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

void maybe_capture_trace(core::SquidSystem& sys, const keyword::Query& query,
                         const Flags& flags, Rng& rng) {
  if (flags.trace_out.empty()) return;
  if (!obs::kEnabled) {
    std::cerr << "--trace-out ignored: observability compiled out "
                 "(rebuild with -DSQUID_OBS=ON)\n";
    return;
  }
  sys.set_tracing(true);
  const auto result = sys.query(query, sys.ring().random_node(rng));
  sys.set_tracing(false);
  SQUID_REQUIRE(result.trace != nullptr, "tracing enabled but no trace");
  std::ofstream out(flags.trace_out);
  if (!out) {
    std::cerr << "cannot open " << flags.trace_out << "\n";
    return;
  }
  obs::write_trace_json(*result.trace, out);
  std::cerr << "trace (" << result.trace->spans.size() << " spans) -> "
            << flags.trace_out << "\n";
}

void maybe_dump_metrics(const Flags& flags) {
  if (flags.metrics_out.empty()) return;
  if (obs::dump_metrics(obs::Registry::global(), flags.metrics_out)) {
    std::cerr << "metrics -> " << flags.metrics_out << "\n";
  } else {
    std::cerr << "cannot open " << flags.metrics_out << "\n";
  }
}

void run_growth_figure(const std::string& figure, const Flags& flags,
                       const SetupFactory& setup) {
  struct Metric {
    const char* name;
    double QueryAverages::* field;
  };
  const Metric metrics[] = {
      {"matches", &QueryAverages::matches},
      {"processing nodes", &QueryAverages::processing_nodes},
      {"data nodes", &QueryAverages::data_nodes},
      {"routing nodes", &QueryAverages::routing_nodes},
      {"messages", &QueryAverages::messages},
  };

  const auto scales = paper_scales(flags);
  std::vector<std::vector<QueryAverages>> grid; // [scale][query]
  std::vector<std::string> labels;
  for (std::size_t s = 0; s < scales.size(); ++s) {
    const FigureSetup fs = setup(scales[s]);
    if (labels.empty())
      for (const auto& nq : fs.queries) labels.push_back(nq.label);
    Rng rng(flags.seed ^ 0x517ab1e);
    std::vector<QueryAverages> row;
    for (const auto& nq : fs.queries)
      row.push_back(run_query(*fs.sys, nq.query, 10, rng));
    grid.push_back(std::move(row));
    if (s + 1 == scales.size() && !fs.queries.empty())
      maybe_capture_trace(*fs.sys, fs.queries.front().query, flags, rng);
  }

  for (const auto& metric : metrics) {
    std::vector<std::string> headers{"nodes", "keys"};
    headers.insert(headers.end(), labels.begin(), labels.end());
    Table table(headers);
    for (std::size_t s = 0; s < scales.size(); ++s) {
      std::vector<std::string> row{Table::cell(std::uint64_t{scales[s].nodes}),
                                   Table::cell(std::uint64_t{scales[s].keys})};
      for (const auto& avg : grid[s])
        row.push_back(Table::cell(avg.*(metric.field)));
      table.add_row(std::move(row));
    }
    emit(figure + ": " + metric.name, table, flags);
  }
  maybe_dump_metrics(flags);
}

void run_metrics_figure(const std::string& figure, const Flags& flags,
                        const std::vector<ScalePoint>& scales,
                        const SetupFactory& setup) {
  for (std::size_t s = 0; s < scales.size(); ++s) {
    const ScalePoint& scale = scales[s];
    const FigureSetup fs = setup(scale);
    Rng rng(flags.seed ^ 0x9a77e2);
    Table table({"query", "matches", "routing nodes", "messages",
                 "processing nodes", "data nodes"});
    for (const auto& nq : fs.queries) {
      const QueryAverages avg = run_query(*fs.sys, nq.query, 10, rng);
      table.add_row({nq.label, Table::cell(avg.matches),
                     Table::cell(avg.routing_nodes), Table::cell(avg.messages),
                     Table::cell(avg.processing_nodes),
                     Table::cell(avg.data_nodes)});
    }
    emit(figure + ": all metrics, " + std::to_string(scale.nodes) +
             " nodes / " + std::to_string(scale.keys) + " keys",
         table, flags);
    if (s + 1 == scales.size() && !fs.queries.empty())
      maybe_capture_trace(*fs.sys, fs.queries.front().query, flags, rng);
  }
  maybe_dump_metrics(flags);
}

} // namespace squid::bench
