// Shared scaffolding for the figure-reproduction benches.
//
// Every binary prints the series of one paper figure (see DESIGN.md's
// per-experiment index): it builds Squid systems at the paper's scales —
// nodes grown through the load-balancing join, keys from the synthetic
// keyword/resource corpora — replays the figure's queries from multiple
// origins, and prints a table per panel. Run with --csv for
// machine-readable output and --scale=small for a quick smoke run.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/stats/table.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::bench {

struct Flags {
  std::uint64_t seed = 2003; // HPDC 2003
  bool csv = false;
  /// "paper" replays the published scales; "small" shrinks everything ~10x
  /// so the full bench suite smoke-runs quickly.
  std::string scale = "paper";
  /// Observability sidecars (empty = off): --metrics-out dumps the global
  /// metrics registry after the run (.json or .csv by extension);
  /// --trace-out captures one traced replay of the figure's first query at
  /// the largest scale as Chrome/Perfetto trace_event JSON.
  std::string metrics_out;
  std::string trace_out;

  static Flags parse(int argc, char** argv);
  double shrink() const { return scale == "small" ? 0.1 : 1.0; }
};

/// One (nodes, keys) operating point of the paper's growth experiments.
struct ScalePoint {
  std::size_t nodes;
  std::size_t keys;
};

/// The paper's 2D/3D growth schedule: 1000->5400 nodes, 2e4->1e5 keys.
std::vector<ScalePoint> paper_scales(const Flags& flags);

/// The paper's deployed configuration: load-balancing join enabled.
core::SquidConfig balanced_config();

struct KeywordFixture {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<core::SquidSystem> sys;
};

/// Build a Squid system at one scale point: corpus keys are published
/// first, then nodes join through the load-balancing join (the deployed
/// system the paper measures), followed by a few runtime-balancing sweeps.
KeywordFixture build_keyword_fixture(unsigned dims, const ScalePoint& scale,
                                     std::uint64_t seed,
                                     core::SquidConfig config = balanced_config());

struct ResourceFixture {
  std::unique_ptr<workload::ResourceCorpus> corpus;
  std::unique_ptr<core::SquidSystem> sys;
};

ResourceFixture build_resource_fixture(const ScalePoint& scale,
                                       std::uint64_t seed,
                                       core::SquidConfig config = balanced_config());

/// Replay one query from `repeats` random origins and average the stats.
struct QueryAverages {
  double matches = 0;
  double routing_nodes = 0;
  double processing_nodes = 0;
  double data_nodes = 0;
  double messages = 0;
};

QueryAverages run_query(const core::SquidSystem& sys,
                        const keyword::Query& query, unsigned repeats,
                        Rng& rng);

/// Print `table` under a headline, honoring --csv.
void emit(const std::string& title, const Table& table, const Flags& flags);

/// Honor --trace-out: replay `query` once with tracing enabled on `sys`
/// and write the span trace as Perfetto JSON. No-op when the flag is
/// empty; warns when observability is compiled out.
void maybe_capture_trace(core::SquidSystem& sys, const keyword::Query& query,
                         const Flags& flags, Rng& rng);

/// Honor --metrics-out: dump the global metrics registry snapshot
/// accumulated over the whole run. No-op when the flag is empty.
void maybe_dump_metrics(const Flags& flags);

/// A named query replayed by a figure bench.
struct NamedQuery {
  std::string label;
  keyword::Query query;
};

/// A system built at one scale point together with the figure's fixed
/// query set (queries are derived from the corpus, so they come from the
/// same factory).
struct FigureSetup {
  std::unique_ptr<core::SquidSystem> sys;
  std::vector<NamedQuery> queries;
};

using SetupFactory = std::function<FigureSetup(const ScalePoint&)>;

/// Growth figure (Figs 9, 11, 12, 14, 15, 17): replay the fixed queries at
/// every scale point; prints one table per metric with a row per scale and
/// a column per query.
void run_growth_figure(const std::string& figure, const Flags& flags,
                       const SetupFactory& setup);

/// All-metrics figure (Figs 10, 13, 16): at the given scale points, prints
/// one table per scale with a row per query and a column per metric.
void run_metrics_figure(const std::string& figure, const Flags& flags,
                        const std::vector<ScalePoint>& scales,
                        const SetupFactory& setup);

} // namespace squid::bench
