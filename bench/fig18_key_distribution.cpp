// Reproduces Fig 18: the distribution of keys across the SFC index space,
// partitioned into 50 equal intervals. The locality-preserving mapping makes
// the distribution strongly non-uniform — the motivation for load
// balancing.

#include "common/fixture.hpp"
#include "squid/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const auto scales = paper_scales(flags);
  const KeywordFixture fx =
      build_keyword_fixture(2, scales.back(), flags.seed);

  constexpr std::size_t kIntervals = 50;
  const u128 interval_width = fx.sys->curve().max_index() / kIntervals + 1;
  std::vector<std::uint64_t> counts(kIntervals, 0);
  for (const u128 index : fx.sys->key_indices()) {
    auto bucket = static_cast<std::size_t>(index / interval_width);
    if (bucket >= kIntervals) bucket = kIntervals - 1;
    ++counts[bucket];
  }

  Table table({"interval", "keys"});
  for (std::size_t i = 0; i < kIntervals; ++i)
    table.add_row({Table::cell(std::uint64_t{i}), Table::cell(counts[i])});
  emit("Fig 18: keys per index-space interval (50 intervals, " +
           std::to_string(fx.sys->key_count()) + " keys)",
       table, flags);

  Summary summary;
  for (const auto c : counts) summary.add(static_cast<double>(c));
  Table stats({"metric", "value"});
  stats.add_row({"max interval", Table::cell(summary.max())});
  stats.add_row({"mean interval", Table::cell(summary.mean())});
  stats.add_row({"cv", Table::cell(summary.cv())});
  stats.add_row({"gini", Table::cell(summary.gini())});
  emit("Fig 18: imbalance summary", stats, flags);
  return 0;
}
