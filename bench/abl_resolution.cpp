// Index-resolution ablation: the keyword codec's max_len sets bits per
// dimension (base-27 digits), which controls how deep the refinement tree
// can go. Higher resolution separates keys better (fewer false neighbors)
// but lengthens cluster prefixes; this bench measures the end-to-end effect
// on query cost for the same corpus and queries.

#include "common/fixture.hpp"
#include "squid/workload/corpus.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[1]; // 2000 nodes / 4e4 keys

  Table table({"max_len", "bits/dim", "keys", "query", "matches",
               "processing nodes", "messages"});
  for (const unsigned max_len : {3u, 4u, 5u, 6u}) {
    Rng rng(flags.seed);
    workload::KeywordCorpus corpus(2, 2500, 0.8, rng);
    core::SquidSystem sys(corpus.make_space(max_len), balanced_config());
    std::size_t attempts = 0;
    while (sys.key_count() < scale.keys && attempts++ < scale.keys * 40)
      sys.publish(corpus.make_element(rng));
    sys.build_network(1, rng);
    for (std::size_t i = 1; i < scale.nodes; ++i) (void)sys.join_node(rng);
    for (int s = 0; s < 6; ++s) (void)sys.runtime_balance_sweep(1.3);
    sys.repair_routing();

    for (const std::size_t rank : {0u, 12u}) {
      const keyword::Query q = corpus.q1(rank, true, 3);
      QueryAverages avg;
      Rng qrng(flags.seed ^ 0x0a51);
      avg = run_query(sys, q, 10, qrng);
      table.add_row({Table::cell(std::uint64_t{max_len}),
                     Table::cell(std::uint64_t{sys.space().bits_per_dim()}),
                     Table::cell(std::uint64_t{sys.key_count()}),
                     keyword::to_string(q), Table::cell(avg.matches),
                     Table::cell(avg.processing_nodes),
                     Table::cell(avg.messages)});
    }
  }
  emit("Index-resolution ablation (keyword max_len)", table, flags);
  return 0;
}
