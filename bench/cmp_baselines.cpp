// Comparative bench (beyond the paper's figures, quantifying its Related
// Work claims): Squid vs Gnutella-style flooding, a distributed inverted
// index, the naive centralized cluster decomposition, and the Chord
// exact-lookup oracle — same corpus, same queries, completeness required.

#include <iostream>

#include "common/fixture.hpp"
#include "squid/baselines/chord_oracle.hpp"
#include "squid/baselines/flooding.hpp"
#include "squid/baselines/inverted_index.hpp"

int main(int argc, char** argv) {
  using namespace squid;
  using namespace squid::bench;
  const Flags flags = Flags::parse(argc, argv);
  const ScalePoint scale = paper_scales(flags)[0]; // 1000 nodes / 2e4 keys

  Rng rng(flags.seed);
  workload::KeywordCorpus corpus(2, 600, 0.8, rng);
  core::SquidSystem squid(corpus.make_space(), balanced_config());
  std::vector<core::DataElement> all;
  while (squid.key_count() < scale.keys) {
    all.push_back(corpus.make_element(rng));
    squid.publish(all.back());
  }
  squid.build_network(1, rng);
  for (std::size_t i = 1; i < scale.nodes; ++i) (void)squid.join_node(rng);
  for (int s = 0; s < 6; ++s) (void)squid.runtime_balance_sweep(1.3);
  squid.repair_routing();

  baselines::FloodingNetwork flood(scale.nodes, 4, rng);
  for (const auto& e : all) flood.publish(e, rng);
  baselines::InvertedIndexDht inverted(scale.nodes, rng);
  for (const auto& e : all) inverted.publish(e);

  const std::string word_a = corpus.vocabulary().by_rank(0);
  const std::string word_b = corpus.vocabulary().by_rank(1);
  const std::string prefix = word_a.substr(0, 3);

  struct Case {
    std::string label;
    keyword::Query query;
    bool inverted_supported;
  };
  const std::vector<Case> cases{
      {"(" + word_a + ", " + word_b + ")",
       keyword::Query{{keyword::Whole{word_a}, keyword::Whole{word_b}}}, true},
      {"(" + word_a + ", *)",
       keyword::Query{{keyword::Whole{word_a}, keyword::Any{}}}, true},
      {"(" + prefix + "*, *)",
       keyword::Query{{keyword::Prefix{prefix}, keyword::Any{}}}, true},
  };

  Table table({"query", "system", "matches", "messages", "nodes touched",
               "complete"});
  for (const auto& c : cases) {
    const auto origin = squid.ring().random_node(rng);
    const auto sq = squid.query(c.query, origin);
    table.add_row({c.label, "squid (distributed)",
                   Table::cell(std::uint64_t{sq.stats.matches}),
                   Table::cell(std::uint64_t{sq.stats.messages}),
                   Table::cell(std::uint64_t{sq.stats.routing_nodes}), "yes"});

    const auto central = squid.query_centralized(c.query, origin);
    table.add_row({c.label, "squid (centralized clusters)",
                   Table::cell(std::uint64_t{central.stats.matches}),
                   Table::cell(std::uint64_t{central.stats.messages}),
                   Table::cell(std::uint64_t{central.stats.routing_nodes}),
                   "yes"});

    // Flooding needs TTL = network size for the completeness guarantee.
    const auto fl = flood.query(squid.space(), c.query,
                                static_cast<unsigned>(flood.size()), rng);
    table.add_row({c.label, "gnutella flooding",
                   Table::cell(std::uint64_t{fl.matches}),
                   Table::cell(std::uint64_t{fl.messages}),
                   Table::cell(std::uint64_t{fl.nodes_visited}),
                   fl.matches == flood.total_matches(squid.space(), c.query)
                       ? "yes (ttl=N)"
                       : "no"});

    if (c.inverted_supported) {
      baselines::InvertedIndexDht::LookupResult iv;
      if (std::holds_alternative<keyword::Prefix>(c.query.terms[0])) {
        iv = inverted.query_prefix(
            0, std::get<keyword::Prefix>(c.query.terms[0]).prefix,
            corpus.vocabulary().words(), rng);
      } else {
        std::vector<std::string> terms;
        for (const auto& t : c.query.terms) {
          if (const auto* w = std::get_if<keyword::Whole>(&t)) {
            terms.push_back(w->word);
          } else {
            terms.push_back("*");
          }
        }
        iv = inverted.query_whole(terms, rng);
      }
      table.add_row({c.label, "inverted index DHT",
                     Table::cell(std::uint64_t{iv.matches}),
                     Table::cell(std::uint64_t{iv.messages}),
                     Table::cell(std::uint64_t{iv.routing_nodes}),
                     "yes (no ranges)"});
    }

    const auto oracle = baselines::chord_oracle_query(squid, c.query, rng);
    table.add_row({c.label, "chord + a-priori keys (oracle)",
                   Table::cell(std::uint64_t{oracle.matches}),
                   Table::cell(std::uint64_t{oracle.messages}),
                   Table::cell(std::uint64_t{oracle.routing_nodes}),
                   "yes (needs oracle)"});
  }
  emit("Baseline comparison (" + std::to_string(scale.nodes) + " nodes, " +
           std::to_string(squid.key_count()) + " keys)",
       table, flags);
  return 0;
}
