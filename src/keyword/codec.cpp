#include "squid/keyword/codec.hpp"

#include <cmath>

#include "squid/util/require.hpp"
#include "squid/util/u128.hpp"

namespace squid::keyword {

StringCodec::StringCodec(std::string alphabet, unsigned max_len)
    : alphabet_(std::move(alphabet)), max_len_(max_len),
      base_(alphabet_.size() + 1) {
  SQUID_REQUIRE(!alphabet_.empty(), "alphabet must be nonempty");
  SQUID_REQUIRE(max_len_ >= 1, "max_len must be at least 1");
  for (std::size_t i = 0; i < alphabet_.size(); ++i)
    for (std::size_t j = i + 1; j < alphabet_.size(); ++j)
      SQUID_REQUIRE(alphabet_[i] != alphabet_[j], "alphabet has duplicates");
  // max_coord = base^max_len - 1, guarding 64-bit overflow.
  u128 cap = 1;
  for (unsigned i = 0; i < max_len_; ++i) {
    cap *= base_;
    SQUID_REQUIRE(cap <= (static_cast<u128>(1) << 63),
                  "alphabet^max_len exceeds the 64-bit coordinate space");
  }
  max_coord_ = static_cast<std::uint64_t>(cap - 1);
  bits_ = bit_width(static_cast<u128>(max_coord_));
}

std::uint64_t StringCodec::digit_of(char c) const {
  const auto pos = alphabet_.find(c);
  SQUID_REQUIRE(pos != std::string::npos,
                std::string("character '") + c + "' not in the alphabet");
  return static_cast<std::uint64_t>(pos) + 1; // 0 is the pad digit
}

std::uint64_t StringCodec::encode(std::string_view word) const {
  std::uint64_t coord = 0;
  for (unsigned i = 0; i < max_len_; ++i) {
    const std::uint64_t digit = i < word.size() ? digit_of(word[i]) : 0;
    coord = coord * base_ + digit;
  }
  return coord;
}

std::string StringCodec::decode(std::uint64_t coord) const {
  SQUID_REQUIRE(coord <= max_coord_, "coordinate out of keyword range");
  std::string out;
  std::uint64_t scale = 1;
  for (unsigned i = 1; i < max_len_; ++i) scale *= base_;
  for (unsigned i = 0; i < max_len_; ++i) {
    const std::uint64_t digit = coord / scale;
    coord %= scale;
    scale /= base_;
    if (digit == 0) break; // pad digit: end of word
    out.push_back(alphabet_[digit - 1]);
  }
  return out;
}

sfc::Interval StringCodec::prefix_interval(std::string_view prefix) const {
  SQUID_REQUIRE(prefix.size() <= max_len_, "prefix longer than max_len");
  // lo = prefix padded with 0 digits; hi = prefix followed by the largest
  // digit in every remaining position.
  std::uint64_t lo = 0, hi = 0;
  for (unsigned i = 0; i < max_len_; ++i) {
    const std::uint64_t digit = i < prefix.size() ? digit_of(prefix[i]) : 0;
    lo = lo * base_ + digit;
    hi = hi * base_ + (i < prefix.size() ? digit : base_ - 1);
  }
  return {lo, hi};
}

NumericCodec::NumericCodec(double lo, double hi, unsigned bits)
    : lo_(lo), hi_(hi), bits_(bits) {
  SQUID_REQUIRE(bits_ >= 1 && bits_ < 64, "numeric bits must be in [1,63]");
  SQUID_REQUIRE(hi_ > lo_, "numeric range must be nonempty");
  SQUID_REQUIRE(std::isfinite(lo_) && std::isfinite(hi_),
                "numeric range must be finite");
}

std::uint64_t NumericCodec::encode(double value) const noexcept {
  if (value <= lo_) return 0;
  if (value >= hi_) return max_coord();
  const double unit = (value - lo_) / (hi_ - lo_);
  const auto bucket = static_cast<std::uint64_t>(
      unit * static_cast<double>(max_coord() + 1));
  return bucket > max_coord() ? max_coord() : bucket;
}

double NumericCodec::decode(std::uint64_t coord) const {
  SQUID_REQUIRE(coord <= max_coord(), "coordinate out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(coord) /
                   static_cast<double>(max_coord() + 1);
}

sfc::Interval NumericCodec::range_interval(double value_lo,
                                           double value_hi) const {
  SQUID_REQUIRE(value_lo <= value_hi, "numeric query range is empty");
  return {encode(value_lo), encode(value_hi)};
}

} // namespace squid::keyword
