#include "squid/keyword/space.hpp"

#include <charconv>
#include <sstream>

#include "squid/util/require.hpp"

namespace squid::keyword {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

double parse_number(std::string_view text) {
  double value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  SQUID_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size(),
                "malformed number in query term: " + std::string(text));
  return value;
}

} // namespace

std::string to_string(const Token& token) {
  if (const auto* word = std::get_if<std::string>(&token)) return *word;
  std::ostringstream os;
  os << std::get<double>(token);
  return os.str();
}

std::string to_string(const Query& query) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < query.terms.size(); ++i) {
    if (i) os << ", ";
    const auto& term = query.terms[i];
    if (const auto* w = std::get_if<Whole>(&term)) {
      os << w->word;
    } else if (const auto* p = std::get_if<Prefix>(&term)) {
      os << p->prefix << '*';
    } else if (std::holds_alternative<Any>(term)) {
      os << '*';
    } else if (const auto* r = std::get_if<NumRange>(&term)) {
      os << r->lo << '-' << r->hi;
    } else if (const auto* sr = std::get_if<StrRange>(&term)) {
      os << sr->lo << '-' << sr->hi;
    } else {
      os << std::get<NumExact>(term).value;
    }
  }
  os << ')';
  return os.str();
}

KeywordSpace::KeywordSpace(std::vector<Dimension> dimensions)
    : dimensions_(std::move(dimensions)) {
  SQUID_REQUIRE(!dimensions_.empty(), "keyword space needs >= 1 dimension");
  for (const auto& dim : dimensions_) {
    const unsigned bits = std::visit([](const auto& c) { return c.bits(); }, dim);
    bits_per_dim_ = std::max(bits_per_dim_, bits);
  }
  SQUID_REQUIRE(dims() * bits_per_dim_ <= 128,
                "keyword space exceeds the 128-bit index budget");
}

const KeywordSpace::Dimension& KeywordSpace::dimension(unsigned i) const {
  SQUID_REQUIRE(i < dims(), "dimension index out of range");
  return dimensions_[i];
}

sfc::Point KeywordSpace::encode(const std::vector<Token>& tokens) const {
  SQUID_REQUIRE(tokens.size() == dims(),
                "data element needs one token per dimension");
  sfc::Point point;
  point.reserve(dims());
  for (unsigned i = 0; i < dims(); ++i) {
    const auto& dim = dimensions_[i];
    if (const auto* codec = std::get_if<StringCodec>(&dim)) {
      const auto* word = std::get_if<std::string>(&tokens[i]);
      SQUID_REQUIRE(word != nullptr, "string dimension got a numeric token");
      point.push_back(codec->encode(*word));
    } else {
      const auto* value = std::get_if<double>(&tokens[i]);
      SQUID_REQUIRE(value != nullptr, "numeric dimension got a string token");
      point.push_back(std::get<NumericCodec>(dim).encode(*value));
    }
  }
  return point;
}

std::vector<Token> KeywordSpace::decode(const sfc::Point& point) const {
  SQUID_REQUIRE(point.size() == dims(), "point dimensionality mismatch");
  std::vector<Token> tokens;
  tokens.reserve(dims());
  for (unsigned i = 0; i < dims(); ++i) {
    if (const auto* codec = std::get_if<StringCodec>(&dimensions_[i])) {
      tokens.emplace_back(codec->decode(point[i]));
    } else {
      tokens.emplace_back(std::get<NumericCodec>(dimensions_[i]).decode(point[i]));
    }
  }
  return tokens;
}

sfc::Rect KeywordSpace::to_rect(const Query& query) const {
  SQUID_REQUIRE(query.terms.size() == dims(),
                "query needs one term per dimension");
  sfc::Rect rect;
  rect.dims.reserve(dims());
  for (unsigned i = 0; i < dims(); ++i) {
    const auto& dim = dimensions_[i];
    const auto& term = query.terms[i];
    if (const auto* codec = std::get_if<StringCodec>(&dim)) {
      if (const auto* w = std::get_if<Whole>(&term)) {
        rect.dims.push_back(codec->whole_interval(w->word));
      } else if (const auto* p = std::get_if<Prefix>(&term)) {
        rect.dims.push_back(codec->prefix_interval(p->prefix));
      } else if (std::holds_alternative<Any>(term)) {
        rect.dims.push_back(codec->any_interval());
      } else if (const auto* sr = std::get_if<StrRange>(&term)) {
        const std::uint64_t lo = codec->encode(sr->lo);
        const std::uint64_t hi = codec->encode(sr->hi);
        SQUID_REQUIRE(lo <= hi, "string range bounds out of order: " +
                                    sr->lo + " > " + sr->hi);
        rect.dims.push_back(sfc::Interval{lo, hi});
      } else {
        SQUID_REQUIRE(false, "numeric term on a string dimension");
      }
    } else {
      const auto& numeric = std::get<NumericCodec>(dim);
      if (const auto* r = std::get_if<NumRange>(&term)) {
        rect.dims.push_back(numeric.range_interval(r->lo, r->hi));
      } else if (const auto* e = std::get_if<NumExact>(&term)) {
        rect.dims.push_back(numeric.range_interval(e->value, e->value));
      } else if (std::holds_alternative<Any>(term)) {
        rect.dims.push_back(numeric.any_interval());
      } else {
        SQUID_REQUIRE(false, "string term on a numeric dimension");
      }
    }
  }
  return rect;
}

bool KeywordSpace::matches(const Query& query,
                           const std::vector<Token>& tokens) const {
  return to_rect(query).contains(encode(tokens));
}

QueryTerm KeywordSpace::parse_term(unsigned dim, std::string_view text) const {
  SQUID_REQUIRE(dim < dims(), "dimension index out of range");
  text = trim(text);
  SQUID_REQUIRE(!text.empty(), "empty query term");
  if (text == "*") return Any{};

  if (std::holds_alternative<StringCodec>(dimensions_[dim])) {
    // Ranges first: '-' cannot occur inside a keyword (alphabets are
    // alphabetic), and a range bound may itself be "*" ("m-*").
    if (const auto dash = text.find('-'); dash != std::string_view::npos) {
      const std::string_view lo_text = trim(text.substr(0, dash));
      const std::string_view hi_text = trim(text.substr(dash + 1));
      const auto& codec = std::get<StringCodec>(dimensions_[dim]);
      const std::string lo(lo_text == "*" ? "" : std::string(lo_text));
      const std::string hi(hi_text == "*" ? codec.decode(codec.max_coord())
                                          : std::string(hi_text));
      return StrRange{lo, hi};
    }
    if (text.back() == '*') {
      text.remove_suffix(1);
      SQUID_REQUIRE(!text.empty(), "bare '*' already handled; '**' invalid");
      return Prefix{std::string(text)};
    }
    return Whole{std::string(text)};
  }

  const auto& codec = std::get<NumericCodec>(dimensions_[dim]);
  const auto dash = text.find('-', text.front() == '-' ? 1 : 0);
  if (dash == std::string_view::npos) return NumExact{parse_number(text)};
  const std::string_view lo_text = trim(text.substr(0, dash));
  const std::string_view hi_text = trim(text.substr(dash + 1));
  const double lo = lo_text == "*" ? codec.lo() : parse_number(lo_text);
  const double hi = hi_text == "*" ? codec.hi() : parse_number(hi_text);
  return NumRange{lo, hi};
}

Query KeywordSpace::parse(std::string_view text) const {
  text = trim(text);
  if (!text.empty() && text.front() == '(' && text.back() == ')') {
    text.remove_prefix(1);
    text.remove_suffix(1);
  }
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    pieces.push_back(text.substr(start, comma - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  SQUID_REQUIRE(pieces.size() == dims(),
                "query needs exactly one term per dimension: " +
                    std::string(text));
  Query query;
  for (unsigned dim = 0; dim < dims(); ++dim)
    query.terms.push_back(parse_term(dim, pieces[dim]));
  return query;
}

} // namespace squid::keyword
