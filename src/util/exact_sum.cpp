#include "squid/util/exact_sum.hpp"

#include <cmath>

#include "squid/util/require.hpp"

namespace squid {
namespace {

/// Bit `index` of a two's-complement magnitude array.
inline bool bit_at(const std::array<std::uint64_t, ExactSum::kLimbs>& limbs,
                   int index) noexcept {
  if (index < 0) return false;
  return (limbs[static_cast<std::size_t>(index) / 64] >>
          (static_cast<std::size_t>(index) % 64)) & 1u;
}

/// True if any bit strictly below `index` is set.
inline bool any_below(const std::array<std::uint64_t, ExactSum::kLimbs>& limbs,
                      int index) noexcept {
  if (index <= 0) return false;
  const std::size_t limb = static_cast<std::size_t>(index) / 64;
  const unsigned within = static_cast<unsigned>(index) % 64;
  if (within != 0 &&
      (limbs[limb] & ((std::uint64_t{1} << within) - 1)) != 0)
    return true;
  for (std::size_t i = 0; i < limb; ++i)
    if (limbs[i] != 0) return true;
  return false;
}

} // namespace

void ExactSum::add(double v) {
  SQUID_REQUIRE(std::isfinite(v), "ExactSum::add requires a finite value");
  if (v == 0.0) return;
  int exp = 0;
  const double frac = std::frexp(std::fabs(v), &exp); // frac in [0.5, 1)
  const auto mantissa =
      static_cast<std::uint64_t>(std::ldexp(frac, 53)); // in [2^52, 2^53)
  // v = +/- mantissa * 2^(exp - 53); the mantissa LSB lands at fixed-point
  // bit (exp - 53) + kFracBits, which is >= 26 even for the smallest
  // subnormal and <= 2123 for the largest double.
  accumulate(mantissa, exp - 53 + kFracBits, v < 0.0);
}

void ExactSum::accumulate(std::uint64_t mantissa, int bit_offset,
                          bool negative) noexcept {
  const std::size_t limb = static_cast<std::size_t>(bit_offset) / 64;
  const unsigned shift = static_cast<unsigned>(bit_offset) % 64;
  const unsigned __int128 wide = static_cast<unsigned __int128>(mantissa)
                                 << shift;
  const std::uint64_t addend[2] = {static_cast<std::uint64_t>(wide),
                                   static_cast<std::uint64_t>(wide >> 64)};
  if (!negative) {
    std::uint64_t carry = 0;
    for (std::size_t i = limb; i < kLimbs; ++i) {
      const std::uint64_t a = i - limb < 2 ? addend[i - limb] : 0;
      // Both addend words must be visited even when the first is zero (a
      // shifted mantissa can land entirely in the second word); after that,
      // stop as soon as the carry dies out.
      if (a == 0 && carry == 0 && i - limb >= 2) break;
      const unsigned __int128 acc =
          static_cast<unsigned __int128>(limbs_[i]) + a + carry;
      limbs_[i] = static_cast<std::uint64_t>(acc);
      carry = static_cast<std::uint64_t>(acc >> 64);
    }
  } else {
    std::uint64_t borrow = 0;
    for (std::size_t i = limb; i < kLimbs; ++i) {
      const std::uint64_t a = i - limb < 2 ? addend[i - limb] : 0;
      if (a == 0 && borrow == 0 && i - limb >= 2) break;
      const unsigned __int128 take = static_cast<unsigned __int128>(a) + borrow;
      const unsigned __int128 have = limbs_[i];
      limbs_[i] = static_cast<std::uint64_t>(have - take);
      borrow = have < take ? 1 : 0;
    }
  }
}

void ExactSum::merge(const ExactSum& other) noexcept {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const unsigned __int128 acc = static_cast<unsigned __int128>(limbs_[i]) +
                                  other.limbs_[i] + carry;
    limbs_[i] = static_cast<std::uint64_t>(acc);
    carry = static_cast<std::uint64_t>(acc >> 64);
  }
}

bool ExactSum::is_zero() const noexcept {
  for (const std::uint64_t limb : limbs_)
    if (limb != 0) return false;
  return true;
}

double ExactSum::value() const noexcept {
  const bool negative = (limbs_[kLimbs - 1] >> 63) != 0;
  std::array<std::uint64_t, kLimbs> mag = limbs_;
  if (negative) {
    // Two's-complement negation to get the magnitude.
    std::uint64_t carry = 1;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      const unsigned __int128 acc =
          static_cast<unsigned __int128>(~mag[i]) + carry;
      mag[i] = static_cast<std::uint64_t>(acc);
      carry = static_cast<std::uint64_t>(acc >> 64);
    }
  }
  int high = -1;
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (mag[i] != 0) {
      high = static_cast<int>(i) * 64 + 63;
      std::uint64_t word = mag[i];
      while ((word >> 63) == 0) {
        word <<= 1;
        --high;
      }
      break;
    }
  }
  if (high < 0) return 0.0;

  const int e_top = high - kFracBits; // value in [2^e_top, 2^(e_top+1))
  // Normal results take the full 53 bits; subnormal results take however
  // many bits remain above 2^-1074. take == 0 still rounds correctly (the
  // whole value is round/sticky material below the representable range).
  int take = e_top >= -1022 ? 53 : e_top + 1075;
  if (take < 0) return negative ? -0.0 : 0.0;

  std::uint64_t mantissa = 0;
  for (int i = 0; i < take; ++i)
    mantissa = (mantissa << 1) | (bit_at(mag, high - i) ? 1u : 0u);
  const int round_pos = high - take;
  const bool round = bit_at(mag, round_pos);
  const bool sticky = any_below(mag, round_pos);
  int exp2 = e_top - take + 1;
  if (round && (sticky || (mantissa & 1u))) {
    ++mantissa;
    if (take > 0 && (mantissa >> take) != 0) {
      mantissa >>= 1;
      ++exp2;
    }
  }
  const double result = std::ldexp(static_cast<double>(mantissa), exp2);
  return negative ? -result : result;
}

} // namespace squid
