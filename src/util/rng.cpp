#include "squid/util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace squid {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `bound` representable in 64 bits, then reduce.
  const std::uint64_t threshold = (~bound + 1) % bound; // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

u128 Rng::below128(u128 bound) noexcept {
  const u128 threshold = (~bound + 1) % bound; // == 2^128 mod bound
  for (;;) {
    const u128 r = next128();
    if (r >= threshold) return r % bound;
  }
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : exponent_(exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0; // guard against floating point shortfall
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace squid
