#include "squid/util/u128.hpp"

#include <algorithm>
#include <stdexcept>

namespace squid {

std::string to_string(u128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.push_back(static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string to_binary_string(u128 v, unsigned bits) {
  if (bits > 128) throw std::invalid_argument("to_binary_string: bits > 128");
  std::string out(bits, '0');
  for (unsigned i = 0; i < bits; ++i) {
    if ((v >> i) & 1) out[bits - 1 - i] = '1';
  }
  return out;
}

std::string to_hex_string(u128 v) {
  static constexpr char digits[] = "0123456789abcdef";
  if (v == 0) return "0x0";
  std::string out;
  while (v != 0) {
    out.push_back(digits[static_cast<unsigned>(v & 0xf)]);
    v >>= 4;
  }
  out += "x0";
  std::reverse(out.begin(), out.end());
  return out;
}

u128 parse_u128(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("parse_u128: empty input");
  u128 value = 0;
  for (char c : text) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("parse_u128: non-digit character");
    const u128 digit = static_cast<u128>(c - '0');
    if (value > (u128_max - digit) / 10)
      throw std::out_of_range("parse_u128: overflow");
    value = value * 10 + digit;
  }
  return value;
}

} // namespace squid
