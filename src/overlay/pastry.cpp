#include "squid/overlay/pastry.hpp"

#include <algorithm>

#include "squid/overlay/id_space.hpp"
#include "squid/util/require.hpp"

namespace squid::overlay {

PastryOverlay::PastryOverlay(unsigned digit_bits, unsigned leaf_set)
    : digit_bits_(digit_bits), leaf_half_(leaf_set / 2) {
  SQUID_REQUIRE(digit_bits >= 1 && digit_bits <= 8,
                "digit bits must be in [1,8]");
  SQUID_REQUIRE(128 % digit_bits == 0, "digit bits must divide 128");
  SQUID_REQUIRE(leaf_set >= 2 && leaf_set % 2 == 0,
                "leaf set must be even and >= 2");
}

u128 PastryOverlay::circular_distance(u128 a, u128 b) const noexcept {
  const u128 d = a - b; // natural mod-2^128 wrap
  const u128 other = u128(0) - d;
  return d < other ? d : other;
}

std::vector<unsigned> PastryOverlay::digits_of(u128 id) const {
  std::vector<unsigned> out(digits());
  const u128 mask = low_mask(digit_bits_);
  for (unsigned i = 0; i < digits(); ++i) {
    const unsigned shift = 128 - (i + 1) * digit_bits_;
    out[i] = static_cast<unsigned>((id >> shift) & mask);
  }
  return out;
}

unsigned PastryOverlay::shared_prefix(u128 a, u128 b) const {
  const u128 mask = low_mask(digit_bits_);
  for (unsigned i = 0; i < digits(); ++i) {
    const unsigned shift = 128 - (i + 1) * digit_bits_;
    if (((a >> shift) & mask) != ((b >> shift) & mask)) return i;
  }
  return digits();
}

void PastryOverlay::build(std::size_t count, Rng& rng) {
  SQUID_REQUIRE(count >= 1, "cannot build an empty overlay");
  while (nodes_.size() < count) {
    const u128 id = rng.next128();
    nodes_.emplace(id, Node{});
  }
  for (auto& [id, node] : nodes_) wire_node(id, node);
}

void PastryOverlay::wire_node(u128 id, Node& node) {
  // Leaf sets: the numerically nearest peers on each side, ring order.
  node.leaves_cw.clear();
  node.leaves_ccw.clear();
  auto cw = nodes_.upper_bound(id);
  for (unsigned i = 0; i < leaf_half_; ++i) {
    if (cw == nodes_.end()) cw = nodes_.begin();
    if (cw->first == id) break; // wrapped around a tiny overlay
    node.leaves_cw.push_back(cw->first);
    ++cw;
  }
  auto ccw = nodes_.lower_bound(id);
  for (unsigned i = 0; i < leaf_half_; ++i) {
    if (ccw == nodes_.begin()) ccw = nodes_.end();
    --ccw;
    if (ccw->first == id) break;
    node.leaves_ccw.push_back(ccw->first);
  }

  // Routing table: per (shared-prefix row, next-digit column), keep the
  // numerically closest qualifying peer.
  const unsigned cols = 1u << digit_bits_;
  node.routing.assign(static_cast<std::size_t>(digits()) * cols, 0);
  node.present.assign(static_cast<std::size_t>(digits()) * cols, false);
  for (const auto& [other, _] : nodes_) {
    if (other == id) continue;
    const unsigned row = shared_prefix(id, other);
    if (row >= digits()) continue;
    const unsigned col = digits_of(other)[row];
    const std::size_t slot = static_cast<std::size_t>(row) * cols + col;
    if (!node.present[slot] ||
        circular_distance(other, id) <
            circular_distance(node.routing[slot], id)) {
      node.routing[slot] = other;
      node.present[slot] = true;
    }
  }
}

u128 PastryOverlay::owner_of(u128 key) const {
  SQUID_REQUIRE(!nodes_.empty(), "owner_of on an empty overlay");
  auto up = nodes_.lower_bound(key);
  const u128 succ = up == nodes_.end() ? nodes_.begin()->first : up->first;
  const u128 pred = up == nodes_.begin() ? nodes_.rbegin()->first
                                         : std::prev(up)->first;
  const u128 ds = circular_distance(succ, key);
  const u128 dp = circular_distance(pred, key);
  return ds <= dp ? succ : pred; // ties break clockwise
}

bool PastryOverlay::leaf_covers(const Node& node, u128 key) const {
  if (node.leaves_cw.size() < leaf_half_ ||
      node.leaves_ccw.size() < leaf_half_) {
    return true; // overlay smaller than the leaf set: we know everyone
  }
  const u128 cw_edge = node.leaves_cw.back();
  const u128 ccw_edge = node.leaves_ccw.back();
  // key within [ccw_edge, cw_edge] going clockwise through self (the open
  // bound at ccw_edge-1 makes the lower edge inclusive; u128 wraps safely).
  return in_open_closed(ccw_edge - 1, cw_edge, key);
}

u128 PastryOverlay::random_node(Rng& rng) const {
  SQUID_REQUIRE(!nodes_.empty(), "random_node on an empty overlay");
  auto it = nodes_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng.below(nodes_.size())));
  return it->first;
}

double PastryOverlay::mean_table_entries() const {
  if (nodes_.empty()) return 0;
  std::size_t total = 0;
  for (const auto& [id, node] : nodes_) {
    total += node.leaves_cw.size() + node.leaves_ccw.size();
    for (const bool p : node.present) total += p;
  }
  return static_cast<double>(total) / static_cast<double>(nodes_.size());
}

PastryOverlay::RouteResult PastryOverlay::route(u128 from, u128 key) const {
  RouteResult result;
  SQUID_REQUIRE(nodes_.count(from), "route source is not in the overlay");
  u128 cur = from;
  result.path.push_back(cur);
  const std::size_t hop_cap = 4 * digits() + 2 * leaf_half_ + 8;
  for (std::size_t hop = 0; hop < hop_cap; ++hop) {
    const Node& node = nodes_.at(cur);

    if (leaf_covers(node, key)) {
      // Within leaf-set coverage: jump to the numerically closest known.
      u128 best = cur;
      u128 best_distance = circular_distance(cur, key);
      for (const auto& leaves : {node.leaves_cw, node.leaves_ccw}) {
        for (const u128 leaf : leaves) {
          const u128 d = circular_distance(leaf, key);
          if (d < best_distance) {
            best = leaf;
            best_distance = d;
          }
        }
      }
      if (best == cur) {
        result.ok = true;
        result.dest = cur;
        return result;
      }
      result.path.push_back(best);
      cur = best;
      continue;
    }

    // Prefix routing: fix the next digit.
    const unsigned row = shared_prefix(cur, key);
    const unsigned cols = 1u << digit_bits_;
    const unsigned col = digits_of(key)[row];
    const std::size_t slot = static_cast<std::size_t>(row) * cols + col;
    u128 next = 0;
    bool have_next = false;
    if (node.present[slot]) {
      next = node.routing[slot];
      have_next = true;
    } else {
      // Rare case: no exact entry. Take any known peer that is strictly
      // numerically closer to the key and shares at least as long a prefix.
      const u128 here = circular_distance(cur, key);
      const auto consider = [&](u128 candidate) {
        if (shared_prefix(candidate, key) < row) return;
        if (circular_distance(candidate, key) >= here) return;
        if (!have_next || circular_distance(candidate, key) <
                              circular_distance(next, key)) {
          next = candidate;
          have_next = true;
        }
      };
      for (const u128 leaf : node.leaves_cw) consider(leaf);
      for (const u128 leaf : node.leaves_ccw) consider(leaf);
      for (std::size_t s = 0; s < node.routing.size(); ++s)
        if (node.present[s]) consider(node.routing[s]);
    }
    if (!have_next) return result; // dead end
    result.path.push_back(next);
    cur = next;
  }
  return result; // hop cap exceeded
}

} // namespace squid::overlay
