#include "squid/overlay/chord.hpp"

#include <algorithm>

#include "squid/util/require.hpp"

namespace squid::overlay {

ChordRing::ChordRing(unsigned id_bits, unsigned successors,
                     unsigned finger_base)
    : id_bits_(id_bits), successor_list_len_(successors),
      finger_base_(finger_base) {
  SQUID_REQUIRE(id_bits >= 1 && id_bits <= 128, "id_bits must be in [1,128]");
  SQUID_REQUIRE(successors >= 1, "successor list needs at least one entry");
  SQUID_REQUIRE(finger_base >= 2, "finger base must be at least 2");
  finger_targets_ = finger_offsets();
}

std::vector<u128> ChordRing::finger_offsets() const {
  // Offsets j * base^k for j in [1, base) while the offset fits the ring.
  // For base 2 this is exactly the classic 2^k finger set.
  std::vector<u128> offsets;
  const u128 limit = id_mask();
  u128 scale = 1;
  for (;;) {
    bool any = false;
    for (unsigned j = 1; j < finger_base_; ++j) {
      const u128 offset = scale * j;
      if (offset > limit || offset / j != scale) break; // overflow guard
      offsets.push_back(offset);
      any = true;
    }
    if (!any) break;
    if (scale > limit / finger_base_) break;
    scale *= finger_base_;
  }
  return offsets;
}

NodeId ChordRing::successor_of(u128 key) const {
  SQUID_REQUIRE(!nodes_.empty(), "successor_of on an empty ring");
  const auto it = nodes_.lower_bound(key);
  return it == nodes_.end() ? nodes_.begin()->first : it->first;
}

NodeId ChordRing::predecessor_of(u128 key) const {
  SQUID_REQUIRE(!nodes_.empty(), "predecessor_of on an empty ring");
  const auto it = nodes_.lower_bound(key);
  return it == nodes_.begin() ? nodes_.rbegin()->first : std::prev(it)->first;
}

const ChordNode& ChordRing::node(NodeId id) const {
  const auto it = nodes_.find(id);
  SQUID_REQUIRE(it != nodes_.end(), "unknown node id");
  return it->second;
}

ChordNode& ChordRing::node(NodeId id) {
  const auto it = nodes_.find(id);
  SQUID_REQUIRE(it != nodes_.end(), "unknown node id");
  return it->second;
}

std::vector<NodeId> ChordRing::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) ids.push_back(id);
  return ids;
}

NodeId ChordRing::random_node(Rng& rng) const {
  SQUID_REQUIRE(!nodes_.empty(), "random_node on an empty ring");
  auto it = nodes_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng.below(nodes_.size())));
  return it->first;
}

NodeId ChordRing::random_free_id(Rng& rng) const {
  for (;;) {
    const NodeId id = id_bits_ >= 128 ? rng.next128()
                                      : rng.below128(static_cast<u128>(1)
                                                     << id_bits_);
    if (!nodes_.count(id)) return id;
  }
}

void ChordRing::wire_node(ChordNode& n) const {
  n.predecessor = predecessor_of(n.id);
  n.has_predecessor = true;
  n.successors.clear();
  // Walk clockwise from just past n collecting up to successor_list_len_
  // distinct nodes (the node itself closes the list on tiny rings).
  auto it = nodes_.upper_bound(n.id);
  for (unsigned i = 0; i < successor_list_len_; ++i) {
    if (it == nodes_.end()) it = nodes_.begin();
    n.successors.push_back(it->first);
    if (it->first == n.id) break; // wrapped all the way around
    ++it;
  }
  n.fingers.assign(finger_count(), 0);
  for (std::size_t k = 0; k < finger_count(); ++k)
    n.fingers[k] = successor_of(finger_target_of(n.id, k));
}

void ChordRing::repair_all() {
  for (auto& [id, n] : nodes_) wire_node(n);
}

void ChordRing::add_node_exact(NodeId id) {
  SQUID_REQUIRE(id <= id_mask(), "node id exceeds the identifier space");
  SQUID_REQUIRE(!nodes_.count(id), "duplicate node id");
  ChordNode n;
  n.id = id;
  nodes_.emplace(id, std::move(n));
  wire_node(nodes_[id]);
  // Splice the neighbors so the ring stays exactly consistent: the new
  // node's predecessor gains it as immediate successor, the successor gains
  // it as predecessor. Remote fingers elsewhere stay stale by design.
  if (nodes_.size() > 1) {
    ChordNode& self = nodes_[id];
    ChordNode& pred = node(self.predecessor);
    pred.successors.insert(pred.successors.begin(), id);
    if (pred.successors.size() > successor_list_len_)
      pred.successors.pop_back();
    ChordNode& succ = node(self.successors.front());
    succ.predecessor = id;
    succ.has_predecessor = true;
  }
}

void ChordRing::build(std::size_t count, Rng& rng) {
  SQUID_REQUIRE(count >= 1, "cannot build an empty ring");
  while (nodes_.size() < count) {
    ChordNode n;
    n.id = random_free_id(rng);
    nodes_.emplace(n.id, std::move(n));
  }
  repair_all();
}

std::optional<NodeId> ChordRing::first_alive_successor(
    const ChordNode& n) const {
  for (const NodeId s : n.successors)
    if (nodes_.count(s)) return s;
  return std::nullopt;
}

NodeId ChordRing::closest_preceding_alive(const ChordNode& n, u128 key) const {
  // Pick the live finger that makes the most clockwise progress toward key
  // while staying strictly before it. (With base-2 fingers in ascending
  // offset order this matches the classic descending scan.)
  NodeId best = n.id;
  u128 best_progress = 0;
  for (std::size_t k = n.fingers.size(); k-- > 0;) {
    const NodeId f = n.fingers[k];
    if (!nodes_.count(f) || !in_open_open(n.id, key, f)) continue;
    const u128 progress = ring_distance(n.id, f, id_bits_);
    if (progress > best_progress) {
      best = f;
      best_progress = progress;
    }
  }
  return best;
}

RouteResult ChordRing::route(NodeId from, u128 key) const {
  RouteResult result;
  SQUID_REQUIRE(nodes_.count(from), "route source is not in the ring");
  SQUID_REQUIRE(key <= id_mask(), "key exceeds the identifier space");
  NodeId cur = from;
  result.path.push_back(cur);
  for (std::size_t hop = 0; hop < max_route_hops(); ++hop) {
    const ChordNode& n = node(cur);
    const auto succ = first_alive_successor(n);
    if (!succ) return result; // partitioned: no live successor known
    if (in_open_closed(cur, *succ, key)) {
      result.ok = true;
      result.dest = *succ;
      if (*succ != cur) result.path.push_back(*succ);
      return result;
    }
    NodeId next = closest_preceding_alive(n, key);
    if (next == cur) next = *succ; // fingers useless: crawl the ring
    if (next == cur) return result; // single stale node: no progress
    result.path.push_back(next);
    cur = next;
  }
  return result; // hop budget exhausted (routing loop under heavy churn)
}

RouteResult ChordRing::join(NodeId new_id, NodeId bootstrap) {
  SQUID_REQUIRE(new_id <= id_mask(), "node id exceeds the identifier space");
  SQUID_REQUIRE(!nodes_.count(new_id), "duplicate node id");
  RouteResult r = route(bootstrap, new_id);
  if (!r.ok) return r;

  ChordNode n;
  n.id = new_id;
  const ChordNode& succ = node(r.dest);
  n.successors.push_back(r.dest);
  for (const NodeId s : succ.successors) {
    if (n.successors.size() >= successor_list_len_) break;
    if (s != new_id) n.successors.push_back(s);
  }
  // Seed fingers from the successor's table (standard bootstrap
  // approximation); stabilization tightens them over time.
  n.fingers = succ.fingers;
  if (n.fingers.empty()) n.fingers.assign(finger_count(), r.dest);
  n.fingers[0] = r.dest;
  if (succ.has_predecessor) {
    n.predecessor = succ.predecessor;
    n.has_predecessor = true;
  }
  nodes_.emplace(new_id, std::move(n));

  ChordNode& succ_mut = node(r.dest);
  succ_mut.predecessor = new_id;
  succ_mut.has_predecessor = true;
  // Eager notify of the predecessor keeps the ring routable immediately, as
  // the first post-join stabilize round would.
  if (nodes_[new_id].has_predecessor &&
      nodes_.count(nodes_[new_id].predecessor)) {
    ChordNode& pred = node(nodes_[new_id].predecessor);
    pred.successors.insert(pred.successors.begin(), new_id);
    if (pred.successors.size() > successor_list_len_)
      pred.successors.pop_back();
  }
  return r;
}

void ChordRing::leave(NodeId id) {
  ChordNode& n = node(id);
  const auto succ = first_alive_successor(n);
  // Patch the neighbors (paper 3.2 Node Departures); distant finger tables
  // stay stale until their owners stabilize.
  if (succ && *succ != id) {
    ChordNode& s = node(*succ);
    if (n.has_predecessor && nodes_.count(n.predecessor)) {
      s.predecessor = n.predecessor;
      s.has_predecessor = true;
      ChordNode& p = node(n.predecessor);
      std::erase(p.successors, id);
      p.successors.insert(p.successors.begin(), *succ);
    }
  }
  nodes_.erase(id);
}

void ChordRing::fail(NodeId id) {
  SQUID_REQUIRE(nodes_.count(id), "unknown node id");
  nodes_.erase(id);
}

void ChordRing::stabilize(NodeId id, Rng& rng) {
  if (!nodes_.count(id)) return;
  ChordNode& n = node(id);

  // 1. Successor repair: drop dead list entries from the front.
  auto succ = first_alive_successor(n);
  if (!succ) {
    // All known successors died (catastrophic). A real node would re-join
    // through an out-of-band bootstrap; model that directly.
    succ = successor_of((id + 1) & id_mask());
  }

  // 2. Classic stabilize: adopt the successor's predecessor if closer.
  {
    const ChordNode& s = node(*succ);
    if (s.has_predecessor && nodes_.count(s.predecessor) &&
        in_open_open(id, *succ, s.predecessor)) {
      succ = s.predecessor;
    }
  }

  // 3. Refresh the successor list from the (possibly new) successor.
  std::vector<NodeId> fresh{*succ};
  for (const NodeId s : node(*succ).successors) {
    if (fresh.size() >= successor_list_len_) break;
    if (s != id && nodes_.count(s)) fresh.push_back(s);
  }
  n.successors = std::move(fresh);

  // 4. Notify the successor about us.
  {
    ChordNode& s = node(*succ);
    if (!s.has_predecessor || !nodes_.count(s.predecessor) ||
        in_open_open(s.predecessor, s.id, id)) {
      s.predecessor = id;
      s.has_predecessor = true;
    }
  }

  // 5. Fix one random finger via a routed lookup (paper: each node
  // periodically "chooses a random entry in its finger table, checks for its
  // state, and updates it if required").
  if (n.fingers.empty()) n.fingers.assign(finger_count(), *succ);
  const auto k = static_cast<std::size_t>(rng.below(finger_count()));
  const RouteResult r = route(id, finger_target_of(id, k));
  if (r.ok) node(id).fingers[k] = r.dest;
  node(id).fingers[0] = *succ;
}

void ChordRing::stabilize_all(Rng& rng, unsigned rounds) {
  for (unsigned round = 0; round < rounds; ++round) {
    std::vector<NodeId> order = node_ids();
    rng.shuffle(order);
    for (const NodeId id : order) stabilize(id, rng);
  }
}

bool ChordRing::ring_consistent() const {
  for (const auto& [id, n] : nodes_) {
    const auto succ = first_alive_successor(n);
    if (!succ) return false;
    if (*succ != successor_of((id + 1) & id_mask())) return false;
  }
  return true;
}

} // namespace squid::overlay
