#include "squid/overlay/chord.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "squid/obs/metrics.hpp"
#include "squid/util/require.hpp"

namespace squid::overlay {

namespace {

/// Registry handles for the ring's maintenance metrics, resolved once.
/// Counters are relaxed atomics, so the const routing path stays safe under
/// the concurrent readers of parallel_query_test.
struct RingMetrics {
  obs::Counter& routes;
  obs::Counter& route_hops;
  obs::Counter& route_failures;
  obs::Counter& stabilize_ops;
  obs::Counter& successor_fallbacks;
  obs::Counter& finger_fixes;
  obs::Counter& timeout_repairs;
  obs::Counter& compactions;
  obs::Counter& tombstones_dropped;
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& fails;

  static RingMetrics& get() {
    auto& r = obs::Registry::global();
    static RingMetrics m{r.counter("squid.ring.routes"),
                         r.counter("squid.ring.route_hops"),
                         r.counter("squid.ring.route_failures"),
                         r.counter("squid.ring.stabilize_ops"),
                         r.counter("squid.ring.successor_fallbacks"),
                         r.counter("squid.ring.finger_fixes"),
                         r.counter("squid.ring.timeout_repairs"),
                         r.counter("squid.ring.compactions"),
                         r.counter("squid.ring.tombstones_dropped"),
                         r.counter("squid.ring.joins"),
                         r.counter("squid.ring.leaves"),
                         r.counter("squid.ring.fails")};
    return m;
  }
};

} // namespace

ChordRing::ChordRing(unsigned id_bits, unsigned successors,
                     unsigned finger_base)
    : id_bits_(id_bits), successor_list_len_(successors),
      finger_base_(finger_base) {
  SQUID_REQUIRE(id_bits >= 1 && id_bits <= 128, "id_bits must be in [1,128]");
  SQUID_REQUIRE(successors >= 1, "successor list needs at least one entry");
  SQUID_REQUIRE(finger_base >= 2, "finger base must be at least 2");
  finger_targets_ = finger_offsets();
}

std::vector<u128> ChordRing::finger_offsets() const {
  // Offsets j * base^k for j in [1, base) while the offset fits the ring.
  // For base 2 this is exactly the classic 2^k finger set.
  std::vector<u128> offsets;
  const u128 limit = id_mask();
  u128 scale = 1;
  for (;;) {
    bool any = false;
    for (unsigned j = 1; j < finger_base_; ++j) {
      const u128 offset = scale * j;
      if (offset > limit || offset / j != scale) break; // overflow guard
      offsets.push_back(offset);
      any = true;
    }
    if (!any) break;
    if (scale > limit / finger_base_) break;
    scale *= finger_base_;
  }
  return offsets;
}

// --- Flat membership primitives ---------------------------------------------

std::size_t ChordRing::lower_pos(u128 key) const {
  return static_cast<std::size_t>(
      std::lower_bound(ids_.begin(), ids_.end(), key) - ids_.begin());
}

std::size_t ChordRing::find_pos(NodeId id) const {
  const std::size_t pos = lower_pos(id);
  if (pos == ids_.size() || ids_[pos] != id || slot_[pos] == kDeadSlot)
    return npos;
  return pos;
}

std::uint32_t ChordRing::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    arena_[s] = ChordNode{};
    return s;
  }
  arena_.emplace_back();
  return static_cast<std::uint32_t>(arena_.size() - 1);
}

void ChordRing::compact() {
  if (dead_pos_.empty()) return;
  if constexpr (obs::kEnabled) {
    RingMetrics::get().compactions.add(1);
    RingMetrics::get().tombstones_dropped.add(dead_pos_.size());
  }
  std::size_t out = 0;
  for (std::size_t pos = 0; pos < ids_.size(); ++pos) {
    if (slot_[pos] == kDeadSlot) continue;
    ids_[out] = ids_[pos];
    slot_[out] = slot_[pos];
    ++out;
  }
  ids_.resize(out);
  slot_.resize(out);
  dead_pos_.clear();
}

std::uint32_t ChordRing::insert_id(NodeId id) {
  compact();
  const std::uint32_t s = alloc_slot();
  const std::size_t pos = lower_pos(id);
  ids_.insert(ids_.begin() + static_cast<std::ptrdiff_t>(pos), id);
  slot_.insert(slot_.begin() + static_cast<std::ptrdiff_t>(pos), s);
  arena_[s].id = id;
  ++live_count_;
  return s;
}

void ChordRing::remove_pos(std::size_t pos) {
  free_slots_.push_back(slot_[pos]);
  arena_[slot_[pos]] = ChordNode{}; // release finger/successor storage
  slot_[pos] = kDeadSlot;
  dead_pos_.insert(
      std::lower_bound(dead_pos_.begin(), dead_pos_.end(), pos), pos);
  --live_count_;
  // Bound tombstone density so reads stay near one binary search even under
  // removal-only churn.
  if (dead_pos_.size() * 2 > ids_.size()) compact();
}

// --- Ground-truth queries ----------------------------------------------------

NodeId ChordRing::successor_of(u128 key) const {
  SQUID_REQUIRE(live_count_ > 0, "successor_of on an empty ring");
  std::size_t pos = lower_pos(key);
  for (;;) {
    if (pos == ids_.size()) pos = 0;
    if (slot_[pos] != kDeadSlot) return ids_[pos];
    ++pos;
  }
}

NodeId ChordRing::predecessor_of(u128 key) const {
  SQUID_REQUIRE(live_count_ > 0, "predecessor_of on an empty ring");
  std::size_t pos = lower_pos(key);
  for (;;) {
    pos = (pos == 0 ? ids_.size() : pos) - 1;
    if (slot_[pos] != kDeadSlot) return ids_[pos];
  }
}

const ChordNode& ChordRing::node(NodeId id) const {
  const std::size_t pos = find_pos(id);
  SQUID_REQUIRE(pos != npos, "unknown node id");
  return arena_[slot_[pos]];
}

ChordNode& ChordRing::node(NodeId id) {
  const std::size_t pos = find_pos(id);
  SQUID_REQUIRE(pos != npos, "unknown node id");
  return arena_[slot_[pos]];
}

std::vector<NodeId> ChordRing::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(live_count_);
  for (std::size_t pos = 0; pos < ids_.size(); ++pos)
    if (slot_[pos] != kDeadSlot) ids.push_back(ids_[pos]);
  return ids;
}

NodeId ChordRing::random_node(Rng& rng) const {
  SQUID_REQUIRE(live_count_ > 0, "random_node on an empty ring");
  // The k-th smallest live id, exactly like std::advance over the old map
  // (query-replay determinism depends on it) — but O(1) on a compacted
  // array. With tombstones present, the k-th live entry is the least fixed
  // point of p = k + |dead positions <= p| (Kleene iteration over the small
  // sorted tombstone list).
  const auto k = static_cast<std::size_t>(rng.below(live_count_));
  if (dead_pos_.empty()) return ids_[k];
  std::size_t p = k;
  for (;;) {
    const auto dead = static_cast<std::size_t>(
        std::upper_bound(dead_pos_.begin(), dead_pos_.end(), p) -
        dead_pos_.begin());
    if (k + dead == p) break;
    p = k + dead;
  }
  assert(slot_[p] != kDeadSlot);
  return ids_[p];
}

NodeId ChordRing::random_free_id(Rng& rng) const {
  for (;;) {
    const NodeId id = id_bits_ >= 128 ? rng.next128()
                                      : rng.below128(static_cast<u128>(1)
                                                     << id_bits_);
    if (!contains(id)) return id;
  }
}

// --- Exact wiring (experiment setup) -----------------------------------------

std::size_t ChordRing::wire_links(std::size_t r) {
  assert(slot_[r] != kDeadSlot);
  const std::size_t count = ids_.size();
  // Neighbor walks skip tombstones: after mass departure up to half the
  // array can be dead (remove_pos defers compaction), and resolving a link
  // through a dead entry would hand out a vanished peer — or, via its
  // recycled arena slot, a different node entirely. On a dense array every
  // walk is a single step, so the compacted fast path costs what it did.
  const auto next_live = [&](std::size_t p) {
    do {
      p = p + 1 == count ? 0 : p + 1;
    } while (slot_[p] == kDeadSlot);
    return p;
  };
  ChordNode& n = arena_[slot_[r]];
  std::size_t p = r;
  do {
    p = p == 0 ? count - 1 : p - 1;
  } while (slot_[p] == kDeadSlot);
  n.predecessor = ids_[p];
  n.has_predecessor = true;
  n.successors.clear();
  n.successors.reserve(successor_list_len_);
  // The next successor_list_len_ live entries clockwise (the node itself
  // closes the list on tiny rings).
  p = r;
  for (unsigned i = 0; i < successor_list_len_; ++i) {
    p = next_live(p);
    n.successors.push_back(ids_[p]);
    if (p == r) break; // wrapped all the way around
  }
  // resize, not assign: every entry is written by the caller or the fill
  // below, and on the warm repair path this skips re-zeroing the table.
  n.fingers.resize(finger_count());
  if (live_count_ == 1) {
    std::fill(n.fingers.begin(), n.fingers.end(), n.id);
    return finger_count();
  }
  // With N nodes in a 2^bits space, every finger whose target offset fits
  // inside the gap to the immediate successor resolves to that successor —
  // at paper scales that is the vast majority of the table (offsets are
  // geometric, the gap is ~2^bits/N). finger_targets_ is ascending, so one
  // search over it replaces ~log2(2^bits/N) membership searches per node.
  const NodeId next = n.successors.front();
  const u128 gap = (next - n.id) & id_mask();
  const std::size_t k0 = static_cast<std::size_t>(
      std::upper_bound(finger_targets_.begin(), finger_targets_.end(), gap) -
      finger_targets_.begin());
  std::fill(n.fingers.begin(),
            n.fingers.begin() + static_cast<std::ptrdiff_t>(k0), next);
  return k0;
}

void ChordRing::wire_rank(std::size_t r) {
  const std::size_t count = ids_.size();
  ChordNode& n = arena_[slot_[r]];
  for (std::size_t k = wire_links(r); k < finger_count(); ++k) {
    std::size_t pos = lower_pos(finger_target_of(n.id, k));
    if (pos == count) pos = 0;
    // A binary search lands on positions, not liveness: step past any
    // tombstones to the target's first *live* successor.
    while (slot_[pos] == kDeadSlot) pos = pos + 1 == count ? 0 : pos + 1;
    n.fingers[k] = ids_[pos];
  }
}

void ChordRing::repair_all() {
  if (live_count_ == 0) return;
  const std::size_t count = ids_.size();
  // First live position: where finger targets past the array end wrap to.
  std::size_t first_live = 0;
  while (slot_[first_live] == kDeadSlot) ++first_live;
  // Sweeping all ranks in order makes finger k's target monotone (mod one
  // wrap), so a rolling cursor per finger index answers each long-range
  // finger in amortized O(1) where a membership binary search paid
  // O(log N). Short-range fingers never touch their cursor (wire_links
  // fills them from the successor gap). Tombstoned entries are skipped on
  // both sides — as sweep subjects and as cursor answers — so repair after
  // mass departure never resolves a link through a dead slot; dead
  // positions cost one extra cursor step each, amortized over the sweep.
  std::vector<std::size_t> cursor(finger_count(), 0);
  std::vector<u128> prev_target(finger_count(), 0);
  for (std::size_t r = 0; r < count; ++r) {
    if (slot_[r] == kDeadSlot) continue;
    ChordNode& n = arena_[slot_[r]];
    for (std::size_t k = wire_links(r); k < finger_count(); ++k) {
      const u128 target = finger_target_of(n.id, k);
      std::size_t& c = cursor[k];
      // The target sequence wrapped past zero: restart the cursor. (If the
      // wrap happened during ranks that skipped this k and the target is
      // already back above the last one seen, the stale cursor is still a
      // valid lower bound — no reset needed.)
      if (target < prev_target[k]) c = 0;
      prev_target[k] = target;
      while (c < count && (ids_[c] < target || slot_[c] == kDeadSlot)) ++c;
      n.fingers[k] = ids_[c == count ? first_live : c];
    }
  }
}

void ChordRing::add_node_exact(NodeId id) {
  SQUID_REQUIRE(id <= id_mask(), "node id exceeds the identifier space");
  SQUID_REQUIRE(!contains(id), "duplicate node id");
  const std::uint32_t s = insert_id(id); // compacts: array is dense now
  wire_rank(lower_pos(id));
  // Splice the neighbors so the ring stays exactly consistent: the new
  // node's predecessor gains it as immediate successor, the successor gains
  // it as predecessor. Remote fingers elsewhere stay stale by design.
  if (live_count_ > 1) {
    ChordNode& self = arena_[s];
    ChordNode& pred = node(self.predecessor);
    pred.successors.insert(pred.successors.begin(), id);
    if (pred.successors.size() > successor_list_len_)
      pred.successors.pop_back();
    ChordNode& succ = node(self.successors.front());
    succ.predecessor = id;
    succ.has_predecessor = true;
  }
}

void ChordRing::build(std::size_t count, Rng& rng) {
  SQUID_REQUIRE(count >= 1, "cannot build an empty ring");
  compact();
  // Mirror the incremental-insert draw loop exactly: collisions retry and
  // consume rng against everything drawn so far. Only the per-draw
  // membership answer matters for the stream, so a hash set stands in for
  // the seed's ordered map; the fresh ids are sorted once afterwards.
  struct IdHash {
    std::size_t operator()(NodeId id) const noexcept {
      const auto lo = static_cast<std::uint64_t>(id);
      const auto hi = static_cast<std::uint64_t>(id >> 64);
      return static_cast<std::size_t>((lo ^ hi * 0x9e3779b97f4a7c15ull) *
                                      0xbf58476d1ce4e5b9ull);
    }
  };
  std::unordered_set<NodeId, IdHash> members(ids_.begin(), ids_.end());
  members.reserve(count);
  std::vector<NodeId> fresh;
  fresh.reserve(count - std::min(count, live_count_));
  while (members.size() < count) {
    for (;;) {
      const NodeId id = id_bits_ >= 128
                            ? rng.next128()
                            : rng.below128(static_cast<u128>(1) << id_bits_);
      if (members.insert(id).second) {
        fresh.push_back(id);
        break;
      }
    }
  }
  std::sort(fresh.begin(), fresh.end());
  arena_.reserve(arena_.size() - free_slots_.size() + fresh.size());
  std::vector<NodeId> merged;
  std::vector<std::uint32_t> merged_slots;
  merged.reserve(ids_.size() + fresh.size());
  merged_slots.reserve(ids_.size() + fresh.size());
  std::size_t old = 0;
  for (const NodeId id : fresh) {
    while (old < ids_.size() && ids_[old] < id) {
      merged.push_back(ids_[old]);
      merged_slots.push_back(slot_[old++]);
    }
    merged.push_back(id);
    merged_slots.push_back(alloc_slot());
    arena_[merged_slots.back()].id = id;
  }
  while (old < ids_.size()) {
    merged.push_back(ids_[old]);
    merged_slots.push_back(slot_[old++]);
  }
  ids_ = std::move(merged);
  slot_ = std::move(merged_slots);
  live_count_ = ids_.size();
  if constexpr (obs::kEnabled) RingMetrics::get().joins.add(fresh.size());
  repair_all();
}

// --- Protocol operations -----------------------------------------------------

std::optional<NodeId> ChordRing::first_alive_successor(
    const ChordNode& n) const {
  for (const NodeId s : n.successors)
    if (contains(s)) return s;
  return std::nullopt;
}

NodeId ChordRing::closest_preceding_alive(const ChordNode& n, u128 key) const {
  // Pick the live finger that makes the most clockwise progress toward key
  // while staying strictly before it. (With base-2 fingers in ascending
  // offset order this matches the classic descending scan.)
  NodeId best = n.id;
  u128 best_progress = 0;
  for (std::size_t k = n.fingers.size(); k-- > 0;) {
    const NodeId f = n.fingers[k];
    if (!contains(f) || !in_open_open(n.id, key, f)) continue;
    const u128 progress = ring_distance(n.id, f, id_bits_);
    if (progress > best_progress) {
      best = f;
      best_progress = progress;
    }
  }
  return best;
}

RouteResult ChordRing::route(NodeId from, u128 key) const {
  const RouteResult result = [&] {
    RouteResult r;
    SQUID_REQUIRE(contains(from), "route source is not in the ring");
    SQUID_REQUIRE(key <= id_mask(), "key exceeds the identifier space");
    NodeId cur = from;
    r.path.push_back(cur);
    for (std::size_t hop = 0; hop < max_route_hops(); ++hop) {
      const ChordNode& n = node(cur);
      const auto succ = first_alive_successor(n);
      if (!succ) return r; // partitioned: no live successor known
      if (in_open_closed(cur, *succ, key)) {
        r.ok = true;
        r.dest = *succ;
        if (*succ != cur) r.path.push_back(*succ);
        return r;
      }
      NodeId next = closest_preceding_alive(n, key);
      if (next == cur) next = *succ; // fingers useless: crawl the ring
      if (next == cur) return r; // single stale node: no progress
      r.path.push_back(next);
      cur = next;
    }
    return r; // hop budget exhausted (routing loop under heavy churn)
  }();
  if constexpr (obs::kEnabled) {
    RingMetrics& m = RingMetrics::get();
    m.routes.add(1);
    if (result.ok) m.route_hops.add(result.hops());
    else m.route_failures.add(1);
  }
  return result;
}

RouteResult ChordRing::join(NodeId new_id, NodeId bootstrap) {
  SQUID_REQUIRE(new_id <= id_mask(), "node id exceeds the identifier space");
  SQUID_REQUIRE(!contains(new_id), "duplicate node id");
  RouteResult r = route(bootstrap, new_id);
  if (!r.ok) return r;
  if constexpr (obs::kEnabled) RingMetrics::get().joins.add(1);

  ChordNode n;
  n.id = new_id;
  {
    const ChordNode& succ = node(r.dest);
    n.successors.push_back(r.dest);
    for (const NodeId s : succ.successors) {
      if (n.successors.size() >= successor_list_len_) break;
      if (s != new_id) n.successors.push_back(s);
    }
    // Seed fingers from the successor's table (standard bootstrap
    // approximation); stabilization tightens them over time.
    n.fingers = succ.fingers;
    if (n.fingers.empty()) n.fingers.assign(finger_count(), r.dest);
    n.fingers[0] = r.dest;
    if (succ.has_predecessor) {
      n.predecessor = succ.predecessor;
      n.has_predecessor = true;
    }
  } // the arena may reallocate below: drop the reference first
  const std::uint32_t s = insert_id(new_id);
  arena_[s] = std::move(n);

  ChordNode& succ_mut = node(r.dest);
  succ_mut.predecessor = new_id;
  succ_mut.has_predecessor = true;
  // Eager notify of the predecessor keeps the ring routable immediately, as
  // the first post-join stabilize round would.
  const ChordNode& self = arena_[s];
  if (self.has_predecessor && contains(self.predecessor)) {
    ChordNode& pred = node(self.predecessor);
    pred.successors.insert(pred.successors.begin(), new_id);
    if (pred.successors.size() > successor_list_len_)
      pred.successors.pop_back();
  }
  return r;
}

void ChordRing::leave(NodeId id) {
  const std::size_t pos = find_pos(id);
  SQUID_REQUIRE(pos != npos, "unknown node id");
  if constexpr (obs::kEnabled) RingMetrics::get().leaves.add(1);
  const ChordNode& n = arena_[slot_[pos]];
  const auto succ = first_alive_successor(n);
  // Patch the neighbors (paper 3.2 Node Departures); distant finger tables
  // stay stale until their owners stabilize.
  if (succ && *succ != id) {
    ChordNode& s = node(*succ);
    if (n.has_predecessor && contains(n.predecessor)) {
      s.predecessor = n.predecessor;
      s.has_predecessor = true;
      ChordNode& p = node(n.predecessor);
      std::erase(p.successors, id);
      p.successors.insert(p.successors.begin(), *succ);
    }
  }
  remove_pos(pos);
}

void ChordRing::fail(NodeId id) {
  const std::size_t pos = find_pos(id);
  SQUID_REQUIRE(pos != npos, "unknown node id");
  if constexpr (obs::kEnabled) RingMetrics::get().fails.add(1);
  remove_pos(pos);
}

void ChordRing::stabilize(NodeId id, Rng& rng) {
  if (!contains(id)) return;
  if constexpr (obs::kEnabled) RingMetrics::get().stabilize_ops.add(1);
  ChordNode& n = node(id);

  // 1. Successor repair: drop dead list entries from the front.
  auto succ = first_alive_successor(n);
  if (!succ) {
    // All known successors died (catastrophic). A real node would re-join
    // through an out-of-band bootstrap; model that directly.
    succ = successor_of((id + 1) & id_mask());
    if constexpr (obs::kEnabled)
      RingMetrics::get().successor_fallbacks.add(1);
  }

  // 2. Classic stabilize: adopt the successor's predecessor if closer.
  {
    const ChordNode& s = node(*succ);
    if (s.has_predecessor && contains(s.predecessor) &&
        in_open_open(id, *succ, s.predecessor)) {
      succ = s.predecessor;
    }
  }

  // 3. Refresh the successor list from the (possibly new) successor.
  std::vector<NodeId> fresh{*succ};
  for (const NodeId s : node(*succ).successors) {
    if (fresh.size() >= successor_list_len_) break;
    if (s != id && contains(s)) fresh.push_back(s);
  }
  n.successors = std::move(fresh);

  // 4. Notify the successor about us.
  {
    ChordNode& s = node(*succ);
    if (!s.has_predecessor || !contains(s.predecessor) ||
        in_open_open(s.predecessor, s.id, id)) {
      s.predecessor = id;
      s.has_predecessor = true;
    }
  }

  // 5. Fix one random finger via a routed lookup (paper: each node
  // periodically "chooses a random entry in its finger table, checks for its
  // state, and updates it if required").
  if (n.fingers.empty()) n.fingers.assign(finger_count(), *succ);
  const auto k = static_cast<std::size_t>(rng.below(finger_count()));
  const RouteResult r = route(id, finger_target_of(id, k));
  if (r.ok) {
    node(id).fingers[k] = r.dest;
    if constexpr (obs::kEnabled) RingMetrics::get().finger_fixes.add(1);
  }
  node(id).fingers[0] = *succ;
}

void ChordRing::note_timeout(NodeId observer, NodeId dead) {
  if (observer == dead) return;
  const std::size_t pos = find_pos(observer);
  if (pos == npos) return; // the observer itself vanished since reporting
  if constexpr (obs::kEnabled) RingMetrics::get().timeout_repairs.add(1);
  ChordNode& n = arena_[slot_[pos]];
  // Successor-list fallback: the suspect is dropped, so routing falls
  // through to the next live entry immediately instead of on every lookup.
  std::erase(n.successors, dead);
  // Finger invalidation: entries pointing at the suspect are repointed at
  // the first alive successor — the node a timed-out RPC would retry via.
  // If the whole list died too (catastrophic), fingers fall back to self
  // and the next stabilize round re-bootstraps.
  const auto succ = first_alive_successor(n);
  const NodeId fallback = succ ? *succ : observer;
  for (NodeId& f : n.fingers)
    if (f == dead) f = fallback;
  if (n.has_predecessor && n.predecessor == dead) n.has_predecessor = false;
}

void ChordRing::stabilize_all(Rng& rng, unsigned rounds) {
  for (unsigned round = 0; round < rounds; ++round) {
    std::vector<NodeId> order = node_ids();
    rng.shuffle(order);
    for (const NodeId id : order) stabilize(id, rng);
  }
}

bool ChordRing::ring_consistent() const {
  for (std::size_t pos = 0; pos < ids_.size(); ++pos) {
    if (slot_[pos] == kDeadSlot) continue;
    const ChordNode& n = arena_[slot_[pos]];
    const auto succ = first_alive_successor(n);
    if (!succ) return false;
    if (*succ != successor_of((n.id + 1) & id_mask())) return false;
  }
  return true;
}

} // namespace squid::overlay
