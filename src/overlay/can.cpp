#include "squid/overlay/can.hpp"

#include <algorithm>

#include "squid/util/require.hpp"

namespace squid::overlay {

bool CanOverlay::Zone::contains(const sfc::Point& p) const noexcept {
  if (p.size() != box.size()) return false;
  for (std::size_t d = 0; d < box.size(); ++d)
    if (!box[d].contains(p[d])) return false;
  return true;
}

CanOverlay::CanOverlay(unsigned dims, unsigned bits_per_dim)
    : dims_(dims), bits_per_dim_(bits_per_dim) {
  SQUID_REQUIRE(dims >= 1, "CAN needs at least one dimension");
  SQUID_REQUIRE(bits_per_dim >= 1 && bits_per_dim < 64,
                "CAN coordinate bits must be in [1,63]");
  Zone root;
  const std::uint64_t side_max = (std::uint64_t{1} << bits_per_dim) - 1;
  for (unsigned d = 0; d < dims; ++d) root.box.push_back({0, side_max});
  zones_.push_back(std::move(root));
  neighbors_.emplace_back();
}

void CanOverlay::build(std::size_t count, Rng& rng) {
  SQUID_REQUIRE(count >= 1, "CAN needs at least one zone");
  while (zones_.size() < count) (void)join(rng);
}

CanOverlay::NodeIndex CanOverlay::join(Rng& rng) {
  const std::uint64_t side = std::uint64_t{1} << bits_per_dim_;
  for (int attempt = 0; attempt < 1024; ++attempt) {
    sfc::Point p(dims_);
    for (auto& c : p) c = rng.below(side);
    const NodeIndex victim = owner_of(p);
    Zone& zone = zones_[victim];
    // Find a splittable dimension starting at the round-robin cursor.
    unsigned dim = zone.next_split_dim;
    bool splittable = false;
    for (unsigned probe = 0; probe < dims_; ++probe) {
      if (zone.box[dim].width() >= 2) {
        splittable = true;
        break;
      }
      dim = (dim + 1) % dims_;
    }
    if (!splittable) continue; // unit zone; try another point

    const std::uint64_t lo = zone.box[dim].lo;
    const std::uint64_t hi = zone.box[dim].hi;
    const std::uint64_t mid = lo + (hi - lo) / 2;
    Zone upper = zone;
    zone.box[dim] = {lo, mid};
    upper.box[dim] = {mid + 1, hi};
    zone.next_split_dim = (dim + 1) % dims_;
    upper.next_split_dim = (dim + 1) % dims_;

    const auto fresh = static_cast<NodeIndex>(zones_.size());
    zones_.push_back(std::move(upper));
    neighbors_.emplace_back();
    // Affected adjacency: the victim, the newcomer, and everything that was
    // adjacent to the victim's old (larger) zone.
    std::set<NodeIndex> affected = neighbors_[victim];
    affected.insert(victim);
    affected.insert(fresh);
    for (const NodeIndex node : affected) rebuild_neighbors(node);
    return fresh;
  }
  SQUID_REQUIRE(false, "CAN join failed: coordinate space exhausted");
  return 0;
}

const CanOverlay::Zone& CanOverlay::zone(NodeIndex node) const {
  SQUID_REQUIRE(node < zones_.size(), "unknown CAN node");
  return zones_[node];
}

const std::set<CanOverlay::NodeIndex>& CanOverlay::neighbors(
    NodeIndex node) const {
  SQUID_REQUIRE(node < neighbors_.size(), "unknown CAN node");
  return neighbors_[node];
}

CanOverlay::NodeIndex CanOverlay::owner_of(const sfc::Point& point) const {
  SQUID_REQUIRE(point.size() == dims_, "point dimensionality mismatch");
  for (NodeIndex node = 0; node < zones_.size(); ++node)
    if (zones_[node].contains(point)) return node;
  SQUID_REQUIRE(false, "CAN zones failed to cover a point");
  return 0;
}

bool CanOverlay::zones_adjacent(const Zone& a, const Zone& b) const noexcept {
  const std::uint64_t side = std::uint64_t{1} << bits_per_dim_;
  unsigned abutting = 0;
  for (unsigned d = 0; d < dims_; ++d) {
    const auto& ia = a.box[d];
    const auto& ib = b.box[d];
    if (ia.intersects(ib)) continue;
    const bool abut = ((ia.hi + 1) % side == ib.lo) ||
                      ((ib.hi + 1) % side == ia.lo);
    if (!abut) return false;
    ++abutting;
  }
  // Adjacent means they share a (d-1)-dimensional face: abut in exactly one
  // dimension and overlap in every other. (For d == 1 any two distinct arcs
  // abut at both ends.)
  return abutting == 1;
}

std::uint64_t CanOverlay::torus_axis_distance(
    std::uint64_t coord, const sfc::Interval& extent,
    unsigned /*dim*/) const noexcept {
  if (extent.contains(coord)) return 0;
  const std::uint64_t side = std::uint64_t{1} << bits_per_dim_;
  const std::uint64_t up = (extent.lo - coord) % side;   // wrap-safe: uint
  const std::uint64_t down = (coord - extent.hi) % side; // arithmetic mod 2^64
  return std::min(up & (side - 1), down & (side - 1));
}

std::uint64_t CanOverlay::torus_distance(const sfc::Point& p,
                                         const Zone& zone) const noexcept {
  std::uint64_t total = 0;
  for (unsigned d = 0; d < dims_; ++d)
    total += torus_axis_distance(p[d], zone.box[d], d);
  return total;
}

CanOverlay::RouteResult CanOverlay::route(NodeIndex from,
                                          const sfc::Point& point) const {
  SQUID_REQUIRE(from < zones_.size(), "unknown CAN node");
  SQUID_REQUIRE(point.size() == dims_, "point dimensionality mismatch");
  RouteResult result;
  NodeIndex cur = from;
  result.path.push_back(cur);
  std::vector<bool> visited(zones_.size(), false);
  visited[cur] = true;
  while (!zones_[cur].contains(point)) {
    const std::uint64_t here = torus_distance(point, zones_[cur]);
    NodeIndex best = cur;
    std::uint64_t best_distance = here;
    for (const NodeIndex nbr : neighbors_[cur]) {
      const std::uint64_t d = torus_distance(point, zones_[nbr]);
      if (d < best_distance || (d == best_distance && !visited[nbr] &&
                                best == cur)) {
        best = nbr;
        best_distance = d;
      }
    }
    if (best == cur || visited[best]) return result; // greedy dead end
    visited[best] = true;
    result.path.push_back(best);
    cur = best;
  }
  result.ok = true;
  result.dest = cur;
  return result;
}

void CanOverlay::rebuild_neighbors(NodeIndex node) {
  std::set<NodeIndex> fresh;
  for (NodeIndex other = 0; other < zones_.size(); ++other) {
    if (other == node) continue;
    if (zones_adjacent(zones_[node], zones_[other])) fresh.insert(other);
  }
  // Symmetrize against all previously recorded edges.
  for (const NodeIndex old : neighbors_[node])
    if (!fresh.count(old)) neighbors_[old].erase(node);
  for (const NodeIndex now : fresh) neighbors_[now].insert(node);
  neighbors_[node] = std::move(fresh);
}

bool CanOverlay::invariants_hold() const {
  // Volumes partition the torus.
  u128 volume = 0;
  for (const auto& zone : zones_) {
    sfc::Rect rect{zone.box};
    volume += rect.volume();
  }
  u128 full = 1;
  for (unsigned d = 0; d < dims_; ++d)
    full *= static_cast<u128>(1) << bits_per_dim_;
  if (volume != full) return false;
  // Neighbor symmetry and correctness.
  for (NodeIndex a = 0; a < zones_.size(); ++a) {
    for (const NodeIndex b : neighbors_[a]) {
      if (!neighbors_[b].count(a)) return false;
      if (!zones_adjacent(zones_[a], zones_[b])) return false;
    }
  }
  return true;
}

} // namespace squid::overlay
