#include "squid/obs/trace.hpp"

#include <algorithm>
#include <set>

#include "squid/core/types.hpp"

namespace squid::obs {

const char* span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
  case SpanKind::kQuery: return "query";
  case SpanKind::kRefineDescend: return "refine-descend";
  case SpanKind::kPrune: return "prune";
  case SpanKind::kClusterDispatch: return "cluster-dispatch";
  case SpanKind::kRouteHop: return "route-hop";
  case SpanKind::kLocalScan: return "local-scan";
  case SpanKind::kCacheHit: return "cache-hit";
  case SpanKind::kCacheMiss: return "cache-miss";
  case SpanKind::kAggregationMerge: return "aggregation-merge";
  case SpanKind::kRetry: return "retry";
  case SpanKind::kFault: return "fault";
  }
  return "unknown";
}

core::QueryStats derive_stats(const Trace& trace) {
  // Re-derive every legacy aggregate purely from span attributes, mirroring
  // the engine's accounting rules:
  //  - messages: each span carries the query messages its step paid;
  //  - routing nodes: the union of all span path slices (route paths,
  //    forward endpoints, direct-send endpoints, plus the origin recorded
  //    on the root span);
  //  - processing nodes: peers that expanded a refinement subtree or
  //    scanned their store;
  //  - data nodes: peers whose scan matched at least one key;
  //  - matches: elements collected by local scans;
  //  - retries: resends recorded on retry spans (batch) plus the resends
  //    of abandoned legs (fault-span messages — every copy paid past the
  //    original send, which its own route/cache span already carries);
  //  - failed clusters: sub-queries lost on abandoned legs (fault-span
  //    batch);
  //  - critical path: the latest virtual-clock tick any span reaches
  //    (span times are hop-depths in the timing DAG).
  core::QueryStats stats;
  std::set<overlay::NodeId> routing;
  std::set<overlay::NodeId> processing;
  std::set<overlay::NodeId> data_nodes;
  sim::Time critical = 0;
  for (const Span& span : trace.spans) {
    stats.messages += span.messages;
    for (std::uint32_t p = span.path_begin; p < span.path_end; ++p)
      routing.insert(trace.nodes[p]);
    if (span.kind == SpanKind::kRefineDescend ||
        span.kind == SpanKind::kLocalScan) {
      processing.insert(span.node);
    }
    if (span.kind == SpanKind::kLocalScan) {
      stats.matches += span.matches;
      if (span.keys_matched > 0) data_nodes.insert(span.node);
    }
    if (span.kind == SpanKind::kRetry) stats.retries += span.batch;
    if (span.kind == SpanKind::kFault) {
      stats.retries += span.messages;
      stats.failed_clusters += span.batch;
    }
    critical = std::max(critical, span.end);
  }
  stats.routing_nodes = routing.size();
  stats.processing_nodes = processing.size();
  stats.data_nodes = data_nodes.size();
  stats.critical_path_hops = static_cast<std::size_t>(critical);
  return stats;
}

} // namespace squid::obs
