#include "squid/obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <vector>

#include "squid/util/u128.hpp"

namespace squid::obs {

namespace {

/// Short peer label: hex of the id (u128 has no ostream operator).
std::string node_label(overlay::NodeId id) { return to_hex_string(id); }

/// Track assignment: one Perfetto tid per distinct executing peer, in order
/// of first appearance (the origin's track comes first).
std::map<overlay::NodeId, int> assign_tracks(const Trace& trace) {
  std::map<overlay::NodeId, int> track;
  int next = 1;
  for (const Span& span : trace.spans)
    if (track.emplace(span.node, next).second) ++next;
  return track;
}

void write_json_escaped(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

} // namespace

void write_trace_json(const Trace& trace, std::ostream& out) {
  const auto tracks = assign_tracks(trace);
  // Virtual ticks are overlay hops; render one hop as 1ms (1000us) so the
  // Perfetto timeline has visible extents. Instant steps get 1 tick of
  // width rather than a zero-duration sliver.
  constexpr sim::Time kTickUs = 1000;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Name the per-peer tracks.
  for (const auto& [node, tid] : tracks) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"peer ";
    write_json_escaped(out, node_label(node));
    out << "\"}}";
  }
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& span = trace.spans[i];
    const sim::Time dur = span.end > span.start ? span.end - span.start : 1;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << span_kind_name(span.kind)
        << "\",\"cat\":\"squid\",\"ph\":\"X\",\"ts\":" << span.start * kTickUs
        << ",\"dur\":" << dur * kTickUs
        << ",\"pid\":1,\"tid\":" << tracks.at(span.node) << ",\"args\":{"
        << "\"span\":" << i << ",\"parent\":" << span.parent
        << ",\"event\":" << span.event << ",\"node\":\"";
    write_json_escaped(out, node_label(span.node));
    out << "\",\"level\":" << span.level << ",\"hops\":" << span.hops
        << ",\"messages\":" << span.messages << ",\"batch\":" << span.batch
        << ",\"keys_scanned\":" << span.keys_scanned
        << ",\"keys_matched\":" << span.keys_matched
        << ",\"matches\":" << span.matches << ",\"range\":\"["
        << to_string(span.range_lo) << "," << to_string(span.range_hi)
        << "]\"}}";
  }
  out << "]}\n";
}

void write_metrics_csv(const Registry::Snapshot& snapshot,
                       std::ostream& out) {
  out << "kind,name,field,value\n";
  for (const auto& row : snapshot.counters)
    out << "counter," << row.name << ",value," << row.value << "\n";
  for (const auto& row : snapshot.gauges)
    out << "gauge," << row.name << ",value," << row.value << "\n";
  for (const auto& row : snapshot.histograms) {
    const auto& snap = row.snapshot;
    out << "histogram," << row.name << ",count," << snap.count << "\n";
    out << "histogram," << row.name << ",sum," << snap.sum << "\n";
    out << "histogram," << row.name << ",min," << snap.min << "\n";
    out << "histogram," << row.name << ",max," << snap.max << "\n";
    for (std::size_t b = 0; b < snap.buckets.size(); ++b)
      out << "histogram," << row.name << ",bucket_ge_" << snap.bucket_lo[b]
          << "," << snap.buckets[b] << "\n";
  }
}

void write_metrics_json(const Registry::Snapshot& snapshot,
                        std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& row : snapshot.counters) {
    out << (first ? "" : ",") << "\n    \"" << row.name
        << "\": " << row.value;
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& row : snapshot.gauges) {
    out << (first ? "" : ",") << "\n    \"" << row.name
        << "\": " << row.value;
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& row : snapshot.histograms) {
    const auto& snap = row.snapshot;
    out << (first ? "" : ",") << "\n    \"" << row.name
        << "\": {\"count\": " << snap.count << ", \"sum\": " << snap.sum
        << ", \"min\": " << snap.min << ", \"max\": " << snap.max
        << ", \"buckets\": [";
    for (std::size_t b = 0; b < snap.buckets.size(); ++b)
      out << (b ? "," : "") << snap.buckets[b];
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
}

bool dump_metrics(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const auto snapshot = registry.snapshot();
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    write_metrics_json(snapshot, out);
  } else {
    write_metrics_csv(snapshot, out);
  }
  return true;
}

namespace {

struct Rollup {
  std::uint64_t messages = 0;
  std::uint64_t keys_scanned = 0;
  std::uint64_t matches = 0;
  std::uint64_t spans = 0;
};

void print_span(const Trace& trace,
                const std::vector<std::vector<std::int32_t>>& children,
                const std::vector<Rollup>& rollups, std::int32_t id,
                const std::string& indent, bool last, std::ostream& out) {
  const Span& span = trace.spans[static_cast<std::size_t>(id)];
  const Rollup& roll = rollups[static_cast<std::size_t>(id)];
  out << indent;
  if (span.parent >= 0) out << (last ? "`- " : "|- ");
  out << span_kind_name(span.kind);

  switch (span.kind) {
  case SpanKind::kQuery:
    out << " @" << node_label(span.node);
    break;
  case SpanKind::kRefineDescend:
    out << " @" << node_label(span.node) << " clusters=" << span.batch;
    break;
  case SpanKind::kPrune:
    out << " level=" << span.level << " range=[" << to_string(span.range_lo)
        << "," << to_string(span.range_hi) << "]";
    break;
  case SpanKind::kClusterDispatch:
    out << " ->" << node_label(span.node) << " batch=" << span.batch
        << " hops=" << span.hops;
    break;
  case SpanKind::kRouteHop:
    out << " ->" << node_label(span.node) << " hops=" << span.hops;
    break;
  case SpanKind::kLocalScan:
    out << " @" << node_label(span.node) << " scanned=" << span.keys_scanned
        << " matched=" << span.keys_matched << " elements=" << span.matches;
    break;
  case SpanKind::kCacheHit:
  case SpanKind::kCacheMiss:
    out << " level=" << span.level;
    break;
  case SpanKind::kAggregationMerge:
    out << " batch=" << span.batch;
    break;
  case SpanKind::kRetry:
    out << " ->" << node_label(span.node) << " resends=" << span.batch
        << " penalty=" << span.hops;
    break;
  case SpanKind::kFault:
    out << " ->" << node_label(span.node) << " lost=" << span.batch
        << " resends=" << span.messages;
    break;
  }
  out << "  [t" << span.start << "-t" << span.end;
  if (roll.spans > 1) {
    // Subtree rollup: what resolving everything underneath cost.
    out << " | subtree: " << roll.spans << " spans, " << roll.messages
        << " msgs, " << roll.keys_scanned << " scanned, " << roll.matches
        << " matches";
  } else if (span.messages > 0) {
    out << " | " << span.messages << " msg" << (span.messages > 1 ? "s" : "");
  }
  out << "]\n";

  const auto& kids = children[static_cast<std::size_t>(id)];
  const std::string next_indent =
      span.parent >= 0 ? indent + (last ? "   " : "|  ") : indent;
  for (std::size_t k = 0; k < kids.size(); ++k)
    print_span(trace, children, rollups, kids[k], next_indent,
               k + 1 == kids.size(), out);
}

} // namespace

void print_span_tree(const Trace& trace, std::ostream& out) {
  if (trace.spans.empty()) {
    out << "(empty trace)\n";
    return;
  }
  std::vector<std::vector<std::int32_t>> children(trace.spans.size());
  std::vector<Rollup> rollups(trace.spans.size());
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& span = trace.spans[i];
    if (span.parent >= 0)
      children[static_cast<std::size_t>(span.parent)].push_back(
          static_cast<std::int32_t>(i));
    rollups[i].messages = span.messages;
    rollups[i].keys_scanned = span.keys_scanned;
    rollups[i].matches = span.matches;
    rollups[i].spans = 1;
  }
  // Children always follow parents (the recorder appends), so one reverse
  // sweep accumulates subtree rollups bottom-up.
  for (std::size_t i = trace.spans.size(); i-- > 0;) {
    const Span& span = trace.spans[i];
    if (span.parent < 0) continue;
    Rollup& up = rollups[static_cast<std::size_t>(span.parent)];
    up.messages += rollups[i].messages;
    up.keys_scanned += rollups[i].keys_scanned;
    up.matches += rollups[i].matches;
    up.spans += rollups[i].spans;
  }
  for (std::size_t i = 0; i < trace.spans.size(); ++i)
    if (trace.spans[i].parent < 0)
      print_span(trace, children, rollups, static_cast<std::int32_t>(i), "",
                 true, out);
}

namespace {

/// Node id -> normalized ring coordinate in [0,1). id_bits == 0 means the
/// series never learned the curve geometry; report 0 rather than guessing.
double ring_position(overlay::NodeId node, unsigned id_bits) {
  if (id_bits == 0) return 0.0;
  return static_cast<double>(node) / std::ldexp(1.0, static_cast<int>(id_bits));
}

bool path_is_json(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

} // namespace

void write_heatmap_csv(const LoadSeries& series, std::ostream& out) {
  out << "epoch,node,position,scan_hits,routes_through,publishes,retracts,"
         "cache_hits,replies_forwarded,total\n";
  for (const EpochSample& sample : series.epochs)
    for (const auto& [node, v] : sample.nodes)
      out << sample.epoch << "," << node_label(node) << ","
          << ring_position(node, series.id_bits) << "," << v.scan_hits << ","
          << v.routes_through << "," << v.publishes << "," << v.retracts
          << "," << v.cache_hits << "," << v.replies_forwarded << ","
          << v.total() << "\n";
}

void write_heatmap_json(const LoadSeries& series, std::ostream& out) {
  out << "{\n  \"epoch_ticks\": " << series.epoch_ticks
      << ",\n  \"id_bits\": " << series.id_bits << ",\n  \"epochs\": [";
  bool first_epoch = true;
  for (const EpochSample& sample : series.epochs) {
    out << (first_epoch ? "" : ",") << "\n    {\"epoch\": " << sample.epoch
        << ", \"start\": " << sample.start << ", \"end\": " << sample.end
        << ", \"nodes\": [";
    first_epoch = false;
    bool first_node = true;
    for (const auto& [node, v] : sample.nodes) {
      out << (first_node ? "" : ",") << "\n      {\"node\": \"";
      write_json_escaped(out, node_label(node));
      out << "\", \"position\": " << ring_position(node, series.id_bits)
          << ", \"scan_hits\": " << v.scan_hits
          << ", \"routes_through\": " << v.routes_through
          << ", \"publishes\": " << v.publishes
          << ", \"retracts\": " << v.retracts
          << ", \"cache_hits\": " << v.cache_hits
          << ", \"replies_forwarded\": " << v.replies_forwarded
          << ", \"total\": " << v.total() << "}";
      first_node = false;
    }
    out << (first_node ? "]}" : "\n    ]}");
  }
  out << "\n  ]\n}\n";
}

bool dump_heatmap(const LoadSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  if (path_is_json(path)) write_heatmap_json(series, out);
  else write_heatmap_csv(series, out);
  return true;
}

std::vector<ImbalanceRow> derive_imbalance(const LoadSeries& series) {
  // The sample population is every node the series ever saw: a node that
  // carried load in epoch 3 but sits idle in epoch 7 contributes a zero in
  // epoch 7 — that zero IS the imbalance a flash crowd creates.
  std::set<overlay::NodeId> population;
  for (const EpochSample& sample : series.epochs)
    for (const auto& [node, v] : sample.nodes) population.insert(node);

  std::vector<ImbalanceRow> rows;
  rows.reserve(series.epochs.size());
  for (const EpochSample& sample : series.epochs) {
    ImbalanceRow row;
    row.epoch = sample.epoch;
    Summary loads;
    auto present = sample.nodes.begin();
    for (const overlay::NodeId node : population) {
      double load = 0;
      if (present != sample.nodes.end() && present->first == node) {
        load = static_cast<double>(present->second.total());
        ++present;
      }
      loads.add(load);
      row.total += load;
      if (load > 0) ++row.nodes;
    }
    if (loads.count() > 0 && row.total > 0) {
      row.gini = loads.gini();
      row.cv = loads.cv();
      row.max_over_mean = loads.max_over_mean();
      row.p99_over_mean = loads.percentile(99) / loads.mean();
    }
    rows.push_back(row);
  }
  return rows;
}

void write_series_csv(const LoadSeries& series, std::ostream& out) {
  out << "epoch,total,nodes,gini,cv,max_over_mean,p99_over_mean\n";
  for (const ImbalanceRow& row : derive_imbalance(series))
    out << row.epoch << "," << row.total << "," << row.nodes << ","
        << row.gini << "," << row.cv << "," << row.max_over_mean << ","
        << row.p99_over_mean << "\n";
}

void write_series_json(const LoadSeries& series, std::ostream& out) {
  const auto rows = derive_imbalance(series);
  out << "{\n  \"epoch_ticks\": " << series.epoch_ticks
      << ",\n  \"epochs\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ImbalanceRow& row = rows[i];
    out << (i ? "," : "") << "\n    {\"epoch\": " << row.epoch
        << ", \"total\": " << row.total << ", \"nodes\": " << row.nodes
        << ", \"gini\": " << row.gini << ", \"cv\": " << row.cv
        << ", \"max_over_mean\": " << row.max_over_mean
        << ", \"p99_over_mean\": " << row.p99_over_mean
        << ", \"counter_deltas\": {";
    bool first = true;
    for (const auto& delta : series.epochs[i].counter_deltas) {
      out << (first ? "" : ",") << "\n      \"";
      write_json_escaped(out, delta.name);
      out << "\": " << delta.value;
      first = false;
    }
    out << (first ? "}}" : "\n    }}");
  }
  out << "\n  ]\n}\n";
}

bool dump_series(const LoadSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  if (path_is_json(path)) write_series_json(series, out);
  else write_series_csv(series, out);
  return true;
}

void write_load_perfetto(const LoadSeries& series,
                         const std::vector<HotspotEvent>& events,
                         std::ostream& out) {
  constexpr sim::Time kTickUs = 1000; // same scale as write_trace_json
  std::set<overlay::NodeId> population;
  for (const EpochSample& sample : series.epochs)
    for (const auto& [node, v] : sample.nodes) population.insert(node);
  const auto imbalance = derive_imbalance(series);

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit_counter = [&](const std::string& name, sim::Time ts,
                                const char* key, double value) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"";
    write_json_escaped(out, name);
    out << "\",\"ph\":\"C\",\"ts\":" << ts * kTickUs
        << ",\"pid\":1,\"args\":{\"" << key << "\":" << value << "}}";
  };
  // One counter track per node, sampled at every epoch start; emitting
  // explicit zeros keeps gaps from rendering as held values.
  for (const EpochSample& sample : series.epochs) {
    auto present = sample.nodes.begin();
    for (const overlay::NodeId node : population) {
      double load = 0;
      if (present != sample.nodes.end() && present->first == node) {
        load = static_cast<double>(present->second.total());
        ++present;
      }
      emit_counter("load peer " + node_label(node), sample.start, "load",
                   load);
    }
  }
  for (std::size_t i = 0; i < imbalance.size(); ++i)
    emit_counter("load gini", series.epochs[i].start, "gini",
                 imbalance[i].gini);
  for (const HotspotEvent& e : events) {
    if (!first) out << ",";
    first = false;
    const sim::Time ts = static_cast<sim::Time>(e.epoch) * series.epoch_ticks;
    out << "{\"name\":\"" << hotspot_event_name(e.kind)
        << "\",\"cat\":\"squid\",\"ph\":\"i\",\"s\":\"g\",\"ts\":"
        << ts * kTickUs << ",\"pid\":1,\"tid\":0,\"args\":{\"node\":\"";
    write_json_escaped(out, node_label(e.node));
    out << "\",\"epoch\":" << e.epoch << ",\"load\":" << e.load
        << ",\"baseline\":" << e.baseline << "}}";
  }
  out << "]}\n";
}

} // namespace squid::obs
