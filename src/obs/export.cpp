#include "squid/obs/export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "squid/util/u128.hpp"

namespace squid::obs {

namespace {

/// Short peer label: hex of the id (u128 has no ostream operator).
std::string node_label(overlay::NodeId id) { return to_hex_string(id); }

/// Track assignment: one Perfetto tid per distinct executing peer, in order
/// of first appearance (the origin's track comes first).
std::map<overlay::NodeId, int> assign_tracks(const Trace& trace) {
  std::map<overlay::NodeId, int> track;
  int next = 1;
  for (const Span& span : trace.spans)
    if (track.emplace(span.node, next).second) ++next;
  return track;
}

void write_json_escaped(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

} // namespace

void write_trace_json(const Trace& trace, std::ostream& out) {
  const auto tracks = assign_tracks(trace);
  // Virtual ticks are overlay hops; render one hop as 1ms (1000us) so the
  // Perfetto timeline has visible extents. Instant steps get 1 tick of
  // width rather than a zero-duration sliver.
  constexpr sim::Time kTickUs = 1000;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Name the per-peer tracks.
  for (const auto& [node, tid] : tracks) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"peer ";
    write_json_escaped(out, node_label(node));
    out << "\"}}";
  }
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& span = trace.spans[i];
    const sim::Time dur = span.end > span.start ? span.end - span.start : 1;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << span_kind_name(span.kind)
        << "\",\"cat\":\"squid\",\"ph\":\"X\",\"ts\":" << span.start * kTickUs
        << ",\"dur\":" << dur * kTickUs
        << ",\"pid\":1,\"tid\":" << tracks.at(span.node) << ",\"args\":{"
        << "\"span\":" << i << ",\"parent\":" << span.parent
        << ",\"event\":" << span.event << ",\"node\":\"";
    write_json_escaped(out, node_label(span.node));
    out << "\",\"level\":" << span.level << ",\"hops\":" << span.hops
        << ",\"messages\":" << span.messages << ",\"batch\":" << span.batch
        << ",\"keys_scanned\":" << span.keys_scanned
        << ",\"keys_matched\":" << span.keys_matched
        << ",\"matches\":" << span.matches << ",\"range\":\"["
        << to_string(span.range_lo) << "," << to_string(span.range_hi)
        << "]\"}}";
  }
  out << "]}\n";
}

void write_metrics_csv(const Registry::Snapshot& snapshot,
                       std::ostream& out) {
  out << "kind,name,field,value\n";
  for (const auto& row : snapshot.counters)
    out << "counter," << row.name << ",value," << row.value << "\n";
  for (const auto& row : snapshot.gauges)
    out << "gauge," << row.name << ",value," << row.value << "\n";
  for (const auto& row : snapshot.histograms) {
    const auto& snap = row.snapshot;
    out << "histogram," << row.name << ",count," << snap.count << "\n";
    out << "histogram," << row.name << ",sum," << snap.sum << "\n";
    out << "histogram," << row.name << ",min," << snap.min << "\n";
    out << "histogram," << row.name << ",max," << snap.max << "\n";
    for (std::size_t b = 0; b < snap.buckets.size(); ++b)
      out << "histogram," << row.name << ",bucket_ge_" << snap.bucket_lo[b]
          << "," << snap.buckets[b] << "\n";
  }
}

void write_metrics_json(const Registry::Snapshot& snapshot,
                        std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& row : snapshot.counters) {
    out << (first ? "" : ",") << "\n    \"" << row.name
        << "\": " << row.value;
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& row : snapshot.gauges) {
    out << (first ? "" : ",") << "\n    \"" << row.name
        << "\": " << row.value;
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& row : snapshot.histograms) {
    const auto& snap = row.snapshot;
    out << (first ? "" : ",") << "\n    \"" << row.name
        << "\": {\"count\": " << snap.count << ", \"sum\": " << snap.sum
        << ", \"min\": " << snap.min << ", \"max\": " << snap.max
        << ", \"buckets\": [";
    for (std::size_t b = 0; b < snap.buckets.size(); ++b)
      out << (b ? "," : "") << snap.buckets[b];
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
}

bool dump_metrics(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const auto snapshot = registry.snapshot();
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    write_metrics_json(snapshot, out);
  } else {
    write_metrics_csv(snapshot, out);
  }
  return true;
}

namespace {

struct Rollup {
  std::uint64_t messages = 0;
  std::uint64_t keys_scanned = 0;
  std::uint64_t matches = 0;
  std::uint64_t spans = 0;
};

void print_span(const Trace& trace,
                const std::vector<std::vector<std::int32_t>>& children,
                const std::vector<Rollup>& rollups, std::int32_t id,
                const std::string& indent, bool last, std::ostream& out) {
  const Span& span = trace.spans[static_cast<std::size_t>(id)];
  const Rollup& roll = rollups[static_cast<std::size_t>(id)];
  out << indent;
  if (span.parent >= 0) out << (last ? "`- " : "|- ");
  out << span_kind_name(span.kind);

  switch (span.kind) {
  case SpanKind::kQuery:
    out << " @" << node_label(span.node);
    break;
  case SpanKind::kRefineDescend:
    out << " @" << node_label(span.node) << " clusters=" << span.batch;
    break;
  case SpanKind::kPrune:
    out << " level=" << span.level << " range=[" << to_string(span.range_lo)
        << "," << to_string(span.range_hi) << "]";
    break;
  case SpanKind::kClusterDispatch:
    out << " ->" << node_label(span.node) << " batch=" << span.batch
        << " hops=" << span.hops;
    break;
  case SpanKind::kRouteHop:
    out << " ->" << node_label(span.node) << " hops=" << span.hops;
    break;
  case SpanKind::kLocalScan:
    out << " @" << node_label(span.node) << " scanned=" << span.keys_scanned
        << " matched=" << span.keys_matched << " elements=" << span.matches;
    break;
  case SpanKind::kCacheHit:
  case SpanKind::kCacheMiss:
    out << " level=" << span.level;
    break;
  case SpanKind::kAggregationMerge:
    out << " batch=" << span.batch;
    break;
  case SpanKind::kRetry:
    out << " ->" << node_label(span.node) << " resends=" << span.batch
        << " penalty=" << span.hops;
    break;
  case SpanKind::kFault:
    out << " ->" << node_label(span.node) << " lost=" << span.batch
        << " resends=" << span.messages;
    break;
  }
  out << "  [t" << span.start << "-t" << span.end;
  if (roll.spans > 1) {
    // Subtree rollup: what resolving everything underneath cost.
    out << " | subtree: " << roll.spans << " spans, " << roll.messages
        << " msgs, " << roll.keys_scanned << " scanned, " << roll.matches
        << " matches";
  } else if (span.messages > 0) {
    out << " | " << span.messages << " msg" << (span.messages > 1 ? "s" : "");
  }
  out << "]\n";

  const auto& kids = children[static_cast<std::size_t>(id)];
  const std::string next_indent =
      span.parent >= 0 ? indent + (last ? "   " : "|  ") : indent;
  for (std::size_t k = 0; k < kids.size(); ++k)
    print_span(trace, children, rollups, kids[k], next_indent,
               k + 1 == kids.size(), out);
}

} // namespace

void print_span_tree(const Trace& trace, std::ostream& out) {
  if (trace.spans.empty()) {
    out << "(empty trace)\n";
    return;
  }
  std::vector<std::vector<std::int32_t>> children(trace.spans.size());
  std::vector<Rollup> rollups(trace.spans.size());
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& span = trace.spans[i];
    if (span.parent >= 0)
      children[static_cast<std::size_t>(span.parent)].push_back(
          static_cast<std::int32_t>(i));
    rollups[i].messages = span.messages;
    rollups[i].keys_scanned = span.keys_scanned;
    rollups[i].matches = span.matches;
    rollups[i].spans = 1;
  }
  // Children always follow parents (the recorder appends), so one reverse
  // sweep accumulates subtree rollups bottom-up.
  for (std::size_t i = trace.spans.size(); i-- > 0;) {
    const Span& span = trace.spans[i];
    if (span.parent < 0) continue;
    Rollup& up = rollups[static_cast<std::size_t>(span.parent)];
    up.messages += rollups[i].messages;
    up.keys_scanned += rollups[i].keys_scanned;
    up.matches += rollups[i].matches;
    up.spans += rollups[i].spans;
  }
  for (std::size_t i = 0; i < trace.spans.size(); ++i)
    if (trace.spans[i].parent < 0)
      print_span(trace, children, rollups, static_cast<std::int32_t>(i), "",
                 true, out);
}

} // namespace squid::obs
