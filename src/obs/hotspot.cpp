#include "squid/obs/hotspot.hpp"

#include <algorithm>

namespace squid::obs {

const char* hotspot_event_name(HotspotEvent::Kind kind) noexcept {
  return kind == HotspotEvent::Kind::kOnset ? "hotspot.onset"
                                            : "hotspot.clear";
}

HotspotDetector::HotspotDetector(HotspotConfig config, Registry* registry)
    : config_(config),
      registry_(registry != nullptr ? registry : &Registry::global()) {}

std::vector<HotspotEvent> HotspotDetector::observe(const EpochSample& sample) {
  std::vector<HotspotEvent> fired;
  // Nodes absent from this window still get judged at load 0 (a hot node
  // that went quiet must clear); walk the union of known and windowed
  // nodes. Both maps are sorted by id, so a two-pointer merge does it.
  auto known = nodes_.begin();
  const auto judge = [&](overlay::NodeId node, double load) {
    NodeState& state = nodes_[node]; // inserts baseline=0 for new nodes
    state.last_load = load;
    bool transition = false;
    if (!state.hot) {
      // A fresh node's baseline is 0: any load over the absolute floor is
      // an onset — a previously quiet peer suddenly carrying real load IS
      // the signal, not noise.
      if (load >= config_.min_load &&
          load > config_.onset_factor * state.baseline) {
        state.hot = true;
        ++active_;
        fired.push_back({HotspotEvent::Kind::kOnset, sample.epoch, node, load,
                         state.baseline});
        transition = true;
      }
    } else if (load <= config_.clear_factor * state.baseline ||
               load < config_.min_load) {
      state.hot = false;
      --active_;
      fired.push_back({HotspotEvent::Kind::kClear, sample.epoch, node, load,
                       state.baseline});
      transition = true;
    }
    // EWMA update — but frozen while hot, so the alarm cannot adapt itself
    // away mid-crowd; the clear above compares against the pre-crowd level.
    if (!state.hot)
      state.baseline =
          config_.alpha * load + (1.0 - config_.alpha) * state.baseline;
    (void)transition;
  };
  // Iterating nodes_ while judge() may insert: collect the union up front.
  std::vector<std::pair<overlay::NodeId, double>> window;
  window.reserve(nodes_.size() + sample.nodes.size());
  auto in_window = sample.nodes.begin();
  while (known != nodes_.end() || in_window != sample.nodes.end()) {
    if (in_window == sample.nodes.end() ||
        (known != nodes_.end() && known->first < in_window->first)) {
      window.emplace_back(known->first, 0.0);
      ++known;
    } else {
      if (known != nodes_.end() && known->first == in_window->first) ++known;
      window.emplace_back(in_window->first,
                          static_cast<double>(in_window->second.total()));
      ++in_window;
    }
  }
  for (const auto& [node, load] : window) judge(node, load);

  if constexpr (kEnabled) {
    std::uint64_t onsets = 0;
    std::uint64_t clears = 0;
    for (const HotspotEvent& e : fired)
      (e.kind == HotspotEvent::Kind::kOnset ? onsets : clears) += 1;
    if (onsets > 0)
      registry_->counter("squid.balance.hotspot.onsets").add(onsets);
    if (clears > 0)
      registry_->counter("squid.balance.hotspot.clears").add(clears);
    registry_->gauge("squid.balance.hotspot.active")
        .set(static_cast<double>(active_));
  }
  events_.insert(events_.end(), fired.begin(), fired.end());
  if (sink_)
    for (const HotspotEvent& e : fired) sink_(e);
  return fired;
}

bool HotspotDetector::is_hot(overlay::NodeId node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.hot;
}

double HotspotDetector::baseline_of(overlay::NodeId node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() ? it->second.baseline : 0.0;
}

double calibrated_min_load(double base, const LoadSeries& series,
                           std::uint64_t through_epoch, double factor) {
  std::vector<double> totals;
  for (const EpochSample& sample : series.epochs) {
    if (sample.epoch >= through_epoch) break;
    for (const auto& [node, load] : sample.nodes)
      totals.push_back(static_cast<double>(load.total()));
  }
  if (totals.empty()) return base;
  std::sort(totals.begin(), totals.end());
  const std::size_t rank =
      std::min(totals.size() - 1,
               static_cast<std::size_t>(0.95 * static_cast<double>(totals.size())));
  return std::max(base, factor * totals[rank]);
}

void HotspotDetector::observe_all(const LoadSeries& series) {
  for (const EpochSample& sample : series.epochs) observe(sample);
}

std::vector<HotspotDetector::HotNode> HotspotDetector::top_hot(
    std::size_t k) const {
  std::vector<HotNode> all;
  all.reserve(nodes_.size());
  for (const auto& [node, state] : nodes_)
    all.push_back({node, state.last_load, state.baseline, state.hot});
  std::sort(all.begin(), all.end(), [](const HotNode& a, const HotNode& b) {
    if (a.load != b.load) return a.load > b.load;
    return a.node < b.node;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::optional<std::uint64_t> HotspotDetector::detection_latency(
    std::uint64_t onset_epoch) const {
  for (const HotspotEvent& e : events_) {
    if (e.kind == HotspotEvent::Kind::kOnset && e.epoch >= onset_epoch)
      return e.epoch - onset_epoch;
  }
  return std::nullopt;
}

} // namespace squid::obs
