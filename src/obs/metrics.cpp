#include "squid/obs/metrics.hpp"

#include <algorithm>

namespace squid::obs {

void HistogramMetric::observe(double v) {
  if constexpr (!kEnabled) {
    (void)v;
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  histogram_.add(v);
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

HistogramMetric::Snapshot HistogramMetric::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.buckets.reserve(histogram_.buckets());
  snap.bucket_lo.reserve(histogram_.buckets());
  for (std::size_t b = 0; b < histogram_.buckets(); ++b) {
    snap.buckets.push_back(histogram_.count(b));
    snap.bucket_lo.push_back(histogram_.bucket_lo(b));
  }
  return snap;
}

void HistogramMetric::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  Histogram fresh(histogram_.bucket_lo(0),
                  histogram_.bucket_hi(histogram_.buckets() - 1),
                  histogram_.buckets());
  histogram_ = std::move(fresh);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

HistogramMetric& Registry::histogram(std::string_view name, double lo,
                                     double hi, std::size_t buckets) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<HistogramMetric>(lo, hi, buckets))
              .first->second;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  // A reset rewinds the delta window too: the next snapshot_delta measures
  // from zero, not from a stale pre-reset baseline (which would underflow).
  baseline_.clear();
}

std::vector<Registry::CounterRow> Registry::snapshot_delta() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterRow> rows;
  for (const auto& [name, c] : counters_) {
    const std::uint64_t value = c->value();
    std::uint64_t& base = baseline_[name];
    // A concurrent reset() cannot run here (it takes the same mutex), but a
    // per-counter Counter::reset() between windows can move value below the
    // baseline; clamp instead of wrapping.
    const std::uint64_t delta = value >= base ? value - base : value;
    base = value;
    if (delta != 0) rows.push_back({name, delta});
  }
  return rows;
}

Registry::Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_)
    snap.histograms.push_back({name, h->snapshot()});
  return snap;
}

} // namespace squid::obs
