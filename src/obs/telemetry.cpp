#include "squid/obs/telemetry.hpp"

#include <algorithm>
#include <string>

namespace squid::obs {

EpochSampler::EpochSampler(sim::Time epoch_ticks, Registry* registry)
    : epoch_ticks_(epoch_ticks > 0 ? epoch_ticks : 1),
      registry_(registry != nullptr ? registry : &Registry::global()) {
  // Retain the current counter values as the baseline so the first window
  // reports only what happens after the sampler was attached.
  if constexpr (kEnabled) (void)registry_->snapshot_delta();
}

void EpochSampler::flush(const QueryTelemetry& telemetry,
                         sim::Time started_at) {
  if constexpr (!kEnabled) {
    (void)telemetry;
    (void)started_at;
    return;
  }
  if (telemetry.events.empty()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  // Lockstep queries run on private engines pinned at (near) zero: rebase
  // them onto the harness-driven sampler clock. Virtual-time queries carry
  // an honest shared-clock start that is already >= the sampler clock
  // whenever the harness keeps advance_to in step.
  const sim::Time base = std::max(now_, started_at);
  for (const LoadEvent& e : telemetry.events) {
    LoadVector& v = load_[(base + e.tick) / epoch_ticks_][e.node];
    switch (e.kind) {
    case LoadKind::kScanHit: v.scan_hits += e.n; break;
    case LoadKind::kRouteThrough: v.routes_through += e.n; break;
    case LoadKind::kPublish: v.publishes += e.n; break;
    case LoadKind::kRetract: v.retracts += e.n; break;
    case LoadKind::kCacheHit: v.cache_hits += e.n; break;
    case LoadKind::kReplyForwarded: v.replies_forwarded += e.n; break;
    }
  }
}

void EpochSampler::record_now(overlay::NodeId node, LoadKind kind,
                              std::uint64_t n) {
  if constexpr (!kEnabled) {
    (void)node;
    (void)kind;
    (void)n;
    return;
  }
  if (n == 0) return;
  QueryTelemetry one;
  one.record(node, kind, n, 0);
  // flush re-locks; route through it so the bucketing logic stays in one
  // place. `started_at = now_` is what flush computes anyway.
  flush(one, 0);
}

void EpochSampler::advance_to(sim::Time now) {
  if constexpr (!kEnabled) {
    (void)now;
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (now <= now_) return;
  close_through(now);
  now_ = now;
}

sim::Time EpochSampler::now() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void EpochSampler::close_through(sim::Time t) {
  // Every boundary the clock crosses closes one epoch; each closure takes
  // one windowed registry snapshot. When one advance crosses several
  // boundaries at once, the accumulated delta lands on the FIRST epoch
  // closed (the counters moved no later than its end) and the rest record
  // empty windows.
  const std::uint64_t target = t / epoch_ticks_;
  while (closed_epochs_ < target) {
    auto rows = registry_->snapshot_delta();
    if (!rows.empty()) deltas_[closed_epochs_] = std::move(rows);
    ++closed_epochs_;
  }
}

LoadSeries EpochSampler::finish() {
  LoadSeries series;
  series.epoch_ticks = epoch_ticks_;
  series.id_bits = id_bits_;
  if constexpr (!kEnabled) return series;
  const std::lock_guard<std::mutex> lock(mu_);
  // Close the open window: the residual counter delta lands on the epoch
  // the clock currently sits in. Merged by name so repeated finish() calls
  // keep reporting the same cumulative story.
  if (auto rows = registry_->snapshot_delta(); !rows.empty()) {
    std::vector<Registry::CounterRow>& dst = deltas_[now_ / epoch_ticks_];
    std::map<std::string, std::uint64_t> merged;
    for (const auto& row : dst) merged[row.name] += row.value;
    for (const auto& row : rows) merged[row.name] += row.value;
    dst.clear();
    for (const auto& [name, value] : merged) dst.push_back({name, value});
  }
  std::uint64_t last = closed_epochs_ > 0 ? closed_epochs_ - 1 : 0;
  if (!load_.empty()) last = std::max(last, load_.rbegin()->first);
  if (!deltas_.empty()) last = std::max(last, deltas_.rbegin()->first);
  if (load_.empty() && deltas_.empty() && closed_epochs_ == 0 && now_ == 0)
    return series; // nothing ever happened: an honestly empty series
  series.epochs.reserve(static_cast<std::size_t>(last) + 1);
  for (std::uint64_t e = 0; e <= last; ++e) {
    EpochSample sample;
    sample.epoch = e;
    sample.start = static_cast<sim::Time>(e) * epoch_ticks_;
    sample.end = sample.start + epoch_ticks_;
    if (const auto it = load_.find(e); it != load_.end()) {
      sample.nodes.reserve(it->second.size());
      for (const auto& [node, v] : it->second) sample.nodes.emplace_back(node, v);
    }
    if (const auto it = deltas_.find(e); it != deltas_.end())
      sample.counter_deltas = it->second;
    series.epochs.push_back(std::move(sample));
  }
  return series;
}

} // namespace squid::obs
