#include "squid/sfc/zorder.hpp"

#include <array>

#include "interleave.hpp"
#include "squid/util/require.hpp"

namespace squid::sfc {

using detail::kMaxDims;

ZOrderCurve::ZOrderCurve(unsigned dims, unsigned bits_per_dim)
    : Curve(dims, bits_per_dim) {}

u128 ZOrderCurve::index_of(const Point& point) const {
  check_point(point);
  std::array<std::uint64_t, kMaxDims> x{};
  for (unsigned i = 0; i < dims(); ++i) x[i] = point[i];
  return detail::interleave(x.data(), dims(), bits_per_dim());
}

Point ZOrderCurve::point_of(u128 index) const {
  check_index(index);
  std::array<std::uint64_t, kMaxDims> x{};
  detail::deinterleave(index, x.data(), dims(), bits_per_dim());
  return Point(x.begin(), x.begin() + dims());
}

GrayCurve::GrayCurve(unsigned dims, unsigned bits_per_dim)
    : Curve(dims, bits_per_dim) {
  SQUID_REQUIRE(dims < 64, "GrayCurve digit arithmetic requires dims < 64");
}

u128 GrayCurve::index_of(const Point& point) const {
  check_point(point);
  std::array<std::uint64_t, kMaxDims> x{};
  for (unsigned i = 0; i < dims(); ++i) x[i] = point[i];
  const u128 z = detail::interleave(x.data(), dims(), bits_per_dim());
  // Replace each d-bit cell digit by its Gray rank so that successive cells
  // at every level differ in a single coordinate bit.
  const std::uint64_t digit_mask = (std::uint64_t{1} << dims()) - 1;
  u128 out = 0;
  for (unsigned level = 0; level < bits_per_dim(); ++level) {
    const unsigned shift = (bits_per_dim() - 1 - level) * dims();
    const auto digit = static_cast<std::uint64_t>(z >> shift) & digit_mask;
    out = (out << dims()) | detail::gray_decode(digit);
  }
  return out;
}

Point GrayCurve::point_of(u128 index) const {
  check_index(index);
  const std::uint64_t digit_mask = (std::uint64_t{1} << dims()) - 1;
  u128 z = 0;
  for (unsigned level = 0; level < bits_per_dim(); ++level) {
    const unsigned shift = (bits_per_dim() - 1 - level) * dims();
    const auto digit = static_cast<std::uint64_t>(index >> shift) & digit_mask;
    z = (z << dims()) | detail::gray_encode(digit);
  }
  std::array<std::uint64_t, kMaxDims> x{};
  detail::deinterleave(z, x.data(), dims(), bits_per_dim());
  return Point(x.begin(), x.begin() + dims());
}

} // namespace squid::sfc
