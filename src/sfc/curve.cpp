#include "squid/sfc/curve.hpp"

#include "squid/sfc/hilbert.hpp"
#include "squid/sfc/zorder.hpp"
#include "squid/util/require.hpp"

namespace squid::sfc {

Curve::Curve(unsigned dims, unsigned bits_per_dim)
    : dims_(dims), bits_per_dim_(bits_per_dim) {
  SQUID_REQUIRE(dims >= 1, "curve needs at least one dimension");
  SQUID_REQUIRE(bits_per_dim >= 1, "curve needs at least one bit per dim");
  SQUID_REQUIRE(dims * bits_per_dim <= 128,
                "index width dims*bits_per_dim exceeds 128 bits");
}

void Curve::check_point(const Point& point) const {
  SQUID_REQUIRE(point.size() == dims_, "point dimensionality mismatch");
  for (const auto c : point)
    SQUID_REQUIRE(c <= max_coord(), "coordinate exceeds curve resolution");
}

void Curve::check_index(u128 index) const {
  SQUID_REQUIRE(index <= max_index(), "index exceeds curve resolution");
}

Rect Curve::cell_of_prefix(u128 prefix, unsigned level) const {
  SQUID_REQUIRE(level <= bits_per_dim_, "cell level exceeds curve depth");
  SQUID_REQUIRE(prefix <= low_mask(level * dims_), "prefix too wide for level");
  // Digital causality: every index in [prefix << s, (prefix+1) << s) lies in
  // one level-`level` cell, so inverting any representative locates it.
  const unsigned shift_bits = (bits_per_dim_ - level) * dims_;
  // shift_bits == 128 only at level 0 (prefix 0), where a literal shift is UB.
  const Point representative =
      point_of(shift_bits >= 128 ? 0 : prefix << shift_bits);
  const unsigned cell_side_bits = bits_per_dim_ - level;
  Rect cell;
  cell.dims.reserve(dims_);
  for (const auto c : representative) {
    const std::uint64_t lo = (c >> cell_side_bits) << cell_side_bits;
    const std::uint64_t width =
        cell_side_bits >= 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << cell_side_bits) - 1;
    cell.dims.push_back(Interval{lo, lo + width});
  }
  return cell;
}

std::unique_ptr<Curve> make_curve(const std::string& name, unsigned dims,
                                  unsigned bits_per_dim) {
  if (name == "hilbert")
    return std::make_unique<HilbertCurve>(dims, bits_per_dim);
  if (name == "zorder") return std::make_unique<ZOrderCurve>(dims, bits_per_dim);
  if (name == "gray") return std::make_unique<GrayCurve>(dims, bits_per_dim);
  SQUID_REQUIRE(false, "unknown curve family: " + name);
  return nullptr; // unreachable
}

} // namespace squid::sfc
