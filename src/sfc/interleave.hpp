// Internal bit-interleaving helpers shared by the curve implementations.
//
// Convention: the index digit for refinement level l (l = 0 is the most
// significant) packs bit (m-1-l) of axis 0 first (most significant within
// the digit) through axis d-1 last. This makes the first k*d index bits the
// level-k cell digits, which is the digital-causality layout the cluster
// refiner depends on.

#pragma once

#include <cstdint>

#include "squid/sfc/types.hpp"
#include "squid/util/u128.hpp"

namespace squid::sfc::detail {

using sfc::kMaxDims;

inline u128 interleave(const std::uint64_t* axes, unsigned dims,
                       unsigned bits) noexcept {
  u128 index = 0;
  for (unsigned bit = bits; bit-- > 0;) {
    for (unsigned axis = 0; axis < dims; ++axis) {
      index = (index << 1) | ((axes[axis] >> bit) & 1u);
    }
  }
  return index;
}

inline void deinterleave(u128 index, std::uint64_t* axes, unsigned dims,
                         unsigned bits) noexcept {
  for (unsigned axis = 0; axis < dims; ++axis) axes[axis] = 0;
  for (unsigned bit = 0; bit < bits; ++bit) {
    for (unsigned axis = dims; axis-- > 0;) {
      axes[axis] |= static_cast<std::uint64_t>(index & 1u) << bit;
      index >>= 1;
    }
  }
}

/// Binary-reflected Gray code and its inverse (over up to 64-bit words).
inline constexpr std::uint64_t gray_encode(std::uint64_t v) noexcept {
  return v ^ (v >> 1);
}

inline constexpr std::uint64_t gray_decode(std::uint64_t g) noexcept {
  for (std::uint64_t shift = 1; shift < 64; shift <<= 1) g ^= g >> shift;
  return g;
}

} // namespace squid::sfc::detail
