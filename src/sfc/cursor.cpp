#include "squid/sfc/cursor.hpp"

#include <cstring>

namespace squid::sfc {

void RefineCursor::entry_point(std::uint64_t* out) const noexcept {
  const unsigned d = dims_;
  for (unsigned i = 0; i < d; ++i) out[i] = coords_[i];
  const unsigned rem = bits_ - level_;
  if (rem == 0) return;
  if (family_ != CurveFamily::hilbert) {
    // Z-order and Gray map all-zero index digits to all-zero coordinate
    // digits, so the entry corner is the cell's low corner.
    for (unsigned i = 0; i < d; ++i) out[i] = shifted_lo(out[i], rem);
    return;
  }
  // Hilbert: simulate descending through all-zero index digits on local
  // copies of the state (the entry corner is where those digits lead; it is
  // a corner of the cell, but which one depends on the orientation).
  std::uint8_t perm_a[kMaxDims];
  std::uint8_t perm_b[kMaxDims];
  std::uint8_t* sperm = perm_a;
  std::uint8_t* nperm = perm_b;
  std::memcpy(sperm, perm_.data() + level_ * d, d);
  u128 sflip = flip_[level_];
  auto prev = static_cast<unsigned>(prefix_ & 1u);
  std::uint8_t g[kMaxDims];
  std::uint8_t tperm[kMaxDims];
  for (unsigned lvl = level_; lvl < bits_; ++lvl) {
    std::memset(g, 0, d);
    g[0] = static_cast<std::uint8_t>(prev);
    for (unsigned i = 0; i < d; ++i) {
      const unsigned a =
          g[sperm[i]] ^ static_cast<unsigned>((sflip >> i) & 1u);
      out[i] = (out[i] << 1) | a;
    }
    u128 tflip = 0;
    transform_of(g, d, tperm, tflip);
    u128 nflip = 0;
    compose(sperm, sflip, tperm, tflip, d, nperm, nflip);
    std::uint8_t* const t = sperm;
    sperm = nperm;
    nperm = t;
    sflip = nflip;
    prev = 0;
  }
}

} // namespace squid::sfc
