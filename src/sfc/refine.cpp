#include "squid/sfc/refine.hpp"

#include <algorithm>
#include <array>

#include "squid/util/require.hpp"

namespace squid::sfc {

namespace {

/// prefix << dims with the dims==128 case defined (only the d=128, b=1
/// curve, where every prefix is 0 anyway).
u128 child_prefix(u128 prefix, unsigned dims, u128 digit) noexcept {
  return (dims >= 128 ? 0 : prefix << dims) | digit;
}

void emit_merged(std::vector<Segment>& out, const Segment& seg) {
  if (!out.empty() && out.back().hi + 1 == seg.lo) {
    out.back().hi = seg.hi; // adjacent in curve order: same cluster
  } else {
    out.push_back(seg);
  }
}

} // namespace

void ClusterRefiner::check_query(const Rect& query) const {
  SQUID_REQUIRE(query.dims.size() == curve_.dims(),
                "query dimensionality does not match the curve");
  for (const auto& iv : query.dims) {
    SQUID_REQUIRE(iv.lo <= iv.hi, "query interval is empty (lo > hi)");
    SQUID_REQUIRE(iv.hi <= curve_.max_coord(),
                  "query interval exceeds curve resolution");
  }
}

void ClusterRefiner::check_node(const ClusterNode& node) const {
  SQUID_REQUIRE(node.level <= curve_.bits_per_dim(),
                "cell level exceeds curve depth");
  SQUID_REQUIRE(node.prefix <= low_mask(node.level * curve_.dims()),
                "prefix too wide for level");
}

ClusterRefiner::CellRelation ClusterRefiner::classify(const ClusterNode& node,
                                                      const Rect& query) const {
  check_query(query);
  check_node(node);
  RefineCursor cursor(curve_);
  cursor.seek(node.prefix, node.level);
  return cursor.relation_to(query);
}

std::vector<ClusterNode> ClusterRefiner::refine(const ClusterNode& node,
                                                const Rect& query) const {
  check_query(query);
  check_node(node);
  SQUID_REQUIRE(node.level < curve_.bits_per_dim(),
                "cannot refine a leaf-level cluster");
  RefineCursor cursor(curve_);
  cursor.seek(node.prefix, node.level);
  std::vector<ClusterNode> children;
  const u128 fanout = cursor.fanout();
  for (u128 w = 0; w < fanout; ++w) {
    if (cursor.classify_child(w, query) != CellRelation::disjoint)
      children.push_back(ClusterNode{
          child_prefix(node.prefix, curve_.dims(), w), node.level + 1});
  }
  return children;
}

Segment ClusterRefiner::segment_of(const ClusterNode& node) const {
  SQUID_REQUIRE(node.level <= curve_.bits_per_dim(),
                "cluster level exceeds curve depth");
  const unsigned shift = (curve_.bits_per_dim() - node.level) * curve_.dims();
  // shift == 128 only at the root (prefix 0), where a literal shift is UB.
  const u128 lo = shift >= 128 ? 0 : node.prefix << shift;
  return Segment{lo, lo + low_mask(shift)};
}

std::vector<Segment> ClusterRefiner::decompose(const Rect& query,
                                               unsigned max_level) const {
  check_query(query);
  const unsigned depth = std::min(max_level, curve_.bits_per_dim());
  RefineCursor cursor(curve_);

  // The root needs classification before descending.
  {
    const auto rel = cursor.relation_to(query);
    if (rel == CellRelation::disjoint) return {};
    if (rel == CellRelation::covered || depth == 0)
      return {segment_of(ClusterNode{0, 0})};
  }

  // Depth-first descent in ascending digit order (= curve order), with one
  // next-child counter per level; cells cost O(dims) and no allocations.
  std::vector<Segment> out;
  const unsigned d = curve_.dims();
  const u128 fanout = cursor.fanout();
  std::array<u128, kMaxLevels> next;
  unsigned lvl = 0;
  next[0] = 0;
  for (;;) {
    if (next[lvl] == fanout) {
      if (lvl == 0) break;
      cursor.ascend();
      --lvl;
      continue;
    }
    const u128 w = next[lvl]++;
    const auto rel = cursor.classify_child(w, query);
    if (rel == CellRelation::disjoint) continue;
    if (rel == CellRelation::covered || lvl + 1 >= depth) {
      emit_merged(out, segment_of(ClusterNode{
                           child_prefix(cursor.prefix(), d, w), lvl + 1}));
    } else {
      cursor.descend(w);
      next[++lvl] = 0;
    }
  }
  return out;
}

std::size_t ClusterRefiner::count_tree_nodes(const Rect& query,
                                             unsigned max_level) const {
  check_query(query);
  const unsigned depth = std::min(max_level, curve_.bits_per_dim());
  std::size_t visited = 1; // root
  RefineCursor cursor(curve_);
  if (cursor.relation_to(query) != CellRelation::partial || depth == 0)
    return visited;
  const u128 fanout = cursor.fanout();
  std::array<u128, kMaxLevels> next;
  unsigned lvl = 0;
  next[0] = 0;
  for (;;) {
    if (next[lvl] == fanout) {
      if (lvl == 0) break;
      cursor.ascend();
      --lvl;
      continue;
    }
    const u128 w = next[lvl]++;
    const auto rel = cursor.classify_child(w, query);
    if (rel == CellRelation::disjoint) continue;
    ++visited;
    if (rel == CellRelation::partial && lvl + 1 < depth) {
      cursor.descend(w);
      next[++lvl] = 0;
    }
  }
  return visited;
}

std::vector<Segment> ClusterRefiner::decompose_capped(
    const Rect& query, std::size_t max_segments) const {
  SQUID_REQUIRE(max_segments >= 1, "segment cap must be positive");
  check_query(query);
  RefineCursor cursor(curve_);
  const unsigned d = curve_.dims();
  const u128 fanout = cursor.fanout();

  {
    const auto rel = cursor.relation_to(query);
    if (rel == CellRelation::disjoint) return {};
    if (rel == CellRelation::covered) return {segment_of(ClusterNode{0, 0})};
  }

  // Curve-ordered frontier: settled (covered) runs merge eagerly and pass
  // through every later level untouched; only still-partial clusters are
  // deepened. This replaces the seed's full re-decomposition per level.
  struct Entry {
    Segment seg;
    bool partial;
    ClusterNode node; ///< meaningful only when partial
  };
  std::vector<Entry> entries{{segment_of(ClusterNode{0, 0}), true, {0, 0}}};

  const auto append = [](std::vector<Entry>& list, Entry entry) {
    if (!entry.partial && !list.empty() && !list.back().partial &&
        list.back().seg.hi + 1 == entry.seg.lo) {
      list.back().seg.hi = entry.seg.hi;
    } else {
      list.push_back(entry);
    }
  };

  std::vector<Segment> best;
  std::vector<Entry> deeper;
  for (unsigned level = 1; level <= curve_.bits_per_dim(); ++level) {
    deeper.clear();
    bool any_partial = false;
    for (const Entry& entry : entries) {
      if (!entry.partial) {
        append(deeper, entry);
        continue;
      }
      cursor.seek(entry.node.prefix, entry.node.level);
      for (u128 w = 0; w < fanout; ++w) {
        const auto rel = cursor.classify_child(w, query);
        if (rel == CellRelation::disjoint) continue;
        const ClusterNode child{child_prefix(entry.node.prefix, d, w),
                                entry.node.level + 1};
        const bool partial = rel == CellRelation::partial;
        any_partial |= partial;
        append(deeper, Entry{segment_of(child), partial, child});
      }
    }

    // Merged view at this level: partial cells are emitted whole, so a
    // settled run and a partial neighbor can still fuse.
    std::vector<Segment> merged;
    for (const Entry& entry : deeper) emit_merged(merged, entry.seg);
    if (level > 1 && merged.size() > max_segments) break;
    const bool converged = merged == best;
    best = std::move(merged);
    if (converged || !any_partial) break;
    entries.swap(deeper);
  }
  return best;
}

} // namespace squid::sfc
