#include "squid/sfc/refine.hpp"

#include <algorithm>

#include "squid/util/require.hpp"

namespace squid::sfc {

void ClusterRefiner::check_query(const Rect& query) const {
  SQUID_REQUIRE(query.dims.size() == curve_.dims(),
                "query dimensionality does not match the curve");
  for (const auto& iv : query.dims) {
    SQUID_REQUIRE(iv.lo <= iv.hi, "query interval is empty (lo > hi)");
    SQUID_REQUIRE(iv.hi <= curve_.max_coord(),
                  "query interval exceeds curve resolution");
  }
}

ClusterRefiner::CellRelation ClusterRefiner::classify(const ClusterNode& node,
                                                      const Rect& query) const {
  check_query(query);
  const Rect cell = curve_.cell_of_prefix(node.prefix, node.level);
  if (!cell.intersects(query)) return CellRelation::disjoint;
  if (query.covers(cell)) return CellRelation::covered;
  return CellRelation::partial;
}

std::vector<ClusterNode> ClusterRefiner::refine(const ClusterNode& node,
                                                const Rect& query) const {
  check_query(query);
  SQUID_REQUIRE(node.level < curve_.bits_per_dim(),
                "cannot refine a leaf-level cluster");
  std::vector<ClusterNode> children;
  const u128 base = node.prefix << curve_.dims();
  const u128 fanout = static_cast<u128>(1) << curve_.dims();
  for (u128 child = 0; child < fanout; ++child) {
    const ClusterNode candidate{base | child, node.level + 1};
    const Rect cell = curve_.cell_of_prefix(candidate.prefix, candidate.level);
    if (cell.intersects(query)) children.push_back(candidate);
  }
  return children;
}

Segment ClusterRefiner::segment_of(const ClusterNode& node) const {
  SQUID_REQUIRE(node.level <= curve_.bits_per_dim(),
                "cluster level exceeds curve depth");
  const unsigned shift = (curve_.bits_per_dim() - node.level) * curve_.dims();
  // shift == 128 only at the root (prefix 0), where a literal shift is UB.
  const u128 lo = shift >= 128 ? 0 : node.prefix << shift;
  return Segment{lo, lo + low_mask(shift)};
}

namespace {

void emit_merged(std::vector<Segment>& out, const Segment& seg) {
  if (!out.empty() && out.back().hi + 1 == seg.lo) {
    out.back().hi = seg.hi; // adjacent in curve order: same cluster
  } else {
    out.push_back(seg);
  }
}

} // namespace

std::vector<Segment> ClusterRefiner::decompose(const Rect& query,
                                               unsigned max_level) const {
  check_query(query);
  const unsigned depth = std::min(max_level, curve_.bits_per_dim());
  std::vector<Segment> out;

  // Explicit stack of (node, next child to visit) to keep curve order while
  // avoiding recursion depth issues at high resolutions.
  struct Frame {
    ClusterNode node;
    u128 next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({ClusterNode{0, 0}, 0});
  const u128 fanout = static_cast<u128>(1) << curve_.dims();

  // The root frame itself needs classification before descending.
  {
    const auto rel = classify(stack.back().node, query);
    if (rel == CellRelation::covered || depth == 0) {
      return {segment_of(ClusterNode{0, 0})};
    }
    if (rel == CellRelation::disjoint) return {};
  }

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == fanout) {
      stack.pop_back();
      continue;
    }
    const u128 child_digit = frame.next_child++;
    const ClusterNode child{(frame.node.prefix << curve_.dims()) | child_digit,
                            frame.node.level + 1};
    const Rect cell = curve_.cell_of_prefix(child.prefix, child.level);
    if (!cell.intersects(query)) continue;
    if (query.covers(cell) || child.level >= depth) {
      emit_merged(out, segment_of(child));
    } else {
      stack.push_back({child, 0});
    }
  }
  return out;
}

std::vector<Segment> ClusterRefiner::decompose_capped(
    const Rect& query, std::size_t max_segments) const {
  SQUID_REQUIRE(max_segments >= 1, "segment cap must be positive");
  std::vector<Segment> best = decompose(query, 1);
  for (unsigned level = 2; level <= curve_.bits_per_dim(); ++level) {
    std::vector<Segment> next = decompose(query, level);
    if (next.size() > max_segments) break;
    const bool converged = next == best;
    best = std::move(next);
    // Heuristic early exit: two consecutive identical levels almost always
    // mean the decomposition is exact. Callers filter matches locally, so
    // stopping on an over-approximation is safe either way.
    if (converged) break;
  }
  return best;
}

std::size_t ClusterRefiner::count_tree_nodes(const Rect& query,
                                             unsigned max_level) const {
  check_query(query);
  const unsigned depth = std::min(max_level, curve_.bits_per_dim());
  std::size_t visited = 1; // root
  std::vector<ClusterNode> frontier{ClusterNode{0, 0}};
  if (classify(frontier.front(), query) != CellRelation::partial || depth == 0)
    return visited;
  while (!frontier.empty()) {
    const ClusterNode node = frontier.back();
    frontier.pop_back();
    for (const auto& child : refine(node, query)) {
      ++visited;
      const Rect cell = curve_.cell_of_prefix(child.prefix, child.level);
      if (!query.covers(cell) && child.level < depth) frontier.push_back(child);
    }
  }
  return visited;
}

} // namespace squid::sfc
