#include "squid/sfc/hilbert.hpp"

#include <array>

#include "interleave.hpp"
#include "squid/util/require.hpp"

namespace squid::sfc {
namespace {

using detail::kMaxDims;

// Skilling's in-place transforms between axis coordinates and the
// "transposed" Hilbert representation (b bits per word, n words).
// Public-domain algorithm from AIP Conf. Proc. 707, 381 (2004).

void axes_to_transpose(std::uint64_t* x, unsigned b, unsigned n) noexcept {
  const std::uint64_t m = std::uint64_t{1} << (b - 1);
  // Inverse undo of the rotation/reflection applied at each level.
  for (std::uint64_t q = m; q > 1; q >>= 1) {
    const std::uint64_t p = q - 1;
    for (unsigned i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p; // invert low bits of axis 0
      } else {
        const std::uint64_t t = (x[0] ^ x[i]) & p; // exchange low bits
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (unsigned i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint64_t t = 0;
  for (std::uint64_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (unsigned i = 0; i < n; ++i) x[i] ^= t;
}

void transpose_to_axes(std::uint64_t* x, unsigned b, unsigned n) noexcept {
  const std::uint64_t top = std::uint64_t{2} << (b - 1);
  // Gray decode by H ^ (H/2).
  std::uint64_t t = x[n - 1] >> 1;
  for (unsigned i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint64_t q = 2; q != top; q <<= 1) {
    const std::uint64_t p = q - 1;
    for (unsigned i = n; i-- > 0;) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

} // namespace

HilbertCurve::HilbertCurve(unsigned dims, unsigned bits_per_dim)
    : Curve(dims, bits_per_dim) {}

u128 HilbertCurve::index_of(const Point& point) const {
  check_point(point);
  std::array<std::uint64_t, kMaxDims> x{};
  for (unsigned i = 0; i < dims(); ++i) x[i] = point[i];
  axes_to_transpose(x.data(), bits_per_dim(), dims());
  return detail::interleave(x.data(), dims(), bits_per_dim());
}

Point HilbertCurve::point_of(u128 index) const {
  check_index(index);
  std::array<std::uint64_t, kMaxDims> x{};
  detail::deinterleave(index, x.data(), dims(), bits_per_dim());
  transpose_to_axes(x.data(), bits_per_dim(), dims());
  return Point(x.begin(), x.begin() + dims());
}

} // namespace squid::sfc
