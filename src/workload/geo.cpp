#include "squid/workload/geo.hpp"

#include <algorithm>
#include <cmath>

#include "squid/core/system.hpp"
#include "squid/util/require.hpp"

namespace squid::workload {

namespace {

/// Clamp into the half-open world interval [0, extent): the codecs map
/// extent itself to the one-past-the-last bucket, so indexed coordinates
/// stay strictly inside.
double clamp_coord(double v, double extent) {
  if (v < 0) return 0;
  const double limit = std::nextafter(extent, 0.0);
  return v > limit ? limit : v;
}

} // namespace

GeoMovingObjectsWorkload::GeoMovingObjectsWorkload(GeoConfig config, Rng& rng)
    : config_(config) {
  SQUID_REQUIRE(config_.width > 0 && config_.height > 0,
                "geo world must have positive extent");
  SQUID_REQUIRE(config_.speed_min > 0 &&
                    config_.speed_max >= config_.speed_min,
                "geo speeds must satisfy 0 < min <= max");
  objects_.reserve(config_.objects);
  for (std::size_t i = 0; i < config_.objects; ++i) {
    Object o;
    o.name = "geo" + std::to_string(i);
    o.x = clamp_coord(rng.uniform() * config_.width, config_.width);
    o.y = clamp_coord(rng.uniform() * config_.height, config_.height);
    o.tx = clamp_coord(rng.uniform() * config_.width, config_.width);
    o.ty = clamp_coord(rng.uniform() * config_.height, config_.height);
    o.speed = config_.speed_min +
              rng.uniform() * (config_.speed_max - config_.speed_min);
    objects_.push_back(std::move(o));
  }
}

keyword::KeywordSpace GeoMovingObjectsWorkload::make_space() const {
  return keyword::KeywordSpace(
      {keyword::NumericCodec(0, config_.width, config_.bits),
       keyword::NumericCodec(0, config_.height, config_.bits)});
}

core::DataElement GeoMovingObjectsWorkload::element_of(std::size_t i) const {
  const Object& o = objects_[i];
  return core::DataElement{o.name, {o.x, o.y}};
}

std::vector<core::DataElement> GeoMovingObjectsWorkload::elements() const {
  std::vector<core::DataElement> out;
  out.reserve(objects_.size());
  for (std::size_t i = 0; i < objects_.size(); ++i)
    out.push_back(element_of(i));
  return out;
}

void GeoMovingObjectsWorkload::step(std::size_t i, overlay::NodeId origin,
                                    std::vector<core::UpdateOp>& ops,
                                    Rng& rng) {
  Object& o = objects_[i];
  // Retract exactly what is indexed now — before the move mutates it.
  ops.push_back(core::UpdateOp::retract(element_of(i), origin));
  const double dx = o.tx - o.x;
  const double dy = o.ty - o.y;
  const double dist = std::hypot(dx, dy);
  if (dist <= o.speed) {
    // Waypoint reached this tick: land on it, draw the next leg.
    o.x = o.tx;
    o.y = o.ty;
    o.tx = clamp_coord(rng.uniform() * config_.width, config_.width);
    o.ty = clamp_coord(rng.uniform() * config_.height, config_.height);
    o.speed = config_.speed_min +
              rng.uniform() * (config_.speed_max - config_.speed_min);
  } else {
    const double f = o.speed / dist;
    o.x = clamp_coord(o.x + dx * f, config_.width);
    o.y = clamp_coord(o.y + dy * f, config_.height);
  }
  ops.push_back(core::UpdateOp::publish(element_of(i), origin));
}

std::vector<std::string> GeoMovingObjectsWorkload::inside(double xlo,
                                                          double xhi,
                                                          double ylo,
                                                          double yhi) const {
  std::vector<std::string> names;
  for (const Object& o : objects_)
    if (o.x >= xlo && o.x <= xhi && o.y >= ylo && o.y <= yhi)
      names.push_back(o.name);
  return names;
}

keyword::Query bbox_query(double xlo, double xhi, double ylo, double yhi) {
  return keyword::Query{
      {keyword::NumRange{xlo, xhi}, keyword::NumRange{ylo, yhi}}};
}

std::vector<GeoNeighbor> k_nearest(const core::SquidSystem& sys,
                                   const GeoConfig& world, double x, double y,
                                   std::size_t k, overlay::NodeId origin) {
  std::vector<GeoNeighbor> best;
  if (k == 0) return best;
  // Start near the expected k-neighborhood scale and double until the k-th
  // hit provably lies inside the searched circle (dist <= r), so no closer
  // object can be hiding outside the box. The box is clamped to the world,
  // so once r spans it the answer is whatever the full sweep found.
  const double world_span = std::max(world.width, world.height);
  double r = std::max(world_span / 64.0, 1e-9);
  for (;;) {
    const keyword::Query box =
        bbox_query(std::max(0.0, x - r), std::min(world.width, x + r),
                   std::max(0.0, y - r), std::min(world.height, y + r));
    const core::QueryResult result = sys.query(box, origin);
    best.clear();
    for (const core::DataElement& e : result.elements) {
      // Geo elements carry their exact coordinates as numeric tokens; the
      // box match is bucket-resolution, so re-measure from the tokens.
      if (e.keys.size() != 2) continue;
      const double* ex = std::get_if<double>(&e.keys[0]);
      const double* ey = std::get_if<double>(&e.keys[1]);
      if (ex == nullptr || ey == nullptr) continue;
      const double ddx = *ex - x;
      const double ddy = *ey - y;
      best.push_back(GeoNeighbor{e.name, *ex, *ey, ddx * ddx + ddy * ddy});
    }
    std::sort(best.begin(), best.end(),
              [](const GeoNeighbor& a, const GeoNeighbor& b) {
                return a.dist2 != b.dist2 ? a.dist2 < b.dist2
                                          : a.name < b.name;
              });
    best.erase(std::unique(best.begin(), best.end(),
                           [](const GeoNeighbor& a, const GeoNeighbor& b) {
                             return a.name == b.name;
                           }),
               best.end());
    const bool covers_world = x - r <= 0 && x + r >= world.width &&
                              y - r <= 0 && y + r >= world.height;
    if (covers_world ||
        (best.size() >= k && best[k - 1].dist2 <= r * r)) {
      if (best.size() > k) best.resize(k);
      return best;
    }
    r *= 2;
  }
}

} // namespace squid::workload
