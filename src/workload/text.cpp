#include "squid/workload/text.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace squid::workload {

bool is_stopword(std::string_view word) {
  static const std::set<std::string, std::less<>> kStopwords{
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",
      "can",  "for",  "from", "has",  "have", "in",   "is",   "it",
      "its",  "of",   "on",   "or",   "our",  "such", "that", "the",
      "their", "these", "this", "to",  "was",  "we",   "were", "which",
      "with", "will", "not",  "all",  "also", "but",  "they", "been"};
  return kStopwords.count(word) != 0;
}

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalpha(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> extract_keywords(std::string_view text,
                                          std::size_t max_keywords) {
  std::map<std::string, std::size_t> counts;
  for (auto& token : tokenize(text)) {
    if (token.size() < 2 || is_stopword(token)) continue;
    ++counts[token];
  }
  std::vector<std::pair<std::string, std::size_t>> ranked(counts.begin(),
                                                          counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second; // more frequent
    if (a.first.size() != b.first.size())
      return a.first.size() > b.first.size(); // longer = more specific
    return a.first < b.first;
  });
  std::vector<std::string> keywords;
  for (const auto& [word, count] : ranked) {
    if (keywords.size() >= max_keywords) break;
    keywords.push_back(word);
  }
  return keywords;
}

} // namespace squid::workload
