#include "squid/workload/corpus.hpp"

#include <algorithm>
#include <set>

#include "squid/util/require.hpp"

namespace squid::workload {

namespace {

constexpr const char* kAlphabet = "abcdefghijklmnopqrstuvwxyz";

/// Syllables chosen to produce pronounceable words with many shared
/// prefixes ("com", "con", "net", ...), which is what clusters real
/// vocabularies lexicographically.
const std::vector<std::string>& syllables() {
  static const std::vector<std::string> kSyllables{
      "com", "con", "net", "dat", "dis", "pro", "pre", "per", "res", "ser",
      "sto", "str", "sys", "tra", "gri", "que", "ind", "inf", "int", "mem",
      "ban", "bal", "clu", "cur", "dec", "dim", "loa", "loc", "map", "nod",
      "ove", "pee", "ran", "rou", "sea", "sha", "spa", "tab", "top", "wil",
      "pu",  "ter", "wor", "ing", "er",  "or",  "al",  "ic",  "ive", "ity"};
  return kSyllables;
}

} // namespace

Vocabulary::Vocabulary(std::size_t size, double zipf, Rng& rng)
    : zipf_(size == 0 ? 1 : size, zipf) {
  SQUID_REQUIRE(size >= 1, "vocabulary must be nonempty");
  std::set<std::string> seen;
  const auto& parts = syllables();
  while (words_.size() < size) {
    std::string word = parts[rng.below(parts.size())];
    const auto extra = rng.below(3); // 1-3 syllables
    for (std::uint64_t i = 0; i < extra; ++i)
      word += parts[rng.below(parts.size())];
    if (word.size() > 10) word.resize(10);
    if (seen.insert(word).second) words_.push_back(std::move(word));
  }
  // Popularity rank is independent of spelling: shuffle, then rank order is
  // simply vector order.
  rng.shuffle(words_);
}

const std::string& Vocabulary::sample(Rng& rng) const {
  return words_[zipf_.sample(rng)];
}

const std::string& Vocabulary::by_rank(std::size_t rank) const {
  SQUID_REQUIRE(rank < words_.size(), "vocabulary rank out of range");
  return words_[rank];
}

KeywordCorpus::KeywordCorpus(unsigned dims, std::size_t vocabulary,
                             double zipf, Rng& rng)
    : dims_(dims), vocabulary_(vocabulary, zipf, rng) {
  SQUID_REQUIRE(dims >= 1, "corpus needs at least one dimension");
}

keyword::KeywordSpace KeywordCorpus::make_space(unsigned max_len) const {
  std::vector<keyword::KeywordSpace::Dimension> dimensions;
  for (unsigned d = 0; d < dims_; ++d)
    dimensions.push_back(keyword::StringCodec(kAlphabet, max_len));
  return keyword::KeywordSpace(std::move(dimensions));
}

core::DataElement KeywordCorpus::make_element(Rng& rng) const {
  core::DataElement element;
  element.name = "elem" + std::to_string(counter_++);
  for (unsigned d = 0; d < dims_; ++d)
    element.keys.emplace_back(vocabulary_.sample(rng));
  return element;
}

std::vector<core::DataElement> KeywordCorpus::make_elements(std::size_t count,
                                                            Rng& rng) const {
  std::vector<core::DataElement> elements;
  elements.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    elements.push_back(make_element(rng));
  return elements;
}

keyword::Query KeywordCorpus::q1(std::size_t rank, bool partial,
                                 unsigned prefix_len) const {
  keyword::Query query;
  const std::string& word = vocabulary_.by_rank(rank);
  if (partial) {
    std::string prefix = word.substr(0, std::max<unsigned>(1, prefix_len));
    query.terms.push_back(keyword::Prefix{std::move(prefix)});
  } else {
    query.terms.push_back(keyword::Whole{word});
  }
  for (unsigned d = 1; d < dims_; ++d) query.terms.push_back(keyword::Any{});
  return query;
}

keyword::Query KeywordCorpus::q2(std::size_t rank_a, std::size_t rank_b,
                                 bool partial_b, unsigned prefix_len) const {
  SQUID_REQUIRE(dims_ >= 2, "Q2 needs at least two dimensions");
  keyword::Query query;
  query.terms.push_back(keyword::Prefix{
      vocabulary_.by_rank(rank_a).substr(0, std::max<unsigned>(1, prefix_len))});
  const std::string& word_b = vocabulary_.by_rank(rank_b);
  if (partial_b) {
    query.terms.push_back(keyword::Prefix{
        word_b.substr(0, std::max<unsigned>(1, prefix_len))});
  } else {
    query.terms.push_back(keyword::Whole{word_b});
  }
  for (unsigned d = 2; d < dims_; ++d) query.terms.push_back(keyword::Any{});
  return query;
}

FlashCrowdWorkload::FlashCrowdWorkload(const KeywordCorpus& corpus,
                                       FlashCrowdConfig config)
    : corpus_(&corpus), config_(config) {
  SQUID_REQUIRE(config_.onset_epoch <= config_.end_epoch,
                "flash crowd must end at or after its onset");
  SQUID_REQUIRE(config_.hot_fraction >= 0.0 && config_.hot_fraction <= 1.0,
                "hot_fraction must be a probability");
  const std::size_t vocab = corpus.vocabulary().words().size();
  SQUID_REQUIRE(config_.hot_rank < vocab, "hot_rank beyond the vocabulary");
  config_.baseline_ranks =
      std::max<std::size_t>(1, std::min(config_.baseline_ranks, vocab));
}

keyword::Query FlashCrowdWorkload::hot_query() const {
  return corpus_->q1(config_.hot_rank, /*partial=*/true, config_.prefix_len);
}

keyword::Query FlashCrowdWorkload::draw(std::uint64_t epoch, Rng& rng) const {
  if (hot_phase(epoch) && rng.chance(config_.hot_fraction)) return hot_query();
  // Baseline mix: mostly single-keyword Q1 (half partial, half whole) with
  // a q2_fraction slice of two-keyword Q2 — the steady hum the detector's
  // EWMA baselines learn before the crowd arrives.
  const std::size_t rank = rng.below(config_.baseline_ranks);
  if (corpus_->dims() >= 2 && rng.chance(config_.q2_fraction)) {
    const std::size_t rank_b = rng.below(config_.baseline_ranks);
    return corpus_->q2(rank, rank_b, /*partial_b=*/true, config_.prefix_len);
  }
  return corpus_->q1(rank, rng.chance(0.5), config_.prefix_len);
}

DiurnalShiftWorkload::DiurnalShiftWorkload(const KeywordCorpus& corpus,
                                           DiurnalShiftConfig config)
    : corpus_(&corpus), config_(config) {
  SQUID_REQUIRE(config_.period_epochs >= 1,
                "diurnal shift needs a nonzero period");
  SQUID_REQUIRE(config_.focus_fraction >= 0.0 &&
                    config_.focus_fraction <= 1.0,
                "focus_fraction must be a probability");
  const std::size_t vocab = corpus.vocabulary().words().size();
  config_.window = std::max<std::size_t>(1, std::min(config_.window, vocab));
  config_.focus_step = std::max<std::size_t>(1, config_.focus_step);
  config_.baseline_ranks =
      std::max<std::size_t>(1, std::min(config_.baseline_ranks, vocab));
}

std::size_t DiurnalShiftWorkload::focus_of(std::uint64_t epoch) const noexcept {
  // The focus advances focus_step ranks every period, wrapping around the
  // vocabulary — a rotating popularity peak.
  const std::size_t vocab = corpus_->vocabulary().words().size();
  const std::uint64_t moves = epoch / config_.period_epochs;
  return static_cast<std::size_t>((moves * config_.focus_step) % vocab);
}

keyword::Query DiurnalShiftWorkload::draw(std::uint64_t epoch,
                                          Rng& rng) const {
  const std::size_t vocab = corpus_->vocabulary().words().size();
  if (rng.chance(config_.focus_fraction)) {
    // A partial-keyword query from the current focus window: the
    // concentrated mass that makes the focus region's owners hot.
    const std::size_t rank =
        (focus_of(epoch) + rng.below(config_.window)) % vocab;
    return corpus_->q1(rank, /*partial=*/true, config_.prefix_len);
  }
  // Same baseline hum as FlashCrowdWorkload.
  const std::size_t rank = rng.below(config_.baseline_ranks);
  if (corpus_->dims() >= 2 && rng.chance(config_.q2_fraction)) {
    const std::size_t rank_b = rng.below(config_.baseline_ranks);
    return corpus_->q2(rank, rank_b, /*partial_b=*/true, config_.prefix_len);
  }
  return corpus_->q1(rank, rng.chance(0.5), config_.prefix_len);
}

SkewedPublisherWorkload::SkewedPublisherWorkload(const KeywordCorpus& corpus,
                                                 SkewedPublisherConfig config)
    : corpus_(&corpus), config_(config) {
  SQUID_REQUIRE(config_.hot_fraction >= 0.0 && config_.hot_fraction <= 1.0,
                "hot_fraction must be a probability");
  const auto& words = corpus.vocabulary().words();
  SQUID_REQUIRE(config_.hot_rank < words.size(),
                "hot_rank beyond the vocabulary");
  config_.baseline_ranks =
      std::max<std::size_t>(1, std::min(config_.baseline_ranks, words.size()));
  // Precompute the publish pool: every vocabulary rank whose word shares the
  // hot word's prefix. These all map into the same curve clusters, so the
  // concentrated publishes land on one arc of the ring.
  const std::string prefix = words[config_.hot_rank].substr(
      0, std::max<unsigned>(1, config_.prefix_len));
  for (std::size_t rank = 0; rank < words.size(); ++rank) {
    if (words[rank].compare(0, prefix.size(), prefix) == 0)
      hot_pool_.push_back(rank);
  }
  if (hot_pool_.empty()) hot_pool_.push_back(config_.hot_rank);
}

core::DataElement SkewedPublisherWorkload::make_element(Rng& rng) const {
  core::DataElement element;
  element.name = "skew" + std::to_string(counter_++);
  const auto& vocab = corpus_->vocabulary();
  if (rng.chance(config_.hot_fraction)) {
    element.keys.emplace_back(
        vocab.by_rank(hot_pool_[rng.below(hot_pool_.size())]));
  } else {
    element.keys.emplace_back(vocab.sample(rng));
  }
  for (unsigned d = 1; d < corpus_->dims(); ++d)
    element.keys.emplace_back(vocab.sample(rng));
  return element;
}

keyword::Query SkewedPublisherWorkload::hot_query() const {
  return corpus_->q1(config_.hot_rank, /*partial=*/true, config_.prefix_len);
}

keyword::Query SkewedPublisherWorkload::draw(Rng& rng) const {
  const std::size_t rank = rng.below(config_.baseline_ranks);
  if (corpus_->dims() >= 2 && rng.chance(config_.q2_fraction)) {
    const std::size_t rank_b = rng.below(config_.baseline_ranks);
    return corpus_->q2(rank, rank_b, /*partial_b=*/true, config_.prefix_len);
  }
  return corpus_->q1(rank, rng.chance(0.5), config_.prefix_len);
}

ResourceCorpus::ResourceCorpus(unsigned bits) : bits_(bits) {
  SQUID_REQUIRE(bits >= 4 && bits < 32, "resource bits must be in [4,31]");
}

keyword::KeywordSpace ResourceCorpus::make_space() const {
  // storage space (GB), base bandwidth (Mbps), cost — paper Fig 1(b).
  return keyword::KeywordSpace({keyword::NumericCodec(0, 4096, bits_),
                                keyword::NumericCodec(0, 10000, bits_),
                                keyword::NumericCodec(0, 1000, bits_)});
}

core::DataElement ResourceCorpus::make_element(Rng& rng) const {
  // Storage concentrates on power-of-two tiers with jitter.
  const double tiers[] = {64, 128, 256, 512, 1024, 2048, 4096};
  const double storage = tiers[rng.below(std::size(tiers))] *
                         (0.9 + 0.2 * rng.uniform());
  // Bandwidth concentrates on standard link rates.
  const double rates[] = {10, 100, 1000, 2500, 10000};
  const double bandwidth =
      rates[rng.below(std::size(rates))] * (0.9 + 0.2 * rng.uniform());
  // Cost spreads widely (roughly log-uniform over [1, 1000]).
  double cost = 1.0;
  for (int i = 0; i < 3; ++i) cost *= 1.0 + 9.0 * rng.uniform();
  cost = std::min(cost, 1000.0);
  return core::DataElement{"res" + std::to_string(counter_++),
                           {storage, bandwidth, cost}};
}

std::vector<core::DataElement> ResourceCorpus::make_elements(std::size_t count,
                                                             Rng& rng) const {
  std::vector<core::DataElement> elements;
  elements.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    elements.push_back(make_element(rng));
  return elements;
}

keyword::Query ResourceCorpus::q3_keyword_range(double storage, double bw_lo,
                                                double bw_hi) const {
  return keyword::Query{{keyword::NumExact{storage},
                         keyword::NumRange{bw_lo, bw_hi}, keyword::Any{}}};
}

keyword::Query ResourceCorpus::q3_all_ranges(double st_lo, double st_hi,
                                             double bw_lo, double bw_hi,
                                             double cost_lo,
                                             double cost_hi) const {
  return keyword::Query{{keyword::NumRange{st_lo, st_hi},
                         keyword::NumRange{bw_lo, bw_hi},
                         keyword::NumRange{cost_lo, cost_hi}}};
}

} // namespace squid::workload
