#include "squid/baselines/inverted_index.hpp"

#include <set>
#include <sstream>

#include "squid/util/require.hpp"

namespace squid::baselines {

namespace {

std::string token_text(const keyword::Token& token) {
  if (const auto* word = std::get_if<std::string>(&token)) return *word;
  std::ostringstream os;
  os << std::get<double>(token);
  return os.str();
}

} // namespace

InvertedIndexDht::InvertedIndexDht(std::size_t nodes, Rng& rng) : ring_(64) {
  ring_.build(nodes, rng);
}

u128 InvertedIndexDht::keyword_key(const std::string& word) const {
  // 64-bit FNV-1a, then mixed through splitmix64 — consistent hashing of
  // keywords onto the ring, exactly what KSS/PeerSearch do.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : word) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return splitmix64(h);
}

void InvertedIndexDht::publish(const core::DataElement& element) {
  for (unsigned dim = 0; dim < element.keys.size(); ++dim) {
    const std::string word = token_text(element.keys[dim]);
    const overlay::NodeId owner = ring_.successor_of(keyword_key(word));
    postings_[owner][word].push_back(Posting{element, dim});
  }
}

void InvertedIndexDht::lookup(
    const std::string& word, overlay::NodeId origin, LookupResult& result,
    std::map<std::string, std::vector<Posting>>& found) const {
  const overlay::RouteResult r = ring_.route(origin, keyword_key(word));
  SQUID_REQUIRE(r.ok, "inverted-index lookup failed to route");
  result.messages += 2; // the lookup and the posting-list reply
  result.routing_nodes += r.path.size();
  ++result.posting_nodes;
  const auto node_it = postings_.find(r.dest);
  if (node_it == postings_.end()) return;
  const auto word_it = node_it->second.find(word);
  if (word_it == node_it->second.end()) return;
  auto& bucket = found[word];
  bucket.insert(bucket.end(), word_it->second.begin(), word_it->second.end());
}

InvertedIndexDht::LookupResult InvertedIndexDht::query_whole(
    const std::vector<std::string>& terms, Rng& rng) const {
  LookupResult result;
  const overlay::NodeId origin = ring_.random_node(rng);
  std::map<std::string, std::vector<Posting>> found;
  std::vector<unsigned> constrained;
  for (unsigned dim = 0; dim < terms.size(); ++dim) {
    if (terms[dim] == "*") continue;
    constrained.push_back(dim);
    lookup(terms[dim], origin, result, found);
  }
  SQUID_REQUIRE(!constrained.empty(),
                "an inverted index cannot answer an all-wildcard query");

  // Intersect: start from the first constrained dimension's postings and
  // verify every other constraint directly on the element.
  std::set<std::string> seen;
  for (const Posting& posting : found[terms[constrained.front()]]) {
    if (posting.dim != constrained.front()) continue;
    if (!seen.insert(posting.element.name).second) continue;
    bool all = true;
    for (const unsigned dim : constrained)
      all &= (token_text(posting.element.keys[dim]) == terms[dim]);
    if (all) {
      ++result.matches;
      result.elements.push_back(posting.element);
    }
  }
  return result;
}

InvertedIndexDht::LookupResult InvertedIndexDht::query_prefix(
    unsigned dim, const std::string& prefix,
    const std::vector<std::string>& vocabulary, Rng& rng) const {
  LookupResult result;
  const overlay::NodeId origin = ring_.random_node(rng);
  std::map<std::string, std::vector<Posting>> found;
  // The index has no notion of prefixes: every vocabulary word extending
  // the prefix costs one full posting lookup.
  std::set<std::string> seen;
  for (const std::string& word : vocabulary) {
    if (word.size() < prefix.size() || word.compare(0, prefix.size(), prefix))
      continue;
    lookup(word, origin, result, found);
    for (const Posting& posting : found[word]) {
      if (posting.dim != dim) continue;
      if (seen.insert(posting.element.name).second) {
        ++result.matches;
        result.elements.push_back(posting.element);
      }
    }
  }
  return result;
}

} // namespace squid::baselines
