#include "squid/baselines/flooding.hpp"

#include <deque>

#include "squid/util/require.hpp"

namespace squid::baselines {

FloodingNetwork::FloodingNetwork(std::size_t nodes, unsigned degree,
                                 Rng& rng) {
  SQUID_REQUIRE(nodes >= 3, "flooding network needs at least 3 nodes");
  SQUID_REQUIRE(degree >= 2, "average degree must be at least 2");
  adjacency_.resize(nodes);
  storage_.resize(nodes);
  // Ring backbone guarantees connectivity.
  for (std::uint32_t v = 0; v < nodes; ++v) {
    const auto next = static_cast<std::uint32_t>((v + 1) % nodes);
    adjacency_[v].push_back(next);
    adjacency_[next].push_back(v);
  }
  // Random chords up to the requested average degree.
  const std::size_t target_edges = nodes * degree / 2;
  std::size_t edges = nodes;
  while (edges < target_edges) {
    const auto a = static_cast<std::uint32_t>(rng.below(nodes));
    const auto b = static_cast<std::uint32_t>(rng.below(nodes));
    if (a == b) continue;
    bool duplicate = false;
    for (const auto n : adjacency_[a]) duplicate |= (n == b);
    if (duplicate) continue;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    ++edges;
  }
}

void FloodingNetwork::publish(const core::DataElement& element, Rng& rng) {
  storage_[rng.below(storage_.size())].push_back(element);
}

FloodingNetwork::FloodResult FloodingNetwork::query(
    const keyword::KeywordSpace& space, const keyword::Query& query,
    unsigned ttl, Rng& rng) const {
  FloodResult result;
  std::vector<bool> seen(adjacency_.size(), false);
  std::deque<std::pair<std::uint32_t, unsigned>> frontier; // node, ttl left
  const auto origin = static_cast<std::uint32_t>(rng.below(adjacency_.size()));
  frontier.emplace_back(origin, ttl);
  seen[origin] = true;
  while (!frontier.empty()) {
    const auto [node, left] = frontier.front();
    frontier.pop_front();
    ++result.nodes_visited;
    for (const auto& element : storage_[node]) {
      if (space.matches(query, element.keys)) {
        ++result.matches;
        result.elements.push_back(element);
      }
    }
    if (left == 0) continue;
    // Gnutella semantics: forward to every neighbor; duplicates are
    // detected by the receiver but the transmissions still happened.
    for (const auto neighbor : adjacency_[node]) {
      ++result.messages;
      if (!seen[neighbor]) {
        seen[neighbor] = true;
        frontier.emplace_back(neighbor, left - 1);
      }
    }
  }
  return result;
}

std::size_t FloodingNetwork::total_matches(const keyword::KeywordSpace& space,
                                           const keyword::Query& query) const {
  std::size_t total = 0;
  for (const auto& node : storage_)
    for (const auto& element : node)
      total += space.matches(query, element.keys);
  return total;
}

} // namespace squid::baselines
