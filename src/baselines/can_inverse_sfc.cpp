#include "squid/baselines/can_inverse_sfc.hpp"

#include <algorithm>
#include <set>

#include "squid/sfc/cursor.hpp"
#include "squid/util/require.hpp"

namespace squid::baselines {

CanInverseSfcIndex::CanInverseSfcIndex(unsigned dims, unsigned bits_per_dim,
                                       std::size_t nodes, double domain_lo,
                                       double domain_hi, Rng& rng)
    : curve_(dims, bits_per_dim), can_(dims, bits_per_dim), refiner_(curve_),
      domain_lo_(domain_lo), domain_hi_(domain_hi) {
  SQUID_REQUIRE(domain_hi > domain_lo, "attribute domain must be nonempty");
  SQUID_REQUIRE(curve_.index_bits() <= 63,
                "attribute resolution beyond 63 bits is not supported");
  can_.build(nodes, rng);
  storage_.resize(can_.size());
}

u128 CanInverseSfcIndex::index_of_value(double value) const {
  if (value <= domain_lo_) return 0;
  if (value >= domain_hi_) return curve_.max_index();
  const double unit = (value - domain_lo_) / (domain_hi_ - domain_lo_);
  const auto max64 = static_cast<double>(
      static_cast<std::uint64_t>(curve_.max_index()) + 1);
  auto index = static_cast<std::uint64_t>(unit * max64);
  if (index > static_cast<std::uint64_t>(curve_.max_index()))
    index = static_cast<std::uint64_t>(curve_.max_index());
  return index;
}

sfc::Point CanInverseSfcIndex::point_of_value(double value) const {
  return curve_.point_of(index_of_value(value));
}

void CanInverseSfcIndex::publish(const std::string& name, double value) {
  const u128 index = index_of_value(value);
  const auto owner = can_.owner_of(curve_.point_of(index));
  storage_[owner].push_back(Entry{index, name, value});
  ++elements_;
}

CanInverseSfcIndex::RangeResult CanInverseSfcIndex::range_query(
    double lo, double hi, Rng& rng) const {
  SQUID_REQUIRE(lo <= hi, "value range is empty");
  RangeResult result;
  const u128 ilo = index_of_value(lo);
  const u128 ihi = index_of_value(hi);

  std::set<overlay::CanOverlay::NodeIndex> scanned;
  std::set<overlay::CanOverlay::NodeIndex> routing;
  overlay::CanOverlay::NodeIndex at = can_.random_node(rng);
  routing.insert(at);

  const auto scan = [&](overlay::CanOverlay::NodeIndex node) {
    if (!scanned.insert(node).second) return;
    ++result.nodes_visited;
    for (const Entry& entry : storage_[node]) {
      if (entry.index >= ilo && entry.index <= ihi && entry.value >= lo &&
          entry.value <= hi) {
        ++result.matches;
        result.names.push_back(entry.name);
      }
    }
  };

  const auto move_to = [&](const sfc::Point& target) -> bool {
    const auto owner = can_.owner_of(target);
    if (owner == at) return true;
    const auto route = can_.route(at, target);
    if (!route.ok) return false;
    ++result.messages;
    routing.insert(route.path.begin(), route.path.end());
    at = route.dest;
    return true;
  };

  // Recursively visit the curve segment cell by cell, in curve order. A
  // cell wholly inside the current owner's zone is settled with one scan;
  // otherwise it splits (the distributed refinement of Andrzejak-Xu). The
  // cursor carries the cell geometry through the recursion — descending is
  // O(dims), and the representative point is read straight from the cursor
  // instead of re-running the root-depth inverse mapping per cell.
  const unsigned dims = curve_.dims();
  sfc::RefineCursor cursor(curve_);
  sfc::Point representative(dims);
  const u128 fanout = cursor.fanout();
  const auto visit_cell = [&](const auto& self) -> void {
    const unsigned level = cursor.level();
    const unsigned seg_bits = (curve_.bits_per_dim() - level) * dims;
    const u128 cell_lo = cursor.prefix() << seg_bits;
    const u128 cell_hi = cell_lo + low_mask(seg_bits);
    if (cell_hi < ilo || cell_lo > ihi) return;
    cursor.entry_point(representative.data());
    if (!move_to(representative)) return;
    const std::vector<sfc::Interval>& zone = can_.zone(at).box;
    bool inside = true;
    for (unsigned i = 0; i < dims; ++i)
      inside &= zone[i].lo <= cursor.cell_lo(i) &&
                cursor.cell_hi(i) <= zone[i].hi;
    if (inside) {
      scan(at);
      return;
    }
    SQUID_REQUIRE(level < curve_.bits_per_dim(),
                  "unit cell not contained in any zone");
    for (u128 child = 0; child < fanout; ++child) {
      cursor.descend(child);
      self(self);
      cursor.ascend();
    }
  };
  visit_cell(visit_cell);

  result.routing_nodes = routing.size();
  std::sort(result.names.begin(), result.names.end());
  return result;
}

} // namespace squid::baselines
