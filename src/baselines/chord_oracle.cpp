#include "squid/baselines/chord_oracle.hpp"

#include <set>

namespace squid::baselines {

OracleResult chord_oracle_query(const core::SquidSystem& sys,
                                const keyword::Query& query, Rng& rng) {
  OracleResult result;
  const sfc::Rect rect = sys.space().to_rect(query);
  const auto origin = sys.ring().random_node(rng);
  std::set<core::SquidSystem::NodeId> routing;
  std::set<core::SquidSystem::NodeId> data;
  routing.insert(origin);
  sys.for_each_key([&](u128 index, const sfc::Point& point,
                       const std::vector<core::DataElement>& elements) {
    if (!rect.contains(point)) return;
    ++result.matching_keys;
    result.matches += elements.size();
    const overlay::RouteResult r = sys.ring().route(origin, index);
    if (!r.ok) return;
    result.messages += 2; // the lookup and its response
    routing.insert(r.path.begin(), r.path.end());
    data.insert(r.dest);
  });
  result.routing_nodes = routing.size();
  result.data_nodes = data.size();
  return result;
}

} // namespace squid::baselines
