#include "squid/sim/engine.hpp"

#include "squid/util/require.hpp"

namespace squid::sim {

void Engine::schedule(Time delay, Action action) {
  SQUID_REQUIRE(static_cast<bool>(action), "cannot schedule an empty action");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(action)});
}

void Engine::schedule_periodic(Time period, std::function<bool()> action) {
  SQUID_REQUIRE(period > 0, "periodic events need a positive period");
  SQUID_REQUIRE(static_cast<bool>(action), "cannot schedule an empty action");
  schedule(period, [this, period, action = std::move(action)]() mutable {
    if (action()) schedule_periodic(period, std::move(action));
  });
}

std::size_t Engine::run(Time until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // Copy out before pop so the action may schedule further events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    event.action();
    ++executed;
  }
  if (now_ < until && until != ~Time{0}) now_ = until;
  return executed;
}

} // namespace squid::sim
