#include "squid/sim/engine.hpp"

#include <algorithm>

#include "squid/sim/fault.hpp"
#include "squid/util/require.hpp"

namespace squid::sim {

void Engine::schedule(Time delay, Action action) {
  SQUID_REQUIRE(static_cast<bool>(action), "cannot schedule an empty action");
  if (delay == 0) {
    ready_.push_back(Event{now_, next_seq_++, std::move(action)});
    return;
  }
  heap_.push_back(Event{now_ + delay, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

SendOutcome Engine::admit(overlay::NodeId from, overlay::NodeId to) {
  if (fault_ == nullptr) return {}; // clean delivery, zero randomness drawn
  const FaultInjector::Delivery verdict = fault_->decide(from, to);
  return SendOutcome{verdict.delivered, verdict.extra_delay,
                     verdict.duplicate};
}

bool Engine::send(Time delay, overlay::NodeId from, overlay::NodeId to,
                  Action action) {
  SQUID_REQUIRE(static_cast<bool>(action), "cannot send an empty message");
  const SendOutcome verdict = admit(from, to);
  if (!verdict.delivered) return false;
  if (verdict.duplicate) schedule(delay + verdict.extra_delay, action);
  schedule(delay + verdict.extra_delay, std::move(action));
  return true;
}

void Engine::schedule_periodic(Time period, std::function<bool()> action) {
  SQUID_REQUIRE(period > 0, "periodic events need a positive period");
  SQUID_REQUIRE(static_cast<bool>(action), "cannot schedule an empty action");
  schedule(period, [this, period, action = std::move(action)]() mutable {
    if (action()) schedule_periodic(period, std::move(action));
  });
}

bool Engine::step() {
  const bool has_ready = !ready_.empty();
  const bool has_heap = !heap_.empty();
  if (!has_ready && !has_heap) return false;
  // ready_ entries all sit at now_; a heap event goes first only when it
  // shares that timestamp with an earlier seq (scheduled with a positive
  // delay before the ready_ entry was posted — the FIFO tie-break).
  bool from_heap = has_heap;
  if (has_ready && has_heap) {
    const Event& h = heap_.front();
    const Event& r = ready_.front();
    from_heap = h.at < r.at || (h.at == r.at && h.seq < r.seq);
  }
  Event event;
  if (from_heap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    event = std::move(heap_.back());
    heap_.pop_back();
  } else {
    event = std::move(ready_.front());
    ready_.pop_front();
  }
  now_ = event.at;
  if (fault_ != nullptr) fault_->set_now(now_);
  event.action();
  return true;
}

std::size_t Engine::run(Time until) {
  std::size_t executed = 0;
  while (peek_time() <= until && step()) ++executed;
  if (now_ < until && until != kNever) now_ = until;
  if (fault_ != nullptr) fault_->set_now(now_);
  return executed;
}

} // namespace squid::sim
