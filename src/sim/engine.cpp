#include "squid/sim/engine.hpp"

#include "squid/sim/fault.hpp"
#include "squid/util/require.hpp"

namespace squid::sim {

void Engine::schedule(Time delay, Action action) {
  SQUID_REQUIRE(static_cast<bool>(action), "cannot schedule an empty action");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(action)});
}

SendOutcome Engine::admit(overlay::NodeId from, overlay::NodeId to) {
  if (fault_ == nullptr) return {}; // clean delivery, zero randomness drawn
  const FaultInjector::Delivery verdict = fault_->decide(from, to);
  return SendOutcome{verdict.delivered, verdict.extra_delay,
                     verdict.duplicate};
}

bool Engine::send(Time delay, overlay::NodeId from, overlay::NodeId to,
                  Action action) {
  SQUID_REQUIRE(static_cast<bool>(action), "cannot send an empty message");
  const SendOutcome verdict = admit(from, to);
  if (!verdict.delivered) return false;
  if (verdict.duplicate) schedule(delay + verdict.extra_delay, action);
  schedule(delay + verdict.extra_delay, std::move(action));
  return true;
}

void Engine::schedule_periodic(Time period, std::function<bool()> action) {
  SQUID_REQUIRE(period > 0, "periodic events need a positive period");
  SQUID_REQUIRE(static_cast<bool>(action), "cannot schedule an empty action");
  schedule(period, [this, period, action = std::move(action)]() mutable {
    if (action()) schedule_periodic(period, std::move(action));
  });
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // Copy out before pop so the action may schedule further events.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.at;
  if (fault_ != nullptr) fault_->set_now(now_);
  event.action();
  return true;
}

std::size_t Engine::run(Time until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    step();
    ++executed;
  }
  if (now_ < until && until != kNever) now_ = until;
  if (fault_ != nullptr) fault_->set_now(now_);
  return executed;
}

} // namespace squid::sim
