#include "squid/sim/fault.hpp"

#include "squid/obs/metrics.hpp"
#include "squid/util/require.hpp"

namespace squid::sim {

namespace {

/// Registry handles for the injector's fault tallies, resolved once.
struct FaultMetrics {
  obs::Counter& drops;
  obs::Counter& delays;
  obs::Counter& duplicates;
  obs::Counter& partition_drops;
  obs::Counter& crashes;
  obs::Counter& rejoins;
  obs::Counter& timeout_reports;

  static FaultMetrics& get() {
    auto& r = obs::Registry::global();
    static FaultMetrics m{r.counter("squid.fault.drops"),
                          r.counter("squid.fault.delays"),
                          r.counter("squid.fault.duplicates"),
                          r.counter("squid.fault.partition_drops"),
                          r.counter("squid.fault.crashes"),
                          r.counter("squid.fault.rejoins"),
                          r.counter("squid.fault.timeout_reports")};
    return m;
  }
};

} // namespace

FaultPlan fork_plan(const FaultPlan& base, std::uint64_t k) {
  FaultPlan fork = base;
  // splitmix64 over (seed, stream) decorrelates the forks; a plain xor
  // would leave stream 0 on the unmixed base seed.
  std::uint64_t mix = base.seed ^ (0x9e3779b97f4a7c15ull * (k + 1));
  fork.seed = splitmix64(mix);
  return fork;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  SQUID_REQUIRE(plan_.drop_probability >= 0 && plan_.drop_probability <= 1,
                "drop probability must be in [0,1]");
  SQUID_REQUIRE(plan_.delay_probability >= 0 && plan_.delay_probability <= 1,
                "delay probability must be in [0,1]");
  SQUID_REQUIRE(plan_.duplicate_probability >= 0 &&
                    plan_.duplicate_probability <= 1,
                "duplicate probability must be in [0,1]");
  for (const auto& p : plan_.partitions)
    SQUID_REQUIRE(p.start <= p.end, "partition window must not be inverted");
}

bool FaultInjector::draw(double p) {
  ++rng_draws_;
  return rng_.chance(p);
}

bool FaultInjector::partitioned(overlay::NodeId a,
                                overlay::NodeId b) const noexcept {
  for (const auto& p : plan_.partitions) {
    if (now_ < p.start || now_ >= p.end) continue;
    if ((a < p.pivot) != (b < p.pivot)) return true;
  }
  return false;
}

FaultInjector::Delivery FaultInjector::decide(overlay::NodeId from,
                                              overlay::NodeId to) {
  // Hazard order: partition (deterministic, no draw), then drop, then
  // delay, then duplicate. Each probability is consulted only when
  // nonzero, so the draw stream — and therefore the whole replay — is a
  // pure function of (seed, plan).
  Delivery d;
  if (!plan_.partitions.empty() && partitioned(from, to)) {
    d.delivered = false;
    ++partition_drops_;
    if constexpr (obs::kEnabled) FaultMetrics::get().partition_drops.add(1);
    return d;
  }
  if (plan_.drop_probability > 0 && draw(plan_.drop_probability)) {
    d.delivered = false;
    ++dropped_;
    if constexpr (obs::kEnabled) FaultMetrics::get().drops.add(1);
    return d;
  }
  if (plan_.delay_probability > 0 && draw(plan_.delay_probability)) {
    const Time span = plan_.max_delay > 0 ? plan_.max_delay : 1;
    ++rng_draws_;
    d.extra_delay = 1 + rng_.below(span);
    ++delayed_;
    if constexpr (obs::kEnabled) FaultMetrics::get().delays.add(1);
  }
  if (plan_.duplicate_probability > 0 && draw(plan_.duplicate_probability)) {
    d.duplicate = true;
    ++duplicated_;
    if constexpr (obs::kEnabled) FaultMetrics::get().duplicates.add(1);
  }
  return d;
}

void FaultInjector::schedule_events(
    Engine& engine, std::function<void(const FaultPlan::NodeEvent&)> apply) {
  SQUID_REQUIRE(static_cast<bool>(apply),
                "schedule_events needs an apply callback");
  for (const auto& event : plan_.events) {
    SQUID_REQUIRE(event.at >= engine.now(),
                  "fault plan event lies in the past");
    engine.schedule(event.at - engine.now(), [event, apply] {
      if constexpr (obs::kEnabled) {
        auto& m = FaultMetrics::get();
        (event.crash ? m.crashes : m.rejoins).add(event.count);
      }
      apply(event);
    });
  }
}

void FaultInjector::report_timeout(overlay::NodeId observer,
                                   overlay::NodeId dead) {
  reports_.emplace_back(observer, dead);
  if constexpr (obs::kEnabled) FaultMetrics::get().timeout_reports.add(1);
}

std::vector<std::pair<overlay::NodeId, overlay::NodeId>>
FaultInjector::take_timeout_reports() {
  return std::exchange(reports_, {});
}

} // namespace squid::sim
