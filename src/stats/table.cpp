#include "squid/stats/table.hpp"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "squid/util/require.hpp"

namespace squid {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SQUID_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  SQUID_REQUIRE(cells.size() == headers_.size(),
                "row width does not match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::cell(double value) {
  std::ostringstream os;
  os << std::setprecision(6) << value;
  return os.str();
}

std::string Table::cell(std::uint64_t value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

} // namespace squid
