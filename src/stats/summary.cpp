#include "squid/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "squid/util/require.hpp"

namespace squid {

Summary::Summary(std::vector<double> samples) : samples_(std::move(samples)) {}

double Summary::sum() const noexcept {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double Summary::min() const noexcept {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Summary::cv() const noexcept {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double Summary::max_over_mean() const noexcept {
  const double m = mean();
  return m == 0.0 ? 0.0 : max() / m;
}

double Summary::gini() const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double total = sum();
  if (total == 0.0) return 0.0;
  // Gini = (2 * sum_i i*x_i) / (n * total) - (n + 1) / n, with 1-based i over
  // ascending x.
  double weighted = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i)
    weighted += static_cast<double>(i + 1) * sorted[i];
  const double n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double Summary::percentile(double p) const {
  SQUID_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  // An empty sample has no order statistics; return the same defined value
  // the other aggregates (mean, min, max) use so report pipelines never
  // trip over an empty series.
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  SQUID_REQUIRE(buckets > 0, "histogram needs at least one bucket");
  SQUID_REQUIRE(hi > lo, "histogram range must be nonempty");
}

void Histogram::add(double value, std::uint64_t weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bucket = value <= lo_ ? 0
              : static_cast<std::size_t>((value - lo_) / width);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  counts_[bucket] += weight;
}

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t acc = 0;
  for (auto c : counts_) acc += c;
  return acc;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  SQUID_REQUIRE(bucket < counts_.size(), "bucket out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

} // namespace squid
