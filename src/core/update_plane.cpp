// The routed update plane (core/update.hpp, DESIGN.md 4j).
//
// Shape of a run, in every mode:
//
//   plan (per op, submit order) ----> deliver (mode-specific clock) ----> commit
//   route origin -> owner,            lockstep: per-op clock             global
//   judge the frame leg under         vtime: one shared engine           submit
//   a per-op forked injector          parallel: owner-shard threads      order
//
// Planning is a pure function of (system state, op, seq, plan): routing
// reads const ring state, and the frame leg is judged by a PRIVATE engine
// at time 0 with an injector forked by seq — so the delivered set is
// identical in all three modes, and parallel shard threads touch no shared
// mutable state. Commits happen after every clock has drained, on the
// caller's thread, in global submit order, through SquidSystem::publish /
// unpublish — which is where replica invalidation, telemetry, and the
// registry counters fire. Mode changes timing; it can never change state.

#include "squid/core/update.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "squid/core/parallel.hpp"
#include "squid/core/serialize.hpp"
#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/require.hpp"

namespace squid::core {

namespace {

void bump(const char* name, std::uint64_t n = 1) {
  if constexpr (obs::kEnabled) {
    obs::Registry::global().counter(name).add(n);
  } else {
    (void)name;
    (void)n;
  }
}

/// One op, planned: the wire verdict plus the arrival tick its delivery
/// lands at. `result` carries the cost accounting (hops/messages/retries/
/// bytes) and the delivered flag; commit later fills applied/completed_at.
struct PlannedOp {
  UpdateResult result;
  sim::Time arrival = 0;
};

/// Plan one op: route its key from the origin, then pay for the frame's
/// transmission leg under this op's forked injector — the same
/// 1+send_retries admit loop with exponential backoff that query legs use
/// (QueryExec::attempt_leg), judged at virtual time 0 so the verdict stream
/// depends only on (plan, seq), never on the mode's clock.
PlannedOp plan_op(const SquidSystem& sys, const UpdateOp& op,
                  std::uint64_t seq, const sim::FaultPlan* faults) {
  PlannedOp out;
  const u128 index = sys.curve().index_of(sys.space().encode(op.element.keys));
  const overlay::RouteResult route = sys.ring().route(op.origin, index);
  out.result.hops = route.hops();
  if (!route.ok) return out; // unroutable: no frame ever transmitted

  // The frame the owner would receive; its serialized size prices every
  // transmission below (resends and duplicates ship the whole frame again).
  msg::Message frame;
  if (op.kind == UpdateOp::Kind::kPublish) {
    msg::PublishRequest p;
    p.seq = seq;
    p.origin = op.origin;
    p.to = route.dest;
    p.element = op.element;
    frame = std::move(p);
  } else {
    msg::RetractRequest r;
    r.seq = seq;
    r.origin = op.origin;
    r.to = route.dest;
    r.element = op.element;
    frame = std::move(r);
  }
  const std::size_t frame_bytes = wire_size(frame);

  bool delivered = true;
  sim::Time penalty = 0;
  std::size_t resends = 0;
  bool duplicate = false;
  if (faults != nullptr) {
    sim::FaultInjector injector(sim::fork_plan(*faults, seq));
    sim::Engine eng(0);
    eng.set_fault_injector(&injector);
    delivered = false;
    const SquidConfig& cfg = sys.config();
    const unsigned attempts = 1 + cfg.send_retries;
    for (unsigned a = 0; a < attempts; ++a) {
      const sim::SendOutcome verdict = eng.admit(op.origin, route.dest);
      if (verdict.delivered) {
        penalty += verdict.extra_delay;
        duplicate = verdict.duplicate;
        delivered = true;
        break;
      }
      if (a + 1 < attempts) {
        penalty += cfg.retry_backoff << a;
        ++resends;
      }
    }
    if (!delivered) injector.report_timeout(op.origin, route.dest);
  }
  out.result.delivered = delivered;
  out.result.retries = resends;
  out.result.messages = 1 + resends + (duplicate ? 1 : 0);
  out.result.bytes = frame_bytes * out.result.messages;
  out.arrival = static_cast<sim::Time>(route.hops()) + penalty;
  return out;
}

} // namespace

UpdateRun apply_updates(SquidSystem& sys, const std::vector<UpdateOp>& ops,
                        const UpdateOptions& opts) {
  UpdateRun run;
  run.results.resize(ops.size());

  std::vector<PlannedOp> planned(ops.size());
  switch (opts.mode) {
  case DeliveryMode::kLockstep: {
    // Each op drains its own delay-0 clock: completed_at is simply the
    // op's arrival tick.
    for (std::size_t seq = 0; seq < ops.size(); ++seq) {
      planned[seq] = plan_op(sys, ops[seq], seq, opts.faults);
      planned[seq].result.completed_at = planned[seq].arrival;
    }
    break;
  }
  case DeliveryMode::kVirtualTime: {
    // One shared clock: every arrival is scheduled at its tick and the
    // engine drains them in (time, FIFO) order, so completion stamps come
    // off the honest interleaved timeline.
    sim::Engine engine(0);
    for (std::size_t seq = 0; seq < ops.size(); ++seq) {
      planned[seq] = plan_op(sys, ops[seq], seq, opts.faults);
      PlannedOp& p = planned[seq];
      if (p.result.delivered)
        engine.schedule(p.arrival,
                        [&engine, &p]() { p.result.completed_at = engine.now(); });
    }
    engine.run();
    break;
  }
  case DeliveryMode::kParallel: {
    // Ops partition across shard threads by the OWNER's home shard — the
    // same shard_of_node map query scans hand off with — and each shard
    // plans + delivers its subsequence in submit order on a private
    // engine. Planning only reads const system state and per-op forked
    // injectors, and every result lands in the op's own slot, so threads
    // share nothing mutable; the commit below re-serializes in global
    // submit order regardless of how shards interleaved.
    const unsigned shards = std::max(1u, opts.shards);
    std::vector<std::vector<std::size_t>> by_shard(shards);
    for (std::size_t seq = 0; seq < ops.size(); ++seq) {
      const u128 index =
          sys.curve().index_of(sys.space().encode(ops[seq].element.keys));
      by_shard[shard_of_node(sys.owner_of(index), shards)].push_back(seq);
    }
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
      workers.emplace_back([&sys, &ops, &opts, &planned,
                            mine = &by_shard[s]]() {
        sim::Engine engine(0);
        for (const std::size_t seq : *mine) {
          planned[seq] = plan_op(sys, ops[seq], seq, opts.faults);
          PlannedOp& p = planned[seq];
          if (p.result.delivered)
            engine.schedule(p.arrival, [&engine, &p]() {
              p.result.completed_at = engine.now();
            });
        }
        engine.run();
      });
    }
    for (std::thread& w : workers) w.join();
    break;
  }
  }

  // Commit: the post-drain safe point. Delivered frames apply in GLOBAL
  // submit order through publish/unpublish — replica invalidation,
  // telemetry, and counters all fire here, on the caller's thread.
  std::size_t retracts = 0;
  for (std::size_t seq = 0; seq < ops.size(); ++seq) {
    UpdateResult& r = run.results[seq];
    r = planned[seq].result;
    if (r.delivered) {
      if (ops[seq].kind == UpdateOp::Kind::kPublish) {
        sys.publish(ops[seq].element);
        r.applied = true;
      } else {
        r.applied = sys.unpublish(ops[seq].element);
        ++retracts;
      }
    }
    run.delivered += r.delivered ? 1 : 0;
    run.applied += r.applied ? 1 : 0;
    run.lost += r.delivered ? 0 : 1;
    run.messages += r.messages;
    run.retries += r.retries;
    run.bytes += r.bytes;
    run.makespan = std::max(run.makespan, r.completed_at);
  }
  if (retracts > 0) bump("squid.system.retracts", retracts);
  return run;
}

UpdateResult publish_update(SquidSystem& sys, const DataElement& element,
                            overlay::NodeId origin) {
  return apply_updates(sys, {UpdateOp::publish(element, origin)}).results[0];
}

UpdateResult retract_update(SquidSystem& sys, const DataElement& element,
                            overlay::NodeId origin) {
  return apply_updates(sys, {UpdateOp::retract(element, origin)}).results[0];
}

} // namespace squid::core
