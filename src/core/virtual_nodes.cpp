#include "squid/core/virtual_nodes.hpp"

#include <algorithm>

#include "squid/util/require.hpp"

namespace squid::core {

VirtualNodeManager::VirtualNodeManager(SquidSystem& sys,
                                       std::size_t physical_peers,
                                       unsigned virtuals_per_peer, Rng& rng)
    : sys_(sys), physical_count_(physical_peers) {
  SQUID_REQUIRE(physical_peers >= 1, "need at least one physical peer");
  SQUID_REQUIRE(virtuals_per_peer >= 1, "need at least one virtual node");
  SQUID_REQUIRE(sys.ring().size() == 0,
                "VirtualNodeManager must create the network itself");
  sys_.build_network(physical_peers * virtuals_per_peer, rng);
  std::size_t peer = 0;
  for (const auto id : sys_.ring().node_ids()) {
    host_of_[id] = peer;
    peer = (peer + 1) % physical_peers;
  }
}

std::size_t VirtualNodeManager::load_of_virtual(SquidSystem::NodeId id) const {
  return sys_.load_of(id);
}

std::vector<std::size_t> VirtualNodeManager::physical_loads() const {
  std::vector<std::size_t> loads(physical_count_, 0);
  for (const auto& [id, load] : sys_.node_loads()) {
    const auto it = host_of_.find(id);
    SQUID_REQUIRE(it != host_of_.end(), "virtual node without a host");
    loads[it->second] += load;
  }
  return loads;
}

std::size_t VirtualNodeManager::host_of(SquidSystem::NodeId id) const {
  const auto it = host_of_.find(id);
  SQUID_REQUIRE(it != host_of_.end(), "host_of: not a managed virtual node");
  return it->second;
}

std::size_t VirtualNodeManager::sample_cold_peer(
    const std::vector<std::size_t>& loads, unsigned probes, Rng& rng) const {
  std::size_t target = rng.below(physical_count_);
  for (unsigned probe = 0; probe < probes; ++probe) {
    const std::size_t candidate = rng.below(physical_count_);
    if (loads[candidate] < loads[target]) target = candidate;
  }
  return target;
}

std::optional<SquidSystem::NodeId> VirtualNodeManager::split_virtual(
    SquidSystem::NodeId hot, unsigned probes, Rng& rng) {
  SQUID_REQUIRE(host_of_.count(hot) != 0,
                "split_virtual: not a managed virtual node");
  const auto split = sys_.median_split_id(hot);
  if (!split) return std::nullopt;
  const auto loads = physical_loads();
  const std::size_t target = sample_cold_peer(loads, probes, rng);
  // The split id takes the first half of `hot`'s keys as a new virtual
  // node on the chosen peer.
  sys_.add_node_at(*split);
  host_of_[*split] = target;
  ++splits_;
  return split;
}

bool VirtualNodeManager::migrate_heaviest(std::size_t peer, unsigned probes,
                                          Rng& rng) {
  SQUID_REQUIRE(peer < physical_count_, "migrate_heaviest: no such peer");
  const auto loads = physical_loads();
  // Heaviest virtual node hosted by `peer`.
  SquidSystem::NodeId heaviest = 0;
  std::size_t heaviest_load = 0;
  for (const auto& [id, host] : host_of_) {
    if (host != peer) continue;
    const std::size_t load = load_of_virtual(id);
    if (load >= heaviest_load) {
      heaviest = id;
      heaviest_load = load;
    }
  }
  if (heaviest_load == 0) return false;
  const std::size_t target = sample_cold_peer(loads, probes, rng);
  if (loads[target] + heaviest_load >= loads[peer]) return false;
  host_of_[heaviest] = target;
  ++migrations_;
  return true;
}

std::size_t VirtualNodeManager::balance_round(double split_threshold,
                                              double migrate_threshold,
                                              Rng& rng) {
  SQUID_REQUIRE(split_threshold > 1.0 && migrate_threshold > 1.0,
                "thresholds must exceed 1");
  std::size_t actions = 0;

  // Phase 1 — split hot virtual nodes: a virtual node whose load exceeds
  // split_threshold times the average virtual load splits at its median
  // key; the new half is hosted by the least-loaded peer of a small random
  // sample ("neighbors or fingers" in the paper: a constant-size view).
  const double avg_virtual =
      static_cast<double>(sys_.key_count()) /
      static_cast<double>(std::max<std::size_t>(1, virtual_count()));
  std::vector<SquidSystem::NodeId> hot;
  for (const auto& [id, host] : host_of_) {
    if (static_cast<double>(load_of_virtual(id)) >
        split_threshold * std::max(1.0, avg_virtual)) {
      hot.push_back(id);
    }
  }
  for (const auto id : hot)
    if (split_virtual(id, 4, rng)) ++actions;

  // Phase 2 — migrate from overloaded peers: move the heaviest virtual node
  // of any peer loaded beyond migrate_threshold x average to the
  // least-loaded sampled peer. Only the hosting assignment changes.
  const auto loads = physical_loads();
  const double avg_physical =
      static_cast<double>(sys_.key_count()) /
      static_cast<double>(physical_count_);
  for (std::size_t peer = 0; peer < physical_count_; ++peer) {
    if (static_cast<double>(loads[peer]) <=
        migrate_threshold * std::max(1.0, avg_physical)) {
      continue;
    }
    if (migrate_heaviest(peer, 4, rng)) ++actions;
  }
  return actions;
}

} // namespace squid::core
