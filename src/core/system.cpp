#include "squid/core/system.hpp"

#include <algorithm>

#include "squid/obs/metrics.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/require.hpp"

namespace squid::core {

namespace {

/// One relaxed-atomic bump on a pre-resolved registry handle; dead code
/// with the obs layer compiled out.
void bump(const char* name, std::uint64_t n = 1) {
  if constexpr (obs::kEnabled) {
    obs::Registry::global().counter(name).add(n);
  } else {
    (void)name;
    (void)n;
  }
}

} // namespace

SquidSystem::SquidSystem(keyword::KeywordSpace space, SquidConfig config)
    : space_(std::move(space)), config_(std::move(config)),
      curve_(sfc::make_curve(config_.curve, space_.dims(),
                             space_.bits_per_dim())),
      refiner_(*curve_),
      ring_(curve_->index_bits(), config_.successor_list, config_.finger_base),
      store_(config_.store_delta_cap) {
  set_tracing(config_.trace_queries);
}

u128 SquidSystem::index_of_element(const DataElement& element) const {
  return curve_->index_of(space_.encode(element.keys));
}

void SquidSystem::build_network(std::size_t count, Rng& rng) {
  ring_.build(count, rng);
}

SquidSystem::NodeId SquidSystem::join_node(Rng& rng) {
  SQUID_REQUIRE(ring_.size() > 0, "join_node needs a bootstrapped network");
  const unsigned samples = std::max(1u, config_.join_samples);
  // Paper 3.5, load balancing at node join: generate several identifiers,
  // send join probes, let the logical successors report their loads, and
  // keep the identifier whose successor is the most loaded — that places
  // the newcomer in the most loaded part of the network, where it absorbs
  // the keys of the sub-arc it takes over.
  NodeId best = ring_.random_free_id(rng);
  std::size_t best_load = load_of(ring_.successor_of(best));
  for (unsigned probe = 1; probe < samples; ++probe) {
    const NodeId candidate = ring_.random_free_id(rng);
    const std::size_t successor_load = load_of(ring_.successor_of(candidate));
    if (successor_load > best_load) {
      best = candidate;
      best_load = successor_load;
    }
  }
  // Join so the most loaded sampled successor sheds half its keys: it knows
  // its own key set, so it can report the median key position along with its
  // load (a mild strengthening of the paper's "use the identifier that will
  // place it in the most loaded part" — same probes, same message cost, but
  // the split lands inside the dense region instead of at a random point of
  // the arc; see DESIGN.md).
  if (samples > 1) {
    if (const auto median = median_split_id(ring_.successor_of(best))) {
      best = *median;
    }
  }
  ring_.add_node_exact(best);
  bump("squid.balance.sampled_joins");
  return best;
}

void SquidSystem::leave_node(NodeId id) { ring_.leave(id); }

void SquidSystem::fail_node(NodeId id) { ring_.fail(id); }

std::size_t SquidSystem::process_timeouts() {
  if (fault_ == nullptr) return 0;
  const auto reports = fault_->take_timeout_reports();
  for (const auto& [observer, dead] : reports)
    ring_.note_timeout(observer, dead);
  return reports.size();
}

namespace {

/// The publish contract's slot write (DESIGN.md 4j): element identity is
/// (key, name) — an existing element with this name is replaced in place
/// (last write wins, arrival position preserved); otherwise the element
/// appends. Returns true when the element is NEW (element_count grows).
bool place_element(std::vector<DataElement>& slot, const DataElement& element) {
  for (DataElement& stored : slot) {
    if (stored.name == element.name) {
      stored = element;
      return false;
    }
  }
  slot.push_back(element);
  return true;
}

} // namespace

void SquidSystem::publish(const DataElement& element) {
  const u128 index = index_of_element(element);
  const std::uint64_t merges_before = store_.stats().merges;
  StoredKey& key = store_.obtain(index);
  if (key.elements.empty()) key.point = space_.encode(element.keys);
  if (place_element(key.elements, element)) ++element_count_;
  if (store_.stats().merges != merges_before)
    bump("squid.store.merges", store_.stats().merges - merges_before);
  if (!replica_cache_.empty()) invalidate_replicas(index);
  if constexpr (obs::kEnabled) {
    static obs::Counter& publishes =
        obs::Registry::global().counter("squid.system.publishes");
    publishes.add(1);
    if (telemetry_ != nullptr)
      telemetry_->record_now(owner_of(index), obs::LoadKind::kPublish, 1);
  }
}

void SquidSystem::publish_batch(const std::vector<DataElement>& elements) {
  if (elements.empty()) return;
  const std::uint64_t merges_before = store_.stats().merges;
  // Arrival order within a key must match sequential publish, so sort the
  // batch by (index, arrival position).
  std::vector<std::pair<u128, std::size_t>> order;
  order.reserve(elements.size());
  for (std::size_t i = 0; i < elements.size(); ++i)
    order.emplace_back(index_of_element(elements[i]), i);
  std::sort(order.begin(), order.end());

  std::size_t added = 0; // elements that were NEW, not last-write-wins hits
  store_.bulk_update([&](std::vector<u128>& key_index,
                         std::vector<StoredKey>& key_data) {
    std::vector<u128> merged_index;
    std::vector<StoredKey> merged_data;
    merged_index.reserve(key_index.size() + elements.size());
    merged_data.reserve(key_index.size() + elements.size());

    std::size_t old = 0; // cursor over the existing store
    std::size_t i = 0;   // cursor over the sorted batch
    while (i < order.size()) {
      const u128 index = order[i].first;
      while (old < key_index.size() && key_index[old] < index) {
        merged_index.push_back(key_index[old]);
        merged_data.push_back(std::move(key_data[old]));
        ++old;
      }
      if (old < key_index.size() && key_index[old] == index) {
        merged_index.push_back(key_index[old]);
        merged_data.push_back(std::move(key_data[old]));
        ++old;
      } else {
        StoredKey key;
        key.point = space_.encode(elements[order[i].second].keys);
        merged_index.push_back(index);
        merged_data.push_back(std::move(key));
      }
      for (; i < order.size() && order[i].first == index; ++i)
        if (place_element(merged_data.back().elements,
                          elements[order[i].second]))
          ++added;
    }
    while (old < key_index.size()) {
      merged_index.push_back(key_index[old]);
      merged_data.push_back(std::move(key_data[old]));
      ++old;
    }
    key_index = std::move(merged_index);
    key_data = std::move(merged_data);
  });
  element_count_ += added;
  if (store_.stats().merges != merges_before)
    bump("squid.store.merges", store_.stats().merges - merges_before);
  if (!replica_cache_.empty()) {
    std::vector<u128> touched;
    touched.reserve(order.size());
    for (const auto& [index, pos] : order) touched.push_back(index);
    invalidate_replicas_batch(touched); // already index-sorted
  }
  bump("squid.system.publishes", elements.size());
  if constexpr (obs::kEnabled) {
    if (telemetry_ != nullptr) {
      // `order` is index-sorted, so elements landing on one owner are
      // consecutive: run-length the owner lookups and record one event per
      // (owner, run) instead of per element.
      NodeId owner = 0;
      std::uint64_t run = 0;
      for (const auto& entry : order) {
        const NodeId o = owner_of(entry.first);
        if (run > 0 && o == owner) {
          ++run;
          continue;
        }
        if (run > 0)
          telemetry_->record_now(owner, obs::LoadKind::kPublish, run);
        owner = o;
        run = 1;
      }
      if (run > 0) telemetry_->record_now(owner, obs::LoadKind::kPublish, run);
    }
  }
}

bool SquidSystem::unpublish(const DataElement& element) {
  const u128 index = index_of_element(element);
  StoredKey* key = store_.find(index);
  if (key == nullptr) return false;
  auto& elements = key->elements;
  const auto found = std::find(elements.begin(), elements.end(), element);
  if (found == elements.end()) return false;
  elements.erase(found);
  --element_count_;
  if (elements.empty()) {
    // The key vanishes with its last element: tombstoned in the tiered
    // store, O(log K + |delta|) instead of the flat store's O(K) erase.
    const std::uint64_t merges_before = store_.stats().merges;
    store_.erase(index);
    if (store_.stats().merges != merges_before)
      bump("squid.store.merges", store_.stats().merges - merges_before);
  }
  if (!replica_cache_.empty()) invalidate_replicas(index);
  bump("squid.system.unpublishes");
  if constexpr (obs::kEnabled) {
    if (telemetry_ != nullptr)
      telemetry_->record_now(owner_of(index), obs::LoadKind::kRetract, 1);
  }
  return true;
}

overlay::RouteResult SquidSystem::retract_routed(const DataElement& element,
                                                 NodeId origin, bool* removed) {
  const overlay::RouteResult route =
      ring_.route(origin, index_of_element(element));
  const bool did = route.ok && unpublish(element);
  if (removed != nullptr) *removed = did;
  return route;
}

// --- Hot-cluster replica cache (docs/LOAD_BALANCING.md) ---------------------

std::uint64_t SquidSystem::install_replica(unsigned level, u128 prefix,
                                           std::vector<NodeId> replicas) {
  SQUID_REQUIRE(!replicas.empty(), "install_replica: empty replica set");
  for (const NodeId r : replicas)
    SQUID_REQUIRE(ring_.contains(r), "install_replica: replica not a live peer");
  ReplicaEntry entry;
  entry.level = level;
  entry.prefix = prefix;
  entry.segment = refiner_.segment_of(sfc::ClusterNode{prefix, level});
  entry.replicas = std::move(replicas);
  snapshot_replica(entry);
  const std::uint64_t id = next_replica_id_++;
  entry.id = id;
  replica_cache_.emplace(id, std::move(entry));
  bump("squid.balance.replica.installs");
  return id;
}

bool SquidSystem::refresh_replica(std::uint64_t id) {
  const auto it = replica_cache_.find(id);
  if (it == replica_cache_.end()) return false;
  ReplicaEntry& entry = it->second;
  snapshot_replica(entry);
  entry.valid = true;
  ++entry.version;
  replica_counters_->refreshes.fetch_add(1, std::memory_order_relaxed);
  bump("squid.balance.replica.refreshes");
  return true;
}

bool SquidSystem::drop_replica(std::uint64_t id) {
  return replica_cache_.erase(id) > 0;
}

bool SquidSystem::replica_valid(std::uint64_t id) const {
  const auto it = replica_cache_.find(id);
  return it != replica_cache_.end() && it->second.valid;
}

std::uint64_t SquidSystem::replica_version(std::uint64_t id) const {
  const auto it = replica_cache_.find(id);
  return it != replica_cache_.end() ? it->second.version : 0;
}

std::uint64_t SquidSystem::replica_serves(std::uint64_t id) const {
  const auto it = replica_cache_.find(id);
  return it != replica_cache_.end()
             ? it->second.serves->load(std::memory_order_relaxed)
             : 0;
}

SquidSystem::ReplicaCacheStats SquidSystem::replica_stats() const {
  ReplicaCacheStats stats;
  stats.serves = replica_counters_->serves.load(std::memory_order_relaxed);
  stats.stale_skips =
      replica_counters_->stale_skips.load(std::memory_order_relaxed);
  stats.invalidations =
      replica_counters_->invalidations.load(std::memory_order_relaxed);
  stats.refreshes =
      replica_counters_->refreshes.load(std::memory_order_relaxed);
  return stats;
}

void SquidSystem::snapshot_replica(ReplicaEntry& entry) {
  // The snapshot is a flat, merged copy of the live slots in the segment —
  // replica scans sweep plain arrays regardless of the live store's tiers.
  store_.snapshot_range(entry.segment.lo, entry.segment.hi,
                        entry.snapshot_index, entry.snapshot_data);
}

const SquidSystem::ReplicaEntry* SquidSystem::replica_serving(
    const sfc::ClusterNode& cluster) const {
  const ReplicaEntry* best = nullptr;
  bool stale_only = false;
  const unsigned dims = curve_->dims();
  for (const auto& [id, entry] : replica_cache_) {
    if (cluster.level < entry.level) continue;
    // `cluster` descends from the entry's cluster iff dropping the extra
    // levels of its prefix reproduces the entry's prefix. A shift of >= 128
    // bits means the entry is so shallow it covers everything it matches.
    const unsigned shift = (cluster.level - entry.level) * dims;
    const u128 ancestor = shift >= 128 ? 0 : cluster.prefix >> shift;
    if (ancestor != entry.prefix) continue;
    if (!entry.valid) {
      stale_only = true;
      continue;
    }
    if (best == nullptr || entry.level > best->level) best = &entry;
  }
  if (best == nullptr && stale_only)
    replica_counters_->stale_skips.fetch_add(1, std::memory_order_relaxed);
  return best;
}

void SquidSystem::invalidate_replicas(u128 index) {
  for (auto& [id, entry] : replica_cache_) {
    if (!entry.valid || !entry.segment.contains(index)) continue;
    entry.valid = false;
    ++entry.version;
    replica_counters_->invalidations.fetch_add(1, std::memory_order_relaxed);
    bump("squid.balance.replica.invalidations");
  }
}

void SquidSystem::invalidate_replicas_batch(const std::vector<u128>& touched) {
  for (auto& [id, entry] : replica_cache_) {
    if (!entry.valid) continue;
    const auto hit = std::lower_bound(touched.begin(), touched.end(),
                                      entry.segment.lo);
    if (hit == touched.end() || *hit > entry.segment.hi) continue;
    entry.valid = false;
    ++entry.version;
    replica_counters_->invalidations.fetch_add(1, std::memory_order_relaxed);
    bump("squid.balance.replica.invalidations");
  }
}

overlay::RouteResult SquidSystem::publish_routed(const DataElement& element,
                                                 NodeId origin) {
  const overlay::RouteResult route =
      ring_.route(origin, index_of_element(element));
  if (route.ok) publish(element);
  return route;
}

std::size_t SquidSystem::key_rank_after(u128 v) const {
  return store_.rank_after(v);
}

std::size_t SquidSystem::keys_in_range(NodeId from, NodeId to) const {
  // Stored keys with index in the clockwise interval (from, to].
  if (store_.empty()) return 0;
  if (from < to) return key_rank_after(to) - key_rank_after(from);
  // Wrapped (or from == to: the whole ring).
  return (store_.size() - key_rank_after(from)) + key_rank_after(to);
}

std::optional<SquidSystem::NodeId> SquidSystem::median_split_id(
    NodeId s) const {
  if (ring_.size() < 1) return std::nullopt;
  const NodeId pred = ring_.size() == 1 ? s : ring_.predecessor_of(s);
  const std::size_t count =
      ring_.size() == 1 ? store_.size() : keys_in_range(pred, s);
  if (count < 2) return std::nullopt;
  // The median of the count keys in (pred, s]: a rank query plus one order
  // statistic, where the map walked the interval key by key.
  const std::size_t start = key_rank_after(pred); // first key > pred
  const NodeId boundary = store_.kth((start + count / 2 - 1) % store_.size());
  if (boundary == pred || boundary == s || ring_.contains(boundary))
    return std::nullopt;
  return boundary;
}

std::size_t SquidSystem::load_of(NodeId id) const {
  if (ring_.size() == 1) return store_.size();
  return keys_in_range(ring_.predecessor_of(id), id);
}

std::size_t SquidSystem::absorbed_load(NodeId candidate) const {
  if (ring_.size() == 0) return store_.size();
  return keys_in_range(ring_.predecessor_of(candidate), candidate);
}

std::vector<std::pair<SquidSystem::NodeId, std::size_t>>
SquidSystem::node_loads() const {
  std::vector<std::pair<NodeId, std::size_t>> loads;
  const auto ids = ring_.node_ids();
  loads.reserve(ids.size());
  for (const NodeId id : ids) loads.emplace_back(id, 0);
  if (loads.empty()) return loads;
  // Single sweep over the store: each key belongs to its successor node.
  auto it = loads.begin();
  std::size_t wrapped = 0; // keys past the last node wrap to the first
  store_.for_each([&](u128 index, const StoredKey&) {
    while (it != loads.end() && it->first < index) ++it;
    if (it == loads.end()) {
      ++wrapped;
    } else {
      ++it->second;
    }
  });
  loads.front().second += wrapped;
  return loads;
}

std::size_t SquidSystem::runtime_balance_sweep(double threshold) {
  SQUID_REQUIRE(threshold >= 1.0, "imbalance threshold must be >= 1");
  if (ring_.size() < 3 || store_.empty()) return 0;
  std::size_t moves = 0;
  // The k-th key clockwise after `after` (k >= 1), wrapping.
  const auto kth_key_after = [this](NodeId after, std::size_t k) {
    return store_.kth((key_rank_after(after) + k - 1) % store_.size());
  };
  // Walk a snapshot of the ring; each step may move the *predecessor* of
  // the node under consideration, which never invalidates later snapshot
  // entries (only ids between predecessor-of-predecessor and node change).
  for (const NodeId id : ring_.node_ids()) {
    if (!ring_.contains(id)) continue; // moved away earlier in this sweep
    const NodeId pred = ring_.predecessor_of(id);
    const NodeId pred2 = ring_.predecessor_of(pred);
    if (pred == id || pred2 == pred) continue; // degenerate tiny ring
    const std::size_t load_self = keys_in_range(pred, id);
    const std::size_t load_pred = keys_in_range(pred2, pred);

    if (static_cast<double>(load_self) >
        threshold * static_cast<double>(std::max<std::size_t>(load_pred, 1))) {
      // This node is overloaded: the predecessor slides clockwise to absorb
      // the first half of the surplus (paper 3.5: "the most loaded nodes
      // give a part of their load to their neighbors").
      const std::size_t shed = (load_self - load_pred) / 2;
      if (shed == 0) continue;
      // The shed-th key in (pred, id].
      const NodeId boundary = kth_key_after(pred, shed);
      if (boundary == pred || ring_.contains(boundary)) continue;
      ring_.fail(pred); // the move is leave+rejoin in a real deployment
      ring_.add_node_exact(boundary);
      ++moves;
      ++balance_moves_;
      bump("squid.balance.moves");
    } else if (static_cast<double>(load_pred) >
               threshold *
                   static_cast<double>(std::max<std::size_t>(load_self, 1))) {
      // The predecessor is overloaded: it slides counter-clockwise, shedding
      // its top keys to this node.
      const std::size_t shed = (load_pred - load_self) / 2;
      if (shed == 0) continue;
      // New boundary: the key `shed` positions before pred in (pred2, pred].
      const std::size_t keep = load_pred - shed;
      if (keep == 0) continue; // would empty the predecessor entirely
      const NodeId boundary = kth_key_after(pred2, keep);
      if (boundary == pred || ring_.contains(boundary)) continue;
      ring_.fail(pred);
      ring_.add_node_exact(boundary);
      ++moves;
      ++balance_moves_;
      bump("squid.balance.moves");
    }
  }
  bump("squid.balance.sweeps");
  return moves;
}

} // namespace squid::core
