#include "squid/core/system.hpp"

#include <algorithm>

#include "squid/util/require.hpp"

namespace squid::core {

SquidSystem::SquidSystem(keyword::KeywordSpace space, SquidConfig config)
    : space_(std::move(space)), config_(std::move(config)),
      curve_(sfc::make_curve(config_.curve, space_.dims(),
                             space_.bits_per_dim())),
      refiner_(*curve_),
      ring_(curve_->index_bits(), config_.successor_list, config_.finger_base) {}

u128 SquidSystem::index_of_element(const DataElement& element) const {
  return curve_->index_of(space_.encode(element.keys));
}

void SquidSystem::build_network(std::size_t count, Rng& rng) {
  ring_.build(count, rng);
}

SquidSystem::NodeId SquidSystem::join_node(Rng& rng) {
  SQUID_REQUIRE(ring_.size() > 0, "join_node needs a bootstrapped network");
  const unsigned samples = std::max(1u, config_.join_samples);
  // Paper 3.5, load balancing at node join: generate several identifiers,
  // send join probes, let the logical successors report their loads, and
  // keep the identifier whose successor is the most loaded — that places
  // the newcomer in the most loaded part of the network, where it absorbs
  // the keys of the sub-arc it takes over.
  NodeId best = ring_.random_free_id(rng);
  std::size_t best_load = load_of(ring_.successor_of(best));
  for (unsigned probe = 1; probe < samples; ++probe) {
    const NodeId candidate = ring_.random_free_id(rng);
    const std::size_t successor_load = load_of(ring_.successor_of(candidate));
    if (successor_load > best_load) {
      best = candidate;
      best_load = successor_load;
    }
  }
  // Join so the most loaded sampled successor sheds half its keys: it knows
  // its own key set, so it can report the median key position along with its
  // load (a mild strengthening of the paper's "use the identifier that will
  // place it in the most loaded part" — same probes, same message cost, but
  // the split lands inside the dense region instead of at a random point of
  // the arc; see DESIGN.md).
  if (samples > 1) {
    if (const auto median = median_split_id(ring_.successor_of(best))) {
      best = *median;
    }
  }
  ring_.add_node_exact(best);
  return best;
}

void SquidSystem::leave_node(NodeId id) { ring_.leave(id); }

void SquidSystem::fail_node(NodeId id) { ring_.fail(id); }

void SquidSystem::publish(const DataElement& element) {
  const u128 index = index_of_element(element);
  StoredKey& key = store_[index];
  if (key.elements.empty()) {
    key.point = space_.encode(element.keys);
    key_cache_dirty_ = true;
  }
  key.elements.push_back(element);
  ++element_count_;
}

const std::vector<u128>& SquidSystem::key_cache() const {
  if (key_cache_dirty_) {
    key_cache_.clear();
    key_cache_.reserve(store_.size());
    for (const auto& [index, key] : store_) key_cache_.push_back(index);
    key_cache_dirty_ = false;
  }
  return key_cache_;
}

bool SquidSystem::unpublish(const DataElement& element) {
  const u128 index = index_of_element(element);
  const auto it = store_.find(index);
  if (it == store_.end()) return false;
  auto& elements = it->second.elements;
  const auto pos = std::find(elements.begin(), elements.end(), element);
  if (pos == elements.end()) return false;
  elements.erase(pos);
  --element_count_;
  if (elements.empty()) {
    store_.erase(it);
    key_cache_dirty_ = true;
  }
  return true;
}

overlay::RouteResult SquidSystem::publish_routed(const DataElement& element,
                                                 NodeId origin) {
  const overlay::RouteResult route =
      ring_.route(origin, index_of_element(element));
  if (route.ok) publish(element);
  return route;
}

std::size_t SquidSystem::keys_in_range(NodeId from, NodeId to) const {
  // Stored keys with index in the clockwise interval (from, to].
  const auto& keys = key_cache();
  if (keys.empty()) return 0;
  const auto rank = [&keys](u128 v) {
    return static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), v) - keys.begin());
  };
  if (from < to) return rank(to) - rank(from);
  // Wrapped (or from == to: the whole ring).
  return (keys.size() - rank(from)) + rank(to);
}

std::optional<SquidSystem::NodeId> SquidSystem::median_split_id(
    NodeId s) const {
  if (ring_.size() < 1) return std::nullopt;
  const NodeId pred = ring_.size() == 1 ? s : ring_.predecessor_of(s);
  const std::size_t count =
      ring_.size() == 1 ? store_.size() : keys_in_range(pred, s);
  if (count < 2) return std::nullopt;
  auto it = store_.upper_bound(pred);
  NodeId boundary = pred;
  for (std::size_t k = 0; k < count / 2; ++k) {
    if (it == store_.end()) it = store_.begin();
    boundary = it->first;
    ++it;
  }
  if (boundary == pred || boundary == s || ring_.contains(boundary))
    return std::nullopt;
  return boundary;
}

std::size_t SquidSystem::load_of(NodeId id) const {
  if (ring_.size() == 1) return store_.size();
  return keys_in_range(ring_.predecessor_of(id), id);
}

std::size_t SquidSystem::absorbed_load(NodeId candidate) const {
  if (ring_.size() == 0) return store_.size();
  return keys_in_range(ring_.predecessor_of(candidate), candidate);
}

std::vector<std::pair<SquidSystem::NodeId, std::size_t>>
SquidSystem::node_loads() const {
  std::vector<std::pair<NodeId, std::size_t>> loads;
  const auto ids = ring_.node_ids();
  loads.reserve(ids.size());
  for (const NodeId id : ids) loads.emplace_back(id, 0);
  if (loads.empty()) return loads;
  // Single sweep over the store: each key belongs to its successor node.
  auto it = loads.begin();
  std::size_t wrapped = 0; // keys past the last node wrap to the first
  for (const auto& [index, key] : store_) {
    while (it != loads.end() && it->first < index) ++it;
    if (it == loads.end()) {
      ++wrapped;
    } else {
      ++it->second;
    }
  }
  loads.front().second += wrapped;
  return loads;
}

std::size_t SquidSystem::runtime_balance_sweep(double threshold) {
  SQUID_REQUIRE(threshold >= 1.0, "imbalance threshold must be >= 1");
  if (ring_.size() < 3 || store_.empty()) return 0;
  std::size_t moves = 0;
  // Walk a snapshot of the ring; each step may move the *predecessor* of
  // the node under consideration, which never invalidates later snapshot
  // entries (only ids between predecessor-of-predecessor and node change).
  for (const NodeId id : ring_.node_ids()) {
    if (!ring_.contains(id)) continue; // moved away earlier in this sweep
    const NodeId pred = ring_.predecessor_of(id);
    const NodeId pred2 = ring_.predecessor_of(pred);
    if (pred == id || pred2 == pred) continue; // degenerate tiny ring
    const std::size_t load_self = keys_in_range(pred, id);
    const std::size_t load_pred = keys_in_range(pred2, pred);

    if (static_cast<double>(load_self) >
        threshold * static_cast<double>(std::max<std::size_t>(load_pred, 1))) {
      // This node is overloaded: the predecessor slides clockwise to absorb
      // the first half of the surplus (paper 3.5: "the most loaded nodes
      // give a part of their load to their neighbors").
      const std::size_t shed = (load_self - load_pred) / 2;
      if (shed == 0) continue;
      // Find the shed-th key in (pred, id].
      auto it = store_.upper_bound(pred);
      NodeId boundary = pred;
      for (std::size_t k = 0; k < shed; ++k) {
        if (it == store_.end()) it = store_.begin();
        boundary = it->first;
        ++it;
      }
      if (boundary == pred || ring_.contains(boundary)) continue;
      ring_.fail(pred); // the move is leave+rejoin in a real deployment
      ring_.add_node_exact(boundary);
      ++moves;
      ++balance_moves_;
    } else if (static_cast<double>(load_pred) >
               threshold *
                   static_cast<double>(std::max<std::size_t>(load_self, 1))) {
      // The predecessor is overloaded: it slides counter-clockwise, shedding
      // its top keys to this node.
      const std::size_t shed = (load_pred - load_self) / 2;
      if (shed == 0) continue;
      // New boundary: the key `shed` positions before pred in (pred2, pred].
      const std::size_t keep = load_pred - shed;
      auto it = store_.upper_bound(pred2);
      NodeId boundary = pred;
      if (keep == 0) continue; // would empty the predecessor entirely
      for (std::size_t k = 0; k < keep; ++k) {
        if (it == store_.end()) it = store_.begin();
        boundary = it->first;
        ++it;
      }
      if (boundary == pred || ring_.contains(boundary)) continue;
      ring_.fail(pred);
      ring_.add_node_exact(boundary);
      ++moves;
      ++balance_moves_;
    }
  }
  return moves;
}

} // namespace squid::core
