// The distributed query engine (paper 3.4), message-driven (DESIGN.md 4e):
// translate the query to refinement-tree clusters, embed the tree into the
// overlay, prune branches that resolve locally, and aggregate sub-clusters
// headed to the same peer. Since PR 5 resolution is not a C++ recursion:
// each step is a typed message (core/messages.hpp) delivered by the
// NodeRuntime (core/runtime.hpp) on a sim::Engine, so queries can overlap
// on one virtual clock (query_async) and every leg passes the uniform
// fault interception point (Engine::admit).
//
// Bit-identicality contract: the synchronous query()/count()/
// query_centralized() wrappers drive a private engine in lockstep mode and
// are locked bit-identical to the frozen seed resolver
// (query_engine_reference.cpp) by tests/core/async_differential_test.cpp —
// results, QueryStats, derive_stats on traces, the timing DAG, and the
// fault injector's RNG stream, faults off and on. The invariant that makes
// this work: handlers do ALL order-sensitive planning (routing, fault
// verdicts, budget, cache consults, timing events, non-scan spans) at
// delivery time in the seed recursion's order (engine FIFO == the seed's
// task deque), and defer only the order-insensitive store sweeps as
// ScanRequest messages.
//
// Observability (DESIGN.md 4c): every accounting site below pairs its
// QueryStats mutation with a trace span carrying the same quantities, so
// obs::derive_stats can rebuild the legacy aggregates bit-identically from
// the trace alone (tests/obs/trace_differential_test.cpp enforces this).
// With SQUID_OBS_ENABLED=0 the exec's trace pointer is a constexpr nullptr
// and every `if (ex.trace)` branch folds away.

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "squid/core/aggregate.hpp"
#include "squid/core/parallel.hpp"
#include "squid/core/runtime.hpp"
#include "squid/core/serialize.hpp"
#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/trace.hpp"
#include "squid/sfc/cursor.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/require.hpp"

namespace squid::core {

using overlay::in_open_closed;

namespace {

/// The largest prefix of `seg` owned by node `at` (whose range is
/// (pred, at]), given that `at` owns seg.lo. Returns the clipped segment.
sfc::Segment clip_local(overlay::NodeId at, sfc::Segment seg) {
  if (at < seg.lo) return seg; // wrapped ownership: owns through space end
  return {seg.lo, std::min(seg.hi, at)};
}

/// True when the whole segment lives on `at` (which owns seg.lo).
bool entirely_local(overlay::NodeId at, const sfc::Segment& seg) {
  return at >= seg.hi || at < seg.lo;
}

/// Process-wide id source for query messages (file-local so SquidSystem
/// stays movable; ids only need to be unique, not dense).
std::uint64_t next_query_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Longest root-to-leaf hop total of a timing DAG (events reference earlier
/// parents only, so one forward pass suffices).
std::size_t critical_path_of(const std::vector<TimingEvent>& timing) {
  std::vector<std::size_t> depth(timing.size(), 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i < timing.size(); ++i) {
    depth[i] = depth[static_cast<std::size_t>(timing[i].parent)] +
               timing[i].hops;
    best = std::max(best, depth[i]);
  }
  return best;
}

/// Per-query registry publishing (one shot at query end; handles resolved
/// once). Dead code when the obs layer is compiled out.
void publish_query_metrics(const QueryStats& stats, bool complete) {
  if constexpr (obs::kEnabled) {
    auto& registry = obs::Registry::global();
    static obs::Counter& queries = registry.counter("squid.query.count");
    static obs::Counter& messages = registry.counter("squid.query.messages");
    static obs::Counter& matches = registry.counter("squid.query.matches");
    static obs::Counter& resends = registry.counter("squid.retry.resends");
    static obs::Counter& failed =
        registry.counter("squid.query.failed_clusters");
    static obs::Counter& incomplete =
        registry.counter("squid.query.incomplete");
    static obs::Counter& bytes = registry.counter("squid.query.bytes");
    static obs::HistogramMetric& critical =
        registry.histogram("squid.query.critical_path_hops", 0, 64, 16);
    static obs::HistogramMetric& processing =
        registry.histogram("squid.query.processing_nodes", 0, 256, 32);
    queries.add(1);
    messages.add(stats.messages);
    matches.add(stats.matches);
    bytes.add(stats.bytes_shipped);
    if (stats.retries > 0) resends.add(stats.retries);
    if (stats.failed_clusters > 0) failed.add(stats.failed_clusters);
    if (!complete) incomplete.add(1);
    critical.observe(static_cast<double>(stats.critical_path_hops));
    processing.observe(static_cast<double>(stats.processing_nodes));
  } else {
    (void)stats;
    (void)complete;
  }
}

/// Aggregation-pushdown counters (DESIGN.md 4g), published once per
/// aggregate query at finalize. Dead code when obs is compiled out.
void publish_aggregation_metrics(std::uint64_t partials_merged,
                                 std::uint64_t elements_folded,
                                 std::uint64_t bytes_saved) {
  if constexpr (obs::kEnabled) {
    auto& registry = obs::Registry::global();
    static obs::Counter& merged =
        registry.counter("squid.query.aggregation.partials_merged");
    static obs::Counter& folded =
        registry.counter("squid.query.aggregation.elements_folded");
    static obs::Counter& saved =
        registry.counter("squid.query.aggregation.bytes_saved");
    merged.add(partials_merged);
    folded.add(elements_folded);
    saved.add(bytes_saved);
  } else {
    (void)partials_merged;
    (void)elements_folded;
    (void)bytes_saved;
  }
}

/// Reply frames a `bytes`-sized reply occupies at the accounting MTU.
std::size_t frames_of(std::size_t bytes, std::size_t mtu) {
  if (mtu == 0) return 1;
  return std::max<std::size_t>(1, (bytes + mtu - 1) / mtu);
}

} // namespace

void SquidSystem::set_tracing(bool on) noexcept {
  trace_enabled_ = on && SQUID_OBS_ENABLED != 0;
}

void SquidSystem::set_telemetry(obs::EpochSampler* sampler) noexcept {
  telemetry_ = SQUID_OBS_ENABLED != 0 ? sampler : nullptr;
  if (telemetry_ != nullptr) telemetry_->set_id_bits(curve_->index_bits());
}

// --- Message handlers (run at delivery; see NodeRuntime::deliver) -----------

namespace {

/// The per-key filter/fold body shared by every scan path: live tiered
/// walks, flat replica snapshots, and the frozen reference oracle all visit
/// keys through this, so their accounting is identical by construction.
/// `Key` is SquidSystem's private StoredKey (templated to keep it so).
template <class Key>
void visit_scanned_key(const Key& key, const sfc::Rect& rect, bool covered,
                       bool count_only, std::vector<DataElement>& elements,
                       std::size_t& count, std::uint64_t& keys_scanned,
                       std::uint64_t& keys_matched, std::uint64_t& matches,
                       AggScanRecord* agg) {
  ++keys_scanned;
  if (!covered && !rect.contains(key.point)) return;
  ++keys_matched;
  matches += key.elements.size();
  if (agg != nullptr) {
    for (const DataElement& e : key.elements) {
      agg->partial.fold(e);
      // What shipping this element instead would have cost; feeds the
      // bytes_saved counter, so skip the serializer when obs is off.
      if constexpr (obs::kEnabled) agg->ship_bytes += element_wire_size(e);
    }
  } else if (count_only) {
    count += key.elements.size();
  } else {
    elements.insert(elements.end(), key.elements.begin(), key.elements.end());
  }
}

} // namespace

void SquidSystem::scan_segment(const sfc::Rect& rect, sfc::Segment seg,
                               bool covered, bool count_only,
                               std::vector<DataElement>& elements,
                               std::size_t& count, std::uint64_t& keys_scanned,
                               std::uint64_t& keys_matched,
                               std::uint64_t& matches,
                               AggScanRecord* agg) const {
  // The live-store sweep: a lockstep walk over the tiers in ascending key
  // order, tombstones skipped entirely (a retracted key is invisible to
  // keys_scanned, exactly as if it had never been published).
  store_.scan(seg.lo, seg.hi, [&](u128, const StoredKey& key) {
    visit_scanned_key(key, rect, covered, count_only, elements, count,
                      keys_scanned, keys_matched, matches, agg);
  });
}

void SquidSystem::scan_slice(std::uint64_t replica, const sfc::Rect& rect,
                             sfc::Segment seg, bool covered, bool count_only,
                             std::vector<DataElement>& elements,
                             std::size_t& count, std::uint64_t& keys_scanned,
                             std::uint64_t& keys_matched,
                             std::uint64_t& matches, AggScanRecord* agg) const {
  if (replica != 0) {
    const auto it = replica_cache_.find(replica);
    if (it != replica_cache_.end() && it->second.valid) {
      scan_arrays(it->second.snapshot_index, it->second.snapshot_data, rect,
                  seg, covered, count_only, elements, count, keys_scanned,
                  keys_matched, matches, agg);
      return;
    }
    // Invalidated or dropped while the scan was in flight: answer from the
    // live store instead — a replica may be behind, but it must never be
    // stale-served (docs/LOAD_BALANCING.md, invalidation protocol).
  }
  scan_segment(rect, seg, covered, count_only, elements, count, keys_scanned,
               keys_matched, matches, agg);
}

void SquidSystem::note_replica_serve(std::uint64_t id,
                                     std::uint64_t matched) const {
  if (id == 0) return;
  const auto it = replica_cache_.find(id);
  if (it != replica_cache_.end())
    it->second.serves->fetch_add(matched, std::memory_order_relaxed);
}

void SquidSystem::scan_arrays(const std::vector<u128>& index,
                              const std::vector<StoredKey>& data,
                              const sfc::Rect& rect, sfc::Segment seg,
                              bool covered, bool count_only,
                              std::vector<DataElement>& elements,
                              std::size_t& count, std::uint64_t& keys_scanned,
                              std::uint64_t& keys_matched,
                              std::uint64_t& matches,
                              AggScanRecord* agg) const {
  // One contiguous sweep over a flat array pair (replica snapshots): binary
  // search to the segment start, then walk index/payloads in lockstep. With
  // an aggregate sink the matching elements fold into the local partial
  // instead of being collected — the pushdown of DESIGN.md 4g.
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(index.begin(), index.end(), seg.lo) - index.begin());
  for (; i < index.size() && index[i] <= seg.hi; ++i)
    visit_scanned_key(data[i], rect, covered, count_only, elements, count,
                      keys_scanned, keys_matched, matches, agg);
}

void SquidSystem::perform_scan(QueryExec& ex,
                               const msg::ScanRequest& scan) const {
  const NodeId at = scan.at;
  const sfc::Segment seg = scan.segment;
  ex.processing.insert(at);
  std::uint64_t scanned = 0;
  std::uint64_t matched = 0;
  std::uint64_t collected = 0;
  if (scan.agg.kind != AggregateKind::kNone) {
    // Pushdown: fold into this scan's pre-assigned record. The slot was
    // allocated at post time (identical order across delivery modes), so the
    // deque is already sized.
    AggScanRecord& rec = ex.agg_scans[scan.slot];
    rec.at = at;
    rec.partial.spec = scan.agg;
    scan_slice(scan.replica, ex.rect, seg, scan.covered, ex.count_only,
               ex.results, ex.count, scanned, matched, collected, &rec);
  } else {
    const std::size_t first = ex.results.size();
    scan_slice(scan.replica, ex.rect, seg, scan.covered, ex.count_only,
               ex.results, ex.count, scanned, matched, collected, nullptr);
    // Reply-path accounting: this scan site answers the origin directly with
    // one reply (split into MTU frames), measured through the real
    // serializer. Sums of per-scan terms, so mode-independent.
    std::size_t payload = 0;
    const std::size_t shipped = ex.results.size() - first;
    for (std::size_t k = first; k < ex.results.size(); ++k)
      payload += element_wire_size(ex.results[k]);
    const std::size_t bytes = reply_wire_size(
        at, ex.origin, ex.count_only ? collected : shipped, shipped, payload);
    ex.bytes_shipped += bytes;
    const std::size_t frames = frames_of(bytes, config_.reply_frame_bytes);
    ex.reply_messages += frames;
    if (ex.telemetry != nullptr)
      ex.telemetry->record(at, obs::LoadKind::kReplyForwarded, frames,
                           ex.tick(scan.event));
  }
  if (matched > 0) ex.data_nodes.insert(at);
  note_replica_serve(scan.replica, matched);
  if (ex.telemetry != nullptr)
    ex.telemetry->record(at, obs::LoadKind::kScanHit, matched,
                         ex.tick(scan.event));
  if (ex.trace) {
    const std::int32_t id = ex.trace->begin(obs::SpanKind::kLocalScan,
                                            scan.span, scan.event,
                                            ex.tick(scan.event));
    obs::Span& s = ex.trace->at(id);
    s.node = at;
    s.range_lo = seg.lo;
    s.range_hi = seg.hi;
    s.keys_scanned = scanned;
    s.keys_matched = matched;
    s.matches = collected;
  }
}

void SquidSystem::perform_scan_parallel(const QueryExec& ex,
                                        const msg::ScanRequest& scan,
                                        ScanBuffer& out) const {
  out.at = scan.at;
  out.segment = scan.segment;
  out.event = scan.event;
  out.span = scan.span;
  if (scan.agg.kind != AggregateKind::kNone) {
    out.agg.at = scan.at;
    out.agg.partial.spec = scan.agg;
    scan_slice(scan.replica, ex.rect, scan.segment, scan.covered,
               ex.count_only, out.elements, out.count, out.keys_scanned,
               out.keys_matched, out.matches, &out.agg);
  } else {
    scan_slice(scan.replica, ex.rect, scan.segment, scan.covered,
               ex.count_only, out.elements, out.count, out.keys_scanned,
               out.keys_matched, out.matches, nullptr);
    std::size_t payload = 0;
    for (const DataElement& e : out.elements) payload += element_wire_size(e);
    const std::size_t bytes = reply_wire_size(
        scan.at, ex.origin, ex.count_only ? out.matches : out.elements.size(),
        out.elements.size(), payload);
    out.reply_bytes = bytes;
    out.reply_frames = frames_of(bytes, config_.reply_frame_bytes);
  }
  note_replica_serve(scan.replica, out.keys_matched);
  out.touched_data = out.keys_matched > 0;
}

void SquidSystem::plan_chain(const std::shared_ptr<QueryExec>& exec,
                             NodeId at, sfc::Segment seg, bool covered,
                             std::int32_t event, std::int32_t span) const {
  // Scan every owner of `seg` in ring order. The paper notes a cluster "may
  // be mapped to one or more adjacent nodes"; each forward to the next
  // owner is one neighbor message. The walk is *planned* here, eagerly
  // (fault verdicts and timing events in seed order); the per-owner store
  // sweeps are posted as ScanRequests and run at their delivery ticks.
  QueryExec& ex = *exec;
  const NodeRuntime runtime(this);
  const NodeId pred = ring_.predecessor_of(at);
  if (!in_open_closed(pred, at, seg.lo)) {
    if (ex.dispatch_budget == 0) {
      ex.complete = false;
      return;
    }
    --ex.dispatch_budget;
    const overlay::RouteResult r = ring_.route(at, seg.lo);
    if (!r.ok) {
      ex.fail_leg(0, 0, 1, at, event, span);
      return;
    }
    ex.messages += 1;
    ex.routing.insert(r.path.begin(), r.path.end());
    if (ex.telemetry != nullptr)
      for (const NodeId hop : r.path)
        ex.telemetry->record(hop, obs::LoadKind::kRouteThrough, 1,
                             ex.tick(event));
    const QueryExec::Leg leg = ex.attempt_leg(at, r.dest);
    const sim::Time sent = ex.tick(event);
    const std::int32_t arrive = ex.add_event(
        event, r.hops() + static_cast<std::size_t>(leg.penalty));
    if (ex.trace) {
      const std::int32_t id =
          ex.trace->begin(obs::SpanKind::kRouteHop, span, arrive, sent);
      ex.trace->set_path(id, r.path.begin(), r.path.end());
      obs::Span& s = ex.trace->at(id);
      s.node = r.dest;
      s.hops = static_cast<std::uint32_t>(r.hops());
      s.messages = 1;
      s.end = ex.tick(arrive);
      span = id;
    }
    if (!leg.delivered) {
      ex.fail_leg(leg.resends, leg.penalty, 1, r.dest, event, span);
      return;
    }
    ex.pay_leg(leg, r.dest, event, span);
    ex.note_reply_parent(r.dest, at);
    at = r.dest;
    event = arrive;
  }
  for (;;) {
    const sfc::Segment local = clip_local(at, seg);
    runtime.post(exec, msg::ScanRequest{ex.id, at, local, covered, {}, 0,
                                        event, span});
    if (entirely_local(at, seg)) return;
    if (ex.dispatch_budget == 0) {
      ex.complete = false;
      return;
    }
    --ex.dispatch_budget;
    const NodeId next = ring_.successor_of((at + 1) & ring_.id_mask());
    const QueryExec::Leg leg = ex.attempt_leg(at, next);
    ex.messages += 1;
    ex.routing.insert(at);
    ex.routing.insert(next);
    if (ex.telemetry != nullptr) {
      ex.telemetry->record(at, obs::LoadKind::kRouteThrough, 1, ex.tick(event));
      ex.telemetry->record(next, obs::LoadKind::kRouteThrough, 1,
                           ex.tick(event));
    }
    seg.lo = local.hi + 1;
    const sim::Time sent = ex.tick(event);
    const std::int32_t arrive = ex.add_event(
        event, 1 + static_cast<std::size_t>(leg.penalty)); // neighbor forward
    if (ex.trace) {
      const std::int32_t id =
          ex.trace->begin(obs::SpanKind::kRouteHop, span, arrive, sent);
      ex.trace->add_path_node(id, at);
      ex.trace->add_path_node(id, next);
      obs::Span& s = ex.trace->at(id);
      s.node = next;
      s.hops = 1;
      s.messages = 1;
      s.end = ex.tick(arrive);
      span = id;
    }
    if (!leg.delivered) {
      ex.fail_leg(leg.resends, leg.penalty, 1, next, event, span);
      return;
    }
    ex.pay_leg(leg, next, event, span);
    ex.note_reply_parent(next, at);
    at = next;
    event = arrive;
  }
}

void SquidSystem::dispatch_clusters(
    const std::shared_ptr<QueryExec>& exec, NodeId from,
    const std::vector<std::pair<u128, sfc::ClusterNode>>& clusters,
    std::int32_t event, std::int32_t span) const {
  // Paper 3.4.2, second optimization: the clusters are in ascending curve
  // order; probe with the first, learn the owner's identifier from its
  // reply, then ship every further cluster owned by the same peer as one
  // aggregated message. Without aggregation each cluster is its own routed
  // message. Each entry carries its precomputed segment-lo key.
  QueryExec& ex = *exec;
  const NodeRuntime runtime(this);
  std::size_t i = 0;
  while (i < clusters.size()) {
    if (ex.dispatch_budget == 0) {
      ex.complete = false;
      return;
    }
    --ex.dispatch_budget;
    const u128 head_lo = clusters[i].first;

    // The dispatch span opens before its outcome is known; route/cache
    // consult spans nest under it. A failed route leaves it zero-cost.
    std::int32_t dspan = -1;
    if (ex.trace) {
      dspan = ex.trace->begin(obs::SpanKind::kClusterDispatch, span, event,
                              ex.tick(event));
      obs::Span& s = ex.trace->at(dspan);
      s.level = clusters[i].second.level;
      s.range_lo = head_lo;
      s.range_hi = head_lo;
    }

    // Hot-cluster replica consult (docs/LOAD_BALANCING.md): a valid entry
    // covering this cluster is answered one hop away by one of its replica
    // peers, from the entry's snapshot — no overlay routing, no refinement
    // at the owner, no owner-chain walk. The peer choice is stateless
    // ((prefix + origin) mod replica count — origin is part of the query
    // spec, so every delivery mode and shard count picks the same peer,
    // while different clients of one hot cluster still fan out across the
    // replica set). While no entries are installed this whole branch is one
    // empty() check — the reaction layer's bit-transparency lock
    // (tests/core/reaction_test.cpp) rests on that.
    if (!replica_cache_.empty()) {
      if (const ReplicaEntry* entry = replica_serving(clusters[i].second)) {
        const NodeId replica = entry->replicas[static_cast<std::size_t>(
            (clusters[i].second.prefix + ex.origin) %
            entry->replicas.size())];
        replica_counters_->serves.fetch_add(1, std::memory_order_relaxed);
        ex.messages += 1; // one direct message, no overlay routing
        ex.routing.insert(from);
        ex.routing.insert(replica);
        if (ex.telemetry != nullptr) {
          ex.telemetry->record(from, obs::LoadKind::kCacheHit, 1,
                               ex.tick(event));
          ex.telemetry->record(from, obs::LoadKind::kRouteThrough, 1,
                               ex.tick(event));
          ex.telemetry->record(replica, obs::LoadKind::kRouteThrough, 1,
                               ex.tick(event));
        }
        if (ex.trace) {
          const std::int32_t id = ex.trace->begin(obs::SpanKind::kCacheHit,
                                                  dspan, event,
                                                  ex.tick(event));
          ex.trace->add_path_node(id, from);
          ex.trace->add_path_node(id, replica);
          obs::Span& s = ex.trace->at(id);
          s.node = replica;
          s.level = clusters[i].second.level;
          s.messages = 1;
          s.end = s.start + 1; // direct send: one hop
        }
        const QueryExec::Leg leg = ex.attempt_leg(from, replica);
        if (!leg.delivered) {
          ex.add_event(event, static_cast<std::size_t>(leg.penalty));
          ex.fail_leg(leg.resends, leg.penalty, 1, replica, event, dspan);
          ++i;
          continue;
        }
        ex.pay_leg(leg, replica, event, dspan);
        ex.note_reply_parent(replica, from);
        const std::int32_t arrive =
            ex.add_event(event, 1 + static_cast<std::size_t>(leg.penalty));
        if (ex.trace) {
          obs::Span& s = ex.trace->at(dspan);
          s.node = replica;
          s.event = arrive;
          s.batch = 1;
          s.hops = 1;
          s.messages = 0;
          s.range_hi = head_lo;
          s.end = ex.tick(arrive);
        }
        // The replica answers the whole cluster from its snapshot: one scan
        // over the cluster's segment, rectangle-filtered (the snapshot holds
        // every key in the segment, matching or not).
        runtime.post(exec, msg::ScanRequest{
                               ex.id, replica,
                               refiner_.segment_of(clusters[i].second),
                               /*covered=*/false, {}, 0, arrive, dspan,
                               entry->id});
        ++i;
        continue;
      }
    }

    NodeId dest = 0;
    bool resolved = false;
    bool from_cache = false;
    if (config_.cache_cluster_owners) {
      // Consult only the dispatching peer's own memory of past replies.
      const auto cache_it = owner_cache_.find(from);
      if (cache_it != owner_cache_.end()) {
        const auto hit = cache_it->second.find(
            {clusters[i].second.level, clusters[i].second.prefix});
        if (hit != cache_it->second.end() && ring_.contains(hit->second) &&
            in_open_closed(ring_.predecessor_of(hit->second), hit->second,
                           head_lo)) {
          dest = hit->second;
          resolved = true;
          from_cache = true;
          ++cache_stats_.hits;
          ex.messages += 1; // one direct message, no overlay routing
          ex.routing.insert(from);
          ex.routing.insert(dest);
          if (ex.telemetry != nullptr) {
            ex.telemetry->record(from, obs::LoadKind::kCacheHit, 1,
                                 ex.tick(event));
            ex.telemetry->record(from, obs::LoadKind::kRouteThrough, 1,
                                 ex.tick(event));
            ex.telemetry->record(dest, obs::LoadKind::kRouteThrough, 1,
                                 ex.tick(event));
          }
          if (ex.trace) {
            const std::int32_t id = ex.trace->begin(
                obs::SpanKind::kCacheHit, dspan, event, ex.tick(event));
            ex.trace->add_path_node(id, from);
            ex.trace->add_path_node(id, dest);
            obs::Span& s = ex.trace->at(id);
            s.node = dest;
            s.level = clusters[i].second.level;
            s.messages = 1;
            s.end = s.start + 1; // direct send: one hop
          }
        } else if (hit != cache_it->second.end()) {
          ++cache_stats_.stale;
          cache_it->second.erase(hit);
        }
      }
      if (!resolved) {
        ++cache_stats_.misses;
        if (ex.trace) {
          const std::int32_t id = ex.trace->begin(
              obs::SpanKind::kCacheMiss, dspan, event, ex.tick(event));
          obs::Span& s = ex.trace->at(id);
          s.node = from;
          s.level = clusters[i].second.level;
        }
      }
    }

    std::size_t dispatch_hops = 1; // direct send when the cache resolved it
    if (!resolved) {
      const overlay::RouteResult r = ring_.route(from, head_lo);
      if (!r.ok) {
        // Unroutable under churn: abandon only this head cluster and keep
        // dispatching the rest (the seed abandoned the whole remainder).
        ex.fail_leg(0, 0, 1, from, event, dspan);
        ++i;
        continue;
      }
      ex.messages += 1; // the head sub-query
      ex.routing.insert(r.path.begin(), r.path.end());
      if (ex.telemetry != nullptr)
        for (const NodeId hop : r.path)
          ex.telemetry->record(hop, obs::LoadKind::kRouteThrough, 1,
                               ex.tick(event));
      dest = r.dest;
      dispatch_hops = std::max<std::size_t>(r.hops(), 1);
      if (ex.trace) {
        const std::int32_t id = ex.trace->begin(obs::SpanKind::kRouteHop,
                                                dspan, event, ex.tick(event));
        ex.trace->set_path(id, r.path.begin(), r.path.end());
        obs::Span& s = ex.trace->at(id);
        s.node = dest;
        s.hops = static_cast<std::uint32_t>(r.hops());
        s.messages = 1;
        s.end = s.start + r.hops();
      }
    }

    // The head sub-query is one message leg from -> dest; under faults it
    // may need resends or be lost for good. A lost head drops only its own
    // cluster: no identifier reply arrives, so no batch forms, and the
    // would-be siblings are dispatched individually by later iterations.
    const QueryExec::Leg leg = ex.attempt_leg(from, dest);
    if (!leg.delivered) {
      // The backoff waits still burn wall-clock at the dispatcher: land them
      // in the timing DAG so trace-derived and engine critical paths agree.
      ex.add_event(event, static_cast<std::size_t>(leg.penalty));
      ex.fail_leg(leg.resends, leg.penalty, 1, dest, event, dspan);
      ++i;
      continue;
    }
    ex.pay_leg(leg, dest, event, dspan);
    ex.note_reply_parent(dest, from);

    std::size_t batch_end = i + 1;
    bool reply_message = false;
    if (config_.aggregate_subclusters) {
      if (!from_cache) {
        ex.messages += 1; // the owner's identifier reply
        reply_message = true;
      }
      if (config_.cache_cluster_owners) {
        owner_cache_[from][{clusters[i].second.level,
                            clusters[i].second.prefix}] = dest;
      }
      const NodeId dest_pred = ring_.predecessor_of(dest);
      while (batch_end < clusters.size() &&
             in_open_closed(dest_pred, dest, clusters[batch_end].first)) {
        ++batch_end;
      }
      if (batch_end > i + 1) ex.messages += 1; // one aggregated batch
    }
    // The head travels with the probe; aggregated siblings wait for the
    // identifier reply and then one direct hop (reply + batch = 2 hops).
    // Backoff waits and delivery delay push the whole arrival later.
    const std::int32_t batch_event = ex.add_event(
        event, dispatch_hops + static_cast<std::size_t>(leg.penalty) +
                   (batch_end > i + 1 ? 2 : 0));
    if (ex.trace) {
      if (batch_end > i + 1) {
        const std::int32_t id = ex.trace->begin(
            obs::SpanKind::kAggregationMerge, dspan, event, ex.tick(event));
        obs::Span& s = ex.trace->at(id);
        s.node = from;
        s.batch = static_cast<std::uint32_t>(batch_end - i - 1);
        s.messages = 1; // the aggregated batch
        s.end = ex.tick(batch_event);
      }
      obs::Span& s = ex.trace->at(dspan);
      s.node = dest;
      s.event = batch_event;
      s.batch = static_cast<std::uint32_t>(batch_end - i);
      s.hops = static_cast<std::uint32_t>(dispatch_hops);
      s.messages = reply_message ? 1 : 0; // the identifier reply, if paid
      s.range_hi = clusters[batch_end - 1].first;
      s.end = ex.tick(batch_event);
    }
    msg::ClusterDispatch dispatch;
    dispatch.query = ex.id;
    dispatch.from = from;
    dispatch.to = dest;
    dispatch.head = clusters[i].second;
    dispatch.batch.clusters.reserve(batch_end - i - 1);
    for (std::size_t k = i + 1; k < batch_end; ++k)
      dispatch.batch.clusters.push_back(clusters[k].second);
    dispatch.event = batch_event;
    dispatch.span = dspan;
    runtime.post(exec, std::move(dispatch));
    i = batch_end;
  }
}

void SquidSystem::handle_resolve(const std::shared_ptr<QueryExec>& exec,
                                 NodeId at,
                                 std::vector<sfc::ClusterNode> clusters,
                                 std::int32_t event, std::int32_t span) const {
  QueryExec& ex = *exec;
  const NodeRuntime runtime(this);
  ex.processing.insert(at);
  if (ex.trace) {
    const std::int32_t id = ex.trace->begin(obs::SpanKind::kRefineDescend,
                                            span, event, ex.tick(event));
    obs::Span& s = ex.trace->at(id);
    s.node = at;
    s.batch = static_cast<std::uint32_t>(clusters.size());
    span = id;
  }
  const NodeId pred = ring_.predecessor_of(at);
  std::vector<std::pair<u128, sfc::ClusterNode>> remote; // (segment lo, node)

  // Refine everything assigned to this node as deep as local knowledge
  // allows (paper Figs 6-8): clusters fully inside our key range are matched
  // against the store without further refinement; covered clusters sweep
  // their owner chain; boundary-crossing clusters refine one level, their
  // children either staying local or queueing for dispatch.
  //
  // Tree expansion rides the incremental cursor: one O(level*dims) seek per
  // cluster that actually refines, then O(dims) per child cell. The query
  // rectangle was validated once at the query entry point, so per-node work
  // is unchecked, and children carry the relation computed at enqueue time.
  sfc::RefineCursor cursor(*curve_);
  const unsigned dims = curve_->dims();
  const u128 fanout = cursor.fanout();
  using sfc::CellRelation;
  struct WorkItem {
    sfc::ClusterNode node;
    CellRelation relation;
    bool classified = false;
  };
  std::deque<WorkItem> work;
  for (const auto& cluster : clusters) work.push_back({cluster, {}, false});
  while (!work.empty()) {
    const WorkItem item = work.front();
    work.pop_front();
    const sfc::ClusterNode cluster = item.node;
    CellRelation relation = item.relation;
    if (!item.classified) {
      cursor.seek(cluster.prefix, cluster.level);
      relation = cursor.relation_to(ex.rect);
    }
    if (relation == CellRelation::disjoint) {
      if (ex.trace) {
        const sfc::Segment pruned = refiner_.segment_of(cluster);
        const std::int32_t id = ex.trace->begin(obs::SpanKind::kPrune, span,
                                                event, ex.tick(event));
        obs::Span& s = ex.trace->at(id);
        s.node = at;
        s.level = cluster.level;
        s.range_lo = pruned.lo;
        s.range_hi = pruned.hi;
      }
      continue;
    }
    const sfc::Segment seg = refiner_.segment_of(cluster);
    if (relation == CellRelation::covered) {
      plan_chain(exec, at, seg, /*covered=*/true, event, span);
      continue;
    }
    const bool owns_lo = in_open_closed(pred, at, seg.lo);
    if (owns_lo && entirely_local(at, seg)) {
      // Fig 8's pruning: the owner's identifier is past the cluster's last
      // index, so every possible match is stored here.
      runtime.post(exec, msg::ScanRequest{ex.id, at, seg, /*covered=*/false,
                                          {}, 0, event, span});
      continue;
    }
    if (item.classified) cursor.seek(cluster.prefix, cluster.level);
    for (u128 w = 0; w < fanout; ++w) {
      const auto rel = cursor.classify_child(w, ex.rect);
      const sfc::ClusterNode child{
          (dims >= 128 ? 0 : cluster.prefix << dims) | w, cluster.level + 1};
      if (rel == CellRelation::disjoint) {
        if (ex.trace) {
          const sfc::Segment pruned = refiner_.segment_of(child);
          const std::int32_t id = ex.trace->begin(obs::SpanKind::kPrune, span,
                                                  event, ex.tick(event));
          obs::Span& s = ex.trace->at(id);
          s.node = at;
          s.level = child.level;
          s.range_lo = pruned.lo;
          s.range_hi = pruned.hi;
        }
        continue;
      }
      const u128 child_lo = refiner_.segment_of(child).lo;
      if (in_open_closed(pred, at, child_lo)) {
        work.push_back({child, rel, true});
      } else {
        remote.emplace_back(child_lo, child);
      }
    }
  }

  // Sort by the precomputed segment keys (curve order).
  std::sort(remote.begin(), remote.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  dispatch_clusters(exec, at, remote, event, span);
}

void SquidSystem::finalize_aggregate(QueryExec& ex) const {
  // Origin-side closure of the pushdown tree: fold each node's scan partials,
  // then merge child partials into their dispatch parents bottom-up. Every
  // merge operator is associative and commutative (ExactSum for kSum, bounded
  // sorted lists for top-k/group-by), so the result is bit-identical to the
  // origin folding all elements itself — regardless of delivery mode, shard
  // count, or arrival order.
  const AggregateSpec& spec = *ex.agg;
  std::map<NodeId, AggregatePartial> nodes;
  std::uint64_t partials_merged = 0;
  std::uint64_t elements_folded = 0;
  std::uint64_t shipall_bytes = 0;
  for (const AggScanRecord& rec : ex.agg_scans) {
    auto [it, fresh] = nodes.try_emplace(rec.at, make_partial(spec));
    (void)fresh;
    it->second.merge(rec.partial);
    ++partials_merged;
    elements_folded += rec.partial.count;
    if constexpr (obs::kEnabled) {
      // What this scan would have shipped without pushdown: every matching
      // element, straight to the origin. Feeds bytes_saved only.
      shipall_bytes += reply_wire_size(
          rec.at, ex.origin, rec.partial.count,
          static_cast<std::size_t>(rec.partial.count), rec.ship_bytes);
    }
  }
  // Every tree node answers its parent exactly once, even when it found
  // nothing — an empty partial is still a reply on the wire.
  nodes.try_emplace(ex.origin, make_partial(spec));
  for (const auto& [child, parent] : ex.reply_edges) {
    nodes.try_emplace(child, make_partial(spec));
    nodes.try_emplace(parent, make_partial(spec));
  }
  // Reverse discovery order visits children before the parents that sent
  // them work, so each node's partial is final when it ships upward.
  for (auto it = ex.reply_edges.rbegin(); it != ex.reply_edges.rend(); ++it) {
    const AggregatePartial& from = nodes.at(it->first);
    const std::size_t bytes =
        reply_wire_size(it->first, it->second, from.count, 0, 0, &from);
    ex.bytes_shipped += bytes;
    const std::size_t frames = frames_of(bytes, config_.reply_frame_bytes);
    ex.reply_messages += frames;
    if (ex.telemetry != nullptr)
      ex.telemetry->record(it->first, obs::LoadKind::kReplyForwarded, frames,
                           0);
    nodes.at(it->second).merge(from);
    ++partials_merged;
  }
  ex.result.aggregate =
      std::make_shared<const AggregatePartial>(std::move(nodes.at(ex.origin)));
  if (ex.publish_metrics) {
    publish_aggregation_metrics(partials_merged, elements_folded,
                                shipall_bytes > ex.bytes_shipped
                                    ? shipall_bytes - ex.bytes_shipped
                                    : 0);
  }
}

void SquidSystem::finalize_query(QueryExec& ex) const {
  QueryResult& result = ex.result;
  if (ex.agg) finalize_aggregate(ex);
  result.complete = ex.complete;
  result.elements = std::move(ex.results);
  result.stats.matches =
      ex.agg ? result.aggregate->count : result.elements.size();
  result.stats.routing_nodes = ex.routing.size();
  result.stats.processing_nodes = ex.processing.size();
  result.stats.data_nodes = ex.data_nodes.size();
  result.stats.messages = ex.messages;
  result.stats.retries = ex.retries;
  result.stats.failed_clusters = ex.failed_clusters;
  result.stats.bytes_shipped = ex.bytes_shipped;
  result.stats.reply_messages = ex.reply_messages;
  result.timing = std::move(ex.timing);
  result.stats.critical_path_hops = critical_path_of(result.timing);
#if SQUID_OBS_ENABLED
  if (ex.trace) {
    ex.trace->at(ex.root_span).end =
        static_cast<sim::Time>(result.stats.critical_path_hops);
    result.trace = std::make_shared<const obs::Trace>(ex.trace->take());
    ex.trace = nullptr;
  }
#endif
  if (ex.publish_metrics) publish_query_metrics(result.stats, result.complete);
#if SQUID_OBS_ENABLED
  // The one flush per query, at the per-mode safe point (kParallel reaches
  // here on the home shard after the deterministic scan merge). Everything
  // above is already settled, so the sampler sees a finished query's events.
  if (ex.telemetry != nullptr && telemetry_ != nullptr) {
    telemetry_->flush(*ex.telemetry, ex.started_at);
    ex.telemetry = nullptr;
  }
#endif
  ex.cache_guard.reset();
  ex.completed_at = ex.engine->now();
  ex.finished = true;
}

// --- Launch / drive ---------------------------------------------------------

std::shared_ptr<QueryExec> SquidSystem::start_exec(
    sim::Engine& engine, DeliveryMode mode, const keyword::Query& query,
    NodeId origin, bool count_only, bool want_trace, bool publish,
    bool arm_guard, const AggregateSpec* aggregate) const {
  SQUID_REQUIRE(ring_.contains(origin), "query origin is not a live node");
  auto exec = std::make_shared<QueryExec>();
  QueryExec& ex = *exec;
  ex.id = next_query_id();
  ex.mode = mode;
  ex.engine = &engine;
  ex.sys = this;
  ex.config = &config_;
  ex.origin = origin;
  if (arm_guard && config_.cache_cluster_owners)
    ex.cache_guard.emplace(*cache_writers_);
  ex.rect = space_.to_rect(query);
  refiner_.validate_query(ex.rect); // once per query; per-node paths trust it
  ex.dispatch_budget = 64 * (ring_.size() + 8); // churn safety valve
  ex.count_only = count_only;
  ex.publish_metrics = publish;
  if (aggregate != nullptr) {
    ex.agg = *aggregate;
    // The origin is the reply tree's root: pre-seeding it means the first
    // hop away from it records a (child, origin) edge, never a self-edge.
    ex.reply_seen.insert(origin);
  }
  ex.routing.insert(origin);
  ex.started_at = engine.now();
#if SQUID_OBS_ENABLED
  if (want_trace) {
    ex.recorder.emplace();
    ex.trace = &*ex.recorder;
    ex.root_span = ex.trace->begin(obs::SpanKind::kQuery, -1, 0, 0);
    ex.trace->at(ex.root_span).node = origin;
    ex.trace->add_path_node(ex.root_span, origin);
  }
  // Telemetry scratch is armed only while a sampler is attached; with none
  // every recording site is one dead null check.
  if (telemetry_ != nullptr) {
    ex.telemetry_store.emplace();
    ex.telemetry = &*ex.telemetry_store;
  }
#else
  (void)want_trace;
#endif
  return exec;
}

void SquidSystem::begin_resolution(const std::shared_ptr<QueryExec>& exec,
                                   bool allow_point) const {
  QueryExec& ex = *exec;
  const NodeRuntime runtime(this);
  bool is_point = true;
  for (const auto& iv : ex.rect.dims) is_point &= (iv.lo == iv.hi);
  if (allow_point && is_point) {
    // Paper 3.4.1: a query of whole keywords maps to at most one index and
    // resolves with the plain data-lookup protocol.
    sfc::Point point;
    for (const auto& iv : ex.rect.dims) point.push_back(iv.lo);
    const u128 index = curve_->index_of(point);
    const overlay::RouteResult r = ring_.route(ex.origin, index);
    if (r.ok) {
      ex.messages += 1;
      ex.routing.insert(r.path.begin(), r.path.end());
      if (ex.telemetry != nullptr)
        for (const NodeId hop : r.path)
          ex.telemetry->record(hop, obs::LoadKind::kRouteThrough, 1, 0);
      const QueryExec::Leg leg = ex.attempt_leg(ex.origin, r.dest);
      const std::int32_t event =
          ex.add_event(0, r.hops() + static_cast<std::size_t>(leg.penalty));
      std::int32_t span = ex.root_span;
      if (ex.trace) {
        const std::int32_t id =
            ex.trace->begin(obs::SpanKind::kRouteHop, ex.root_span, event, 0);
        ex.trace->set_path(id, r.path.begin(), r.path.end());
        obs::Span& s = ex.trace->at(id);
        s.node = r.dest;
        s.hops = static_cast<std::uint32_t>(r.hops());
        s.messages = 1;
        s.end = ex.tick(event);
        span = id;
      }
      if (leg.delivered) {
        ex.pay_leg(leg, r.dest, 0, span);
        ex.note_reply_parent(r.dest, ex.origin);
        runtime.post(exec,
                     msg::ScanRequest{ex.id, r.dest, sfc::Segment{index, index},
                                      /*covered=*/true, {}, 0, event, span});
      } else {
        ex.fail_leg(leg.resends, leg.penalty, 1, r.dest, 0, span);
      }
    } else {
      ex.fail_leg(0, 0, 1, ex.origin, 0, ex.root_span);
    }
  } else {
    // The origin assigns itself the refinement-tree root.
    runtime.post(exec, msg::ResolveRequest{
                           ex.id, ex.origin,
                           msg::AggregateBatch{{sfc::ClusterNode{0, 0}}}, 0,
                           ex.root_span});
  }
  // A launch that posted nothing (unroutable point query) completes now.
  runtime.maybe_complete(exec);
}

namespace {

/// Drain a lockstep query on its private engine. The engine FIFO replays
/// the seed recursion's order; the loop ends at Reply delivery.
void drive_to_completion(sim::Engine& engine,
                         const std::shared_ptr<QueryExec>& exec) {
  while (!exec->finished && engine.step()) {
  }
  SQUID_REQUIRE(exec->finished,
                "query runtime stalled: engine drained before the Reply");
}

} // namespace

QueryResult SquidSystem::query(const keyword::Query& query,
                               NodeId origin) const {
  // A private engine per synchronous query, started at the injector's
  // clock so lockstep stepping (all events at one timestamp) never moves
  // it — partition windows behave exactly as in the seed path.
  sim::Engine engine(fault_ ? fault_->now() : 0);
  engine.set_fault_injector(fault_);
  auto exec = start_exec(engine, DeliveryMode::kLockstep, query, origin,
                         /*count_only=*/false, /*want_trace=*/trace_enabled_,
                         /*publish=*/true, /*arm_guard=*/true);
  begin_resolution(exec, /*allow_point=*/true);
  drive_to_completion(engine, exec);
  return std::move(exec->result);
}

QueryResult SquidSystem::query(const std::string& text, Rng& rng) const {
  return query(space_.parse(text), ring_.random_node(rng));
}

QueryHandle SquidSystem::query_async(const keyword::Query& query,
                                     NodeId origin,
                                     sim::Engine& engine) const {
  auto exec = start_exec(engine, DeliveryMode::kVirtualTime, query, origin,
                         /*count_only=*/false, /*want_trace=*/trace_enabled_,
                         /*publish=*/true, /*arm_guard=*/true);
  begin_resolution(exec, /*allow_point=*/true);
  return QueryHandle(exec);
}

std::size_t SquidSystem::count(const keyword::Query& query,
                               NodeId origin) const {
  // Same resolution as query(), but data nodes reply with counts instead of
  // shipping elements — the cheap existence/cardinality probe. No
  // QueryResult consumer, so tracing and metrics stay off; like the seed,
  // no point-query fast path.
  sim::Engine engine(fault_ ? fault_->now() : 0);
  engine.set_fault_injector(fault_);
  auto exec = start_exec(engine, DeliveryMode::kLockstep, query, origin,
                         /*count_only=*/true, /*want_trace=*/false,
                         /*publish=*/false, /*arm_guard=*/true);
  begin_resolution(exec, /*allow_point=*/false);
  drive_to_completion(engine, exec);
  return exec->count;
}

// --- Aggregation pushdown (DESIGN.md 4g) ------------------------------------

void SquidSystem::validate_aggregate(const AggregateSpec& spec) const {
  SQUID_REQUIRE(spec.kind != AggregateKind::kNone,
                "aggregate spec needs a kind");
  SQUID_REQUIRE(spec.dim < space_.dims(), "aggregate dimension out of range");
  switch (spec.kind) {
  case AggregateKind::kSum:
  case AggregateKind::kMin:
  case AggregateKind::kMax:
  case AggregateKind::kTopK:
    SQUID_REQUIRE(std::holds_alternative<keyword::NumericCodec>(
                      space_.dimension(spec.dim)),
                  "numeric aggregate over a non-numeric dimension");
    break;
  default:
    break;
  }
  if (spec.kind == AggregateKind::kTopK)
    SQUID_REQUIRE(spec.k >= 1, "top-k needs k >= 1");
}

QueryResult SquidSystem::query_aggregate(const keyword::Query& query,
                                         const AggregateSpec& spec,
                                         NodeId origin) const {
  // Same planning as query() — identical routing, fault draws, and timing —
  // only the scan sites fold instead of shipping. That makes pushdown-vs-
  // ship-all comparisons (bench/abl_aggregation) apples to apples.
  validate_aggregate(spec);
  sim::Engine engine(fault_ ? fault_->now() : 0);
  engine.set_fault_injector(fault_);
  auto exec = start_exec(engine, DeliveryMode::kLockstep, query, origin,
                         /*count_only=*/false, /*want_trace=*/trace_enabled_,
                         /*publish=*/true, /*arm_guard=*/true, &spec);
  begin_resolution(exec, /*allow_point=*/true);
  drive_to_completion(engine, exec);
  return std::move(exec->result);
}

QueryHandle SquidSystem::query_aggregate_async(const keyword::Query& query,
                                               const AggregateSpec& spec,
                                               NodeId origin,
                                               sim::Engine& engine) const {
  validate_aggregate(spec);
  auto exec = start_exec(engine, DeliveryMode::kVirtualTime, query, origin,
                         /*count_only=*/false, /*want_trace=*/trace_enabled_,
                         /*publish=*/true, /*arm_guard=*/true, &spec);
  begin_resolution(exec, /*allow_point=*/true);
  return QueryHandle(exec);
}

std::uint64_t SquidSystem::query_count(const keyword::Query& query,
                                       NodeId origin) const {
  AggregateSpec spec;
  spec.kind = AggregateKind::kCount;
  return query_aggregate(query, spec, origin).aggregate->count;
}

double SquidSystem::query_sum(const keyword::Query& query, std::uint32_t dim,
                              NodeId origin) const {
  AggregateSpec spec;
  spec.kind = AggregateKind::kSum;
  spec.dim = dim;
  return query_aggregate(query, spec, origin).aggregate->sum.value();
}

std::pair<std::optional<double>, std::optional<double>>
SquidSystem::query_min_max(const keyword::Query& query, std::uint32_t dim,
                           NodeId origin) const {
  AggregateSpec spec;
  spec.kind = AggregateKind::kMin; // the partial tracks both extremes
  spec.dim = dim;
  const QueryResult result = query_aggregate(query, spec, origin);
  if (!result.aggregate->has_extremes) return {std::nullopt, std::nullopt};
  return {result.aggregate->min, result.aggregate->max};
}

std::vector<GroupCount> SquidSystem::query_group_by(const keyword::Query& query,
                                                    std::uint32_t dim,
                                                    NodeId origin) const {
  AggregateSpec spec;
  spec.kind = AggregateKind::kGroupBy;
  spec.dim = dim;
  return query_aggregate(query, spec, origin).aggregate->groups;
}

std::vector<TopEntry> SquidSystem::query_top_k(const keyword::Query& query,
                                               std::uint32_t dim,
                                               std::uint32_t k, NodeId origin,
                                               bool largest) const {
  AggregateSpec spec;
  spec.kind = AggregateKind::kTopK;
  spec.dim = dim;
  spec.k = k;
  spec.largest = largest;
  return query_aggregate(query, spec, origin).aggregate->top;
}

QueryResult SquidSystem::query_centralized(const keyword::Query& query,
                                           NodeId origin,
                                           std::size_t max_segments) const {
  SQUID_REQUIRE(ring_.contains(origin), "query origin is not a live node");
  sim::Engine engine(fault_ ? fault_->now() : 0);
  engine.set_fault_injector(fault_);
  auto exec = std::make_shared<QueryExec>();
  QueryExec& ex = *exec;
  ex.id = next_query_id();
  ex.mode = DeliveryMode::kLockstep;
  ex.engine = &engine;
  ex.sys = this;
  ex.config = &config_;
  ex.origin = origin;
  ex.rect = space_.to_rect(query);
  refiner_.validate_query(ex.rect);
  ex.dispatch_budget = 64 * (ring_.size() + 8) + 4 * max_segments;
  ex.routing.insert(origin);
  ex.processing.insert(origin);
  ex.started_at = engine.now();

  // The origin expands the refinement tree by itself (paper 3.4.1's
  // unscalable straw man) and sends one message per cluster. Segments are
  // an over-approximation when the cap bites, so owners filter locally.
  const std::vector<sfc::Segment> segments =
      refiner_.decompose_capped(ex.rect, max_segments);

  std::int32_t span = -1;
#if SQUID_OBS_ENABLED
  if (trace_enabled_) {
    ex.recorder.emplace();
    ex.trace = &*ex.recorder;
    ex.root_span = ex.trace->begin(obs::SpanKind::kQuery, -1, 0, 0);
    ex.trace->at(ex.root_span).node = origin;
    ex.trace->add_path_node(ex.root_span, origin);
    // The origin is the lone processing node; model its decomposition as
    // one refine-descend span so derive_stats sees it.
    span = ex.trace->begin(obs::SpanKind::kRefineDescend, ex.root_span, 0, 0);
    ex.trace->at(span).node = origin;
    ex.trace->at(span).batch = static_cast<std::uint32_t>(segments.size());
  }
#endif

  for (const sfc::Segment& seg : segments) {
    plan_chain(exec, origin, seg, /*covered=*/false, /*event=*/0, span);
  }
  NodeRuntime(this).maybe_complete(exec);
  drive_to_completion(engine, exec);
  return std::move(exec->result);
}

} // namespace squid::core
