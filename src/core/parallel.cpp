// Sharded multi-core message runtime (core/parallel.hpp, DESIGN.md 4f).
//
// Thread/ownership discipline, at a glance:
//
//   * Every ParallelQueryState and every ScanBuffer slot is created on the
//     query's HOME shard thread during planning; the slot address is stable
//     (deque) and ships to the executing shard inside a ShardJob through a
//     mailbox (mutex = happens-before for the slot and the scan payload).
//   * An executing shard writes ONLY its private ScanBuffer plus the
//     query's atomics. The release/acquire chain on scans_outstanding
//     orders every buffer write before the merge at finalize.
//   * The home shard is the only thread that touches QueryExec after
//     launch (planning drain, planning-finished hook, finalize) — the
//     finalize job is routed back to the home inbox.
//
// Determinism (why the answers are bit-equal to kLockstep): planning for
// one query runs single-threaded on its home engine at delay 0, so the
// engine FIFO replays the lockstep delivery order exactly — same routing,
// same timing DAG, same fault verdicts (per-query forked injector), same
// non-scan spans, same scan post order. Scans are pure store sweeps that
// never feed back into planning, so merging their buffers in post order
// reconstructs the lockstep element order and stats no matter which shard
// ran them when.

#include "squid/core/parallel.hpp"

#include <thread>
#include <utility>

#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/util/require.hpp"

namespace squid::core {

namespace {

/// Registry handles for the shard runtime, resolved once (DESIGN.md 4c:
/// static-handle pattern; every call site folds to nothing when the obs
/// layer is compiled out).
struct ShardMetrics {
  obs::Counter& delivered;      ///< jobs + planning deliveries executed
  obs::Counter& handoffs;       ///< jobs staged for a different shard
  obs::Counter& idle_polls;     ///< times a shard worker went to sleep
  obs::HistogramMetric& batch;  ///< jobs per mailbox drain

  static ShardMetrics& get() {
    auto& r = obs::Registry::global();
    static ShardMetrics m{
        r.counter("squid.runtime.shard.messages_delivered"),
        r.counter("squid.runtime.shard.handoffs"),
        r.counter("squid.runtime.shard.idle_polls"),
        r.histogram("squid.runtime.shard.handoff_batch", 1.0, 257.0, 32)};
    return m;
  }
};

} // namespace

// --- ShardMailbox -----------------------------------------------------------

void ShardMailbox::push(ShardJob job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ShardMailbox::push_batch(std::vector<ShardJob>& batch) {
  if (batch.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    jobs_.insert(jobs_.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
  }
  cv_.notify_one();
  batch.clear();
}

std::vector<ShardJob> ShardMailbox::drain_wait(std::uint64_t* idle_waits) {
  std::unique_lock<std::mutex> lk(mu_);
  while (jobs_.empty() && !closed_) {
    if (idle_waits != nullptr) ++*idle_waits;
    cv_.wait(lk);
  }
  std::vector<ShardJob> out;
  out.swap(jobs_); // whole-queue drain: one lock round-trip per batch
  return out;      // empty only when closed
}

std::size_t ShardMailbox::try_drain(std::vector<ShardJob>& out) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t taken = jobs_.size();
  if (taken > 0) {
    out.insert(out.end(), std::make_move_iterator(jobs_.begin()),
               std::make_move_iterator(jobs_.end()));
    jobs_.clear();
  }
  return taken;
}

void ShardMailbox::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

// --- HandoffStager ----------------------------------------------------------

HandoffStager::HandoffStager(std::vector<ShardMailbox>& inboxes, unsigned self,
                             std::size_t batch_limit)
    : inboxes_(&inboxes), staging_(inboxes.size()), self_(self),
      limit_(batch_limit > 0 ? batch_limit : 1) {}

void HandoffStager::stage(overlay::NodeId dest, ShardJob job) {
  const unsigned shard =
      shard_of_node(dest, static_cast<unsigned>(staging_.size()));
  if (shard != self_) ++handoffs_;
  std::vector<ShardJob>& bucket = staging_[shard];
  bucket.push_back(std::move(job));
  if (bucket.size() >= limit_) (*inboxes_)[shard].push_batch(bucket);
}

void HandoffStager::flush() {
  for (std::size_t s = 0; s < staging_.size(); ++s)
    (*inboxes_)[s].push_batch(staging_[s]);
}

// --- ParallelExecutor -------------------------------------------------------

/// One shard's thread-private world: engine, outbound staging, tallies.
struct ParallelExecutor::Shard {
  sim::Engine engine;
  HandoffStager stager;
  std::uint64_t delivered = 0;
  std::uint64_t idle_waits = 0;

  Shard(std::vector<ShardMailbox>& inboxes, unsigned self, std::size_t limit)
      : stager(inboxes, self, limit) {}
};

ParallelExecutor::ParallelExecutor(const SquidSystem& sys, ParallelOptions opts)
    : sys_(&sys), opts_(opts),
      serialize_planning_(sys.config().cache_cluster_owners) {
  SQUID_REQUIRE(opts_.shards >= 1, "query_parallel needs at least one shard");
}

ParallelExecutor::~ParallelExecutor() = default;

ParallelRun ParallelExecutor::run(const std::vector<ParallelQuerySpec>& specs) {
  ParallelRun out;
  if (specs.empty()) return out;
  // Validate on the caller's thread: a bad origin should throw here, not
  // terminate() out of a worker.
  for (const ParallelQuerySpec& spec : specs) {
    SQUID_REQUIRE(sys_->ring().contains(spec.origin),
                  "query_parallel origin is not a live node");
    if (spec.aggregate.has_value()) sys_->validate_aggregate(*spec.aggregate);
  }

  specs_ = &specs;
  const unsigned shards = opts_.shards;
  inboxes_ = std::vector<ShardMailbox>(shards);
  shards_.clear();
  shards_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s)
    shards_.push_back(
        std::make_unique<Shard>(inboxes_, s, opts_.handoff_batch));

  states_.clear();
  for (std::size_t k = 0; k < specs.size(); ++k) {
    states_.emplace_back();
    ParallelQueryState& q = states_.back();
    q.index = k;
    q.home = shard_of_node(specs[k].origin, shards);
    q.executor = this;
    if (opts_.faults != nullptr)
      q.injector.emplace(sim::fork_plan(*opts_.faults, k));
  }
  remaining_.store(specs.size(), std::memory_order_relaxed);

  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (unsigned s = 0; s < shards; ++s)
    threads.emplace_back([this, s] { worker(s); });

  // Stage the launches. With the owner cache on, consecutive queries couple
  // through it, so planning must run in submit order: only query 0 launches
  // now and each planning-finished hook launches the next (scans of earlier
  // queries still overlap later planning). Otherwise all launches go out up
  // front and plannings of different home shards run concurrently.
  const std::size_t first_wave = serialize_planning_ ? 1 : specs.size();
  for (std::size_t k = 0; k < first_wave; ++k) {
    ShardJob job;
    job.kind = ShardJob::Kind::kLaunch;
    job.query = &states_[k];
    inboxes_[states_[k].home].push(std::move(job));
  }

  {
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  for (ShardMailbox& inbox : inboxes_) inbox.close();
  for (std::thread& t : threads) t.join();

  out.results.reserve(specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k)
    out.results.push_back(std::move(states_[k].exec->result));
  if (opts_.faults != nullptr) {
    out.faults.reserve(specs.size());
    for (const ParallelQueryState& q : states_) {
      ParallelFaultTallies t;
      t.rng_draws = q.injector->rng_draws();
      t.dropped = q.injector->dropped();
      t.delayed = q.injector->delayed();
      t.duplicated = q.injector->duplicated();
      out.faults.push_back(t);
    }
  }
  return out;
}

void ParallelExecutor::worker(unsigned shard) {
  Shard& sh = *shards_[shard];
  ShardMetrics& metrics = ShardMetrics::get();
  for (;;) {
    std::vector<ShardJob> batch = inboxes_[shard].drain_wait(&sh.idle_waits);
    if (batch.empty()) break; // closed
    metrics.batch.observe(static_cast<double>(batch.size()));
    for (ShardJob& job : batch) execute(sh, job);
    // Safe point: everything this batch staged goes out together.
    sh.stager.flush();
  }
  metrics.delivered.add(sh.delivered);
  metrics.handoffs.add(sh.stager.handoffs());
  metrics.idle_polls.add(sh.idle_waits);
}

void ParallelExecutor::execute(Shard& sh, ShardJob& job) {
  switch (job.kind) {
  case ShardJob::Kind::kLaunch:
    launch(sh, *job.query);
    break;
  case ShardJob::Kind::kScan: {
    ParallelQueryState& q = *job.query;
    sys_->perform_scan_parallel(*q.exec, job.scan, *job.buffer);
    ++sh.delivered;
    // acq_rel: the release half publishes this buffer's writes down the
    // counter chain; the acquire half picks up every earlier scan's, so
    // whichever thread stages the finalize has the full set ordered
    // before the merge.
    if (q.scans_outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        q.planning_done.load(std::memory_order_acquire))
      stage_finalize(q);
    break;
  }
  case ShardJob::Kind::kFinalize:
    finalize(*job.query);
    break;
  }
}

void ParallelExecutor::launch(Shard& sh, ParallelQueryState& q) {
  const ParallelQuerySpec& spec = (*specs_)[q.index];
  q.exec = sys_->start_exec(
      sh.engine, DeliveryMode::kParallel, spec.query, spec.origin,
      /*count_only=*/false, /*want_trace=*/sys_->tracing(), /*publish=*/true,
      /*arm_guard=*/true,
      spec.aggregate.has_value() ? &*spec.aggregate : nullptr);
  q.exec->par = &q;
  // The forked injector rides the home engine only for this query's
  // planning drain; Engine::admit stays the single choke point per shard.
  if (q.injector.has_value()) sh.engine.set_fault_injector(&*q.injector);
  sys_->begin_resolution(q.exec, /*allow_point=*/true);
  std::uint64_t steps = 0;
  while (sh.engine.step()) ++steps;
  sh.delivered += steps;
  sh.engine.set_fault_injector(nullptr);
}

void ParallelExecutor::finalize(ParallelQueryState& q) {
  QueryExec& ex = *q.exec;
  // Merge in deque order == scan post order == the order lockstep executed
  // the scans — this is what reconstructs the element order bit-exactly.
  for (ScanBuffer& b : q.scans) {
    ex.processing.insert(b.at);
    if (b.touched_data) ex.data_nodes.insert(b.at);
    if (ex.agg.has_value()) {
      // Deque order == scan post order == the lockstep slot order, so the
      // records land exactly where the sequential modes put them.
      ex.agg_scans.push_back(std::move(b.agg));
    } else if (ex.count_only) {
      ex.count += b.count;
      ex.bytes_shipped += b.reply_bytes;
      ex.reply_messages += b.reply_frames;
    } else {
      ex.results.insert(ex.results.end(),
                        std::make_move_iterator(b.elements.begin()),
                        std::make_move_iterator(b.elements.end()));
      ex.bytes_shipped += b.reply_bytes;
      ex.reply_messages += b.reply_frames;
    }
    // Telemetry for the deferred scans, recorded here on the home shard so
    // the scratch is only ever touched single-threaded — the same events,
    // at the same ticks, the sequential modes record inside perform_scan.
    if (ex.telemetry != nullptr) {
      if (!ex.agg.has_value())
        ex.telemetry->record(b.at, obs::LoadKind::kReplyForwarded,
                             b.reply_frames, ex.tick(b.event));
      ex.telemetry->record(b.at, obs::LoadKind::kScanHit, b.keys_matched,
                           ex.tick(b.event));
    }
    if (ex.trace) {
      const std::int32_t id = ex.trace->begin(obs::SpanKind::kLocalScan,
                                              b.span, b.event, ex.tick(b.event));
      obs::Span& s = ex.trace->at(id);
      s.node = b.at;
      s.range_lo = b.segment.lo;
      s.range_hi = b.segment.hi;
      s.keys_scanned = b.keys_scanned;
      s.keys_matched = b.keys_matched;
      s.matches = b.matches;
    }
  }
  ex.reply_posted = true;
  sys_->finalize_query(ex);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock-then-notify so the run() thread cannot slip between its
    // predicate check and the wait.
    std::lock_guard<std::mutex> lk(done_mu_);
    done_cv_.notify_all();
  }
}

void ParallelExecutor::stage_finalize(ParallelQueryState& q) {
  // Planning-done hook and last-scan completion can race here; exactly one
  // wins. Direct push (not staged): progress must not wait for a batch.
  if (q.finalize_staged.exchange(true, std::memory_order_acq_rel)) return;
  ShardJob job;
  job.kind = ShardJob::Kind::kFinalize;
  job.query = &q;
  inboxes_[q.home].push(std::move(job));
}

// --- NodeRuntime seams (called from src/core/runtime.cpp) -------------------

void parallel_post_scan(QueryExec& ex, msg::ScanRequest scan) {
  ParallelQueryState* q = ex.par;
  SQUID_REQUIRE(q != nullptr, "kParallel exec without executor state");
  const overlay::NodeId dest = scan.at;
  scan.slot = static_cast<std::uint32_t>(q->scans.size());
  q->scans.emplace_back(); // stable slot (deque): filled by the executing
  ScanBuffer* buffer = &q->scans.back(); // shard, merged at finalize
  q->scans_outstanding.fetch_add(1, std::memory_order_relaxed);
  ShardJob job;
  job.kind = ShardJob::Kind::kScan;
  job.query = q;
  job.buffer = buffer;
  job.scan = std::move(scan);
  q->executor->shards_[q->home]->stager.stage(dest, std::move(job));
}

void parallel_planning_finished(const std::shared_ptr<QueryExec>& exec) {
  QueryExec& ex = *exec;
  ParallelQueryState* q = ex.par;
  SQUID_REQUIRE(q != nullptr, "kParallel exec without executor state");
  // maybe_complete runs after every delivery; outstanding can only hit zero
  // once planning is fully drained, but guard against the launch-time call
  // for a query that completed at launch re-entering via a later delivery.
  if (q->planning_hook_ran) return;
  q->planning_hook_ran = true;
  ParallelExecutor* executor = q->executor;
  // The owner cache is only touched during planning: release the guard now
  // (not at finalize) so serialized plannings never overlap guards.
  ex.cache_guard.reset();
  // Every scan this query will ever post is staged by now; flush so the
  // scans_outstanding count below can only go down.
  executor->shards_[q->home]->stager.flush();
  q->planning_done.store(true, std::memory_order_release);
  if (q->scans_outstanding.load(std::memory_order_acquire) == 0)
    executor->stage_finalize(*q);
  if (executor->serialize_planning_ &&
      q->index + 1 < executor->specs_->size()) {
    ParallelQueryState& next = executor->states_[q->index + 1];
    ShardJob job;
    job.kind = ShardJob::Kind::kLaunch;
    job.query = &next;
    executor->inboxes_[next.home].push(std::move(job));
  }
}

// --- SquidSystem entry point ------------------------------------------------

ParallelRun SquidSystem::query_parallel(
    const std::vector<ParallelQuerySpec>& specs,
    const ParallelOptions& opts) const {
  ParallelExecutor executor(*this, opts);
  return executor.run(specs);
}

} // namespace squid::core
