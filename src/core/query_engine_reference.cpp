// The seed synchronous query resolver, frozen verbatim as a differential
// oracle (same pattern as the flat_ring/flat_store locks of PR 2): one
// C++ call-stack recursion over a task deque, with fault verdicts drawn
// inline. tests/core/async_differential_test.cpp compares the message-
// driven runtime (query_engine.cpp) against these entry points on twin
// systems — results, QueryStats, derive_stats on traces, the timing DAG,
// and the fault injector's RNG stream must match bit-for-bit.
//
// Deliberately self-contained (its own context struct and local helpers):
// the oracle must not drift when the live engine evolves. Test-only: no
// registry metrics are published. Do not "clean up" shared code into here.

#include <algorithm>
#include <deque>
#include <optional>
#include <set>

#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/trace.hpp"
#include "squid/sfc/cursor.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/require.hpp"

namespace squid::core {

using overlay::in_open_closed;

struct SquidSystem::RefQueryContext {
  sfc::Rect rect;
  std::set<NodeId> routing;
  std::set<NodeId> processing;
  std::set<NodeId> data_nodes;
  std::size_t messages = 0;
  bool count_only = false; ///< count matches without shipping elements
  std::size_t count = 0;
  std::vector<DataElement> results;
  /// Message-dependency DAG; event 0 is the query start at the origin.
  std::vector<TimingEvent> timing{TimingEvent{}};
#if SQUID_OBS_ENABLED
  /// Non-null only while this query records a trace.
  obs::TraceRecorder* trace = nullptr;
#else
  static constexpr obs::TraceRecorder* trace = nullptr;
#endif
  /// Hop-depth of each timing event (= virtual-clock tick of delivery).
  /// Maintained parallel to `timing`, but only while tracing.
  std::vector<sim::Time> depth;
  /// Pending cross-node work: clusters already assigned to their owner,
  /// plus the timing event that delivered them and the dispatch span that
  /// sent them (parent for the receiving node's spans).
  struct Task {
    NodeId node;
    std::vector<sfc::ClusterNode> clusters;
    std::int32_t event = 0;
    std::int32_t span = -1;
  };
  std::deque<Task> tasks;

  std::int32_t add_event(std::int32_t parent, std::size_t hops) {
    timing.push_back(TimingEvent{parent, static_cast<std::uint32_t>(hops)});
    if (trace)
      depth.push_back(depth[static_cast<std::size_t>(parent)] + hops);
    return static_cast<std::int32_t>(timing.size() - 1);
  }
  /// Virtual-clock tick of `event`. Only valid while tracing.
  sim::Time tick(std::int32_t event) const {
    return depth[static_cast<std::size_t>(event)];
  }
  /// Safety valve for inconsistent rings (heavy churn): a real query would
  /// time out; we stop dispatching and return what was found.
  std::size_t dispatch_budget = 0;

  // --- Fault accounting (docs/FAULT_MODEL.md) ------------------------------

  bool complete = true; ///< false once any sub-query is abandoned
  std::size_t retries = 0;
  std::size_t failed_clusters = 0;

  /// Outcome of one fault-aware message-leg delivery (attempt_leg).
  struct Leg {
    bool delivered = true;
    std::size_t extra_messages = 0; ///< resends + duplicate copies paid
    std::size_t resends = 0;
    sim::Time penalty = 0; ///< backoff waits + delivery delay, in ticks
  };

  /// Deliver one message leg from -> to under the injector, resending with
  /// exponential backoff (cfg.retry_backoff << attempt) up to
  /// cfg.send_retries times. Null injector: immediate clean delivery.
  Leg attempt_leg(sim::FaultInjector* fault, const SquidConfig& cfg,
                  NodeId from, NodeId to) {
    Leg out;
    if (fault == nullptr) return out;
    const unsigned attempts = 1 + cfg.send_retries;
    for (unsigned a = 0; a < attempts; ++a) {
      const sim::FaultInjector::Delivery verdict = fault->decide(from, to);
      if (verdict.delivered) {
        out.penalty += verdict.extra_delay;
        out.extra_messages = out.resends + (verdict.duplicate ? 1 : 0);
        return out;
      }
      if (a + 1 < attempts) {
        out.penalty += cfg.retry_backoff << a;
        ++out.resends;
      }
    }
    out.delivered = false;
    fault->report_timeout(from, to);
    return out;
  }

  /// Account a *delivered* leg's fault costs.
  void pay_leg(const Leg& leg, NodeId to, std::int32_t event,
               std::int32_t span) {
    messages += leg.extra_messages;
    retries += leg.resends;
    if (trace && (leg.extra_messages > 0 || leg.penalty > 0)) {
      const std::int32_t id =
          trace->begin(obs::SpanKind::kRetry, span, event, tick(event));
      obs::Span& s = trace->at(id);
      s.node = to;
      s.messages = static_cast<std::uint32_t>(leg.extra_messages);
      s.batch = static_cast<std::uint32_t>(leg.resends);
      s.hops = static_cast<std::uint32_t>(leg.penalty);
      s.end = s.start + leg.penalty;
    }
  }

  /// Account a leg abandoned for good.
  void fail_leg(std::size_t resends, sim::Time penalty, std::size_t units,
                NodeId to, std::int32_t event, std::int32_t span) {
    messages += resends;
    retries += resends;
    failed_clusters += units;
    complete = false;
    if (trace) {
      const std::int32_t id =
          trace->begin(obs::SpanKind::kFault, span, event, tick(event));
      obs::Span& s = trace->at(id);
      s.node = to;
      s.messages = static_cast<std::uint32_t>(resends);
      s.batch = static_cast<std::uint32_t>(units);
      s.hops = static_cast<std::uint32_t>(penalty);
      s.end = s.start + penalty;
    }
  }
};

namespace {

/// The largest prefix of `seg` owned by node `at` (whose range is
/// (pred, at]), given that `at` owns seg.lo. Returns the clipped segment.
sfc::Segment ref_clip_local(overlay::NodeId at, sfc::Segment seg) {
  if (at < seg.lo) return seg; // wrapped ownership: owns through space end
  return {seg.lo, std::min(seg.hi, at)};
}

/// True when the whole segment lives on `at` (which owns seg.lo).
bool ref_entirely_local(overlay::NodeId at, const sfc::Segment& seg) {
  return at >= seg.hi || at < seg.lo;
}

/// Longest root-to-leaf hop total of a timing DAG.
std::size_t ref_critical_path_of(const std::vector<TimingEvent>& timing) {
  std::vector<std::size_t> depth(timing.size(), 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i < timing.size(); ++i) {
    depth[i] = depth[static_cast<std::size_t>(timing[i].parent)] +
               timing[i].hops;
    best = std::max(best, depth[i]);
  }
  return best;
}

} // namespace

void SquidSystem::ref_scan_local(RefQueryContext& ctx, NodeId at,
                                 sfc::Segment seg, bool covered,
                                 std::int32_t event, std::int32_t span) const {
  ctx.processing.insert(at);
  std::uint64_t scanned = 0;
  std::uint64_t matched = 0;
  std::uint64_t collected = 0;
  // The oracle reads the store through the same merged-tier walk as the
  // runtime's scan_segment; the planning it freezes is untouched.
  store_.scan(seg.lo, seg.hi, [&](u128, const StoredKey& key) {
    ++scanned;
    if (!covered && !ctx.rect.contains(key.point)) return;
    ++matched;
    collected += key.elements.size();
    if (ctx.count_only) {
      ctx.count += key.elements.size();
    } else {
      ctx.results.insert(ctx.results.end(), key.elements.begin(),
                         key.elements.end());
    }
  });
  if (matched > 0) ctx.data_nodes.insert(at);
  if (ctx.trace) {
    const std::int32_t id = ctx.trace->begin(obs::SpanKind::kLocalScan, span,
                                             event, ctx.tick(event));
    obs::Span& s = ctx.trace->at(id);
    s.node = at;
    s.range_lo = seg.lo;
    s.range_hi = seg.hi;
    s.keys_scanned = scanned;
    s.keys_matched = matched;
    s.matches = collected;
  }
}

void SquidSystem::ref_collect_segment(RefQueryContext& ctx, NodeId at,
                                      sfc::Segment seg, bool covered,
                                      std::int32_t event,
                                      std::int32_t span) const {
  const NodeId pred = ring_.predecessor_of(at);
  if (!in_open_closed(pred, at, seg.lo)) {
    if (ctx.dispatch_budget == 0) {
      ctx.complete = false;
      return;
    }
    --ctx.dispatch_budget;
    const overlay::RouteResult r = ring_.route(at, seg.lo);
    if (!r.ok) {
      ctx.fail_leg(0, 0, 1, at, event, span);
      return;
    }
    ctx.messages += 1;
    ctx.routing.insert(r.path.begin(), r.path.end());
    const RefQueryContext::Leg leg =
        ctx.attempt_leg(fault_, config_, at, r.dest);
    const sim::Time sent = ctx.trace ? ctx.tick(event) : 0;
    const std::int32_t arrive = ctx.add_event(
        event, r.hops() + static_cast<std::size_t>(leg.penalty));
    if (ctx.trace) {
      const std::int32_t id =
          ctx.trace->begin(obs::SpanKind::kRouteHop, span, arrive, sent);
      ctx.trace->set_path(id, r.path.begin(), r.path.end());
      obs::Span& s = ctx.trace->at(id);
      s.node = r.dest;
      s.hops = static_cast<std::uint32_t>(r.hops());
      s.messages = 1;
      s.end = ctx.tick(arrive);
      span = id;
    }
    if (!leg.delivered) {
      ctx.fail_leg(leg.resends, leg.penalty, 1, r.dest, event, span);
      return;
    }
    ctx.pay_leg(leg, r.dest, event, span);
    at = r.dest;
    event = arrive;
  }
  for (;;) {
    const sfc::Segment local = ref_clip_local(at, seg);
    ref_scan_local(ctx, at, local, covered, event, span);
    if (ref_entirely_local(at, seg)) return;
    if (ctx.dispatch_budget == 0) {
      ctx.complete = false;
      return;
    }
    --ctx.dispatch_budget;
    const NodeId next = ring_.successor_of((at + 1) & ring_.id_mask());
    const RefQueryContext::Leg leg =
        ctx.attempt_leg(fault_, config_, at, next);
    ctx.messages += 1;
    ctx.routing.insert(at);
    ctx.routing.insert(next);
    seg.lo = local.hi + 1;
    const sim::Time sent = ctx.trace ? ctx.tick(event) : 0;
    const std::int32_t arrive = ctx.add_event(
        event, 1 + static_cast<std::size_t>(leg.penalty)); // neighbor forward
    if (ctx.trace) {
      const std::int32_t id =
          ctx.trace->begin(obs::SpanKind::kRouteHop, span, arrive, sent);
      ctx.trace->add_path_node(id, at);
      ctx.trace->add_path_node(id, next);
      obs::Span& s = ctx.trace->at(id);
      s.node = next;
      s.hops = 1;
      s.messages = 1;
      s.end = ctx.tick(arrive);
      span = id;
    }
    if (!leg.delivered) {
      ctx.fail_leg(leg.resends, leg.penalty, 1, next, event, span);
      return;
    }
    ctx.pay_leg(leg, next, event, span);
    at = next;
    event = arrive;
  }
}

void SquidSystem::ref_collect_covered(RefQueryContext& ctx, NodeId at,
                                      sfc::Segment seg, std::int32_t event,
                                      std::int32_t span) const {
  ref_collect_segment(ctx, at, seg, /*covered=*/true, event, span);
}

void SquidSystem::ref_dispatch_remote(
    RefQueryContext& ctx, NodeId from,
    const std::vector<std::pair<u128, sfc::ClusterNode>>& clusters,
    std::int32_t event, std::int32_t span) const {
  std::size_t i = 0;
  while (i < clusters.size()) {
    if (ctx.dispatch_budget == 0) {
      ctx.complete = false;
      return;
    }
    --ctx.dispatch_budget;
    const u128 head_lo = clusters[i].first;

    std::int32_t dspan = -1;
    if (ctx.trace) {
      dspan = ctx.trace->begin(obs::SpanKind::kClusterDispatch, span, event,
                               ctx.tick(event));
      obs::Span& s = ctx.trace->at(dspan);
      s.level = clusters[i].second.level;
      s.range_lo = head_lo;
      s.range_hi = head_lo;
    }

    NodeId dest = 0;
    bool resolved = false;
    bool from_cache = false;
    if (config_.cache_cluster_owners) {
      const auto cache_it = owner_cache_.find(from);
      if (cache_it != owner_cache_.end()) {
        const auto hit = cache_it->second.find(
            {clusters[i].second.level, clusters[i].second.prefix});
        if (hit != cache_it->second.end() && ring_.contains(hit->second) &&
            in_open_closed(ring_.predecessor_of(hit->second), hit->second,
                           head_lo)) {
          dest = hit->second;
          resolved = true;
          from_cache = true;
          ++cache_stats_.hits;
          ctx.messages += 1; // one direct message, no overlay routing
          ctx.routing.insert(from);
          ctx.routing.insert(dest);
          if (ctx.trace) {
            const std::int32_t id = ctx.trace->begin(
                obs::SpanKind::kCacheHit, dspan, event, ctx.tick(event));
            ctx.trace->add_path_node(id, from);
            ctx.trace->add_path_node(id, dest);
            obs::Span& s = ctx.trace->at(id);
            s.node = dest;
            s.level = clusters[i].second.level;
            s.messages = 1;
            s.end = s.start + 1; // direct send: one hop
          }
        } else if (hit != cache_it->second.end()) {
          ++cache_stats_.stale;
          cache_it->second.erase(hit);
        }
      }
      if (!resolved) {
        ++cache_stats_.misses;
        if (ctx.trace) {
          const std::int32_t id = ctx.trace->begin(
              obs::SpanKind::kCacheMiss, dspan, event, ctx.tick(event));
          obs::Span& s = ctx.trace->at(id);
          s.node = from;
          s.level = clusters[i].second.level;
        }
      }
    }

    std::size_t dispatch_hops = 1; // direct send when the cache resolved it
    if (!resolved) {
      const overlay::RouteResult r = ring_.route(from, head_lo);
      if (!r.ok) {
        ctx.fail_leg(0, 0, 1, from, event, dspan);
        ++i;
        continue;
      }
      ctx.messages += 1; // the head sub-query
      ctx.routing.insert(r.path.begin(), r.path.end());
      dest = r.dest;
      dispatch_hops = std::max<std::size_t>(r.hops(), 1);
      if (ctx.trace) {
        const std::int32_t id = ctx.trace->begin(
            obs::SpanKind::kRouteHop, dspan, event, ctx.tick(event));
        ctx.trace->set_path(id, r.path.begin(), r.path.end());
        obs::Span& s = ctx.trace->at(id);
        s.node = dest;
        s.hops = static_cast<std::uint32_t>(r.hops());
        s.messages = 1;
        s.end = s.start + r.hops();
      }
    }

    const RefQueryContext::Leg leg =
        ctx.attempt_leg(fault_, config_, from, dest);
    if (!leg.delivered) {
      ctx.add_event(event, static_cast<std::size_t>(leg.penalty));
      ctx.fail_leg(leg.resends, leg.penalty, 1, dest, event, dspan);
      ++i;
      continue;
    }
    ctx.pay_leg(leg, dest, event, dspan);

    std::size_t batch_end = i + 1;
    bool reply_message = false;
    if (config_.aggregate_subclusters) {
      if (!from_cache) {
        ctx.messages += 1; // the owner's identifier reply
        reply_message = true;
      }
      if (config_.cache_cluster_owners) {
        owner_cache_[from][{clusters[i].second.level,
                            clusters[i].second.prefix}] = dest;
      }
      const NodeId dest_pred = ring_.predecessor_of(dest);
      while (batch_end < clusters.size() &&
             in_open_closed(dest_pred, dest, clusters[batch_end].first)) {
        ++batch_end;
      }
      if (batch_end > i + 1) ctx.messages += 1; // one aggregated batch
    }
    const std::int32_t batch_event = ctx.add_event(
        event, dispatch_hops + static_cast<std::size_t>(leg.penalty) +
                   (batch_end > i + 1 ? 2 : 0));
    if (ctx.trace) {
      if (batch_end > i + 1) {
        const std::int32_t id = ctx.trace->begin(
            obs::SpanKind::kAggregationMerge, dspan, event, ctx.tick(event));
        obs::Span& s = ctx.trace->at(id);
        s.node = from;
        s.batch = static_cast<std::uint32_t>(batch_end - i - 1);
        s.messages = 1; // the aggregated batch
        s.end = ctx.tick(batch_event);
      }
      obs::Span& s = ctx.trace->at(dspan);
      s.node = dest;
      s.event = batch_event;
      s.batch = static_cast<std::uint32_t>(batch_end - i);
      s.hops = static_cast<std::uint32_t>(dispatch_hops);
      s.messages = reply_message ? 1 : 0; // the identifier reply, if paid
      s.range_hi = clusters[batch_end - 1].first;
      s.end = ctx.tick(batch_event);
    }
    std::vector<sfc::ClusterNode> batch;
    batch.reserve(batch_end - i);
    for (std::size_t k = i; k < batch_end; ++k)
      batch.push_back(clusters[k].second);
    ctx.tasks.push_back({dest, std::move(batch), batch_event, dspan});
    i = batch_end;
  }
}

void SquidSystem::ref_resolve_at_node(RefQueryContext& ctx, NodeId at,
                                      std::vector<sfc::ClusterNode> clusters,
                                      std::int32_t event,
                                      std::int32_t span) const {
  ctx.processing.insert(at);
  if (ctx.trace) {
    const std::int32_t id = ctx.trace->begin(obs::SpanKind::kRefineDescend,
                                             span, event, ctx.tick(event));
    obs::Span& s = ctx.trace->at(id);
    s.node = at;
    s.batch = static_cast<std::uint32_t>(clusters.size());
    span = id;
  }
  const NodeId pred = ring_.predecessor_of(at);
  std::vector<std::pair<u128, sfc::ClusterNode>> remote; // (segment lo, node)

  sfc::RefineCursor cursor(*curve_);
  const unsigned dims = curve_->dims();
  const u128 fanout = cursor.fanout();
  using sfc::CellRelation;
  struct WorkItem {
    sfc::ClusterNode node;
    CellRelation relation;
    bool classified = false;
  };
  std::deque<WorkItem> work;
  for (const auto& cluster : clusters) work.push_back({cluster, {}, false});
  while (!work.empty()) {
    const WorkItem item = work.front();
    work.pop_front();
    const sfc::ClusterNode cluster = item.node;
    CellRelation relation = item.relation;
    if (!item.classified) {
      cursor.seek(cluster.prefix, cluster.level);
      relation = cursor.relation_to(ctx.rect);
    }
    if (relation == CellRelation::disjoint) {
      if (ctx.trace) {
        const sfc::Segment pruned = refiner_.segment_of(cluster);
        const std::int32_t id = ctx.trace->begin(obs::SpanKind::kPrune, span,
                                                 event, ctx.tick(event));
        obs::Span& s = ctx.trace->at(id);
        s.node = at;
        s.level = cluster.level;
        s.range_lo = pruned.lo;
        s.range_hi = pruned.hi;
      }
      continue;
    }
    const sfc::Segment seg = refiner_.segment_of(cluster);
    if (relation == CellRelation::covered) {
      ref_collect_covered(ctx, at, seg, event, span);
      continue;
    }
    const bool owns_lo = in_open_closed(pred, at, seg.lo);
    if (owns_lo && ref_entirely_local(at, seg)) {
      ref_scan_local(ctx, at, seg, /*covered=*/false, event, span);
      continue;
    }
    if (item.classified) cursor.seek(cluster.prefix, cluster.level);
    for (u128 w = 0; w < fanout; ++w) {
      const auto rel = cursor.classify_child(w, ctx.rect);
      const sfc::ClusterNode child{
          (dims >= 128 ? 0 : cluster.prefix << dims) | w, cluster.level + 1};
      if (rel == CellRelation::disjoint) {
        if (ctx.trace) {
          const sfc::Segment pruned = refiner_.segment_of(child);
          const std::int32_t id = ctx.trace->begin(
              obs::SpanKind::kPrune, span, event, ctx.tick(event));
          obs::Span& s = ctx.trace->at(id);
          s.node = at;
          s.level = child.level;
          s.range_lo = pruned.lo;
          s.range_hi = pruned.hi;
        }
        continue;
      }
      const u128 child_lo = refiner_.segment_of(child).lo;
      if (in_open_closed(pred, at, child_lo)) {
        work.push_back({child, rel, true});
      } else {
        remote.emplace_back(child_lo, child);
      }
    }
  }

  std::sort(remote.begin(), remote.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ref_dispatch_remote(ctx, at, remote, event, span);
}

QueryResult SquidSystem::query_reference(const keyword::Query& query,
                                         NodeId origin) const {
  SQUID_REQUIRE(ring_.contains(origin), "query origin is not a live node");
  std::optional<ScopedCacheWriter> cache_guard;
  if (config_.cache_cluster_owners) cache_guard.emplace(*cache_writers_);
  RefQueryContext ctx;
  ctx.rect = space_.to_rect(query);
  refiner_.validate_query(ctx.rect);
  ctx.dispatch_budget = 64 * (ring_.size() + 8); // churn safety valve
  ctx.routing.insert(origin);

  std::int32_t root = -1;
#if SQUID_OBS_ENABLED
  obs::TraceRecorder recorder;
  if (trace_enabled_) {
    ctx.trace = &recorder;
    ctx.depth.push_back(0); // event 0: the query start
    root = recorder.begin(obs::SpanKind::kQuery, -1, 0, 0);
    recorder.at(root).node = origin;
    recorder.add_path_node(root, origin);
  }
#endif

  bool is_point = true;
  for (const auto& iv : ctx.rect.dims) is_point &= (iv.lo == iv.hi);
  if (is_point) {
    sfc::Point point;
    for (const auto& iv : ctx.rect.dims) point.push_back(iv.lo);
    const u128 index = curve_->index_of(point);
    const overlay::RouteResult r = ring_.route(origin, index);
    if (r.ok) {
      ctx.messages += 1;
      ctx.routing.insert(r.path.begin(), r.path.end());
      const RefQueryContext::Leg leg =
          ctx.attempt_leg(fault_, config_, origin, r.dest);
      const std::int32_t event =
          ctx.add_event(0, r.hops() + static_cast<std::size_t>(leg.penalty));
      std::int32_t span = root;
      if (ctx.trace) {
        const std::int32_t id =
            ctx.trace->begin(obs::SpanKind::kRouteHop, root, event, 0);
        ctx.trace->set_path(id, r.path.begin(), r.path.end());
        obs::Span& s = ctx.trace->at(id);
        s.node = r.dest;
        s.hops = static_cast<std::uint32_t>(r.hops());
        s.messages = 1;
        s.end = ctx.tick(event);
        span = id;
      }
      if (leg.delivered) {
        ctx.pay_leg(leg, r.dest, 0, span);
        ref_scan_local(ctx, r.dest, sfc::Segment{index, index},
                       /*covered=*/true, event, span);
      } else {
        ctx.fail_leg(leg.resends, leg.penalty, 1, r.dest, 0, span);
      }
    } else {
      ctx.fail_leg(0, 0, 1, origin, 0, root);
    }
  } else {
    ctx.tasks.push_back(
        {origin, std::vector<sfc::ClusterNode>{{0, 0}}, 0, root});
    while (!ctx.tasks.empty()) {
      auto task = std::move(ctx.tasks.front());
      ctx.tasks.pop_front();
      ref_resolve_at_node(ctx, task.node, std::move(task.clusters),
                          task.event, task.span);
    }
  }

  QueryResult result;
  result.complete = ctx.complete;
  result.elements = std::move(ctx.results);
  result.stats.matches = result.elements.size();
  result.stats.routing_nodes = ctx.routing.size();
  result.stats.processing_nodes = ctx.processing.size();
  result.stats.data_nodes = ctx.data_nodes.size();
  result.stats.messages = ctx.messages;
  result.stats.retries = ctx.retries;
  result.stats.failed_clusters = ctx.failed_clusters;
  result.timing = std::move(ctx.timing);
  result.stats.critical_path_hops = ref_critical_path_of(result.timing);
#if SQUID_OBS_ENABLED
  if (ctx.trace) {
    recorder.at(root).end =
        static_cast<sim::Time>(result.stats.critical_path_hops);
    result.trace = std::make_shared<const obs::Trace>(recorder.take());
  }
#endif
  return result;
}

std::size_t SquidSystem::count_reference(const keyword::Query& query,
                                         NodeId origin) const {
  SQUID_REQUIRE(ring_.contains(origin), "query origin is not a live node");
  std::optional<ScopedCacheWriter> cache_guard;
  if (config_.cache_cluster_owners) cache_guard.emplace(*cache_writers_);
  RefQueryContext ctx;
  ctx.rect = space_.to_rect(query);
  refiner_.validate_query(ctx.rect);
  ctx.dispatch_budget = 64 * (ring_.size() + 8);
  ctx.count_only = true;
  ctx.routing.insert(origin);
  ctx.tasks.push_back({origin, std::vector<sfc::ClusterNode>{{0, 0}}, 0, -1});
  while (!ctx.tasks.empty()) {
    auto task = std::move(ctx.tasks.front());
    ctx.tasks.pop_front();
    ref_resolve_at_node(ctx, task.node, std::move(task.clusters), task.event,
                        task.span);
  }
  return ctx.count;
}

QueryResult SquidSystem::query_centralized_reference(
    const keyword::Query& query, NodeId origin,
    std::size_t max_segments) const {
  SQUID_REQUIRE(ring_.contains(origin), "query origin is not a live node");
  RefQueryContext ctx;
  ctx.rect = space_.to_rect(query);
  refiner_.validate_query(ctx.rect);
  ctx.dispatch_budget = 64 * (ring_.size() + 8) + 4 * max_segments;
  ctx.routing.insert(origin);
  ctx.processing.insert(origin);

  const std::vector<sfc::Segment> segments =
      refiner_.decompose_capped(ctx.rect, max_segments);

  std::int32_t root = -1;
  std::int32_t span = -1;
#if SQUID_OBS_ENABLED
  obs::TraceRecorder recorder;
  if (trace_enabled_) {
    ctx.trace = &recorder;
    ctx.depth.push_back(0);
    root = recorder.begin(obs::SpanKind::kQuery, -1, 0, 0);
    recorder.at(root).node = origin;
    recorder.add_path_node(root, origin);
    span = recorder.begin(obs::SpanKind::kRefineDescend, root, 0, 0);
    recorder.at(span).node = origin;
    recorder.at(span).batch = static_cast<std::uint32_t>(segments.size());
  }
#endif

  for (const sfc::Segment& seg : segments) {
    ref_collect_segment(ctx, origin, seg, /*covered=*/false, /*event=*/0,
                        span);
  }

  QueryResult result;
  result.complete = ctx.complete;
  result.elements = std::move(ctx.results);
  result.stats.matches = result.elements.size();
  result.stats.routing_nodes = ctx.routing.size();
  result.stats.processing_nodes = ctx.processing.size();
  result.stats.data_nodes = ctx.data_nodes.size();
  result.stats.messages = ctx.messages;
  result.stats.retries = ctx.retries;
  result.stats.failed_clusters = ctx.failed_clusters;
  result.timing = std::move(ctx.timing);
  result.stats.critical_path_hops = ref_critical_path_of(result.timing);
#if SQUID_OBS_ENABLED
  if (ctx.trace) {
    recorder.at(root).end =
        static_cast<sim::Time>(result.stats.critical_path_hops);
    result.trace = std::make_shared<const obs::Trace>(recorder.take());
  }
#endif
  return result;
}

} // namespace squid::core
