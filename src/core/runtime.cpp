// NodeRuntime + QueryExec leg machinery (DESIGN.md 4e).
//
// The handlers a delivery runs live in query_engine.cpp as SquidSystem
// methods (they read ring/store/refiner state); this file owns the generic
// runtime: scheduling arrivals, dispatching on message type, counting
// outstanding work, and the fault-aware leg accounting shared by every
// planning site.

#include "squid/core/runtime.hpp"

#include "squid/core/parallel.hpp"
#include "squid/core/system.hpp"
#include "squid/sim/fault.hpp"

namespace squid::core {

QueryExec::Leg QueryExec::attempt_leg(NodeId from, NodeId to) {
  Leg out;
  sim::FaultInjector* fault = engine->fault_injector();
  if (fault == nullptr) return out;
  const unsigned attempts = 1 + config->send_retries;
  for (unsigned a = 0; a < attempts; ++a) {
    const sim::SendOutcome verdict = engine->admit(from, to);
    if (verdict.delivered) {
      out.penalty += verdict.extra_delay;
      out.extra_messages = out.resends + (verdict.duplicate ? 1 : 0);
      return out;
    }
    if (a + 1 < attempts) {
      out.penalty += config->retry_backoff << a;
      ++out.resends;
    }
  }
  out.delivered = false;
  fault->report_timeout(from, to);
  return out;
}

void QueryExec::pay_leg(const Leg& leg, NodeId to, std::int32_t event,
                        std::int32_t span) {
  messages += leg.extra_messages;
  retries += leg.resends;
  if (trace && (leg.extra_messages > 0 || leg.penalty > 0)) {
    const std::int32_t id =
        trace->begin(obs::SpanKind::kRetry, span, event, tick(event));
    obs::Span& s = trace->at(id);
    s.node = to;
    s.messages = static_cast<std::uint32_t>(leg.extra_messages);
    s.batch = static_cast<std::uint32_t>(leg.resends);
    s.hops = static_cast<std::uint32_t>(leg.penalty);
    s.end = s.start + leg.penalty;
  }
}

void QueryExec::fail_leg(std::size_t resends, sim::Time penalty,
                         std::size_t units, NodeId to, std::int32_t event,
                         std::int32_t span) {
  messages += resends;
  retries += resends;
  failed_clusters += units;
  complete = false;
  if (trace) {
    const std::int32_t id =
        trace->begin(obs::SpanKind::kFault, span, event, tick(event));
    obs::Span& s = trace->at(id);
    s.node = to;
    s.messages = static_cast<std::uint32_t>(resends);
    s.batch = static_cast<std::uint32_t>(units);
    s.hops = static_cast<std::uint32_t>(penalty);
    s.end = s.start + penalty;
  }
}

namespace {

/// Timing-DAG event a message delivers under; -1 for a Reply (replies are
/// completion markers, delivered immediately — the seed never charged the
/// origin's result assembly as a hop).
std::int32_t event_of(const msg::Message& message) {
  struct V {
    std::int32_t operator()(const msg::ResolveRequest& r) const {
      return r.event;
    }
    std::int32_t operator()(const msg::ClusterDispatch& d) const {
      return d.event;
    }
    std::int32_t operator()(const msg::ScanRequest& s) const {
      return s.event;
    }
    std::int32_t operator()(const msg::Reply&) const { return -1; }
    std::int32_t operator()(const msg::PublishRequest& p) const {
      return p.event;
    }
    std::int32_t operator()(const msg::RetractRequest& r) const {
      return r.event;
    }
  };
  return std::visit(V{}, message);
}

} // namespace

void NodeRuntime::post(const std::shared_ptr<QueryExec>& exec,
                       msg::Message message) const {
  QueryExec& ex = *exec;
  sim::Engine& engine = *ex.engine;
  if (auto* scan = std::get_if<msg::ScanRequest>(&message); scan && ex.agg) {
    // Aggregate pushdown: stamp the spec so the scan site folds instead of
    // shipping, and assign the scan's record slot in post order (identical
    // across delivery modes; kParallel allocates from its own scan deque,
    // which is filled in the same post order).
    scan->agg = *ex.agg;
    if (ex.mode != DeliveryMode::kParallel) {
      scan->slot = static_cast<std::uint32_t>(ex.agg_scans.size());
      ex.agg_scans.emplace_back();
    }
  }
  if (ex.mode == DeliveryMode::kParallel) {
    // Scans are order-insensitive store sweeps: hand them off to the shard
    // owning the scanned node. Everything else is planning and stays on the
    // home-shard engine at delay 0, replaying the lockstep order below.
    if (auto* scan = std::get_if<msg::ScanRequest>(&message)) {
      parallel_post_scan(ex, std::move(*scan));
      return;
    }
  }
  sim::Time delay = 0;
  if (ex.mode == DeliveryMode::kVirtualTime) {
    const std::int32_t event = event_of(message);
    if (event >= 0) {
      // Deliver at the message's timing-DAG tick on the shared clock. The
      // poster runs at its own event's tick, so the target is never in the
      // past; the max() guards the zero-hop case.
      const sim::Time target = ex.started_at + ex.tick(event);
      delay = target > engine.now() ? target - engine.now() : 0;
    }
  }
  ++ex.outstanding;
  const NodeRuntime runtime = *this;
  engine.schedule(delay, [runtime, exec, m = std::move(message)]() {
    runtime.deliver(exec, m);
    --exec->outstanding;
    runtime.maybe_complete(exec);
  });
}

void NodeRuntime::deliver(const std::shared_ptr<QueryExec>& exec,
                          const msg::Message& message) const {
  struct V {
    const NodeRuntime& rt;
    const std::shared_ptr<QueryExec>& exec;
    void operator()(const msg::ResolveRequest& r) const {
      rt.sys_->handle_resolve(exec, r.at, r.clusters.clusters, r.event,
                              r.span);
    }
    void operator()(const msg::ClusterDispatch& d) const {
      std::vector<sfc::ClusterNode> clusters;
      clusters.reserve(1 + d.batch.clusters.size());
      clusters.push_back(d.head);
      clusters.insert(clusters.end(), d.batch.clusters.begin(),
                      d.batch.clusters.end());
      rt.sys_->handle_resolve(exec, d.to, std::move(clusters), d.event,
                              d.span);
    }
    void operator()(const msg::ScanRequest& s) const {
      rt.sys_->perform_scan(*exec, s);
    }
    void operator()(const msg::Reply&) const {
      rt.sys_->finalize_query(*exec);
    }
    void operator()(const msg::PublishRequest&) const {
      // Update frames ride the update plane (core/update.hpp), which owns
      // its own safe-point commit discipline; a query must never post one.
      SQUID_REQUIRE(false, "update frame delivered inside a query exec");
    }
    void operator()(const msg::RetractRequest&) const {
      SQUID_REQUIRE(false, "update frame delivered inside a query exec");
    }
  };
  std::visit(V{*this, exec}, message);
}

void NodeRuntime::maybe_complete(const std::shared_ptr<QueryExec>& exec) const {
  QueryExec& ex = *exec;
  if (ex.mode == DeliveryMode::kParallel) {
    // outstanding counts only planning messages here (scans are handed
    // off); zero means planning is done. The executor takes over: it joins
    // planning with the scan countdown and finalizes on the home shard.
    if (ex.outstanding == 0) parallel_planning_finished(exec);
    return;
  }
  if (ex.outstanding != 0 || ex.reply_posted) return;
  ex.reply_posted = true;
  msg::Reply reply;
  reply.query = ex.id;
  reply.from = ex.origin;
  reply.to = ex.origin;
  reply.complete = ex.complete;
  reply.count = ex.count_only ? ex.count : ex.results.size();
  // Result data accumulated at the origin as scans delivered; the in-memory
  // Reply is the completion marker and carries only the summary. (On the
  // wire — serialize.cpp — a Reply ships elements too.)
  post(exec, std::move(reply));
}

} // namespace squid::core
