#include "squid/core/serialize.hpp"

#include <bit>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <tuple>
#include <utility>

#include "squid/util/require.hpp"

namespace squid::core {

namespace {

constexpr const char* kMagic = "SQUID-SNAPSHOT-1";

void write_string(std::ostream& out, const std::string& s) {
  out << s.size() << ':' << s;
}

std::string read_string(std::istream& in) {
  std::size_t length = 0;
  char colon = 0;
  in >> length >> colon;
  SQUID_REQUIRE(in && colon == ':', "snapshot: malformed string header");
  std::string s(length, '\0');
  in.read(s.data(), static_cast<std::streamsize>(length));
  SQUID_REQUIRE(in, "snapshot: truncated string");
  return s;
}

// --- Query-message encoding (core/messages.hpp) ----------------------------
// Same text conventions as snapshots: whitespace-separated fields, decimal
// u128 ids, length-prefixed strings. Every read is checked so truncated
// input throws instead of yielding a half-built message.

constexpr const char* kMsgMagic = "SQUID-MSG-1";

u128 read_id(std::istream& in) {
  std::string text;
  in >> text;
  SQUID_REQUIRE(in && !text.empty(), "message: truncated id");
  return parse_u128(text);
}

void write_cluster(std::ostream& out, const sfc::ClusterNode& cluster) {
  out << to_string(cluster.prefix) << ' ' << cluster.level;
}

sfc::ClusterNode read_cluster(std::istream& in) {
  const u128 prefix = read_id(in);
  unsigned level = 0;
  in >> level;
  SQUID_REQUIRE(in, "message: truncated cluster");
  return {prefix, level};
}

void write_batch(std::ostream& out, const msg::AggregateBatch& batch) {
  out << batch.clusters.size();
  for (const auto& cluster : batch.clusters) {
    out << ' ';
    write_cluster(out, cluster);
  }
}

msg::AggregateBatch read_batch(std::istream& in) {
  std::size_t count = 0;
  in >> count;
  SQUID_REQUIRE(in, "message: truncated batch");
  msg::AggregateBatch batch;
  batch.clusters.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    batch.clusters.push_back(read_cluster(in));
  return batch;
}

// Numeric tokens travel as their raw IEEE bit patterns (decimal uint64,
// same convention as aggregate partials below): element identity is (key,
// name) and keys come from the tokens, so a routed retract whose double
// wobbled by one ulp in transit would silently miss the stored element.
std::uint64_t token_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

double token_double(std::istream& in, const char* what) {
  std::uint64_t bits = 0;
  in >> bits;
  SQUID_REQUIRE(in, what);
  return std::bit_cast<double>(bits);
}

void write_element(std::ostream& out, const DataElement& element) {
  write_string(out, element.name);
  out << ' ' << element.keys.size();
  for (const auto& token : element.keys) {
    if (const auto* word = std::get_if<std::string>(&token)) {
      out << " s";
      write_string(out, *word);
    } else {
      out << " n" << token_bits(std::get<double>(token));
    }
  }
}

DataElement read_element(std::istream& in) {
  DataElement element;
  element.name = read_string(in);
  std::size_t token_count = 0;
  in >> token_count;
  SQUID_REQUIRE(in, "message: truncated element");
  for (std::size_t t = 0; t < token_count; ++t) {
    char kind = 0;
    in >> kind;
    SQUID_REQUIRE(in, "message: truncated token");
    if (kind == 's') {
      element.keys.emplace_back(read_string(in));
    } else if (kind == 'n') {
      element.keys.emplace_back(
          token_double(in, "message: malformed numeric token"));
    } else {
      SQUID_REQUIRE(false, "message: unknown token kind");
    }
  }
  return element;
}

/// Read `event span` — the trailing bookkeeping pair every request carries.
std::pair<std::int32_t, std::int32_t> read_ids(std::istream& in) {
  std::int32_t event = 0, span = 0;
  in >> event >> span;
  SQUID_REQUIRE(in, "message: truncated event/span ids");
  return {event, span};
}

// --- Aggregate spec / partial encoding (core/aggregate.hpp) -----------------
// Doubles inside partials travel as their raw bit patterns (decimal uint64)
// so pushdown results round-trip bit-exactly; the ExactSum superaccumulator
// travels as its nonzero limbs.

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

double bits_double(std::istream& in, const char* what) {
  std::uint64_t bits = 0;
  in >> bits;
  SQUID_REQUIRE(in, what);
  return std::bit_cast<double>(bits);
}

void write_spec(std::ostream& out, const AggregateSpec& spec) {
  out << static_cast<unsigned>(spec.kind) << ' ' << spec.dim << ' ' << spec.k
      << ' ' << (spec.largest ? 1 : 0);
}

AggregateSpec read_spec(std::istream& in) {
  unsigned kind = 0;
  AggregateSpec spec;
  int largest = 0;
  in >> kind >> spec.dim >> spec.k >> largest;
  SQUID_REQUIRE(in, "message: truncated aggregate spec");
  SQUID_REQUIRE(kind <= static_cast<unsigned>(AggregateKind::kTopK),
                "message: unknown aggregate kind");
  spec.kind = static_cast<AggregateKind>(kind);
  spec.largest = largest != 0;
  return spec;
}

void write_partial(std::ostream& out, const AggregatePartial& partial) {
  write_spec(out, partial.spec);
  out << ' ' << partial.count;
  const auto& limbs = partial.sum.limbs();
  std::size_t nonzero = 0;
  for (const std::uint64_t limb : limbs)
    if (limb != 0) ++nonzero;
  out << ' ' << nonzero;
  for (std::size_t i = 0; i < limbs.size(); ++i)
    if (limbs[i] != 0) out << ' ' << i << ' ' << limbs[i];
  out << ' ' << (partial.has_extremes ? 1 : 0) << ' '
      << double_bits(partial.min) << ' ' << double_bits(partial.max);
  out << ' ' << partial.groups.size();
  for (const GroupCount& group : partial.groups) {
    out << ' ';
    write_string(out, group.key);
    out << ' ' << group.count;
  }
  out << ' ' << partial.top.size();
  for (const TopEntry& entry : partial.top) {
    out << ' ' << double_bits(entry.value) << ' ';
    write_string(out, entry.name);
  }
}

AggregatePartial read_partial(std::istream& in) {
  AggregatePartial partial;
  partial.spec = read_spec(in);
  in >> partial.count;
  SQUID_REQUIRE(in, "message: truncated partial count");
  std::size_t nonzero = 0;
  in >> nonzero;
  SQUID_REQUIRE(in && nonzero <= ExactSum::kLimbs,
                "message: malformed partial sum");
  for (std::size_t i = 0; i < nonzero; ++i) {
    std::size_t index = 0;
    std::uint64_t limb = 0;
    in >> index >> limb;
    SQUID_REQUIRE(in && index < ExactSum::kLimbs,
                  "message: malformed partial sum limb");
    partial.sum.set_limb(index, limb);
  }
  int has_extremes = 0;
  in >> has_extremes;
  SQUID_REQUIRE(in, "message: truncated partial extremes");
  partial.has_extremes = has_extremes != 0;
  partial.min = bits_double(in, "message: truncated partial min");
  partial.max = bits_double(in, "message: truncated partial max");
  std::size_t group_count = 0;
  in >> group_count;
  SQUID_REQUIRE(in, "message: truncated partial group count");
  partial.groups.reserve(group_count);
  for (std::size_t i = 0; i < group_count; ++i) {
    GroupCount group;
    group.key = read_string(in);
    in >> group.count;
    SQUID_REQUIRE(in, "message: truncated partial group");
    SQUID_REQUIRE(partial.groups.empty() || partial.groups.back().key < group.key,
                  "message: partial groups out of order");
    partial.groups.push_back(std::move(group));
  }
  std::size_t top_count = 0;
  in >> top_count;
  SQUID_REQUIRE(in, "message: truncated partial top count");
  partial.top.reserve(top_count);
  for (std::size_t i = 0; i < top_count; ++i) {
    TopEntry entry;
    entry.value = bits_double(in, "message: truncated top entry value");
    entry.name = read_string(in);
    SQUID_REQUIRE(
        partial.top.empty() ||
            !top_entry_before(partial.spec, entry, partial.top.back()),
        "message: partial top entries out of order");
    partial.top.push_back(std::move(entry));
  }
  return partial;
}

/// Reply frame body shared by save_message and reply_wire_size; the element
/// count is a parameter so accounting frames can be sized without copying
/// the elements they would carry.
void write_reply_header(std::ostream& out, const msg::Reply& reply,
                        std::size_t element_count) {
  out << reply.query << ' ' << to_string(reply.from) << ' '
      << to_string(reply.to) << ' ' << (reply.complete ? 1 : 0) << ' '
      << reply.count << ' ' << element_count << ' '
      << (reply.aggregate ? 1 : 0);
  if (reply.aggregate) {
    out << ' ';
    write_partial(out, *reply.aggregate);
  }
  out << '\n';
}

/// Output streambuf that only counts. tellp works on it (seekoff answers
/// the (0, cur) probe), which keeps save_message's size computation from
/// recursing into wire_size.
class CountingBuf final : public std::streambuf {
public:
  std::size_t count() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) ++count_;
    return ch;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    count_ += static_cast<std::size_t>(n);
    return n;
  }
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode) override {
    if (off == 0 && dir == std::ios_base::cur)
      return pos_type(static_cast<std::streamoff>(count_));
    return pos_type(off_type(-1));
  }

private:
  std::size_t count_ = 0;
};

} // namespace

std::size_t save_message(const msg::Message& message, std::ostream& out) {
  const std::streampos start = out.tellp();
  out << kMsgMagic << ' ' << msg::type_name(message) << '\n';
  struct Writer {
    std::ostream& out;
    void operator()(const msg::ResolveRequest& r) const {
      out << r.query << ' ' << to_string(r.at) << ' ';
      write_batch(out, r.clusters);
      out << ' ' << r.event << ' ' << r.span << '\n';
    }
    void operator()(const msg::ClusterDispatch& d) const {
      out << d.query << ' ' << to_string(d.from) << ' ' << to_string(d.to)
          << ' ';
      write_cluster(out, d.head);
      out << ' ';
      write_batch(out, d.batch);
      out << ' ' << d.event << ' ' << d.span << '\n';
    }
    void operator()(const msg::ScanRequest& s) const {
      out << s.query << ' ' << to_string(s.at) << ' '
          << to_string(s.segment.lo) << ' ' << to_string(s.segment.hi) << ' '
          << (s.covered ? 1 : 0) << ' ';
      write_spec(out, s.agg);
      out << ' ' << s.slot << ' ' << s.event << ' ' << s.span << ' '
          << s.replica << '\n';
    }
    void operator()(const msg::Reply& r) const {
      write_reply_header(out, r, r.elements.size());
      for (const auto& element : r.elements) {
        write_element(out, element);
        out << '\n';
      }
    }
    void operator()(const msg::PublishRequest& p) const {
      out << p.seq << ' ' << to_string(p.origin) << ' ' << to_string(p.to)
          << ' ';
      write_element(out, p.element);
      out << ' ' << p.event << ' ' << p.span << '\n';
    }
    void operator()(const msg::RetractRequest& r) const {
      out << r.seq << ' ' << to_string(r.origin) << ' ' << to_string(r.to)
          << ' ';
      write_element(out, r.element);
      out << ' ' << r.event << ' ' << r.span << '\n';
    }
  };
  std::visit(Writer{out}, message);
  if (start != std::streampos(-1)) {
    const std::streampos end = out.tellp();
    if (end != std::streampos(-1))
      return static_cast<std::size_t>(end - start);
  }
  return wire_size(message); // `out` cannot report positions; measure apart
}

msg::Message load_message(std::istream& in, std::size_t* bytes_read) {
  const std::streampos start = in.tellg();
  std::string magic, type;
  in >> magic >> type;
  SQUID_REQUIRE(in && magic == kMsgMagic, "message: bad magic");
  std::uint64_t query = 0;
  in >> query;
  SQUID_REQUIRE(in, "message: truncated query id");
  msg::Message message;
  if (type == "resolve") {
    msg::ResolveRequest r;
    r.query = query;
    r.at = read_id(in);
    r.clusters = read_batch(in);
    std::tie(r.event, r.span) = read_ids(in);
    message = std::move(r);
  } else if (type == "dispatch") {
    msg::ClusterDispatch d;
    d.query = query;
    d.from = read_id(in);
    d.to = read_id(in);
    d.head = read_cluster(in);
    d.batch = read_batch(in);
    std::tie(d.event, d.span) = read_ids(in);
    message = std::move(d);
  } else if (type == "scan") {
    msg::ScanRequest s;
    s.query = query;
    s.at = read_id(in);
    s.segment.lo = read_id(in);
    s.segment.hi = read_id(in);
    int covered = 0;
    in >> covered;
    SQUID_REQUIRE(in, "message: truncated scan header");
    s.covered = covered != 0;
    s.agg = read_spec(in);
    in >> s.slot;
    SQUID_REQUIRE(in, "message: truncated scan slot");
    std::tie(s.event, s.span) = read_ids(in);
    in >> s.replica;
    SQUID_REQUIRE(in, "message: truncated scan replica id");
    message = std::move(s);
  } else if (type == "reply") {
    msg::Reply r;
    r.query = query;
    r.from = read_id(in);
    r.to = read_id(in);
    int complete = 0;
    std::size_t element_count = 0;
    int has_aggregate = 0;
    in >> complete >> r.count >> element_count >> has_aggregate;
    SQUID_REQUIRE(in, "message: truncated reply header");
    r.complete = complete != 0;
    if (has_aggregate != 0)
      r.aggregate = std::make_shared<const AggregatePartial>(read_partial(in));
    r.elements.reserve(element_count);
    for (std::size_t i = 0; i < element_count; ++i)
      r.elements.push_back(read_element(in));
    message = std::move(r);
  } else if (type == "publish" || type == "retract") {
    // Twin layouts: `seq origin to element event span`. The leading u64 read
    // as `query` above is the update's submit sequence number.
    const std::uint64_t seq = query;
    const u128 origin = read_id(in);
    const u128 to = read_id(in);
    DataElement element = read_element(in);
    const auto [event, span] = read_ids(in);
    if (type == "publish") {
      msg::PublishRequest p;
      p.seq = seq;
      p.origin = origin;
      p.to = to;
      p.element = std::move(element);
      p.event = event;
      p.span = span;
      message = std::move(p);
    } else {
      msg::RetractRequest r;
      r.seq = seq;
      r.origin = origin;
      r.to = to;
      r.element = std::move(element);
      r.event = event;
      r.span = span;
      message = std::move(r);
    }
  } else {
    SQUID_REQUIRE(false, "message: unknown type tag");
  }
  // Consume the frame's trailing newline so byte accounting matches
  // save_message and back-to-back frames parse cleanly.
  if (in.peek() == '\n') in.get();
  if (bytes_read != nullptr) {
    *bytes_read = 0;
    if (start != std::streampos(-1)) {
      const std::streampos end = in.tellg();
      if (end != std::streampos(-1) && end >= start)
        *bytes_read = static_cast<std::size_t>(end - start);
    }
  }
  return message;
}

std::size_t wire_size(const msg::Message& message) {
  CountingBuf buf;
  std::ostream out(&buf);
  save_message(message, out);
  return buf.count();
}

std::size_t element_wire_size(const DataElement& element) {
  thread_local CountingBuf buf;
  thread_local std::ostream out(&buf);
  buf.reset();
  write_element(out, element);
  return buf.count() + 1; // trailing newline
}

std::size_t reply_wire_size(overlay::NodeId from, overlay::NodeId to,
                            std::uint64_t count, std::size_t elements,
                            std::size_t payload_bytes,
                            const AggregatePartial* aggregate) {
  CountingBuf buf;
  std::ostream out(&buf);
  msg::Reply reply;
  reply.query = 0; // canonical accounting id
  reply.from = from;
  reply.to = to;
  reply.complete = true;
  reply.count = count;
  if (aggregate != nullptr)
    reply.aggregate = std::shared_ptr<const AggregatePartial>(
        std::shared_ptr<const void>(), aggregate);
  out << kMsgMagic << ' ' << "reply" << '\n';
  write_reply_header(out, reply, elements);
  return buf.count() + payload_bytes;
}

void save_snapshot(const SquidSystem& sys, std::ostream& out) {
  out << kMagic << '\n';
  out << sys.curve().name() << ' ' << sys.space().dims() << ' '
      << sys.space().bits_per_dim() << '\n';

  const auto ids = sys.ring().node_ids();
  out << ids.size() << '\n';
  for (const auto id : ids) out << to_string(id) << '\n';

  out << sys.element_count() << '\n';
  sys.for_each_key([&](u128, const sfc::Point&,
                       const std::vector<DataElement>& elements) {
    for (const auto& element : elements) {
      write_element(out, element);
      out << '\n';
    }
  });
}

void load_snapshot(SquidSystem& sys, std::istream& in) {
  SQUID_REQUIRE(sys.ring().size() == 0 && sys.element_count() == 0,
                "snapshot must load into a fresh system");
  std::string magic;
  in >> magic;
  SQUID_REQUIRE(magic == kMagic, "snapshot: bad magic");
  std::string curve;
  unsigned dims = 0, bits = 0;
  in >> curve >> dims >> bits;
  SQUID_REQUIRE(curve == sys.curve().name(), "snapshot: curve mismatch");
  SQUID_REQUIRE(dims == sys.space().dims(), "snapshot: dimension mismatch");
  SQUID_REQUIRE(bits == sys.space().bits_per_dim(),
                "snapshot: resolution mismatch");

  std::size_t node_count = 0;
  in >> node_count;
  SQUID_REQUIRE(in && node_count >= 1, "snapshot: bad node count");
  for (std::size_t i = 0; i < node_count; ++i) {
    std::string id_text;
    in >> id_text;
    sys.add_node_at(parse_u128(id_text));
  }

  std::size_t element_count = 0;
  in >> element_count;
  SQUID_REQUIRE(in, "snapshot: bad element count");
  for (std::size_t i = 0; i < element_count; ++i) {
    DataElement element;
    element.name = read_string(in);
    std::size_t token_count = 0;
    in >> token_count;
    SQUID_REQUIRE(in && token_count == dims,
                  "snapshot: element arity mismatch");
    for (std::size_t t = 0; t < token_count; ++t) {
      char kind = 0;
      in >> kind;
      if (kind == 's') {
        element.keys.emplace_back(read_string(in));
      } else if (kind == 'n') {
        element.keys.emplace_back(
            token_double(in, "snapshot: malformed numeric token"));
      } else {
        SQUID_REQUIRE(false, "snapshot: unknown token kind");
      }
    }
    sys.publish(element);
  }
  sys.repair_routing();
}

} // namespace squid::core
