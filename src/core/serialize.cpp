#include "squid/core/serialize.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <tuple>
#include <utility>

#include "squid/util/require.hpp"

namespace squid::core {

namespace {

constexpr const char* kMagic = "SQUID-SNAPSHOT-1";

void write_string(std::ostream& out, const std::string& s) {
  out << s.size() << ':' << s;
}

std::string read_string(std::istream& in) {
  std::size_t length = 0;
  char colon = 0;
  in >> length >> colon;
  SQUID_REQUIRE(in && colon == ':', "snapshot: malformed string header");
  std::string s(length, '\0');
  in.read(s.data(), static_cast<std::streamsize>(length));
  SQUID_REQUIRE(in, "snapshot: truncated string");
  return s;
}

// --- Query-message encoding (core/messages.hpp) ----------------------------
// Same text conventions as snapshots: whitespace-separated fields, decimal
// u128 ids, length-prefixed strings. Every read is checked so truncated
// input throws instead of yielding a half-built message.

constexpr const char* kMsgMagic = "SQUID-MSG-1";

u128 read_id(std::istream& in) {
  std::string text;
  in >> text;
  SQUID_REQUIRE(in && !text.empty(), "message: truncated id");
  return parse_u128(text);
}

void write_cluster(std::ostream& out, const sfc::ClusterNode& cluster) {
  out << to_string(cluster.prefix) << ' ' << cluster.level;
}

sfc::ClusterNode read_cluster(std::istream& in) {
  const u128 prefix = read_id(in);
  unsigned level = 0;
  in >> level;
  SQUID_REQUIRE(in, "message: truncated cluster");
  return {prefix, level};
}

void write_batch(std::ostream& out, const msg::AggregateBatch& batch) {
  out << batch.clusters.size();
  for (const auto& cluster : batch.clusters) {
    out << ' ';
    write_cluster(out, cluster);
  }
}

msg::AggregateBatch read_batch(std::istream& in) {
  std::size_t count = 0;
  in >> count;
  SQUID_REQUIRE(in, "message: truncated batch");
  msg::AggregateBatch batch;
  batch.clusters.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    batch.clusters.push_back(read_cluster(in));
  return batch;
}

void write_element(std::ostream& out, const DataElement& element) {
  write_string(out, element.name);
  out << ' ' << element.keys.size();
  for (const auto& token : element.keys) {
    if (const auto* word = std::get_if<std::string>(&token)) {
      out << " s";
      write_string(out, *word);
    } else {
      out << " n" << std::get<double>(token);
    }
  }
}

DataElement read_element(std::istream& in) {
  DataElement element;
  element.name = read_string(in);
  std::size_t token_count = 0;
  in >> token_count;
  SQUID_REQUIRE(in, "message: truncated element");
  for (std::size_t t = 0; t < token_count; ++t) {
    char kind = 0;
    in >> kind;
    SQUID_REQUIRE(in, "message: truncated token");
    if (kind == 's') {
      element.keys.emplace_back(read_string(in));
    } else if (kind == 'n') {
      double value = 0;
      in >> value;
      SQUID_REQUIRE(in, "message: malformed numeric token");
      element.keys.emplace_back(value);
    } else {
      SQUID_REQUIRE(false, "message: unknown token kind");
    }
  }
  return element;
}

/// Read `event span` — the trailing bookkeeping pair every request carries.
std::pair<std::int32_t, std::int32_t> read_ids(std::istream& in) {
  std::int32_t event = 0, span = 0;
  in >> event >> span;
  SQUID_REQUIRE(in, "message: truncated event/span ids");
  return {event, span};
}

} // namespace

void save_message(const msg::Message& message, std::ostream& out) {
  out << kMsgMagic << ' ' << msg::type_name(message) << '\n';
  struct Writer {
    std::ostream& out;
    void operator()(const msg::ResolveRequest& r) const {
      out << r.query << ' ' << to_string(r.at) << ' ';
      write_batch(out, r.clusters);
      out << ' ' << r.event << ' ' << r.span << '\n';
    }
    void operator()(const msg::ClusterDispatch& d) const {
      out << d.query << ' ' << to_string(d.from) << ' ' << to_string(d.to)
          << ' ';
      write_cluster(out, d.head);
      out << ' ';
      write_batch(out, d.batch);
      out << ' ' << d.event << ' ' << d.span << '\n';
    }
    void operator()(const msg::ScanRequest& s) const {
      out << s.query << ' ' << to_string(s.at) << ' '
          << to_string(s.segment.lo) << ' ' << to_string(s.segment.hi) << ' '
          << (s.covered ? 1 : 0) << ' ' << s.event << ' ' << s.span << '\n';
    }
    void operator()(const msg::Reply& r) const {
      out << r.query << ' ' << to_string(r.from) << ' ' << to_string(r.to)
          << ' ' << (r.complete ? 1 : 0) << ' ' << r.count << ' '
          << r.elements.size() << '\n';
      for (const auto& element : r.elements) {
        write_element(out, element);
        out << '\n';
      }
    }
  };
  std::visit(Writer{out}, message);
}

msg::Message load_message(std::istream& in) {
  std::string magic, type;
  in >> magic >> type;
  SQUID_REQUIRE(in && magic == kMsgMagic, "message: bad magic");
  std::uint64_t query = 0;
  in >> query;
  SQUID_REQUIRE(in, "message: truncated query id");
  if (type == "resolve") {
    msg::ResolveRequest r;
    r.query = query;
    r.at = read_id(in);
    r.clusters = read_batch(in);
    std::tie(r.event, r.span) = read_ids(in);
    return r;
  }
  if (type == "dispatch") {
    msg::ClusterDispatch d;
    d.query = query;
    d.from = read_id(in);
    d.to = read_id(in);
    d.head = read_cluster(in);
    d.batch = read_batch(in);
    std::tie(d.event, d.span) = read_ids(in);
    return d;
  }
  if (type == "scan") {
    msg::ScanRequest s;
    s.query = query;
    s.at = read_id(in);
    s.segment.lo = read_id(in);
    s.segment.hi = read_id(in);
    int covered = 0;
    in >> covered;
    std::tie(s.event, s.span) = read_ids(in);
    s.covered = covered != 0;
    return s;
  }
  if (type == "reply") {
    msg::Reply r;
    r.query = query;
    r.from = read_id(in);
    r.to = read_id(in);
    int complete = 0;
    std::size_t element_count = 0;
    in >> complete >> r.count >> element_count;
    SQUID_REQUIRE(in, "message: truncated reply header");
    r.complete = complete != 0;
    r.elements.reserve(element_count);
    for (std::size_t i = 0; i < element_count; ++i)
      r.elements.push_back(read_element(in));
    return r;
  }
  SQUID_REQUIRE(false, "message: unknown type tag");
  return {};
}

void save_snapshot(const SquidSystem& sys, std::ostream& out) {
  out << kMagic << '\n';
  out << sys.curve().name() << ' ' << sys.space().dims() << ' '
      << sys.space().bits_per_dim() << '\n';

  const auto ids = sys.ring().node_ids();
  out << ids.size() << '\n';
  for (const auto id : ids) out << to_string(id) << '\n';

  out << sys.element_count() << '\n';
  sys.for_each_key([&](u128, const sfc::Point&,
                       const std::vector<DataElement>& elements) {
    for (const auto& element : elements) {
      write_string(out, element.name);
      out << ' ' << element.keys.size();
      for (const auto& token : element.keys) {
        if (const auto* word = std::get_if<std::string>(&token)) {
          out << " s";
          write_string(out, *word);
        } else {
          out << " n" << std::get<double>(token);
        }
      }
      out << '\n';
    }
  });
}

void load_snapshot(SquidSystem& sys, std::istream& in) {
  SQUID_REQUIRE(sys.ring().size() == 0 && sys.element_count() == 0,
                "snapshot must load into a fresh system");
  std::string magic;
  in >> magic;
  SQUID_REQUIRE(magic == kMagic, "snapshot: bad magic");
  std::string curve;
  unsigned dims = 0, bits = 0;
  in >> curve >> dims >> bits;
  SQUID_REQUIRE(curve == sys.curve().name(), "snapshot: curve mismatch");
  SQUID_REQUIRE(dims == sys.space().dims(), "snapshot: dimension mismatch");
  SQUID_REQUIRE(bits == sys.space().bits_per_dim(),
                "snapshot: resolution mismatch");

  std::size_t node_count = 0;
  in >> node_count;
  SQUID_REQUIRE(in && node_count >= 1, "snapshot: bad node count");
  for (std::size_t i = 0; i < node_count; ++i) {
    std::string id_text;
    in >> id_text;
    sys.add_node_at(parse_u128(id_text));
  }

  std::size_t element_count = 0;
  in >> element_count;
  SQUID_REQUIRE(in, "snapshot: bad element count");
  for (std::size_t i = 0; i < element_count; ++i) {
    DataElement element;
    element.name = read_string(in);
    std::size_t token_count = 0;
    in >> token_count;
    SQUID_REQUIRE(in && token_count == dims,
                  "snapshot: element arity mismatch");
    for (std::size_t t = 0; t < token_count; ++t) {
      char kind = 0;
      in >> kind;
      if (kind == 's') {
        element.keys.emplace_back(read_string(in));
      } else if (kind == 'n') {
        double value = 0;
        in >> value;
        SQUID_REQUIRE(in, "snapshot: malformed numeric token");
        element.keys.emplace_back(value);
      } else {
        SQUID_REQUIRE(false, "snapshot: unknown token kind");
      }
    }
    sys.publish(element);
  }
  sys.repair_routing();
}

} // namespace squid::core
