#include "squid/core/serialize.hpp"

#include <istream>
#include <ostream>

#include "squid/util/require.hpp"

namespace squid::core {

namespace {

constexpr const char* kMagic = "SQUID-SNAPSHOT-1";

void write_string(std::ostream& out, const std::string& s) {
  out << s.size() << ':' << s;
}

std::string read_string(std::istream& in) {
  std::size_t length = 0;
  char colon = 0;
  in >> length >> colon;
  SQUID_REQUIRE(in && colon == ':', "snapshot: malformed string header");
  std::string s(length, '\0');
  in.read(s.data(), static_cast<std::streamsize>(length));
  SQUID_REQUIRE(in, "snapshot: truncated string");
  return s;
}

} // namespace

void save_snapshot(const SquidSystem& sys, std::ostream& out) {
  out << kMagic << '\n';
  out << sys.curve().name() << ' ' << sys.space().dims() << ' '
      << sys.space().bits_per_dim() << '\n';

  const auto ids = sys.ring().node_ids();
  out << ids.size() << '\n';
  for (const auto id : ids) out << to_string(id) << '\n';

  out << sys.element_count() << '\n';
  sys.for_each_key([&](u128, const sfc::Point&,
                       const std::vector<DataElement>& elements) {
    for (const auto& element : elements) {
      write_string(out, element.name);
      out << ' ' << element.keys.size();
      for (const auto& token : element.keys) {
        if (const auto* word = std::get_if<std::string>(&token)) {
          out << " s";
          write_string(out, *word);
        } else {
          out << " n" << std::get<double>(token);
        }
      }
      out << '\n';
    }
  });
}

void load_snapshot(SquidSystem& sys, std::istream& in) {
  SQUID_REQUIRE(sys.ring().size() == 0 && sys.element_count() == 0,
                "snapshot must load into a fresh system");
  std::string magic;
  in >> magic;
  SQUID_REQUIRE(magic == kMagic, "snapshot: bad magic");
  std::string curve;
  unsigned dims = 0, bits = 0;
  in >> curve >> dims >> bits;
  SQUID_REQUIRE(curve == sys.curve().name(), "snapshot: curve mismatch");
  SQUID_REQUIRE(dims == sys.space().dims(), "snapshot: dimension mismatch");
  SQUID_REQUIRE(bits == sys.space().bits_per_dim(),
                "snapshot: resolution mismatch");

  std::size_t node_count = 0;
  in >> node_count;
  SQUID_REQUIRE(in && node_count >= 1, "snapshot: bad node count");
  for (std::size_t i = 0; i < node_count; ++i) {
    std::string id_text;
    in >> id_text;
    sys.add_node_at(parse_u128(id_text));
  }

  std::size_t element_count = 0;
  in >> element_count;
  SQUID_REQUIRE(in, "snapshot: bad element count");
  for (std::size_t i = 0; i < element_count; ++i) {
    DataElement element;
    element.name = read_string(in);
    std::size_t token_count = 0;
    in >> token_count;
    SQUID_REQUIRE(in && token_count == dims,
                  "snapshot: element arity mismatch");
    for (std::size_t t = 0; t < token_count; ++t) {
      char kind = 0;
      in >> kind;
      if (kind == 's') {
        element.keys.emplace_back(read_string(in));
      } else if (kind == 'n') {
        double value = 0;
        in >> value;
        SQUID_REQUIRE(in, "snapshot: malformed numeric token");
        element.keys.emplace_back(value);
      } else {
        SQUID_REQUIRE(false, "snapshot: unknown token kind");
      }
    }
    sys.publish(element);
  }
  sys.repair_routing();
}

} // namespace squid::core
