#include "squid/core/timing.hpp"

#include <algorithm>

#include "squid/util/require.hpp"

namespace squid::core {

double sample_completion_ms(const std::vector<TimingEvent>& timing,
                            const LinkModel& model, Rng& rng) {
  SQUID_REQUIRE(model.base_ms >= 0 && model.jitter_ms >= 0 &&
                    model.processing_ms >= 0,
                "link model costs must be nonnegative");
  if (timing.empty()) return 0.0;
  std::vector<double> at(timing.size(), 0.0);
  double completion = 0.0;
  for (std::size_t i = 1; i < timing.size(); ++i) {
    const auto parent = static_cast<std::size_t>(timing[i].parent);
    SQUID_REQUIRE(parent < i, "timing DAG must reference earlier events");
    double transit = 0.0;
    for (std::uint32_t hop = 0; hop < timing[i].hops; ++hop)
      transit += model.base_ms + model.jitter_ms * rng.uniform();
    at[i] = at[parent] + transit + model.processing_ms;
    completion = std::max(completion, at[i]);
  }
  return completion;
}

Summary estimate_latency_ms(const QueryResult& result, const LinkModel& model,
                            Rng& rng, std::size_t samples) {
  SQUID_REQUIRE(samples >= 1, "need at least one sample");
  Summary summary;
  for (std::size_t s = 0; s < samples; ++s)
    summary.add(sample_completion_ms(result.timing, model, rng));
  return summary;
}

} // namespace squid::core
