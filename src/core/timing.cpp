#include "squid/core/timing.hpp"

#include <algorithm>

#include "squid/util/require.hpp"

namespace squid::core {

std::vector<EventCompletion> sample_completion_breakdown(
    const std::vector<TimingEvent>& timing, const LinkModel& model,
    Rng& rng) {
  SQUID_REQUIRE(model.base_ms >= 0 && model.jitter_ms >= 0 &&
                    model.processing_ms >= 0,
                "link model costs must be nonnegative");
  std::vector<EventCompletion> events(timing.size());
  for (std::size_t i = 1; i < timing.size(); ++i) {
    const auto parent = static_cast<std::size_t>(timing[i].parent);
    SQUID_REQUIRE(parent < i, "timing DAG must reference earlier events");
    double transit = 0.0;
    for (std::uint32_t hop = 0; hop < timing[i].hops; ++hop)
      transit += model.base_ms + model.jitter_ms * rng.uniform();
    events[i].at_ms = events[parent].at_ms + transit + model.processing_ms;
    events[i].parent = timing[i].parent;
    events[i].hops = timing[i].hops;
  }
  return events;
}

double sample_completion_ms(const std::vector<TimingEvent>& timing,
                            const LinkModel& model, Rng& rng) {
  // Built on the breakdown so the two stay bit-identical: same rng stream,
  // same arrival arithmetic, completion = the latest arrival.
  if (timing.empty()) {
    SQUID_REQUIRE(model.base_ms >= 0 && model.jitter_ms >= 0 &&
                      model.processing_ms >= 0,
                  "link model costs must be nonnegative");
    return 0.0;
  }
  const std::vector<EventCompletion> events =
      sample_completion_breakdown(timing, model, rng);
  double completion = 0.0;
  for (const EventCompletion& event : events)
    completion = std::max(completion, event.at_ms);
  return completion;
}

Summary estimate_latency_ms(const QueryResult& result, const LinkModel& model,
                            Rng& rng, std::size_t samples) {
  SQUID_REQUIRE(samples >= 1, "need at least one sample");
  Summary summary;
  for (std::size_t s = 0; s < samples; ++s)
    summary.add(sample_completion_ms(result.timing, model, rng));
  return summary;
}

} // namespace squid::core
