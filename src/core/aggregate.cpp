#include "squid/core/aggregate.hpp"

#include <algorithm>
#include <cmath>

#include "squid/util/require.hpp"

namespace squid::core {
namespace {

/// Numeric payload attribute for the value-based kinds. Spec validation at
/// query entry guarantees the dimension is numeric, so a string token here
/// means a corrupt element and fails loudly.
double numeric_key(const DataElement& element, std::uint32_t dim) {
  SQUID_REQUIRE(dim < element.keys.size(),
                "aggregate dimension out of range for element");
  const keyword::Token& token = element.keys[dim];
  SQUID_REQUIRE(std::holds_alternative<double>(token),
                "aggregate over a non-numeric payload attribute");
  return std::get<double>(token);
}

/// Group key: the token's textual rendering (exact for strings; numeric
/// tokens group by their rendered form, which is deterministic everywhere
/// the same token appears).
std::string group_key(const DataElement& element, std::uint32_t dim) {
  SQUID_REQUIRE(dim < element.keys.size(),
                "aggregate dimension out of range for element");
  return keyword::to_string(element.keys[dim]);
}

void add_group(std::vector<GroupCount>& groups, const std::string& key,
               std::uint64_t count) {
  const auto it = std::lower_bound(
      groups.begin(), groups.end(), key,
      [](const GroupCount& g, const std::string& k) { return g.key < k; });
  if (it != groups.end() && it->key == key) {
    it->count += count;
  } else {
    groups.insert(it, GroupCount{key, count});
  }
}

void insert_top(const AggregateSpec& spec, std::vector<TopEntry>& top,
                TopEntry entry) {
  const auto it = std::upper_bound(
      top.begin(), top.end(), entry,
      [&spec](const TopEntry& a, const TopEntry& b) {
        return top_entry_before(spec, a, b);
      });
  if (top.size() >= spec.k && it == top.end()) return; // worse than the cut
  top.insert(it, std::move(entry));
  if (top.size() > spec.k) top.pop_back();
}

} // namespace

const char* aggregate_kind_name(AggregateKind kind) noexcept {
  switch (kind) {
    case AggregateKind::kNone: return "none";
    case AggregateKind::kCount: return "count";
    case AggregateKind::kSum: return "sum";
    case AggregateKind::kMin: return "min";
    case AggregateKind::kMax: return "max";
    case AggregateKind::kGroupBy: return "group_by";
    case AggregateKind::kTopK: return "top_k";
  }
  return "unknown";
}

bool top_entry_before(const AggregateSpec& spec, const TopEntry& a,
                      const TopEntry& b) noexcept {
  if (a.value != b.value) return spec.largest ? a.value > b.value
                                              : a.value < b.value;
  return a.name < b.name;
}

AggregatePartial make_partial(const AggregateSpec& spec) {
  AggregatePartial partial;
  partial.spec = spec;
  return partial;
}

void AggregatePartial::fold(const DataElement& element) {
  ++count;
  switch (spec.kind) {
    case AggregateKind::kNone:
    case AggregateKind::kCount:
      break;
    case AggregateKind::kSum:
      sum.add(numeric_key(element, spec.dim));
      break;
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      const double v = numeric_key(element, spec.dim);
      if (!has_extremes) {
        has_extremes = true;
        min = max = v;
      } else {
        if (v < min) min = v;
        if (v > max) max = v;
      }
      break;
    }
    case AggregateKind::kGroupBy:
      add_group(groups, group_key(element, spec.dim), 1);
      break;
    case AggregateKind::kTopK:
      insert_top(spec, top,
                 TopEntry{numeric_key(element, spec.dim), element.name});
      break;
  }
}

void AggregatePartial::merge(const AggregatePartial& other) {
  SQUID_REQUIRE(spec == other.spec, "merging partials of different specs");
  count += other.count;
  switch (spec.kind) {
    case AggregateKind::kNone:
    case AggregateKind::kCount:
      break;
    case AggregateKind::kSum:
      sum.merge(other.sum);
      break;
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      if (other.has_extremes) {
        if (!has_extremes) {
          has_extremes = true;
          min = other.min;
          max = other.max;
        } else {
          if (other.min < min) min = other.min;
          if (other.max > max) max = other.max;
        }
      }
      break;
    case AggregateKind::kGroupBy:
      for (const GroupCount& g : other.groups) add_group(groups, g.key, g.count);
      break;
    case AggregateKind::kTopK: {
      // top-k of a union equals top-k of the union of top-k's, so merging
      // two sorted bounded lists and re-truncating is exact.
      std::vector<TopEntry> merged;
      merged.reserve(top.size() + other.top.size());
      std::merge(top.begin(), top.end(), other.top.begin(), other.top.end(),
                 std::back_inserter(merged),
                 [this](const TopEntry& a, const TopEntry& b) {
                   return top_entry_before(spec, a, b);
                 });
      if (merged.size() > spec.k) merged.resize(spec.k);
      top = std::move(merged);
      break;
    }
  }
}

} // namespace squid::core
