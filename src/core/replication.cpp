#include "squid/core/replication.hpp"

#include <algorithm>

#include "squid/obs/metrics.hpp"
#include "squid/util/require.hpp"

namespace squid::core {

ReplicationManager::ReplicationManager(SquidSystem& sys, unsigned factor)
    : sys_(sys), factor_(factor) {
  SQUID_REQUIRE(factor >= 1, "replication factor must be at least 1");
  SQUID_REQUIRE(sys.ring().size() >= 1, "network must exist before replication");
  place_all();
}

std::vector<SquidSystem::NodeId> ReplicationManager::owner_chain_of(
    u128 key, unsigned copies) const {
  // The owner and its copies-1 distinct ring successors.
  std::vector<SquidSystem::NodeId> chain;
  const auto& ring = sys_.ring();
  SquidSystem::NodeId at = ring.successor_of(key);
  for (unsigned i = 0; i < copies && chain.size() < ring.size(); ++i) {
    chain.push_back(at);
    at = ring.successor_of((at + 1) & ring.id_mask());
  }
  return chain;
}

std::vector<SquidSystem::NodeId> ReplicationManager::owner_chain(
    u128 key) const {
  return owner_chain_of(key, factor_);
}

std::size_t ReplicationManager::replicate_range(u128 lo, u128 hi,
                                                unsigned copies) {
  const unsigned target = std::max(copies, factor_);
  std::size_t transfers = 0;
  for (auto it = holders_.lower_bound(lo);
       it != holders_.end() && it->first <= hi; ++it) {
    auto& owners = it->second;
    if (owners.empty()) continue; // unrecoverable
    for (const auto node : owner_chain_of(it->first, target)) {
      if (owners.size() >= target) break;
      if (owners.insert(node).second) ++transfers;
    }
  }
  if constexpr (obs::kEnabled)
    obs::Registry::global()
        .counter("squid.replication.hotspot_transfers")
        .add(transfers);
  return transfers;
}

void ReplicationManager::place_all() {
  holders_.clear();
  sys_.for_each_key([&](u128 index, const sfc::Point&,
                        const std::vector<DataElement>&) {
    const auto chain = owner_chain(index);
    holders_[index] = std::set<SquidSystem::NodeId>(chain.begin(),
                                                    chain.end());
  });
}

void ReplicationManager::fail_node(SquidSystem::NodeId id) {
  // The peer's copies vanish with it. With auto-repair on, remember which
  // keys just lost a copy so the crash handler can re-replicate exactly
  // those instead of sweeping the whole store.
  std::vector<u128> dirty;
  for (auto& [key, owners] : holders_) {
    if (owners.erase(id) > 0 && auto_repair_ && !owners.empty())
      dirty.push_back(key);
  }
  sys_.fail_node(id);
  if (!auto_repair_ || dirty.empty()) return;
  // Reactive maintenance (DHash-style): a surviving holder detects the
  // crash and pushes fresh copies along the key's current owner chain.
  std::size_t transfers = 0;
  for (const u128 key : dirty) {
    auto& owners = holders_[key];
    for (const auto node : owner_chain(key)) {
      if (owners.size() >= factor_) break;
      if (owners.insert(node).second) ++transfers;
    }
  }
  if constexpr (obs::kEnabled) {
    auto& registry = obs::Registry::global();
    registry.counter("squid.replication.crash_repairs").add(1);
    registry.counter("squid.replication.crash_transfers").add(transfers);
  } else {
    (void)transfers;
  }
}

void ReplicationManager::leave_node(SquidSystem::NodeId id) {
  // Graceful departure: the peer hands each copy to the key's next live
  // owner before leaving (one transfer per held key, not counted as repair
  // traffic — the departing peer pays it).
  sys_.leave_node(id);
  for (auto& [key, owners] : holders_) {
    if (owners.erase(id) == 0) continue;
    if (owners.empty()) owners.insert(sys_.ring().successor_of(key));
  }
}

SquidSystem::NodeId ReplicationManager::join_node(Rng& rng) {
  const auto id = sys_.join_node(rng);
  // The newcomer immediately syncs the ranges it now owns (or backs up)
  // from its successors — standard DHT join transfer. Holder sets gain the
  // newcomer wherever it belongs to a key's chain.
  for (auto& [key, owners] : holders_) {
    if (owners.empty()) continue; // lost; nothing to sync from
    const auto chain = owner_chain(key);
    for (const auto node : chain) {
      if (node == id) {
        owners.insert(id);
        break;
      }
    }
  }
  return id;
}

std::size_t ReplicationManager::repair() {
  if constexpr (obs::kEnabled)
    obs::Registry::global().counter("squid.replication.repairs").add(1);
  std::size_t transfers = 0;
  for (auto& [key, owners] : holders_) {
    if (owners.empty()) continue; // unrecoverable
    const auto chain = owner_chain(key);
    for (const auto node : chain) {
      if (owners.size() >= factor_) break;
      if (owners.insert(node).second) ++transfers;
    }
    // Drop copies on peers no longer in the chain once fully replicated
    // (garbage collection of stale replicas).
    if (owners.size() > factor_) {
      std::set<SquidSystem::NodeId> in_chain(chain.begin(), chain.end());
      for (auto it = owners.begin(); it != owners.end();) {
        if (!in_chain.count(*it) && owners.size() > factor_) {
          it = owners.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if constexpr (obs::kEnabled) {
    obs::Registry::global()
        .counter("squid.replication.transfers")
        .add(transfers);
    obs::Registry::global()
        .gauge("squid.replication.lost_keys")
        .set(static_cast<double>(lost_keys()));
  }
  return transfers;
}

std::size_t ReplicationManager::lost_keys() const {
  std::size_t lost = 0;
  for (const auto& [key, owners] : holders_) lost += owners.empty();
  return lost;
}

std::size_t ReplicationManager::under_replicated() const {
  std::size_t low = 0;
  for (const auto& [key, owners] : holders_)
    low += (!owners.empty() && owners.size() < factor_);
  return low;
}

std::size_t ReplicationManager::total_copies() const {
  std::size_t copies = 0;
  for (const auto& [key, owners] : holders_) copies += owners.size();
  return copies;
}

bool ReplicationManager::alive(u128 key) const {
  const auto it = holders_.find(key);
  return it != holders_.end() && !it->second.empty();
}

} // namespace squid::core
