#include "squid/core/reaction.hpp"

#include <algorithm>
#include <tuple>

#include "squid/core/replication.hpp"
#include "squid/core/virtual_nodes.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/util/require.hpp"

namespace squid::core {

namespace {

void bump(const char* name, std::uint64_t n = 1) {
  if constexpr (obs::kEnabled) {
    obs::Registry::global().counter(name).add(n);
  } else {
    (void)name;
    (void)n;
  }
}

/// The node's LoadVector in this window (zero if it sat idle).
obs::LoadVector node_load(const obs::EpochSample& sample,
                          overlay::NodeId node) {
  const auto it = std::lower_bound(
      sample.nodes.begin(), sample.nodes.end(), node,
      [](const auto& entry, overlay::NodeId n) { return entry.first < n; });
  return it != sample.nodes.end() && it->first == node ? it->second
                                                       : obs::LoadVector{};
}

} // namespace

ReactionController::ReactionController(SquidSystem& sys,
                                       obs::HotspotConfig detector_config,
                                       ReactionConfig config,
                                       std::uint64_t seed)
    : sys_(sys), config_(config), detector_(detector_config), rng_(seed) {
  // Subscribe to the detector's event bus: transitions land in pending_ and
  // on_epoch drains them after observe() returns. Other consumers (a CLI
  // printer, a Perfetto exporter) can still read detector().events().
  detector_.set_sink(
      [this](const obs::HotspotEvent& event) { pending_.push_back(event); });
}

sfc::ClusterNode ReactionController::covering_cluster(NodeId node) const {
  // The keys `node` owns live in the wrapped ring interval (pred, node].
  // The replica entry is keyed by the deepest refinement-tree cluster whose
  // segment contains that interval: the longest common dims-bit-aligned
  // prefix of its endpoints. A wrapped interval crosses the ring origin and
  // has no covering cluster except the root; serve [0, node] instead — the
  // wrapped tail stays on routing, which is merely less offload, never
  // wrong.
  const auto& ring = sys_.ring();
  const NodeId pred = ring.size() <= 1 ? node : ring.predecessor_of(node);
  u128 lo = pred < node ? static_cast<u128>(pred) + 1 : 0;
  const u128 hi = node;
  const unsigned dims = sys_.curve().dims();
  const unsigned index_bits = sys_.curve().index_bits();
  const unsigned max_level = index_bits / dims;
  unsigned level = 0;
  for (unsigned l = max_level; l >= 1; --l) {
    const unsigned shift = index_bits - l * dims;
    if (shift >= 128) continue;
    if ((lo >> shift) == (hi >> shift)) {
      level = l;
      break;
    }
  }
  const unsigned shift = index_bits - level * dims;
  const u128 prefix = (level == 0 || shift >= 128) ? 0 : hi >> shift;
  return sfc::ClusterNode{prefix, level};
}

std::vector<ReactionController::NodeId>
ReactionController::cold_replicas(NodeId node, unsigned count) {
  // Power-of-d-choices placement: per replica slot, sample cold_probes
  // candidates and host the snapshot on the coldest (lowest detector
  // baseline; never a currently-hot node). The obvious alternative — the
  // owner's ring successors, as in Chord durability chains — backfires
  // here: a flash crowd heats a CONTIGUOUS ring segment (the SFC maps the
  // hot keyword prefix to one interval), so a hot owner's successors are
  // usually fellow crowd victims, and shedding onto them concentrates load
  // instead of spreading it.
  const auto& ring = sys_.ring();
  std::vector<NodeId> replicas;
  const unsigned probes = std::max(1u, config_.cold_probes);
  // Fewest-hosted-entries first, detector baseline as the tiebreak: rank
  // purely by baseline and the globally coldest peers win every sample,
  // stacking many entries — and the whole crowd's served demand — onto the
  // same few hosts, which then heat up themselves.
  const auto hosted = [this](NodeId n) {
    const auto it = hosted_.find(n);
    return it != hosted_.end() ? it->second : 0u;
  };
  for (unsigned slot = 0; slot < count; ++slot) {
    NodeId best = 0;
    bool found = false;
    for (unsigned probe = 0; probe < probes; ++probe) {
      const NodeId cand = ring.random_node(rng_);
      if (cand == node || detector_.is_hot(cand)) continue;
      if (std::find(replicas.begin(), replicas.end(), cand) != replicas.end())
        continue;
      const auto key = [&](NodeId n) {
        return std::make_tuple(hosted(n), detector_.baseline_of(n), n);
      };
      if (!found || key(cand) < key(best)) {
        best = cand;
        found = true;
      }
    }
    if (found) replicas.push_back(best);
  }
  return replicas;
}

void ReactionController::react_onset(const obs::HotspotEvent& event,
                                     const obs::LoadVector& load,
                                     ReactionReport& report) {
  ++report.onsets;
  NodeState& state = states_[event.node];
  state.onset_epoch = event.epoch;
  if (state.phase == Phase::kReplicated) return; // already at max escalation
  if (state.phase == Phase::kDraining) {
    // The crowd came back mid-drain: the entry is still installed and
    // serving, so just re-arm it.
    state.phase = Phase::kReplicated;
    return;
  }
  // Borrowed load gets no action: a replica host's heat IS the served
  // demand this controller placed on it — splitting or replicating its own
  // (cold) data reacts to the wrong cluster and cascades. It cools when
  // the entries it hosts drain.
  if (hosted_.count(event.node) != 0 && hosted_[event.node] > 0) return;
  // Transit-dominated heat gets no direct action: a node hot on
  // routes-through carries some *other* owner's crowd, and splitting or
  // replicating its own (cold) data would only add nodes. It cools by
  // itself once the responsible owner's cluster is served.
  if (load.scan_hits + load.publishes < load.routes_through) return;
  state.phase = Phase::kSplit;
  if (splits_done_ >= config_.split_budget) return;
  // Capacity responses need a capacity problem: without a ring-wide volume
  // surge this onset is demand RELOCATED (e.g. a diurnal focus shift), and
  // escalation to replication redistributes it without growing the ring.
  if (!ring_surge_) return;
  // Split the hot node at its median key. Through the virtual-node manager
  // the new half lands on a sampled cold peer; bare ring splits model the
  // same move without a hosting layer (the new identifier IS the cold
  // peer's virtual join).
  bool split = false;
  if (virtual_nodes_ != nullptr) {
    split = virtual_nodes_->split_virtual(event.node, config_.cold_probes,
                                          rng_)
                .has_value();
  } else if (const auto median = sys_.median_split_id(event.node)) {
    sys_.add_node_at(*median);
    split = true;
  }
  if (split) {
    ++splits_done_;
    ++report.splits;
    bump("squid.balance.reaction.splits");
  }
}

void ReactionController::react_clear(const obs::HotspotEvent& event,
                                     ReactionReport& report) {
  ++report.clears;
  const auto it = states_.find(event.node);
  if (it == states_.end()) return;
  NodeState& state = it->second;
  if (state.phase == Phase::kReplicated && state.entry != 0) {
    // The owner cooled BECAUSE the replicas are serving its cluster —
    // dropping the entry now would re-ignite it next epoch (flapping).
    // Drain instead: keep serving and let escalate() drop the entry once
    // the absorbed demand itself subsides. last_serves deliberately stays
    // at the previous epoch close so the clearing epoch's serves still
    // count as demand.
    state.phase = Phase::kDraining;
    return;
  }
  state = NodeState{};
}

void ReactionController::maybe_widen(NodeId node, NodeState& state,
                                     ReactionReport& report) {
  // Adaptive widening: a host running hot is carrying borrowed load
  // (react_onset deliberately takes no action on it) — the remedy lives
  // here, with the entry that loaded it: add more cold hosts so the
  // dispatch pick splits the served demand further.
  bool host_hot = false;
  for (const NodeId host : state.hosts)
    host_hot = host_hot || detector_.is_hot(host);
  if (!host_hot || state.hosts.size() >= config_.replica_max) return;
  // Doubling, not linear growth: a crowd big enough to heat fresh hosts
  // through an epoch of serving shrinks per-host load by at most 2x per
  // widen, so +replica_factor converges a multi-epoch lag behind it.
  const unsigned grow = static_cast<unsigned>(
      std::max<std::size_t>(config_.replica_factor, state.hosts.size()));
  std::size_t added = 0;
  for (const NodeId extra : cold_replicas(node, grow)) {
    if (state.hosts.size() >= config_.replica_max) break;
    if (std::find(state.hosts.begin(), state.hosts.end(), extra) !=
        state.hosts.end())
      continue;
    state.hosts.push_back(extra);
    ++hosted_[extra];
    ++added;
  }
  if (added == 0) return;
  // Re-key the entry onto the wider set. The serve counter starts over;
  // peak_absorbed survives so the drain yardstick still remembers the
  // crowd's height.
  sys_.drop_replica(state.entry);
  state.entry = sys_.install_replica(state.cluster.level, state.cluster.prefix,
                                     state.hosts);
  state.last_serves = 0;
  ++report.widens;
  bump("squid.balance.reaction.widens");
}

void ReactionController::escalate(const obs::EpochSample& sample,
                                  ReactionReport& report) {
  const std::uint64_t epoch = sample.epoch;
  for (auto& [node, state] : states_) {
    if (state.phase == Phase::kSplit) {
      // A split that did not cool the node within replicate_after epochs
      // escalates to replication: snapshot its cluster onto its successors
      // and serve reads from them.
      if (!detector_.is_hot(node)) continue;
      if (epoch < state.onset_epoch + config_.replicate_after) continue;
      const std::vector<NodeId> replicas =
          cold_replicas(node, config_.replica_factor);
      if (replicas.empty()) continue;
      const sfc::ClusterNode cluster = covering_cluster(node);
      state.entry =
          sys_.install_replica(cluster.level, cluster.prefix, replicas);
      state.phase = Phase::kReplicated;
      state.last_serves = 0; // fresh entry: serve counter starts at zero
      state.hosts = replicas;
      state.cluster = cluster;
      for (const NodeId host : replicas) ++hosted_[host];
      ++report.replications;
      bump("squid.balance.reaction.replications");
      if (replication_ != nullptr) {
        // Mirror the copies into durability bookkeeping: every key in the
        // served cluster now has owner + replica_factor live copies.
        const unsigned dims = sys_.curve().dims();
        const unsigned index_bits = sys_.curve().index_bits();
        const unsigned shift = index_bits - cluster.level * dims;
        const u128 lo = shift >= 128 ? 0 : cluster.prefix << shift;
        const u128 hi =
            shift >= 128 ? ~static_cast<u128>(0) >> (128 - index_bits)
                         : lo + ((static_cast<u128>(1) << shift) - 1);
        replication_->replicate_range(lo, hi, config_.replica_factor + 1);
      }
    } else if (state.phase == Phase::kReplicated && state.entry != 0) {
      // Republished data invalidated the snapshot: re-sync it while the
      // node is still hot, so serving resumes next epoch.
      if (config_.refresh_invalidated && detector_.is_hot(node) &&
          !sys_.replica_valid(state.entry)) {
        sys_.refresh_replica(state.entry);
        ++report.refreshes;
        bump("squid.balance.reaction.refreshes");
      }
      // Keep the serve-counter window one epoch wide, so a clear arriving
      // next epoch drains against the demand absorbed SINCE this close —
      // and remember the busiest epoch as the drain test's yardstick.
      const std::uint64_t serves = sys_.replica_serves(state.entry);
      state.peak_absorbed =
          std::max(state.peak_absorbed, serves - state.last_serves);
      state.last_serves = serves;
      maybe_widen(node, state, report);
    } else if (state.phase == Phase::kDraining && state.entry != 0) {
      // Drop only once the crowd is actually gone, judged by the entry's
      // OWN demand history (replica_serves counts matched keys — the
      // scan_hits the owner would have recorded): the per-epoch absorbed
      // demand must fall to drain_fraction of the entry's busiest epoch
      // (or under the absolute drain_floor) for drain_epochs consecutive
      // windows. Deliberately NOT the detector's clear test: its
      // thresholds are in total-load units (routing included), which a
      // broad crowd spread over many owners passes while still in full
      // swing — the entry-local ratio is the signal that actually tracks
      // the crowd. Anything weaker flaps: serving is precisely what keeps
      // the owner cold.
      const std::uint64_t serves = sys_.replica_serves(state.entry);
      const std::uint64_t absorbed = serves - state.last_serves;
      state.last_serves = serves;
      state.peak_absorbed = std::max(state.peak_absorbed, absorbed);
      const double threshold =
          std::max(config_.drain_floor,
                   config_.drain_fraction *
                       static_cast<double>(state.peak_absorbed));
      if (static_cast<double>(absorbed) <= threshold) {
        if (++state.quiet_epochs >= std::max(1u, config_.drain_epochs)) {
          sys_.drop_replica(state.entry);
          for (const NodeId host : state.hosts) {
            const auto hit = hosted_.find(host);
            if (hit != hosted_.end() && hit->second > 0) --hit->second;
          }
          state = NodeState{};
          ++report.drops;
          bump("squid.balance.reaction.drops");
        }
      } else {
        // Still absorbing a live crowd — the drain is nominal (the OWNER
        // cooled, which is the point), so the entry keeps getting the same
        // maintenance a kReplicated one does, including widening.
        state.quiet_epochs = 0;
        maybe_widen(node, state, report);
      }
    }
  }
}

ReactionReport ReactionController::on_epoch(const obs::EpochSample& sample) {
  ReactionReport report;
  pending_.clear();
  detector_.observe(sample); // transitions arrive through the sink
  if (!config_.enabled) {
    // Detection only: count what fired, touch nothing (the PR 8 behavior —
    // the bit-transparency differential runs in this mode).
    for (const obs::HotspotEvent& event : pending_)
      (event.kind == obs::HotspotEvent::Kind::kOnset ? report.onsets
                                                     : report.clears) += 1;
    totals_.onsets += report.onsets;
    totals_.clears += report.clears;
    return report;
  }
  // The split gate's view of ring-wide volume: is this epoch's aggregate
  // load a genuine surge over the pre-surge baseline, or the same demand
  // relocated? Frozen while any node is hot, like the detector's per-node
  // baselines, so a long crowd cannot adapt the gate away.
  double ring_total = 0;
  for (const auto& [node, load] : sample.nodes)
    ring_total += static_cast<double>(load.total());
  ring_surge_ = ring_baseline_ > 0 &&
                ring_total > config_.split_surge_factor * ring_baseline_;
  if (detector_.active() == 0) {
    const double alpha = detector_.config().alpha;
    ring_baseline_ = alpha * ring_total + (1.0 - alpha) * ring_baseline_;
  }
  for (const obs::HotspotEvent& event : pending_) {
    if (event.kind == obs::HotspotEvent::Kind::kOnset)
      react_onset(event, node_load(sample, event.node), report);
    else
      react_clear(event, report);
  }
  escalate(sample, report);
  totals_.onsets += report.onsets;
  totals_.clears += report.clears;
  totals_.splits += report.splits;
  totals_.replications += report.replications;
  totals_.widens += report.widens;
  totals_.refreshes += report.refreshes;
  totals_.drops += report.drops;
  return report;
}

ReactionReport ReactionController::on_series(const obs::LoadSeries& series) {
  ReactionReport sum;
  for (const obs::EpochSample& sample : series.epochs) {
    const ReactionReport r = on_epoch(sample);
    sum.onsets += r.onsets;
    sum.clears += r.clears;
    sum.splits += r.splits;
    sum.replications += r.replications;
    sum.widens += r.widens;
    sum.refreshes += r.refreshes;
    sum.drops += r.drops;
  }
  return sum;
}

ReactionController::Phase ReactionController::phase_of(NodeId node) const {
  const auto it = states_.find(node);
  return it != states_.end() ? it->second.phase : Phase::kCold;
}

std::uint64_t ReactionController::entry_of(NodeId node) const {
  const auto it = states_.find(node);
  return it != states_.end() && it->second.phase == Phase::kReplicated
             ? it->second.entry
             : 0;
}

} // namespace squid::core
