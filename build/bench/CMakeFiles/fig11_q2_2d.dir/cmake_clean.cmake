file(REMOVE_RECURSE
  "CMakeFiles/fig11_q2_2d.dir/fig11_q2_2d.cpp.o"
  "CMakeFiles/fig11_q2_2d.dir/fig11_q2_2d.cpp.o.d"
  "fig11_q2_2d"
  "fig11_q2_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_q2_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
