# Empty dependencies file for fig11_q2_2d.
# This may be replaced when dependencies are built.
