file(REMOVE_RECURSE
  "CMakeFiles/cmp_baselines.dir/cmp_baselines.cpp.o"
  "CMakeFiles/cmp_baselines.dir/cmp_baselines.cpp.o.d"
  "cmp_baselines"
  "cmp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
