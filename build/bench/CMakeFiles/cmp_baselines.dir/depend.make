# Empty dependencies file for cmp_baselines.
# This may be replaced when dependencies are built.
