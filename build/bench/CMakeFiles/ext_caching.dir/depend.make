# Empty dependencies file for ext_caching.
# This may be replaced when dependencies are built.
