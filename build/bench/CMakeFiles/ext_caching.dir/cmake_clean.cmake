file(REMOVE_RECURSE
  "CMakeFiles/ext_caching.dir/ext_caching.cpp.o"
  "CMakeFiles/ext_caching.dir/ext_caching.cpp.o.d"
  "ext_caching"
  "ext_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
