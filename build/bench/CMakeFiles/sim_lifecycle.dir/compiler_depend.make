# Empty compiler generated dependencies file for sim_lifecycle.
# This may be replaced when dependencies are built.
