file(REMOVE_RECURSE
  "CMakeFiles/sim_lifecycle.dir/sim_lifecycle.cpp.o"
  "CMakeFiles/sim_lifecycle.dir/sim_lifecycle.cpp.o.d"
  "sim_lifecycle"
  "sim_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
