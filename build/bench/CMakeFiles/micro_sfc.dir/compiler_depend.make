# Empty compiler generated dependencies file for micro_sfc.
# This may be replaced when dependencies are built.
