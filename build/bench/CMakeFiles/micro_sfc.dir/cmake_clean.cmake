file(REMOVE_RECURSE
  "CMakeFiles/micro_sfc.dir/micro_sfc.cpp.o"
  "CMakeFiles/micro_sfc.dir/micro_sfc.cpp.o.d"
  "micro_sfc"
  "micro_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
