file(REMOVE_RECURSE
  "CMakeFiles/ext_latency.dir/ext_latency.cpp.o"
  "CMakeFiles/ext_latency.dir/ext_latency.cpp.o.d"
  "ext_latency"
  "ext_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
