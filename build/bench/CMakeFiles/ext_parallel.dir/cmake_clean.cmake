file(REMOVE_RECURSE
  "CMakeFiles/ext_parallel.dir/ext_parallel.cpp.o"
  "CMakeFiles/ext_parallel.dir/ext_parallel.cpp.o.d"
  "ext_parallel"
  "ext_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
