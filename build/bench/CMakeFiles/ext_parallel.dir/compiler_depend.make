# Empty compiler generated dependencies file for ext_parallel.
# This may be replaced when dependencies are built.
