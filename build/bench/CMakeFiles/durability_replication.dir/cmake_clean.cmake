file(REMOVE_RECURSE
  "CMakeFiles/durability_replication.dir/durability_replication.cpp.o"
  "CMakeFiles/durability_replication.dir/durability_replication.cpp.o.d"
  "durability_replication"
  "durability_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
