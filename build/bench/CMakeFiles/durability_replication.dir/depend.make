# Empty dependencies file for durability_replication.
# This may be replaced when dependencies are built.
