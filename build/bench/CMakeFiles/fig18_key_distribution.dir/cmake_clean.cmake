file(REMOVE_RECURSE
  "CMakeFiles/fig18_key_distribution.dir/fig18_key_distribution.cpp.o"
  "CMakeFiles/fig18_key_distribution.dir/fig18_key_distribution.cpp.o.d"
  "fig18_key_distribution"
  "fig18_key_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_key_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
