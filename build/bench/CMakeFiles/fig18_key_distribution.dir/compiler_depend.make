# Empty compiler generated dependencies file for fig18_key_distribution.
# This may be replaced when dependencies are built.
