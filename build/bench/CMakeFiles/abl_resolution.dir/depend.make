# Empty dependencies file for abl_resolution.
# This may be replaced when dependencies are built.
