file(REMOVE_RECURSE
  "CMakeFiles/abl_resolution.dir/abl_resolution.cpp.o"
  "CMakeFiles/abl_resolution.dir/abl_resolution.cpp.o.d"
  "abl_resolution"
  "abl_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
