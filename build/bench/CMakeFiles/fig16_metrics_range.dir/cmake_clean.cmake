file(REMOVE_RECURSE
  "CMakeFiles/fig16_metrics_range.dir/fig16_metrics_range.cpp.o"
  "CMakeFiles/fig16_metrics_range.dir/fig16_metrics_range.cpp.o.d"
  "fig16_metrics_range"
  "fig16_metrics_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_metrics_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
