# Empty compiler generated dependencies file for fig16_metrics_range.
# This may be replaced when dependencies are built.
