# Empty dependencies file for squid_bench_common.
# This may be replaced when dependencies are built.
