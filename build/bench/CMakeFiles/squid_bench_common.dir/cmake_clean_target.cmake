file(REMOVE_RECURSE
  "libsquid_bench_common.a"
)
