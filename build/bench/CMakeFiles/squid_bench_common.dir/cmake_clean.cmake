file(REMOVE_RECURSE
  "CMakeFiles/squid_bench_common.dir/common/fixture.cpp.o"
  "CMakeFiles/squid_bench_common.dir/common/fixture.cpp.o.d"
  "libsquid_bench_common.a"
  "libsquid_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
