file(REMOVE_RECURSE
  "CMakeFiles/micro_overlay.dir/micro_overlay.cpp.o"
  "CMakeFiles/micro_overlay.dir/micro_overlay.cpp.o.d"
  "micro_overlay"
  "micro_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
