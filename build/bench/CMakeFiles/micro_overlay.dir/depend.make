# Empty dependencies file for micro_overlay.
# This may be replaced when dependencies are built.
