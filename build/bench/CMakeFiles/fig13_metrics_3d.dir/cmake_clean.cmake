file(REMOVE_RECURSE
  "CMakeFiles/fig13_metrics_3d.dir/fig13_metrics_3d.cpp.o"
  "CMakeFiles/fig13_metrics_3d.dir/fig13_metrics_3d.cpp.o.d"
  "fig13_metrics_3d"
  "fig13_metrics_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_metrics_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
