# Empty dependencies file for fig13_metrics_3d.
# This may be replaced when dependencies are built.
