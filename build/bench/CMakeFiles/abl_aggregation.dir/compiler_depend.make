# Empty compiler generated dependencies file for abl_aggregation.
# This may be replaced when dependencies are built.
