# Empty compiler generated dependencies file for cmp_can_inverse_sfc.
# This may be replaced when dependencies are built.
