file(REMOVE_RECURSE
  "CMakeFiles/cmp_can_inverse_sfc.dir/cmp_can_inverse_sfc.cpp.o"
  "CMakeFiles/cmp_can_inverse_sfc.dir/cmp_can_inverse_sfc.cpp.o.d"
  "cmp_can_inverse_sfc"
  "cmp_can_inverse_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_can_inverse_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
