file(REMOVE_RECURSE
  "CMakeFiles/abl_curves.dir/abl_curves.cpp.o"
  "CMakeFiles/abl_curves.dir/abl_curves.cpp.o.d"
  "abl_curves"
  "abl_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
