# Empty dependencies file for abl_curves.
# This may be replaced when dependencies are built.
