file(REMOVE_RECURSE
  "CMakeFiles/fig17_range_rrr.dir/fig17_range_rrr.cpp.o"
  "CMakeFiles/fig17_range_rrr.dir/fig17_range_rrr.cpp.o.d"
  "fig17_range_rrr"
  "fig17_range_rrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_range_rrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
