# Empty dependencies file for fig17_range_rrr.
# This may be replaced when dependencies are built.
