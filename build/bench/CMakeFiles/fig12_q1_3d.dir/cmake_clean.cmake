file(REMOVE_RECURSE
  "CMakeFiles/fig12_q1_3d.dir/fig12_q1_3d.cpp.o"
  "CMakeFiles/fig12_q1_3d.dir/fig12_q1_3d.cpp.o.d"
  "fig12_q1_3d"
  "fig12_q1_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_q1_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
