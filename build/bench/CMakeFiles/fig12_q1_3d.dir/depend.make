# Empty dependencies file for fig12_q1_3d.
# This may be replaced when dependencies are built.
