file(REMOVE_RECURSE
  "CMakeFiles/fig19_load_balancing.dir/fig19_load_balancing.cpp.o"
  "CMakeFiles/fig19_load_balancing.dir/fig19_load_balancing.cpp.o.d"
  "fig19_load_balancing"
  "fig19_load_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
