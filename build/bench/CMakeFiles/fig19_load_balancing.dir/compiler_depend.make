# Empty compiler generated dependencies file for fig19_load_balancing.
# This may be replaced when dependencies are built.
