# Empty dependencies file for cmp_overlays.
# This may be replaced when dependencies are built.
