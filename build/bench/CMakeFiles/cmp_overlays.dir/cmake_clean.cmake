file(REMOVE_RECURSE
  "CMakeFiles/cmp_overlays.dir/cmp_overlays.cpp.o"
  "CMakeFiles/cmp_overlays.dir/cmp_overlays.cpp.o.d"
  "cmp_overlays"
  "cmp_overlays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_overlays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
