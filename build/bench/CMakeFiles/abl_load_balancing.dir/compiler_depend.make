# Empty compiler generated dependencies file for abl_load_balancing.
# This may be replaced when dependencies are built.
