file(REMOVE_RECURSE
  "CMakeFiles/abl_load_balancing.dir/abl_load_balancing.cpp.o"
  "CMakeFiles/abl_load_balancing.dir/abl_load_balancing.cpp.o.d"
  "abl_load_balancing"
  "abl_load_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
