file(REMOVE_RECURSE
  "CMakeFiles/fig09_q1_2d.dir/fig09_q1_2d.cpp.o"
  "CMakeFiles/fig09_q1_2d.dir/fig09_q1_2d.cpp.o.d"
  "fig09_q1_2d"
  "fig09_q1_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_q1_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
