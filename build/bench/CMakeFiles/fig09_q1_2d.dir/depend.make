# Empty dependencies file for fig09_q1_2d.
# This may be replaced when dependencies are built.
