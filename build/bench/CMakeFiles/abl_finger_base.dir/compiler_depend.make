# Empty compiler generated dependencies file for abl_finger_base.
# This may be replaced when dependencies are built.
