file(REMOVE_RECURSE
  "CMakeFiles/abl_finger_base.dir/abl_finger_base.cpp.o"
  "CMakeFiles/abl_finger_base.dir/abl_finger_base.cpp.o.d"
  "abl_finger_base"
  "abl_finger_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_finger_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
