file(REMOVE_RECURSE
  "CMakeFiles/fig14_q2_3d.dir/fig14_q2_3d.cpp.o"
  "CMakeFiles/fig14_q2_3d.dir/fig14_q2_3d.cpp.o.d"
  "fig14_q2_3d"
  "fig14_q2_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_q2_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
