# Empty compiler generated dependencies file for fig14_q2_3d.
# This may be replaced when dependencies are built.
