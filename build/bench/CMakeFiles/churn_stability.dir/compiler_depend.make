# Empty compiler generated dependencies file for churn_stability.
# This may be replaced when dependencies are built.
