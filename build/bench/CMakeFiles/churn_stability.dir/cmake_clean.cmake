file(REMOVE_RECURSE
  "CMakeFiles/churn_stability.dir/churn_stability.cpp.o"
  "CMakeFiles/churn_stability.dir/churn_stability.cpp.o.d"
  "churn_stability"
  "churn_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
