# Empty compiler generated dependencies file for micro_query.
# This may be replaced when dependencies are built.
