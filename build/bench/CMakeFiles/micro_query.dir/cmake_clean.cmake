file(REMOVE_RECURSE
  "CMakeFiles/micro_query.dir/micro_query.cpp.o"
  "CMakeFiles/micro_query.dir/micro_query.cpp.o.d"
  "micro_query"
  "micro_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
