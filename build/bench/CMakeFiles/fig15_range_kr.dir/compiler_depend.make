# Empty compiler generated dependencies file for fig15_range_kr.
# This may be replaced when dependencies are built.
