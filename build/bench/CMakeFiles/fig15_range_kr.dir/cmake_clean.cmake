file(REMOVE_RECURSE
  "CMakeFiles/fig15_range_kr.dir/fig15_range_kr.cpp.o"
  "CMakeFiles/fig15_range_kr.dir/fig15_range_kr.cpp.o.d"
  "fig15_range_kr"
  "fig15_range_kr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_range_kr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
