# Empty compiler generated dependencies file for fig10_metrics_2d.
# This may be replaced when dependencies are built.
