file(REMOVE_RECURSE
  "CMakeFiles/fig10_metrics_2d.dir/fig10_metrics_2d.cpp.o"
  "CMakeFiles/fig10_metrics_2d.dir/fig10_metrics_2d.cpp.o.d"
  "fig10_metrics_2d"
  "fig10_metrics_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_metrics_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
