# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/squid_util_tests[1]_include.cmake")
include("/root/repo/build/tests/squid_sfc_tests[1]_include.cmake")
include("/root/repo/build/tests/squid_baselines_tests[1]_include.cmake")
include("/root/repo/build/tests/squid_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/squid_core_tests[1]_include.cmake")
include("/root/repo/build/tests/squid_keyword_tests[1]_include.cmake")
include("/root/repo/build/tests/squid_overlay_tests[1]_include.cmake")
include("/root/repo/build/tests/squid_sweep_tests[1]_include.cmake")
include("/root/repo/build/tests/squid_integration_tests[1]_include.cmake")
