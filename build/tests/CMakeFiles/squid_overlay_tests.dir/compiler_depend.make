# Empty compiler generated dependencies file for squid_overlay_tests.
# This may be replaced when dependencies are built.
