
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/overlay/can_test.cpp" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/can_test.cpp.o" "gcc" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/can_test.cpp.o.d"
  "/root/repo/tests/overlay/chord_test.cpp" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/chord_test.cpp.o" "gcc" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/chord_test.cpp.o.d"
  "/root/repo/tests/overlay/finger_base_test.cpp" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/finger_base_test.cpp.o" "gcc" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/finger_base_test.cpp.o.d"
  "/root/repo/tests/overlay/id_space_test.cpp" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/id_space_test.cpp.o" "gcc" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/id_space_test.cpp.o.d"
  "/root/repo/tests/overlay/pastry_test.cpp" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/pastry_test.cpp.o" "gcc" "tests/CMakeFiles/squid_overlay_tests.dir/overlay/pastry_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/squid_overlay_tests.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/squid_overlay_tests.dir/sim/engine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/squid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
