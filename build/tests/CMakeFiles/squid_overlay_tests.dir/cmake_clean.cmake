file(REMOVE_RECURSE
  "CMakeFiles/squid_overlay_tests.dir/overlay/can_test.cpp.o"
  "CMakeFiles/squid_overlay_tests.dir/overlay/can_test.cpp.o.d"
  "CMakeFiles/squid_overlay_tests.dir/overlay/chord_test.cpp.o"
  "CMakeFiles/squid_overlay_tests.dir/overlay/chord_test.cpp.o.d"
  "CMakeFiles/squid_overlay_tests.dir/overlay/finger_base_test.cpp.o"
  "CMakeFiles/squid_overlay_tests.dir/overlay/finger_base_test.cpp.o.d"
  "CMakeFiles/squid_overlay_tests.dir/overlay/id_space_test.cpp.o"
  "CMakeFiles/squid_overlay_tests.dir/overlay/id_space_test.cpp.o.d"
  "CMakeFiles/squid_overlay_tests.dir/overlay/pastry_test.cpp.o"
  "CMakeFiles/squid_overlay_tests.dir/overlay/pastry_test.cpp.o.d"
  "CMakeFiles/squid_overlay_tests.dir/sim/engine_test.cpp.o"
  "CMakeFiles/squid_overlay_tests.dir/sim/engine_test.cpp.o.d"
  "squid_overlay_tests"
  "squid_overlay_tests.pdb"
  "squid_overlay_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_overlay_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
