# Empty dependencies file for squid_util_tests.
# This may be replaced when dependencies are built.
