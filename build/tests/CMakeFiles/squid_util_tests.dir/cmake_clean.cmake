file(REMOVE_RECURSE
  "CMakeFiles/squid_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/squid_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/squid_util_tests.dir/util/summary_test.cpp.o"
  "CMakeFiles/squid_util_tests.dir/util/summary_test.cpp.o.d"
  "CMakeFiles/squid_util_tests.dir/util/table_test.cpp.o"
  "CMakeFiles/squid_util_tests.dir/util/table_test.cpp.o.d"
  "CMakeFiles/squid_util_tests.dir/util/u128_test.cpp.o"
  "CMakeFiles/squid_util_tests.dir/util/u128_test.cpp.o.d"
  "squid_util_tests"
  "squid_util_tests.pdb"
  "squid_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
