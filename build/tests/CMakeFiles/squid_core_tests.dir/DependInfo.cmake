
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/count_query_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/count_query_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/count_query_test.cpp.o.d"
  "/root/repo/tests/core/differential_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/differential_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/differential_test.cpp.o.d"
  "/root/repo/tests/core/latency_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/latency_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/latency_test.cpp.o.d"
  "/root/repo/tests/core/load_balance_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/load_balance_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/load_balance_test.cpp.o.d"
  "/root/repo/tests/core/owner_cache_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/owner_cache_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/owner_cache_test.cpp.o.d"
  "/root/repo/tests/core/query_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/query_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/query_test.cpp.o.d"
  "/root/repo/tests/core/replication_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/replication_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/replication_test.cpp.o.d"
  "/root/repo/tests/core/serialize_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/serialize_test.cpp.o.d"
  "/root/repo/tests/core/system_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/system_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/system_test.cpp.o.d"
  "/root/repo/tests/core/timing_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/timing_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/timing_test.cpp.o.d"
  "/root/repo/tests/core/unpublish_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/unpublish_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/unpublish_test.cpp.o.d"
  "/root/repo/tests/core/virtual_nodes_test.cpp" "tests/CMakeFiles/squid_core_tests.dir/core/virtual_nodes_test.cpp.o" "gcc" "tests/CMakeFiles/squid_core_tests.dir/core/virtual_nodes_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/squid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
