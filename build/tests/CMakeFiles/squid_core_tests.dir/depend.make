# Empty dependencies file for squid_core_tests.
# This may be replaced when dependencies are built.
