file(REMOVE_RECURSE
  "CMakeFiles/squid_core_tests.dir/core/count_query_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/count_query_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/differential_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/differential_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/latency_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/latency_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/load_balance_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/load_balance_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/owner_cache_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/owner_cache_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/query_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/query_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/replication_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/replication_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/serialize_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/serialize_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/system_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/system_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/timing_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/timing_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/unpublish_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/unpublish_test.cpp.o.d"
  "CMakeFiles/squid_core_tests.dir/core/virtual_nodes_test.cpp.o"
  "CMakeFiles/squid_core_tests.dir/core/virtual_nodes_test.cpp.o.d"
  "squid_core_tests"
  "squid_core_tests.pdb"
  "squid_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
