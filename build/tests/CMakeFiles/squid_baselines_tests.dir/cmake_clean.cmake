file(REMOVE_RECURSE
  "CMakeFiles/squid_baselines_tests.dir/baselines/baselines_test.cpp.o"
  "CMakeFiles/squid_baselines_tests.dir/baselines/baselines_test.cpp.o.d"
  "CMakeFiles/squid_baselines_tests.dir/baselines/can_inverse_sfc_test.cpp.o"
  "CMakeFiles/squid_baselines_tests.dir/baselines/can_inverse_sfc_test.cpp.o.d"
  "squid_baselines_tests"
  "squid_baselines_tests.pdb"
  "squid_baselines_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_baselines_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
