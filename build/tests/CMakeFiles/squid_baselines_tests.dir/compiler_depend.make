# Empty compiler generated dependencies file for squid_baselines_tests.
# This may be replaced when dependencies are built.
