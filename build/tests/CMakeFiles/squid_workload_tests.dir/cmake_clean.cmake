file(REMOVE_RECURSE
  "CMakeFiles/squid_workload_tests.dir/workload/corpus_test.cpp.o"
  "CMakeFiles/squid_workload_tests.dir/workload/corpus_test.cpp.o.d"
  "CMakeFiles/squid_workload_tests.dir/workload/text_test.cpp.o"
  "CMakeFiles/squid_workload_tests.dir/workload/text_test.cpp.o.d"
  "squid_workload_tests"
  "squid_workload_tests.pdb"
  "squid_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
