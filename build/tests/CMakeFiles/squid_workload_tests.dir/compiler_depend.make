# Empty compiler generated dependencies file for squid_workload_tests.
# This may be replaced when dependencies are built.
