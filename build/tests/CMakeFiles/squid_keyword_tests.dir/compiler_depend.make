# Empty compiler generated dependencies file for squid_keyword_tests.
# This may be replaced when dependencies are built.
