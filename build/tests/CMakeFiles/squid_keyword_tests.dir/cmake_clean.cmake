file(REMOVE_RECURSE
  "CMakeFiles/squid_keyword_tests.dir/keyword/codec_test.cpp.o"
  "CMakeFiles/squid_keyword_tests.dir/keyword/codec_test.cpp.o.d"
  "CMakeFiles/squid_keyword_tests.dir/keyword/parse_fuzz_test.cpp.o"
  "CMakeFiles/squid_keyword_tests.dir/keyword/parse_fuzz_test.cpp.o.d"
  "CMakeFiles/squid_keyword_tests.dir/keyword/space_test.cpp.o"
  "CMakeFiles/squid_keyword_tests.dir/keyword/space_test.cpp.o.d"
  "CMakeFiles/squid_keyword_tests.dir/keyword/str_range_test.cpp.o"
  "CMakeFiles/squid_keyword_tests.dir/keyword/str_range_test.cpp.o.d"
  "squid_keyword_tests"
  "squid_keyword_tests.pdb"
  "squid_keyword_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_keyword_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
