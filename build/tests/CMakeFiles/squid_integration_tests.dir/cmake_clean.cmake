file(REMOVE_RECURSE
  "CMakeFiles/squid_integration_tests.dir/integration/full_stack_test.cpp.o"
  "CMakeFiles/squid_integration_tests.dir/integration/full_stack_test.cpp.o.d"
  "squid_integration_tests"
  "squid_integration_tests.pdb"
  "squid_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
