# Empty dependencies file for squid_integration_tests.
# This may be replaced when dependencies are built.
