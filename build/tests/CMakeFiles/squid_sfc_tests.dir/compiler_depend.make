# Empty compiler generated dependencies file for squid_sfc_tests.
# This may be replaced when dependencies are built.
