file(REMOVE_RECURSE
  "CMakeFiles/squid_sfc_tests.dir/sfc/curve_property_test.cpp.o"
  "CMakeFiles/squid_sfc_tests.dir/sfc/curve_property_test.cpp.o.d"
  "CMakeFiles/squid_sfc_tests.dir/sfc/hilbert_test.cpp.o"
  "CMakeFiles/squid_sfc_tests.dir/sfc/hilbert_test.cpp.o.d"
  "CMakeFiles/squid_sfc_tests.dir/sfc/refine_test.cpp.o"
  "CMakeFiles/squid_sfc_tests.dir/sfc/refine_test.cpp.o.d"
  "squid_sfc_tests"
  "squid_sfc_tests.pdb"
  "squid_sfc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_sfc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
