# Empty compiler generated dependencies file for squid_sweep_tests.
# This may be replaced when dependencies are built.
