file(REMOVE_RECURSE
  "CMakeFiles/squid_sweep_tests.dir/sweeps/param_sweeps_test.cpp.o"
  "CMakeFiles/squid_sweep_tests.dir/sweeps/param_sweeps_test.cpp.o.d"
  "squid_sweep_tests"
  "squid_sweep_tests.pdb"
  "squid_sweep_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_sweep_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
