# Empty compiler generated dependencies file for p2p_file_search.
# This may be replaced when dependencies are built.
