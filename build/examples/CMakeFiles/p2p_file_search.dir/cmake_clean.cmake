file(REMOVE_RECURSE
  "CMakeFiles/p2p_file_search.dir/p2p_file_search.cpp.o"
  "CMakeFiles/p2p_file_search.dir/p2p_file_search.cpp.o.d"
  "p2p_file_search"
  "p2p_file_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_file_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
