# Empty dependencies file for grid_resource_discovery.
# This may be replaced when dependencies are built.
