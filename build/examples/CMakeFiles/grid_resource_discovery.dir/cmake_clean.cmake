file(REMOVE_RECURSE
  "CMakeFiles/grid_resource_discovery.dir/grid_resource_discovery.cpp.o"
  "CMakeFiles/grid_resource_discovery.dir/grid_resource_discovery.cpp.o.d"
  "grid_resource_discovery"
  "grid_resource_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_resource_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
