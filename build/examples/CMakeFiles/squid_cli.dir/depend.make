# Empty dependencies file for squid_cli.
# This may be replaced when dependencies are built.
