file(REMOVE_RECURSE
  "CMakeFiles/squid_cli.dir/squid_cli.cpp.o"
  "CMakeFiles/squid_cli.dir/squid_cli.cpp.o.d"
  "squid_cli"
  "squid_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
