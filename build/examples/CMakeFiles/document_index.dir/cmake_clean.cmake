file(REMOVE_RECURSE
  "CMakeFiles/document_index.dir/document_index.cpp.o"
  "CMakeFiles/document_index.dir/document_index.cpp.o.d"
  "document_index"
  "document_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
