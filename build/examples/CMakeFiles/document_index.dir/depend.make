# Empty dependencies file for document_index.
# This may be replaced when dependencies are built.
