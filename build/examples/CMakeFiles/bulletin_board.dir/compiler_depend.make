# Empty compiler generated dependencies file for bulletin_board.
# This may be replaced when dependencies are built.
