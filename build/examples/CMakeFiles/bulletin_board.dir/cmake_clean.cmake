file(REMOVE_RECURSE
  "CMakeFiles/bulletin_board.dir/bulletin_board.cpp.o"
  "CMakeFiles/bulletin_board.dir/bulletin_board.cpp.o.d"
  "bulletin_board"
  "bulletin_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulletin_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
