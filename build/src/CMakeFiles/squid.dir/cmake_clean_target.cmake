file(REMOVE_RECURSE
  "libsquid.a"
)
