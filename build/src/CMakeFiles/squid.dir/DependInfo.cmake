
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/can_inverse_sfc.cpp" "src/CMakeFiles/squid.dir/baselines/can_inverse_sfc.cpp.o" "gcc" "src/CMakeFiles/squid.dir/baselines/can_inverse_sfc.cpp.o.d"
  "/root/repo/src/baselines/chord_oracle.cpp" "src/CMakeFiles/squid.dir/baselines/chord_oracle.cpp.o" "gcc" "src/CMakeFiles/squid.dir/baselines/chord_oracle.cpp.o.d"
  "/root/repo/src/baselines/flooding.cpp" "src/CMakeFiles/squid.dir/baselines/flooding.cpp.o" "gcc" "src/CMakeFiles/squid.dir/baselines/flooding.cpp.o.d"
  "/root/repo/src/baselines/inverted_index.cpp" "src/CMakeFiles/squid.dir/baselines/inverted_index.cpp.o" "gcc" "src/CMakeFiles/squid.dir/baselines/inverted_index.cpp.o.d"
  "/root/repo/src/core/query_engine.cpp" "src/CMakeFiles/squid.dir/core/query_engine.cpp.o" "gcc" "src/CMakeFiles/squid.dir/core/query_engine.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/CMakeFiles/squid.dir/core/replication.cpp.o" "gcc" "src/CMakeFiles/squid.dir/core/replication.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/squid.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/squid.dir/core/serialize.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/squid.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/squid.dir/core/system.cpp.o.d"
  "/root/repo/src/core/timing.cpp" "src/CMakeFiles/squid.dir/core/timing.cpp.o" "gcc" "src/CMakeFiles/squid.dir/core/timing.cpp.o.d"
  "/root/repo/src/core/virtual_nodes.cpp" "src/CMakeFiles/squid.dir/core/virtual_nodes.cpp.o" "gcc" "src/CMakeFiles/squid.dir/core/virtual_nodes.cpp.o.d"
  "/root/repo/src/keyword/codec.cpp" "src/CMakeFiles/squid.dir/keyword/codec.cpp.o" "gcc" "src/CMakeFiles/squid.dir/keyword/codec.cpp.o.d"
  "/root/repo/src/keyword/space.cpp" "src/CMakeFiles/squid.dir/keyword/space.cpp.o" "gcc" "src/CMakeFiles/squid.dir/keyword/space.cpp.o.d"
  "/root/repo/src/overlay/can.cpp" "src/CMakeFiles/squid.dir/overlay/can.cpp.o" "gcc" "src/CMakeFiles/squid.dir/overlay/can.cpp.o.d"
  "/root/repo/src/overlay/chord.cpp" "src/CMakeFiles/squid.dir/overlay/chord.cpp.o" "gcc" "src/CMakeFiles/squid.dir/overlay/chord.cpp.o.d"
  "/root/repo/src/overlay/pastry.cpp" "src/CMakeFiles/squid.dir/overlay/pastry.cpp.o" "gcc" "src/CMakeFiles/squid.dir/overlay/pastry.cpp.o.d"
  "/root/repo/src/sfc/curve.cpp" "src/CMakeFiles/squid.dir/sfc/curve.cpp.o" "gcc" "src/CMakeFiles/squid.dir/sfc/curve.cpp.o.d"
  "/root/repo/src/sfc/hilbert.cpp" "src/CMakeFiles/squid.dir/sfc/hilbert.cpp.o" "gcc" "src/CMakeFiles/squid.dir/sfc/hilbert.cpp.o.d"
  "/root/repo/src/sfc/refine.cpp" "src/CMakeFiles/squid.dir/sfc/refine.cpp.o" "gcc" "src/CMakeFiles/squid.dir/sfc/refine.cpp.o.d"
  "/root/repo/src/sfc/zorder.cpp" "src/CMakeFiles/squid.dir/sfc/zorder.cpp.o" "gcc" "src/CMakeFiles/squid.dir/sfc/zorder.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/squid.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/squid.dir/sim/engine.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/squid.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/squid.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/squid.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/squid.dir/stats/table.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/squid.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/squid.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/u128.cpp" "src/CMakeFiles/squid.dir/util/u128.cpp.o" "gcc" "src/CMakeFiles/squid.dir/util/u128.cpp.o.d"
  "/root/repo/src/workload/corpus.cpp" "src/CMakeFiles/squid.dir/workload/corpus.cpp.o" "gcc" "src/CMakeFiles/squid.dir/workload/corpus.cpp.o.d"
  "/root/repo/src/workload/text.cpp" "src/CMakeFiles/squid.dir/workload/text.cpp.o" "gcc" "src/CMakeFiles/squid.dir/workload/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
