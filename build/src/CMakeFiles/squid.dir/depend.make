# Empty dependencies file for squid.
# This may be replaced when dependencies are built.
