#include "squid/baselines/can_inverse_sfc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "squid/util/rng.hpp"

namespace squid::baselines {
namespace {

struct World {
  std::unique_ptr<CanInverseSfcIndex> index;
  std::vector<std::pair<std::string, double>> all;
};

World make_world(std::uint64_t seed, std::size_t nodes, std::size_t count) {
  World world;
  Rng rng(seed);
  world.index = std::make_unique<CanInverseSfcIndex>(2, 10, nodes, 0.0,
                                                     1024.0, rng);
  for (std::size_t i = 0; i < count; ++i) {
    const double value = rng.uniform() * 1024.0;
    world.all.emplace_back("m" + std::to_string(i), value);
    world.index->publish(world.all.back().first, value);
  }
  return world;
}

TEST(CanInverseSfc, RangeQueriesAreComplete) {
  World world = make_world(81, 100, 2000);
  Rng rng(82);
  for (int trial = 0; trial < 20; ++trial) {
    const double a = rng.uniform() * 1024.0;
    const double b = rng.uniform() * 1024.0;
    const double lo = std::min(a, b), hi = std::max(a, b);
    const auto result = world.index->range_query(lo, hi, rng);
    std::vector<std::string> expected;
    for (const auto& [name, value] : world.all)
      if (value >= lo && value <= hi) expected.push_back(name);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(result.names, expected) << "[" << lo << "," << hi << "]";
  }
}

TEST(CanInverseSfc, PointQueriesTouchFewZones) {
  World world = make_world(83, 200, 2000);
  Rng rng(84);
  const auto result = world.index->range_query(512.0, 513.0, rng);
  EXPECT_LE(result.nodes_visited, 4u);
}

TEST(CanInverseSfc, CostScalesWithRangeCoverage) {
  World world = make_world(85, 200, 2000);
  Rng rng(86);
  const auto narrow = world.index->range_query(100.0, 120.0, rng);
  const auto wide = world.index->range_query(0.0, 1024.0, rng);
  EXPECT_LT(narrow.nodes_visited, wide.nodes_visited);
  // The full domain sweeps every zone holding data.
  EXPECT_EQ(wide.matches, world.all.size());
}

TEST(CanInverseSfc, RejectsEmptyRange) {
  World world = make_world(87, 20, 100);
  Rng rng(88);
  EXPECT_THROW((void)world.index->range_query(5.0, 4.0, rng),
               std::invalid_argument);
}

} // namespace
} // namespace squid::baselines
