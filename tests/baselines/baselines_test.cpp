// Baseline correctness: every comparator must return the same matches as
// Squid's engine (when it can express the query at all), so the comparative
// benches measure cost differences, never correctness differences.

#include <gtest/gtest.h>

#include <algorithm>

#include "squid/baselines/chord_oracle.hpp"
#include "squid/baselines/flooding.hpp"
#include "squid/baselines/inverted_index.hpp"
#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::baselines {
namespace {

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<core::SquidSystem> sys;
  std::vector<core::DataElement> all;
};

World make_world(std::uint64_t seed, std::size_t nodes, std::size_t elements) {
  World world;
  Rng rng(seed);
  world.corpus = std::make_unique<workload::KeywordCorpus>(2, 200, 0.9, rng);
  world.sys =
      std::make_unique<core::SquidSystem>(world.corpus->make_space());
  world.sys->build_network(nodes, rng);
  world.all = world.corpus->make_elements(elements, rng);
  for (const auto& e : world.all) world.sys->publish(e);
  return world;
}

std::size_t oracle_count(const World& world, const keyword::Query& q) {
  std::size_t count = 0;
  for (const auto& e : world.all)
    count += world.sys->space().matches(q, e.keys);
  return count;
}

TEST(Flooding, UnboundedFloodIsCompleteButTouchesEveryone) {
  Rng rng(51);
  World world = make_world(51, 50, 1000);
  FloodingNetwork flood(200, 4, rng);
  for (const auto& e : world.all) flood.publish(e, rng);
  const keyword::Query q = world.corpus->q1(0, true);
  const auto result =
      flood.query(world.sys->space(), q, /*ttl=*/200, rng);
  EXPECT_EQ(result.matches, flood.total_matches(world.sys->space(), q));
  EXPECT_EQ(result.nodes_visited, flood.size()); // the whole network
  EXPECT_GE(result.messages, flood.size());      // at least one per peer
}

TEST(Flooding, TtlBoundedFloodMisses) {
  Rng rng(52);
  World world = make_world(52, 50, 2000);
  FloodingNetwork flood(500, 4, rng);
  for (const auto& e : world.all) flood.publish(e, rng);
  const keyword::Query q = world.corpus->q1(0, true);
  const std::size_t total = flood.total_matches(world.sys->space(), q);
  ASSERT_GT(total, 20u);
  const auto result = flood.query(world.sys->space(), q, /*ttl=*/2, rng);
  EXPECT_LT(result.matches, total); // no guarantee with a practical TTL
}

TEST(ChordOracle, FindsEveryMatchGivenGlobalKnowledge) {
  Rng rng(53);
  World world = make_world(53, 60, 1500);
  for (const std::size_t rank : {0u, 3u, 10u}) {
    const keyword::Query q = world.corpus->q1(rank, true);
    const OracleResult oracle = chord_oracle_query(*world.sys, q, rng);
    EXPECT_EQ(oracle.matches, oracle_count(world, q));
    // Cost model: two messages per matching key.
    EXPECT_EQ(oracle.messages, 2 * oracle.matching_keys);
  }
}

TEST(CentralizedQuery, AgreesWithDistributedEngine) {
  Rng rng(54);
  World world = make_world(54, 60, 1500);
  for (const std::size_t rank : {0u, 2u, 7u}) {
    const keyword::Query q = world.corpus->q1(rank, true);
    const auto origin = world.sys->ring().random_node(rng);
    const auto distributed = world.sys->query(q, origin);
    const auto centralized = world.sys->query_centralized(q, origin);
    EXPECT_EQ(centralized.stats.matches, distributed.stats.matches);
    auto names = [](const std::vector<core::DataElement>& es) {
      std::vector<std::string> ns;
      for (const auto& e : es) ns.push_back(e.name);
      std::sort(ns.begin(), ns.end());
      return ns;
    };
    EXPECT_EQ(names(centralized.elements), names(distributed.elements));
  }
}

TEST(CentralizedQuery, SegmentCapStillComplete) {
  Rng rng(55);
  World world = make_world(55, 40, 800);
  const keyword::Query q = world.corpus->q1(1, true);
  const auto origin = world.sys->ring().random_node(rng);
  const auto tight = world.sys->query_centralized(q, origin, /*max_segments=*/4);
  const auto loose = world.sys->query_centralized(q, origin, 4096);
  EXPECT_EQ(tight.stats.matches, loose.stats.matches);
}

TEST(InvertedIndex, WholeKeywordConjunctionsAreExact) {
  Rng rng(56);
  World world = make_world(56, 60, 1500);
  InvertedIndexDht index(60, rng);
  for (const auto& e : world.all) index.publish(e);

  const std::string a = world.corpus->vocabulary().by_rank(0);
  const std::string b = world.corpus->vocabulary().by_rank(1);
  {
    const auto result = index.query_whole({a, "*"}, rng);
    keyword::Query q{{keyword::Whole{a}, keyword::Any{}}};
    EXPECT_EQ(result.matches, oracle_count(world, q));
  }
  {
    const auto result = index.query_whole({a, b}, rng);
    keyword::Query q{{keyword::Whole{a}, keyword::Whole{b}}};
    EXPECT_EQ(result.matches, oracle_count(world, q));
    EXPECT_EQ(result.posting_nodes, 2u);
    EXPECT_EQ(result.messages, 4u);
  }
}

TEST(InvertedIndex, PrefixQueriesCostOneLookupPerVocabularyExpansion) {
  Rng rng(57);
  World world = make_world(57, 60, 1500);
  InvertedIndexDht index(60, rng);
  for (const auto& e : world.all) index.publish(e);

  const std::string word = world.corpus->vocabulary().by_rank(0);
  const std::string prefix = word.substr(0, 2);
  std::size_t expansions = 0;
  for (const auto& w : world.corpus->vocabulary().words())
    expansions += w.starts_with(prefix);
  ASSERT_GE(expansions, 2u);

  const auto result = index.query_prefix(
      0, prefix, world.corpus->vocabulary().words(), rng);
  keyword::Query q{{keyword::Prefix{prefix}, keyword::Any{}}};
  EXPECT_EQ(result.matches, oracle_count(world, q));
  EXPECT_EQ(result.messages, 2 * expansions);
}

TEST(InvertedIndex, RejectsAllWildcardQueries) {
  Rng rng(58);
  InvertedIndexDht index(10, rng);
  EXPECT_THROW((void)index.query_whole({"*", "*"}, rng),
               std::invalid_argument);
}

} // namespace
} // namespace squid::baselines
