// Cross-parameter sweeps: exercise the full stack at corners the focused
// suites do not reach — extreme ring widths, tiny and large successor
// lists, high-dimensional curves, random alphabets, 3D end-to-end engines.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "squid/core/system.hpp"
#include "squid/overlay/chord.hpp"
#include "squid/sfc/hilbert.hpp"
#include "squid/util/rng.hpp"

namespace squid {
namespace {

// --- Chord geometry sweep --------------------------------------------------

using ChordGeometry = std::tuple<unsigned, unsigned, std::size_t>;
// id_bits, successor list, nodes

class ChordSweep : public ::testing::TestWithParam<ChordGeometry> {};

TEST_P(ChordSweep, BuildsConsistentlyAndRoutesCorrectly) {
  const auto& [bits, successors, nodes] = GetParam();
  Rng rng(bits * 131 + successors);
  overlay::ChordRing ring(bits, successors);
  ring.build(nodes, rng);
  EXPECT_TRUE(ring.ring_consistent());
  for (int trial = 0; trial < 60; ++trial) {
    const u128 key = rng.next128() & ring.id_mask();
    const auto r = ring.route(ring.random_node(rng), key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dest, ring.successor_of(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, ChordSweep,
    ::testing::Values(ChordGeometry{8, 1, 5}, ChordGeometry{8, 4, 40},
                      ChordGeometry{16, 1, 100}, ChordGeometry{16, 16, 100},
                      ChordGeometry{48, 8, 300}, ChordGeometry{128, 4, 100},
                      ChordGeometry{128, 32, 50}),
    [](const auto& info) {
      return "bits" + std::to_string(std::get<0>(info.param)) + "_succ" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

// --- High-dimensional Hilbert ------------------------------------------------

class HighDimHilbert : public ::testing::TestWithParam<unsigned> {};

TEST_P(HighDimHilbert, RoundTripAndContinuity) {
  const unsigned dims = GetParam();
  const sfc::HilbertCurve curve(dims, 2);
  sfc::Point prev = curve.point_of(0);
  for (u128 h = 0; h <= curve.max_index(); ++h) {
    const sfc::Point p = curve.point_of(h);
    ASSERT_EQ(curve.index_of(p), h);
    if (h > 0) {
      std::uint64_t moved = 0;
      for (unsigned d = 0; d < dims; ++d)
        moved += p[d] > prev[d] ? p[d] - prev[d] : prev[d] - p[d];
      ASSERT_EQ(moved, 1u) << "discontinuity at " << lo64(h);
    }
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HighDimHilbert, ::testing::Values(5u, 6u, 7u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

// --- Random-alphabet codec fuzz ---------------------------------------------

TEST(CodecFuzz, RandomAlphabetsRoundTripAndOrder) {
  Rng rng(7331);
  for (int config = 0; config < 20; ++config) {
    // Random alphabet: a shuffled subset of letters, size 2..26.
    std::vector<char> pool;
    for (char c = 'a'; c <= 'z'; ++c) pool.push_back(c);
    rng.shuffle(pool);
    const std::size_t alpha_size = 2 + rng.below(25);
    std::string alphabet(pool.begin(), pool.begin() + alpha_size);
    std::sort(alphabet.begin(), alphabet.end()); // codec order = char order
    const unsigned max_len = 1 + static_cast<unsigned>(rng.below(5));
    const keyword::StringCodec codec(alphabet, max_len);

    const auto random_word = [&] {
      std::string w;
      for (std::uint64_t j = rng.below(max_len + 1); j-- > 0;)
        w.push_back(alphabet[rng.below(alphabet.size())]);
      return w;
    };
    for (int trial = 0; trial < 50; ++trial) {
      const std::string a = random_word();
      const std::string b = random_word();
      ASSERT_EQ(codec.decode(codec.encode(a)), a);
      ASSERT_EQ(a < b, codec.encode(a) < codec.encode(b))
          << a << " vs " << b << " alphabet " << alphabet;
      const auto prefix_len = rng.below(a.size() + 1);
      const sfc::Interval iv = codec.prefix_interval(a.substr(0, prefix_len));
      ASSERT_TRUE(iv.contains(codec.encode(a)));
    }
  }
}

// --- 3D end-to-end engine sweep ----------------------------------------------

using EngineConfig = std::tuple<std::string, unsigned>;

class Engine3D : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(Engine3D, ThreeDimensionalCompleteness) {
  const auto& [curve, finger_base] = GetParam();
  core::SquidConfig config;
  config.curve = curve;
  config.finger_base = finger_base;
  Rng rng(911);
  const char letters[] = "abc";
  core::SquidSystem sys(
      keyword::KeywordSpace({keyword::StringCodec(letters, 2),
                             keyword::StringCodec(letters, 2),
                             keyword::StringCodec(letters, 2)}),
      config);
  sys.build_network(25, rng);
  std::vector<core::DataElement> all;
  for (int i = 0; i < 300; ++i) {
    const auto word = [&] {
      std::string w;
      for (std::uint64_t j = rng.range(1, 2); j-- > 0;)
        w.push_back(letters[rng.below(3)]);
      return w;
    };
    all.push_back({"e" + std::to_string(i), {word(), word(), word()}});
    sys.publish(all.back());
  }
  for (const std::string text :
       {"(a*, *, *)", "(*, b, *)", "(a, b*, c)", "(*, *, *)", "(c*, a*, *)"}) {
    const keyword::Query q = sys.space().parse(text);
    std::vector<std::string> expected;
    for (const auto& e : all)
      if (sys.space().matches(q, e.keys)) expected.push_back(e.name);
    std::sort(expected.begin(), expected.end());
    const auto result = sys.query(q, sys.ring().random_node(rng));
    std::vector<std::string> got;
    for (const auto& e : result.elements) got.push_back(e.name);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << curve << " base " << finger_base << " " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Engine3D,
    ::testing::Values(EngineConfig{"hilbert", 2}, EngineConfig{"hilbert", 8},
                      EngineConfig{"zorder", 2}, EngineConfig{"gray", 4}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace squid
