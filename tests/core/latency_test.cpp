// Critical-path latency accounting: dependent messages chain, independent
// sub-queries run in parallel, so the critical path must sit between the
// single-lookup cost and the total message count.

#include <gtest/gtest.h>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<SquidSystem> sys;
};

World make_world(std::uint64_t seed, std::size_t nodes, std::size_t elements) {
  World world;
  Rng rng(seed);
  world.corpus = std::make_unique<workload::KeywordCorpus>(2, 300, 0.9, rng);
  world.sys = std::make_unique<SquidSystem>(world.corpus->make_space());
  world.sys->build_network(nodes, rng);
  for (const auto& e : world.corpus->make_elements(elements, rng))
    world.sys->publish(e);
  return world;
}

TEST(Latency, PointLookupEqualsRouteHops) {
  World world = make_world(121, 100, 500);
  Rng rng(121);
  // A fully-specified query is a single routed lookup.
  const auto& word_a = world.corpus->vocabulary().by_rank(0);
  const auto& word_b = world.corpus->vocabulary().by_rank(1);
  keyword::Query q{{keyword::Whole{word_a}, keyword::Whole{word_b}}};
  const auto origin = world.sys->ring().random_node(rng);
  const auto result = world.sys->query(q, origin);
  // Route length in a 100-node ring is single-digit.
  EXPECT_LE(result.stats.critical_path_hops, 12u);
}

TEST(Latency, CriticalPathBelowMessageTotalOnBroadQueries) {
  World world = make_world(122, 150, 3000);
  Rng rng(122);
  const keyword::Query q = world.corpus->q1(0, true);
  const auto result = world.sys->query(q, world.sys->ring().random_node(rng));
  ASSERT_GT(result.stats.messages, 10u);
  // Parallel fan-out: the dependent chain is far shorter than the sum.
  EXPECT_LT(result.stats.critical_path_hops, result.stats.messages);
  EXPECT_GE(result.stats.critical_path_hops, 1u);
}

TEST(Latency, GrowsSlowlyWithSystemSize) {
  double small_latency = 0, large_latency = 0;
  {
    World world = make_world(123, 50, 2000);
    Rng rng(123);
    const keyword::Query q = world.corpus->q1(0, true);
    for (int i = 0; i < 10; ++i)
      small_latency += static_cast<double>(
          world.sys->query(q, world.sys->ring().random_node(rng))
              .stats.critical_path_hops);
  }
  {
    World world = make_world(123, 800, 2000); // same corpus seed, 16x nodes
    Rng rng(124);
    const keyword::Query q = world.corpus->q1(0, true);
    for (int i = 0; i < 10; ++i)
      large_latency += static_cast<double>(
          world.sys->query(q, world.sys->ring().random_node(rng))
              .stats.critical_path_hops);
  }
  // 16x nodes should cost far less than 16x latency (log routing + the
  // covered-sweep chains grow with local node density only).
  EXPECT_LT(large_latency, 8 * small_latency);
}

TEST(Latency, CentralizedQueryAlsoReportsCriticalPath) {
  World world = make_world(125, 80, 1500);
  Rng rng(125);
  const keyword::Query q = world.corpus->q1(2, true);
  const auto origin = world.sys->ring().random_node(rng);
  const auto result = world.sys->query_centralized(q, origin);
  EXPECT_GE(result.stats.critical_path_hops, 1u);
  EXPECT_LE(result.stats.critical_path_hops, result.stats.messages);
}

} // namespace
} // namespace squid::core
