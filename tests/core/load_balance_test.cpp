// Load balancing (paper 3.5, Figs 18-19): the SFC mapping skews key
// placement; join-time identifier sampling and runtime boundary exchange
// must measurably flatten the per-node load distribution without breaking
// query completeness.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/stats/summary.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

constexpr const char* kAlpha = "abcdefghijklmnopqrstuvwxyz";

keyword::KeywordSpace doc_space() {
  return keyword::KeywordSpace(
      {keyword::StringCodec(kAlpha, 4), keyword::StringCodec(kAlpha, 4)});
}

/// Zipf-clustered corpus: popular stems with shared prefixes, the skewed
/// workload the paper's load-balancing section assumes.
std::vector<DataElement> skewed_corpus(std::size_t count, Rng& rng) {
  const std::vector<std::string> stems{"comp", "cont", "netw", "net",
                                       "data", "dist", "grid", "stor"};
  ZipfSampler zipf(stems.size(), 1.2);
  std::vector<DataElement> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto pick = [&] {
      std::string w = stems[zipf.sample(rng)];
      const std::size_t keep = 2 + rng.below(3);
      if (keep < w.size()) w.resize(keep); // truncate only, never pad
      if (rng.chance(0.7)) w.push_back(kAlpha[rng.below(26)]);
      return w;
    };
    corpus.push_back(DataElement{"d" + std::to_string(i), {pick(), pick()}});
  }
  return corpus;
}

double load_cv(const SquidSystem& sys) {
  Summary loads;
  for (const auto& [id, load] : sys.node_loads())
    loads.add(static_cast<double>(load));
  return loads.cv();
}

TEST(LoadBalance, SfcPlacementIsSkewedWithoutBalancing) {
  Rng rng(31);
  SquidSystem sys(doc_space());
  sys.build_network(100, rng);
  for (const auto& e : skewed_corpus(3000, rng)) sys.publish(e);
  // Random node ids vs clustered keys: strong imbalance expected (Fig 18).
  EXPECT_GT(load_cv(sys), 1.0);
}

TEST(LoadBalance, JoinTimeSamplingReducesImbalance) {
  Rng rng_corpus(32);
  const auto corpus = skewed_corpus(3000, rng_corpus);

  const auto build = [&](unsigned samples) {
    SquidConfig config;
    config.join_samples = samples;
    SquidSystem sys(doc_space(), config);
    Rng rng(33);
    sys.build_network(1, rng); // bootstrap peer
    for (const auto& e : corpus) sys.publish(e);
    for (int i = 0; i < 99; ++i) (void)sys.join_node(rng);
    return load_cv(sys);
  };

  const double random_join = build(1);
  const double sampled_join = build(8);
  EXPECT_LT(sampled_join, random_join);
}

TEST(LoadBalance, RuntimeSweepFlattensDistribution) {
  Rng rng(34);
  SquidSystem sys(doc_space());
  sys.build_network(100, rng);
  for (const auto& e : skewed_corpus(3000, rng)) sys.publish(e);

  const double before = load_cv(sys);
  std::size_t total_moves = 0;
  for (int sweep = 0; sweep < 8; ++sweep)
    total_moves += sys.runtime_balance_sweep(1.5);
  const double after = load_cv(sys);

  EXPECT_GT(total_moves, 0u);
  EXPECT_EQ(sys.balance_moves(), total_moves);
  EXPECT_LT(after, before * 0.6);
  EXPECT_TRUE(sys.ring().ring_consistent());
  EXPECT_EQ(sys.ring().size(), 100u); // moves, not additions/removals
}

TEST(LoadBalance, CombinedPipelineBeatsEachStepAlone) {
  Rng rng_corpus(35);
  const auto corpus = skewed_corpus(4000, rng_corpus);

  const auto build_cv = [&](unsigned samples, int sweeps) {
    SquidConfig config;
    config.join_samples = samples;
    SquidSystem sys(doc_space(), config);
    Rng rng(36);
    sys.build_network(1, rng);
    for (const auto& e : corpus) sys.publish(e);
    for (int i = 0; i < 149; ++i) (void)sys.join_node(rng);
    for (int s = 0; s < sweeps; ++s) (void)sys.runtime_balance_sweep(1.2);
    return load_cv(sys);
  };

  const double none = build_cv(1, 0);
  const double join_only = build_cv(8, 0);
  const double join_plus_runtime = build_cv(8, 30);
  // Fig 19's qualitative ordering: raw SFC placement is badly skewed,
  // join-time balancing visibly helps, and the combined pipeline flattens
  // the distribution much further.
  EXPECT_LT(join_only, 0.7 * none);
  EXPECT_LT(join_plus_runtime, 0.7 * join_only);
  EXPECT_LT(join_plus_runtime, 1.3);
}

TEST(LoadBalance, BalancingPreservesQueryCompleteness) {
  Rng rng(37);
  SquidSystem sys(doc_space());
  sys.build_network(80, rng);
  const auto corpus = skewed_corpus(2000, rng);
  for (const auto& e : corpus) sys.publish(e);
  for (int sweep = 0; sweep < 5; ++sweep) (void)sys.runtime_balance_sweep(1.5);

  for (const std::string text : {"(comp*, *)", "(ne*, d*)", "(*, grid*)"}) {
    const keyword::Query q = sys.space().parse(text);
    std::vector<std::string> expected;
    for (const auto& e : corpus)
      if (sys.space().matches(q, e.keys)) expected.push_back(e.name);
    std::sort(expected.begin(), expected.end());

    const QueryResult result = sys.query(q, sys.ring().random_node(rng));
    std::vector<std::string> got;
    for (const auto& e : result.elements) got.push_back(e.name);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << text;
  }
}

TEST(LoadBalance, SweepIsIdempotentOnBalancedLoad) {
  Rng rng(38);
  SquidSystem sys(doc_space());
  sys.build_network(50, rng);
  // Uniform keys: coordinates drawn uniformly leave little to balance.
  for (int i = 0; i < 2000; ++i) {
    std::string a, b;
    for (int j = 0; j < 4; ++j) a.push_back(kAlpha[rng.below(26)]);
    for (int j = 0; j < 4; ++j) b.push_back(kAlpha[rng.below(26)]);
    sys.publish(DataElement{"u" + std::to_string(i), {a, b}});
  }
  for (int s = 0; s < 12; ++s) (void)sys.runtime_balance_sweep(2.0);
  const std::size_t quiesced = sys.runtime_balance_sweep(2.0);
  EXPECT_LE(quiesced, 3u); // essentially converged
}

} // namespace
} // namespace squid::core
