// Concurrency contract of the query engine (DESIGN.md 4b): with the owner
// cache off, query()/count() are pure readers over the flat store and the
// ring — many threads may resolve queries at once, and each must get the
// exact single-threaded result. With the cache ON, concurrent queries write
// shared state; the engine must fail loudly (SQUID_REQUIRE) instead of
// racing. This suite carries the "sanitize" ctest label and is the primary
// TSan workload.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using overlay::NodeId;

const char kLetters[] = "abcde";

SquidSystem make_loaded_system(bool cache, Rng& rng) {
  SquidConfig config;
  config.cache_cluster_owners = cache;
  SquidSystem sys(keyword::KeywordSpace({keyword::StringCodec(kLetters, 3),
                                         keyword::StringCodec(kLetters, 3)}),
                  config);
  sys.build_network(40, rng);
  for (int i = 0; i < 400; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(kLetters[rng.below(5)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(kLetters[rng.below(5)]);
    sys.publish(DataElement{"e" + std::to_string(i), {a, b}});
  }
  return sys;
}

TEST(ParallelQuery, ConcurrentReadersMatchSingleThreadedResults) {
  Rng rng(0xc0c0);
  const SquidSystem sys = make_loaded_system(/*cache=*/false, rng);

  // Fixed workload: (query, origin) pairs with single-threaded reference
  // results, computed up front.
  struct Work {
    keyword::Query query;
    NodeId origin;
    QueryResult expected;
  };
  const std::vector<std::string> texts = {"(a*, *)", "(*, b*)", "(c, *)",
                                          "(*, *)",  "(ab*, c*)"};
  std::vector<Work> work;
  for (int i = 0; i < 40; ++i) {
    Work w;
    w.query = sys.space().parse(texts[i % texts.size()]);
    w.origin = sys.ring().random_node(rng);
    w.expected = sys.query(w.query, w.origin);
    work.push_back(std::move(w));
  }

  const unsigned threads =
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // Each thread sweeps the whole workload, offset so different items
      // run concurrently against each other.
      for (std::size_t i = 0; i < work.size(); ++i) {
        const Work& w = work[(i + t * 7) % work.size()];
        const QueryResult got = sys.query(w.query, w.origin);
        if (got.elements != w.expected.elements ||
            got.stats.messages != w.expected.stats.messages ||
            got.stats.matches != w.expected.stats.matches) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (sys.count(w.query, w.origin) != w.expected.stats.matches)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(ParallelQuery, CachedQueriesStillWorkSingleThreaded) {
  Rng rng(0xcafe);
  const SquidSystem sys = make_loaded_system(/*cache=*/true, rng);
  const keyword::Query q = sys.space().parse("(a*, *)");
  const NodeId origin = sys.ring().random_node(rng);
  const QueryResult first = sys.query(q, origin);
  // Sequential reuse is the supported cache mode; the guard must not trip.
  const QueryResult second = sys.query(q, origin);
  EXPECT_EQ(first.elements, second.elements);
  EXPECT_EQ(sys.count(q, origin), first.stats.matches);
}

TEST(ParallelQuery, GuardTripsWhenCachedQueryOverlaps) {
  // Force an overlap deterministically: thread B starts a cached query while
  // thread A is mid-query, using a handshake through the corpus itself is
  // not possible — so hammer with enough concurrent cached queries that an
  // overlap is certain, and require at least one loud failure and zero
  // silent ones. (With the guard, every overlapping call throws.)
  Rng rng(0xdead);
  const SquidSystem sys = make_loaded_system(/*cache=*/true, rng);
  const keyword::Query q = sys.space().parse("(*, *)");
  const NodeId origin = sys.ring().random_node(rng);

  std::atomic<int> threw{0};
  std::atomic<int> completed{0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  // An overlap is near-certain but not guaranteed per hammer round (a loaded
  // scheduler can serialize the pool), so re-hammer a few times; every round
  // still requires loud-or-complete for every call.
  for (int round = 0; round < 10 && threw.load() == 0; ++round) {
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&] {
        ready.fetch_add(1, std::memory_order_relaxed);
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < kPerThread; ++i) {
          try {
            (void)sys.query(q, origin);
            completed.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::invalid_argument&) {
            threw.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    while (ready.load(std::memory_order_relaxed) < kThreads) {
    }
    go.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();
    EXPECT_EQ(threw.load() + completed.load(),
              (round + 1) * kThreads * kPerThread);
  }
  EXPECT_GT(threw.load(), 0) << "overlapping cached queries never collided; "
                                "the guard was not exercised";
  EXPECT_GT(completed.load(), 0);
}

} // namespace
} // namespace squid::core
