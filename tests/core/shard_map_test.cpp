// Properties of the node -> shard map and of resharding (DESIGN.md 4f).
//
//   1. shard_of_node is a pure function of (node id, shard count): no
//      membership state feeds it, so a node's shard never moves across
//      joins, crashes, or rejoins — only its OWN id and S matter. Any two
//      parties (a stager picking a mailbox, a test predicting placement)
//      compute the same answer.
//   2. Resharding a pending message stream from S=1 to S=4 preserves every
//      inbox's relative order: the HandoffStager partitions a FIFO stream
//      into per-shard FIFO streams — per-destination order is exactly the
//      source order restricted to that destination, the invariant the
//      finalize merge relies on.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "squid/core/parallel.hpp"
#include "squid/core/system.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using overlay::NodeId;

TEST(ShardMapTest, PureFunctionOfIdAndShardCount) {
  Rng rng(0x5a4d);
  for (int trial = 0; trial < 2000; ++trial) {
    const NodeId id = rng.next128();
    for (unsigned shards : {1u, 2u, 3u, 4u, 8u}) {
      const unsigned first = shard_of_node(id, shards);
      EXPECT_LT(first, shards);
      EXPECT_EQ(first, shard_of_node(id, shards)); // same inputs, same shard
    }
    EXPECT_EQ(shard_of_node(id, 1), 0u);
  }
}

TEST(ShardMapTest, SpreadsRingNodesAcrossShards) {
  // Not a balance guarantee — just that the splitmix fold actually uses the
  // id (a map collapsing everything onto one shard would serialize the
  // executor silently).
  const char letters[] = "abcde";
  const keyword::KeywordSpace space(
      {keyword::StringCodec(letters, 3), keyword::StringCodec(letters, 3)});
  SquidSystem sys(space);
  Rng rng(0x77a2);
  sys.build_network(64, rng);
  std::map<unsigned, std::size_t> population;
  for (const auto& [node, load] : sys.node_loads())
    ++population[shard_of_node(node, 4)];
  EXPECT_GE(population.size(), 3u) << "64 nodes landed on too few shards";
}

TEST(ShardMapTest, StableAcrossJoinsCrashesAndRejoins) {
  const char letters[] = "abc";
  const keyword::KeywordSpace space(
      {keyword::StringCodec(letters, 2), keyword::StringCodec(letters, 2)});
  SquidSystem sys(space);
  Rng rng(0xc4a2);
  sys.build_network(40, rng);

  std::map<NodeId, unsigned> before;
  for (const auto& [node, load] : sys.node_loads())
    before[node] = shard_of_node(node, 4);

  // Churn the membership hard: joins, crashes, and a rejoin at a crashed
  // node's exact identifier.
  std::vector<NodeId> victims;
  for (int i = 0; i < 6; ++i) victims.push_back(sys.ring().random_node(rng));
  for (NodeId v : victims) sys.fail_node(v);
  for (int i = 0; i < 8; ++i) sys.join_node(rng);
  sys.add_node_at(victims.front()); // rejoin under the same id
  sys.repair_routing();

  for (const auto& [node, load] : sys.node_loads()) {
    const auto it = before.find(node);
    if (it != before.end())
      EXPECT_EQ(shard_of_node(node, 4), it->second) << "survivor moved shards";
  }
  // The rejoined node maps exactly where it did before the crash.
  EXPECT_EQ(shard_of_node(victims.front(), 4), before.at(victims.front()));
}

/// Drain everything pending in `inbox` (no blocking).
std::vector<ShardJob> drain_all(ShardMailbox& inbox) {
  std::vector<ShardJob> out;
  inbox.try_drain(out);
  return out;
}

TEST(ShardMapTest, ReshardingPreservesPerInboxPendingOrder) {
  // A synthetic pending stream: 300 jobs to pseudo-random destinations,
  // sequence numbers carried in ScanRequest::event.
  Rng rng(0xfeed5);
  std::vector<ShardJob> stream;
  for (int i = 0; i < 300; ++i) {
    ShardJob job;
    job.kind = ShardJob::Kind::kScan;
    job.scan.at = rng.next128();
    job.scan.event = i;
    stream.push_back(job);
  }

  // S=1: the whole stream lands in the single inbox, in source order.
  std::vector<ShardMailbox> one(1);
  {
    HandoffStager stager(one, /*self=*/0, /*batch_limit=*/7);
    for (const ShardJob& job : stream) stager.stage(job.scan.at, job);
    stager.flush();
  }
  const std::vector<ShardJob> single = drain_all(one[0]);
  ASSERT_EQ(single.size(), stream.size());
  for (std::size_t i = 0; i < single.size(); ++i)
    EXPECT_EQ(single[i].scan.event, static_cast<std::int32_t>(i));

  // Reshard the SAME pending stream to S=4: each inbox must hold exactly
  // the source-order subsequence of the destinations it owns.
  std::vector<ShardMailbox> four(4);
  {
    HandoffStager stager(four, /*self=*/0, /*batch_limit=*/7);
    for (const ShardJob& job : single) stager.stage(job.scan.at, job);
    stager.flush();
  }
  std::size_t total = 0;
  for (unsigned s = 0; s < 4; ++s) {
    const std::vector<ShardJob> inbox = drain_all(four[s]);
    total += inbox.size();
    std::int32_t last = -1;
    for (const ShardJob& job : inbox) {
      EXPECT_EQ(shard_of_node(job.scan.at, 4), s) << "job on the wrong shard";
      EXPECT_GT(job.scan.event, last) << "relative order not preserved";
      last = job.scan.event;
    }
  }
  EXPECT_EQ(total, stream.size()); // nothing lost, nothing duplicated
}

} // namespace
} // namespace squid::core
