// Query-engine correctness: the paper's central guarantee is that *all*
// data elements matching a query are found (completeness) with bounded
// cost. These tests check engine results against a brute-force oracle over
// every stored element, across all query forms, and validate the cost
// accounting invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

std::vector<std::string> sorted_names(const std::vector<DataElement>& elems) {
  std::vector<std::string> names;
  names.reserve(elems.size());
  for (const auto& e : elems) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}

/// Oracle: match every published element directly against the query
/// rectangle semantics.
std::vector<std::string> oracle_names(const keyword::KeywordSpace& space,
                                      const std::vector<DataElement>& all,
                                      const keyword::Query& q) {
  std::vector<std::string> names;
  for (const auto& e : all)
    if (space.matches(q, e.keys)) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}

struct Corpus {
  SquidSystem sys;
  std::vector<DataElement> all;
};

Corpus make_doc_corpus(std::uint64_t seed, std::size_t nodes,
                       std::size_t elements, SquidConfig config = {}) {
  Corpus corpus{
      SquidSystem(keyword::KeywordSpace({keyword::StringCodec("abcd", 3),
                                         keyword::StringCodec("abcd", 3)}),
                  std::move(config)),
      {}};
  Rng rng(seed);
  corpus.sys.build_network(nodes, rng);
  const char letters[] = "abcd";
  for (std::size_t i = 0; i < elements; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(4)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(4)]);
    corpus.all.push_back(
        DataElement{"doc" + std::to_string(i), {a, b}});
    corpus.sys.publish(corpus.all.back());
  }
  return corpus;
}

void check_query(const Corpus& corpus, const std::string& text, Rng& rng) {
  const keyword::Query q = corpus.sys.space().parse(text);
  const auto origin = corpus.sys.ring().random_node(rng);
  const QueryResult result = corpus.sys.query(q, origin);
  EXPECT_EQ(sorted_names(result.elements),
            oracle_names(corpus.sys.space(), corpus.all, q))
      << "query " << text;
  // Cost-accounting invariants.
  const auto& s = result.stats;
  EXPECT_EQ(s.matches, result.elements.size());
  EXPECT_LE(s.data_nodes, s.processing_nodes);
  EXPECT_LE(s.processing_nodes, s.routing_nodes);
  EXPECT_LE(s.routing_nodes, corpus.sys.ring().size());
  if (s.matches > 0) {
    EXPECT_GE(s.data_nodes, 1u);
  }
}

TEST(QueryEngine, CompletenessAcrossAllQueryForms) {
  Corpus corpus = make_doc_corpus(11, 40, 400);
  Rng rng(12);
  const std::vector<std::string> queries{
      "(a, b)",    "(ab, *)",    "(*, cd)",   "(a*, *)",   "(*, a*)",
      "(ab*, c*)", "(c*, d*)",   "(*, *)",    "(dcb, a)",  "(b*, bcd)",
      "(aaa, *)",  "(d*, *)",    "(a*, b*)",  "(abc, bcd)"};
  for (const auto& text : queries) check_query(corpus, text, rng);
}

TEST(QueryEngine, CompletenessFromEveryOrigin) {
  Corpus corpus = make_doc_corpus(13, 20, 150);
  const keyword::Query q = corpus.sys.space().parse("(b*, *)");
  const auto expected = oracle_names(corpus.sys.space(), corpus.all, q);
  for (const auto origin : corpus.sys.ring().node_ids()) {
    const QueryResult result = corpus.sys.query(q, origin);
    EXPECT_EQ(sorted_names(result.elements), expected);
  }
}

TEST(QueryEngine, RandomizedQueriesAgainstOracle) {
  Corpus corpus = make_doc_corpus(17, 60, 500);
  Rng rng(18);
  const char letters[] = "abcd";
  for (int trial = 0; trial < 150; ++trial) {
    std::string text = "(";
    for (int dim = 0; dim < 2; ++dim) {
      if (dim) text += ", ";
      const auto kind = rng.below(3);
      if (kind == 0) {
        text += "*";
      } else {
        std::string word;
        for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
          word.push_back(letters[rng.below(4)]);
        text += word;
        if (kind == 2) text += "*";
      }
    }
    text += ")";
    check_query(corpus, text, rng);
  }
}

TEST(QueryEngine, ExactKeyQueryIsAPointLookup) {
  Corpus corpus = make_doc_corpus(19, 40, 300);
  Rng rng(20);
  // A fully specified query maps to at most one index -> at most one data
  // node, and the message count stays O(1) (one dispatch plus its reply).
  const QueryResult result =
      corpus.sys.query(corpus.sys.space().parse("(abc, bcd)"),
                       corpus.sys.ring().random_node(rng));
  EXPECT_LE(result.stats.data_nodes, 1u);
  EXPECT_LE(result.stats.messages, 3u);
  EXPECT_LE(result.stats.processing_nodes, 2u);
}

TEST(QueryEngine, EmptyResultQueriesTerminateCleanly) {
  Corpus corpus = make_doc_corpus(21, 30, 100);
  Rng rng(22);
  // "dddd..." truncates to "ddd" (max_len 3): legal but never published.
  const QueryResult result = corpus.sys.query(
      corpus.sys.space().parse("(ddd, ddd)"), corpus.sys.ring().random_node(rng));
  EXPECT_EQ(result.stats.matches, 0u);
  EXPECT_EQ(result.stats.data_nodes, 0u);
}

TEST(QueryEngine, AggregationReducesMessagesWhenClustersShareOwners) {
  // Aggregation pays off when many sibling sub-clusters land on the same
  // peer (paper 3.4.2): few nodes over a 3D space maximizes sharing. With
  // one sub-cluster per destination aggregation costs an extra reply, so it
  // is not universally cheaper — this test exercises the regime it targets.
  const auto build = [](bool aggregate) {
    SquidConfig config;
    config.aggregate_subclusters = aggregate;
    SquidSystem sys(keyword::KeywordSpace({keyword::StringCodec("abcd", 2),
                                           keyword::StringCodec("abcd", 2),
                                           keyword::StringCodec("abcd", 2)}),
                    config);
    Rng rng(24);
    sys.build_network(5, rng);
    const char letters[] = "abcd";
    for (int i = 0; i < 300; ++i) {
      std::string a{letters[rng.below(4)]}, b{letters[rng.below(4)]},
          c{letters[rng.below(4)]};
      sys.publish(DataElement{"x" + std::to_string(i), {a, b, c}});
    }
    return sys;
  };
  SquidSystem agg = build(true);
  SquidSystem naive = build(false);
  Rng rng_a(25), rng_b(25);
  std::size_t agg_messages = 0, naive_messages = 0;
  std::size_t agg_matches = 0, naive_matches = 0;
  for (const std::string text : {"(a*, *, b*)", "(*, a, *)", "(*, *, c*)"}) {
    const auto ra =
        agg.query(agg.space().parse(text), agg.ring().random_node(rng_a));
    const auto rn =
        naive.query(naive.space().parse(text), naive.ring().random_node(rng_b));
    agg_messages += ra.stats.messages;
    naive_messages += rn.stats.messages;
    agg_matches += ra.stats.matches;
    naive_matches += rn.stats.matches;
  }
  EXPECT_EQ(agg_matches, naive_matches); // identical results either way
  EXPECT_LT(agg_messages, naive_messages);
}

TEST(QueryEngine, NumericRangeQueriesAgainstOracle) {
  SquidSystem sys(keyword::KeywordSpace({keyword::NumericCodec(0, 1024, 7),
                                         keyword::NumericCodec(0, 100, 7),
                                         keyword::NumericCodec(0, 10, 7)}));
  Rng rng(25);
  sys.build_network(40, rng);
  std::vector<DataElement> all;
  for (int i = 0; i < 400; ++i) {
    all.push_back(DataElement{"res" + std::to_string(i),
                              {rng.uniform() * 1024, rng.uniform() * 100,
                               rng.uniform() * 10}});
    sys.publish(all.back());
  }
  const std::vector<std::string> queries{
      "(256-512, *, *)",       "(*, 10-20, 5-*)", "(0-100, 0-50, *)",
      "(900-*, *, *-2)",       "(*, *, *)",       "(512-513, 50-51, 5-6)",
      "(300-800, 20-80, 1-9)"};
  for (const auto& text : queries) {
    const keyword::Query q = sys.space().parse(text);
    const QueryResult result = sys.query(q, sys.ring().random_node(rng));
    std::vector<std::string> expected;
    for (const auto& e : all)
      if (sys.space().matches(q, e.keys)) expected.push_back(e.name);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sorted_names(result.elements), expected) << text;
  }
}

TEST(QueryEngine, QueriesAreRepeatable) {
  Corpus corpus = make_doc_corpus(26, 30, 200);
  const auto origin = corpus.sys.ring().node_ids().front();
  const keyword::Query q = corpus.sys.space().parse("(c*, *)");
  const QueryResult a = corpus.sys.query(q, origin);
  const QueryResult b = corpus.sys.query(q, origin);
  EXPECT_EQ(sorted_names(a.elements), sorted_names(b.elements));
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.processing_nodes, b.stats.processing_nodes);
}

TEST(QueryEngine, CompletenessOnLargerRealisticSpace) {
  // 26-letter alphabet, 4-char keywords, 2D, 300 nodes, 3000 elements.
  SquidSystem sys(keyword::KeywordSpace(
      {keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 4),
       keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 4)}));
  Rng rng(27);
  sys.build_network(300, rng);
  const std::vector<std::string> stems{"comp", "netw", "data", "grid",
                                       "peer", "stor", "query", "inde"};
  std::vector<DataElement> all;
  for (int i = 0; i < 3000; ++i) {
    const auto pick = [&](void) -> std::string {
      std::string w = stems[rng.below(stems.size())];
      w.resize(1 + rng.below(4)); // random truncation spreads the corpus
      if (rng.chance(0.5)) w.push_back("abcdefghijklmnopqrstuvwxyz"[rng.below(26)]);
      return w;
    };
    all.push_back(DataElement{"d" + std::to_string(i), {pick(), pick()}});
    sys.publish(all.back());
  }
  for (const std::string text :
       {"(comp*, *)", "(c*, n*)", "(grid, *)", "(p*, *)", "(*, da*)"}) {
    const keyword::Query q = sys.space().parse(text);
    const QueryResult result = sys.query(q, sys.ring().random_node(rng));
    std::vector<std::string> expected;
    for (const auto& e : all)
      if (sys.space().matches(q, e.keys)) expected.push_back(e.name);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sorted_names(result.elements), expected) << text;
    // The paper's scalability claim: only a fraction of nodes process a
    // query.
    EXPECT_LT(result.stats.processing_nodes, sys.ring().size() / 2) << text;
  }
}

} // namespace
} // namespace squid::core
