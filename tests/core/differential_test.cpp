// Differential fuzzing across engine configurations: for random corpora and
// random queries, the distributed engine, the centralized decomposition,
// and a global scan must agree exactly — under every curve family, finger
// base, aggregation setting, and caching setting.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "squid/core/system.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using Config = std::tuple<std::string, unsigned, bool, bool>;
// curve, finger_base, aggregate, cache

class EngineDifferential : public ::testing::TestWithParam<Config> {};

std::vector<std::string> sorted_names(const std::vector<DataElement>& es) {
  std::vector<std::string> names;
  for (const auto& e : es) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}

TEST_P(EngineDifferential, AllResolutionPathsAgree) {
  const auto& [curve, finger_base, aggregate, cache] = GetParam();
  SquidConfig config;
  config.curve = curve;
  config.finger_base = finger_base;
  config.aggregate_subclusters = aggregate;
  config.cache_cluster_owners = cache;

  Rng rng(0xd1ff ^ finger_base);
  const char letters[] = "abcde";
  SquidSystem sys(
      keyword::KeywordSpace(
          {keyword::StringCodec(letters, 3), keyword::StringCodec(letters, 3)}),
      config);
  sys.build_network(35, rng);

  std::vector<DataElement> all;
  for (int i = 0; i < 400; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(5)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(5)]);
    all.push_back(DataElement{"e" + std::to_string(i), {a, b}});
    sys.publish(all.back());
  }

  for (int trial = 0; trial < 40; ++trial) {
    // Random query: each dimension whole / prefix / any.
    keyword::Query q;
    for (int dim = 0; dim < 2; ++dim) {
      const auto kind = rng.below(3);
      if (kind == 0) {
        q.terms.push_back(keyword::Any{});
      } else {
        std::string w;
        for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
          w.push_back(letters[rng.below(5)]);
        if (kind == 1) {
          q.terms.push_back(keyword::Whole{w});
        } else {
          q.terms.push_back(keyword::Prefix{w});
        }
      }
    }

    std::vector<std::string> expected;
    for (const auto& e : all)
      if (sys.space().matches(q, e.keys)) expected.push_back(e.name);
    std::sort(expected.begin(), expected.end());

    const auto origin = sys.ring().random_node(rng);
    const auto distributed = sys.query(q, origin);
    ASSERT_EQ(sorted_names(distributed.elements), expected)
        << keyword::to_string(q) << " [distributed]";
    const auto centralized = sys.query_centralized(q, origin);
    ASSERT_EQ(sorted_names(centralized.elements), expected)
        << keyword::to_string(q) << " [centralized]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EngineDifferential,
    ::testing::Values(Config{"hilbert", 2, true, false},
                      Config{"hilbert", 2, false, false},
                      Config{"hilbert", 2, true, true},
                      Config{"hilbert", 8, true, false},
                      Config{"hilbert", 8, true, true},
                      Config{"zorder", 2, true, false},
                      Config{"zorder", 4, false, true},
                      Config{"gray", 2, true, false},
                      Config{"gray", 16, true, true}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_agg" : "_noagg") +
             (std::get<3>(info.param) ? "_cache" : "_nocache");
    });

} // namespace
} // namespace squid::core
