#include <gtest/gtest.h>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

TEST(CountQuery, AgreesWithFullQueryAcrossForms) {
  Rng rng(181);
  workload::KeywordCorpus corpus(2, 200, 0.9, rng);
  SquidSystem sys(corpus.make_space());
  sys.build_network(50, rng);
  for (const auto& e : corpus.make_elements(1200, rng)) sys.publish(e);

  for (const std::size_t rank : {0u, 3u, 9u, 40u}) {
    for (const bool partial : {true, false}) {
      const keyword::Query q = corpus.q1(rank, partial);
      const auto origin = sys.ring().random_node(rng);
      EXPECT_EQ(sys.count(q, origin), sys.query(q, origin).stats.matches)
          << keyword::to_string(q);
    }
  }
}

TEST(CountQuery, EmptyAndFullSpace) {
  Rng rng(182);
  SquidSystem sys(keyword::KeywordSpace(
      {keyword::StringCodec("abc", 2), keyword::StringCodec("abc", 2)}));
  sys.build_network(10, rng);
  const auto origin = sys.ring().node_ids().front();
  EXPECT_EQ(sys.count(sys.space().parse("(*, *)"), origin), 0u);
  sys.publish({"one", {std::string("ab"), std::string("c")}});
  sys.publish({"two", {std::string("ab"), std::string("c")}});
  EXPECT_EQ(sys.count(sys.space().parse("(*, *)"), origin), 2u);
  EXPECT_EQ(sys.count(sys.space().parse("(ab, c)"), origin), 2u);
  EXPECT_EQ(sys.count(sys.space().parse("(b*, *)"), origin), 0u);
}

TEST(CountQuery, RequiresLiveOrigin) {
  Rng rng(183);
  SquidSystem sys(keyword::KeywordSpace(
      {keyword::StringCodec("abc", 2), keyword::StringCodec("abc", 2)}));
  sys.build_network(4, rng);
  EXPECT_THROW((void)sys.count(sys.space().parse("(*, *)"),
                               sys.ring().id_mask()),
               std::invalid_argument);
}

} // namespace
} // namespace squid::core
