#include "squid/core/system.hpp"

#include <gtest/gtest.h>

#include "squid/stats/summary.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

keyword::KeywordSpace small_doc_space() {
  return keyword::KeywordSpace(
      {keyword::StringCodec("abcd", 3), keyword::StringCodec("abcd", 3)});
}

DataElement doc(std::string name, std::string k1, std::string k2) {
  return DataElement{std::move(name),
                     {keyword::Token{std::move(k1)}, keyword::Token{std::move(k2)}}};
}

TEST(SquidSystem, BuildsNetworkOverCurveSizedRing) {
  Rng rng(1);
  SquidSystem sys(small_doc_space());
  EXPECT_EQ(sys.ring().id_bits(), sys.curve().index_bits());
  sys.build_network(40, rng);
  EXPECT_EQ(sys.ring().size(), 40u);
  EXPECT_TRUE(sys.ring().ring_consistent());
}

TEST(SquidSystem, PublishGroupsElementsByKey) {
  Rng rng(2);
  SquidSystem sys(small_doc_space());
  sys.build_network(10, rng);
  sys.publish(doc("e1", "abc", "bcd"));
  sys.publish(doc("e2", "abc", "bcd")); // same keyword combination
  sys.publish(doc("e3", "abc", "dcb"));
  EXPECT_EQ(sys.key_count(), 2u);
  EXPECT_EQ(sys.element_count(), 3u);
}

TEST(SquidSystem, NodeLoadsSumToKeyCount) {
  Rng rng(3);
  SquidSystem sys(small_doc_space());
  sys.build_network(25, rng);
  const char letters[] = "abcd";
  for (int i = 0; i < 300; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(4)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(4)]);
    sys.publish(doc("d" + std::to_string(i), a, b));
  }
  std::size_t total = 0;
  for (const auto& [id, load] : sys.node_loads()) total += load;
  EXPECT_EQ(total, sys.key_count());
}

TEST(SquidSystem, PublishRoutedReachesTheOwner) {
  Rng rng(4);
  SquidSystem sys(small_doc_space());
  sys.build_network(30, rng);
  const auto element = doc("routed", "cab", "dad");
  const auto origin = sys.ring().random_node(rng);
  const auto route = sys.publish_routed(element, origin);
  ASSERT_TRUE(route.ok);
  EXPECT_EQ(route.path.front(), origin);
  EXPECT_EQ(sys.element_count(), 1u);
  // The destination must be the owner of the element's index.
  const auto point = sys.space().encode(element.keys);
  EXPECT_EQ(route.dest, sys.owner_of(sys.curve().index_of(point)));
}

TEST(SquidSystem, QueryRequiresLiveOrigin) {
  Rng rng(5);
  SquidSystem sys(small_doc_space());
  sys.build_network(5, rng);
  const keyword::Query q = sys.space().parse("(a*, *)");
  EXPECT_THROW((void)sys.query(q, /*origin=*/sys.ring().id_mask()),
               std::invalid_argument);
}

TEST(SquidSystem, TopologyChangesPreserveConsistency) {
  Rng rng(6);
  SquidSystem sys(small_doc_space());
  sys.build_network(30, rng);
  for (int i = 0; i < 10; ++i) (void)sys.join_node(rng);
  EXPECT_EQ(sys.ring().size(), 40u);
  EXPECT_TRUE(sys.ring().ring_consistent());
  for (int i = 0; i < 10; ++i) sys.leave_node(sys.ring().random_node(rng));
  EXPECT_EQ(sys.ring().size(), 30u);
  EXPECT_TRUE(sys.ring().ring_consistent());
}

TEST(SquidSystem, CurveFamilyIsConfigurable) {
  SquidConfig config;
  config.curve = "zorder";
  SquidSystem sys(small_doc_space(), config);
  EXPECT_EQ(sys.curve().name(), "zorder");
  SquidConfig bad;
  bad.curve = "peano";
  EXPECT_THROW(SquidSystem(small_doc_space(), bad), std::invalid_argument);
}

} // namespace
} // namespace squid::core
