// Golden end-to-end query statistics, captured from the pre-cursor engine on
// the fig09/fig11-style workloads at test scale. The refinement engine was
// rebuilt on the incremental cursor; these goldens pin the distributed
// protocol's observable behavior — matches, node sets, message counts, and
// critical-path hops — to the exact values the original cell_of_prefix-based
// expansion produced. Any drift here means the optimization changed *what*
// the engine does, not just how fast it does it.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace squid {
namespace {

struct GoldenStats {
  std::size_t matches;
  std::size_t routing_nodes;
  std::size_t processing_nodes;
  std::size_t data_nodes;
  std::size_t messages;
  std::size_t critical_path_hops;
};

// 11 queries (6 fig09 Q1 + 5 fig11 Q2) x 3 repeats, in workload order.
constexpr std::array<GoldenStats, 33> kGolden = {{
    {123, 28, 20, 17, 58, 20}, {123, 27, 21, 17, 60, 17},
    {123, 29, 21, 17, 60, 20}, {75, 30, 20, 12, 51, 15},
    {75, 32, 20, 12, 51, 15},  {75, 31, 20, 12, 51, 15},
    {21, 27, 14, 9, 38, 15},   {21, 29, 15, 9, 38, 15},
    {21, 27, 14, 9, 38, 15},   {31, 19, 16, 10, 41, 14},
    {31, 19, 16, 10, 41, 14},  {31, 19, 16, 10, 41, 14},
    {20, 30, 15, 9, 36, 15},   {20, 27, 15, 9, 36, 15},
    {20, 28, 14, 9, 36, 15},   {3, 28, 15, 2, 39, 15},
    {3, 29, 15, 2, 39, 15},    {3, 31, 15, 2, 39, 16},
    {3, 12, 5, 1, 8, 11},      {3, 12, 5, 1, 8, 11},
    {3, 12, 5, 1, 8, 11},      {1, 11, 5, 1, 9, 12},
    {1, 12, 5, 1, 9, 13},      {1, 12, 5, 1, 9, 13},
    {4, 8, 4, 1, 6, 7},        {4, 4, 3, 1, 4, 3},
    {4, 6, 4, 1, 6, 5},        {3, 8, 4, 1, 6, 7},
    {3, 7, 4, 1, 6, 6},        {3, 7, 4, 1, 6, 6},
    {1, 13, 5, 1, 8, 12},      {1, 13, 5, 1, 8, 12},
    {1, 13, 5, 1, 8, 12},
}};

TEST(RefineGolden, DistributedQueryStatsMatchPreCursorEngine) {
  Rng rng(2003);
  workload::KeywordCorpus corpus(2, 2500, 0.8, rng);
  core::SquidConfig config;
  config.join_samples = 8;
  core::SquidSystem sys(corpus.make_space(), config);
  const std::size_t target = 1500;
  std::size_t attempts = 0;
  const std::size_t cap = target * 40 + 1000;
  while (sys.key_count() < target && attempts++ < cap)
    sys.publish(corpus.make_element(rng));
  sys.build_network(1, rng);
  for (std::size_t i = 1; i < 60; ++i) (void)sys.join_node(rng);
  for (int s = 0; s < 6; ++s) (void)sys.runtime_balance_sweep(1.3);
  sys.repair_routing();
  ASSERT_EQ(sys.key_count(), 1500u);
  ASSERT_EQ(sys.element_count(), 1533u);
  ASSERT_EQ(sys.ring().size(), 60u);

  std::vector<keyword::Query> queries;
  const struct {
    std::size_t rank;
    unsigned len;
  } q1defs[] = {{0, 3}, {2, 3}, {5, 4}, {12, 3}, {30, 4}, {80, 4}};
  for (const auto& d : q1defs)
    queries.push_back(corpus.q1(d.rank, true, d.len));
  const struct {
    std::size_t a;
    std::size_t b;
    bool pb;
  } q2defs[] = {
      {0, 1, true}, {2, 7, false}, {5, 0, true}, {12, 3, false}, {30, 9, true}};
  for (const auto& d : q2defs) queries.push_back(corpus.q2(d.a, d.b, d.pb));

  Rng qrng(0x517ab1e);
  std::size_t g = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (int rep = 0; rep < 3; ++rep, ++g) {
      const auto origin = sys.ring().random_node(qrng);
      const auto r = sys.query(queries[qi], origin);
      const GoldenStats& want = kGolden[g];
      EXPECT_EQ(r.stats.matches, want.matches) << "query " << qi << "." << rep;
      EXPECT_EQ(r.stats.routing_nodes, want.routing_nodes)
          << "query " << qi << "." << rep;
      EXPECT_EQ(r.stats.processing_nodes, want.processing_nodes)
          << "query " << qi << "." << rep;
      EXPECT_EQ(r.stats.data_nodes, want.data_nodes)
          << "query " << qi << "." << rep;
      EXPECT_EQ(r.stats.messages, want.messages)
          << "query " << qi << "." << rep;
      EXPECT_EQ(r.stats.critical_path_hops, want.critical_path_hops)
          << "query " << qi << "." << rep;
    }
  }
  EXPECT_EQ(g, kGolden.size());
}

} // namespace
} // namespace squid
