#include <gtest/gtest.h>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

keyword::KeywordSpace doc_space() {
  return keyword::KeywordSpace(
      {keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 4),
       keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 4)});
}

TEST(Unpublish, RemovesExactlyTheNamedElement) {
  Rng rng(161);
  SquidSystem sys(doc_space());
  sys.build_network(20, rng);
  const DataElement a{"a", {std::string("grid"), std::string("data")}};
  const DataElement b{"b", {std::string("grid"), std::string("data")}};
  sys.publish(a);
  sys.publish(b);
  EXPECT_EQ(sys.key_count(), 1u); // same keyword pair, one key
  EXPECT_TRUE(sys.unpublish(a));
  EXPECT_EQ(sys.element_count(), 1u);
  EXPECT_EQ(sys.key_count(), 1u); // b still holds the key alive
  const auto result =
      sys.query(sys.space().parse("(grid, data)"), sys.ring().node_ids()[0]);
  ASSERT_EQ(result.stats.matches, 1u);
  EXPECT_EQ(result.elements[0].name, "b");
}

TEST(Unpublish, LastElementRemovesTheKey) {
  Rng rng(162);
  SquidSystem sys(doc_space());
  sys.build_network(10, rng);
  const DataElement a{"solo", {std::string("one"), std::string("two")}};
  sys.publish(a);
  EXPECT_TRUE(sys.unpublish(a));
  EXPECT_EQ(sys.key_count(), 0u);
  EXPECT_EQ(sys.element_count(), 0u);
  EXPECT_EQ(sys.query(sys.space().parse("(one, two)"),
                      sys.ring().node_ids()[0])
                .stats.matches,
            0u);
}

TEST(Unpublish, MissingElementsReturnFalse) {
  Rng rng(163);
  SquidSystem sys(doc_space());
  sys.build_network(10, rng);
  const DataElement a{"x", {std::string("one"), std::string("two")}};
  EXPECT_FALSE(sys.unpublish(a)); // never published
  sys.publish(a);
  const DataElement other_name{"y", {std::string("one"), std::string("two")}};
  EXPECT_FALSE(sys.unpublish(other_name)); // same key, wrong name
  EXPECT_TRUE(sys.unpublish(a));
  EXPECT_FALSE(sys.unpublish(a)); // already gone
}

TEST(Unpublish, QueriesStayCompleteThroughPublishUnpublishChurn) {
  Rng rng(164);
  workload::KeywordCorpus corpus(2, 150, 0.9, rng);
  SquidSystem sys(corpus.make_space());
  sys.build_network(30, rng);
  std::vector<DataElement> live;
  for (int round = 0; round < 200; ++round) {
    if (live.empty() || rng.chance(0.6)) {
      live.push_back(corpus.make_element(rng));
      sys.publish(live.back());
    } else {
      const auto victim = rng.below(live.size());
      EXPECT_TRUE(sys.unpublish(live[victim]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  const keyword::Query q = corpus.q1(0, true);
  std::size_t expected = 0;
  for (const auto& e : live) expected += sys.space().matches(q, e.keys);
  EXPECT_EQ(sys.query(q, sys.ring().random_node(rng)).stats.matches, expected);
  EXPECT_EQ(sys.element_count(), live.size());
}

} // namespace
} // namespace squid::core
