// Differential suite for the flat sorted-array key store (DESIGN.md 4b):
// publish / publish_batch / unpublish are replayed against a
// std::map<u128, elements> oracle — the seed's storage — and every derived
// view (visit order, loads, split points) is checked against it. A second
// system publishing the same corpus one element at a time pins the batch
// loader to exact sequential-publish equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using overlay::NodeId;

const char kLetters[] = "abcde";

keyword::KeywordSpace two_dim_space() {
  return keyword::KeywordSpace(
      {keyword::StringCodec(kLetters, 3), keyword::StringCodec(kLetters, 3)});
}

DataElement random_element(Rng& rng, int serial) {
  std::string a, b;
  for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
    a.push_back(kLetters[rng.below(5)]);
  for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
    b.push_back(kLetters[rng.below(5)]);
  return DataElement{"e" + std::to_string(serial), {a, b}};
}

u128 index_of(const SquidSystem& sys, const DataElement& e) {
  return sys.curve().index_of(sys.space().encode(e.keys));
}

/// The store must match the ordered-map oracle exactly: same key set in the
/// same order, same element sequences per key, same counts.
void check_store(const SquidSystem& sys,
                 const std::map<u128, std::vector<DataElement>>& oracle) {
  ASSERT_EQ(sys.key_count(), oracle.size());
  std::size_t elements = 0;
  for (const auto& [index, es] : oracle) elements += es.size();
  ASSERT_EQ(sys.element_count(), elements);

  auto it = oracle.begin();
  sys.for_each_key([&](u128 index, const sfc::Point& point,
                       const std::vector<DataElement>& es) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(index, it->first);
    EXPECT_EQ(es, it->second); // element identity AND arrival order
    EXPECT_EQ(sys.curve().index_of(point), index);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());

  const auto& indices = sys.key_indices();
  ASSERT_EQ(indices.size(), oracle.size());
  ASSERT_TRUE(std::is_sorted(indices.begin(), indices.end()));
  std::size_t i = 0;
  for (const auto& [index, es] : oracle) EXPECT_EQ(indices[i++], index);
}

TEST(FlatStoreDifferential, PublishUnpublishAgainstMapOracle) {
  Rng rng(0xf1a7);
  SquidSystem sys(two_dim_space());
  sys.build_network(20, rng);

  std::map<u128, std::vector<DataElement>> oracle;
  std::vector<DataElement> live;
  for (int step = 0; step < 600; ++step) {
    if (!live.empty() && rng.below(4) == 0) {
      const std::size_t pick = rng.below(live.size());
      const DataElement victim = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      ASSERT_TRUE(sys.unpublish(victim));
      const u128 index = index_of(sys, victim);
      auto& es = oracle[index];
      es.erase(std::find(es.begin(), es.end(), victim));
      if (es.empty()) oracle.erase(index);
      // Removing it again must report absence, not corrupt the arrays.
      EXPECT_FALSE(sys.unpublish(victim));
    } else {
      const DataElement e = random_element(rng, step);
      sys.publish(e);
      oracle[index_of(sys, e)].push_back(e);
      live.push_back(e);
    }
    if (step % 50 == 0) check_store(sys, oracle);
  }
  check_store(sys, oracle);
}

TEST(FlatStoreDifferential, BatchPublishEqualsSequentialPublish) {
  // Twin systems, same corpus (duplicates included): one publishes element
  // by element, the other loads the whole vector through publish_batch.
  // Every observable — key order, element order within keys, counts — must
  // be identical. A second batch on a non-empty store checks the merge path.
  Rng rng(0xba7c4);
  SquidSystem one_by_one(two_dim_space());
  SquidSystem batched(two_dim_space());

  for (int wave = 0; wave < 3; ++wave) {
    std::vector<DataElement> corpus;
    for (int i = 0; i < 300; ++i)
      corpus.push_back(random_element(rng, wave * 1000 + i));
    for (const auto& e : corpus) one_by_one.publish(e);
    batched.publish_batch(corpus);

    ASSERT_EQ(batched.key_count(), one_by_one.key_count());
    ASSERT_EQ(batched.element_count(), one_by_one.element_count());
    std::map<u128, std::vector<DataElement>> reference;
    one_by_one.for_each_key([&](u128 index, const sfc::Point&,
                                const std::vector<DataElement>& es) {
      reference[index] = es;
    });
    check_store(batched, reference);
  }
}

TEST(FlatStoreDifferential, RepublishIsLastWriterWinsByKeyAndName) {
  // Element identity is (key, name): publishing under an existing identity
  // REPLACES the stored element in place — same arrival position, counts
  // unchanged — rather than appending a duplicate (DESIGN.md 4j). A moving
  // object that re-announces an unchanged position must not accrete copies.
  SquidSystem sys(two_dim_space());
  const DataElement a{"a", {"ab", "cd"}};
  const DataElement b{"b", {"ab", "cd"}}; // same key, different name
  const DataElement c{"c", {"ab", "cd"}};
  sys.publish(a);
  sys.publish(b);
  sys.publish(c);
  ASSERT_EQ(sys.key_count(), 1u);
  ASSERT_EQ(sys.element_count(), 3u);

  // Republish the MIDDLE identity: position preserved, nothing appended.
  sys.publish(b);
  EXPECT_EQ(sys.element_count(), 3u);
  sys.for_each_key([&](u128, const sfc::Point&,
                       const std::vector<DataElement>& es) {
    ASSERT_EQ(es.size(), 3u);
    EXPECT_EQ(es[0].name, "a");
    EXPECT_EQ(es[1].name, "b");
    EXPECT_EQ(es[2].name, "c");
  });

  // Same name at a DIFFERENT key is a different identity: both live.
  const DataElement b_moved{"b", {"ba", "dc"}};
  sys.publish(b_moved);
  EXPECT_EQ(sys.element_count(), 4u);
  EXPECT_EQ(sys.key_count(), 2u);
}

TEST(FlatStoreDifferential, BatchPublishAppliesLastWriterWinsPerIdentity) {
  // Duplicate identities inside one batch — and across batch boundaries —
  // collapse to the LAST occurrence, exactly as sequential publish would.
  SquidSystem batched(two_dim_space());
  SquidSystem sequential(two_dim_space());
  const DataElement first{"x", {"aa", "bb"}};
  const DataElement other{"y", {"aa", "bb"}};
  const DataElement again{"x", {"aa", "bb"}};
  const std::vector<DataElement> wave1 = {first, other, again};
  batched.publish_batch(wave1);
  for (const auto& e : wave1) sequential.publish(e);
  EXPECT_EQ(batched.element_count(), 2u);
  EXPECT_EQ(sequential.element_count(), 2u);

  // A second batch republishing "x" at the same key still replaces in
  // place; at a new key it migrates (old key's copy is NOT removed — LWW is
  // per (key, name) identity, not a global name registry).
  const std::vector<DataElement> wave2 = {DataElement{"x", {"aa", "bb"}},
                                          DataElement{"x", {"cc", "dd"}}};
  batched.publish_batch(wave2);
  for (const auto& e : wave2) sequential.publish(e);
  EXPECT_EQ(batched.element_count(), 3u);

  std::map<u128, std::vector<DataElement>> reference;
  sequential.for_each_key([&](u128 index, const sfc::Point&,
                              const std::vector<DataElement>& es) {
    reference[index] = es;
  });
  check_store(batched, reference);
}

TEST(FlatStoreDifferential, LoadViewsMatchBruteForce) {
  Rng rng(0x10ad);
  SquidConfig config;
  config.join_samples = 4;
  SquidSystem sys(two_dim_space(), config);
  sys.build_network(30, rng);
  for (int i = 0; i < 500; ++i) sys.publish(random_element(rng, i));

  for (int round = 0; round < 8; ++round) {
    // node_loads must equal the brute-force owner assignment.
    std::map<NodeId, std::size_t> expected;
    for (const NodeId id : sys.ring().node_ids()) expected[id] = 0;
    for (const u128 index : sys.key_indices())
      ++expected[sys.ring().successor_of(index)];

    const auto loads = sys.node_loads();
    ASSERT_EQ(loads.size(), expected.size());
    std::size_t total = 0;
    for (const auto& [id, load] : loads) {
      EXPECT_EQ(load, expected[id]) << "node load diverged";
      EXPECT_EQ(load, sys.load_of(id));
      total += load;
    }
    EXPECT_EQ(total, sys.key_count());

    // median_split_id(s) must be the middle stored key of (pred, s] — the
    // value the seed found by walking the map across the interval.
    for (const NodeId id : sys.ring().node_ids()) {
      const NodeId pred = sys.ring().predecessor_of(id);
      std::vector<u128> owned; // in clockwise order from pred
      for (const u128 index : sys.key_indices())
        if (overlay::in_open_closed(pred, id, index)) owned.push_back(index);
      // Ascending index order -> clockwise order from pred: the keys above
      // pred come first, the wrapped ones (<= id) after. No-op when the
      // interval does not wrap.
      std::stable_partition(owned.begin(), owned.end(),
                            [&](u128 v) { return v > pred; });
      const auto split = sys.median_split_id(id);
      if (owned.size() < 2) {
        EXPECT_FALSE(split.has_value());
      } else {
        const u128 median = owned[owned.size() / 2 - 1];
        if (median == pred || median == id || sys.ring().contains(median)) {
          EXPECT_FALSE(split.has_value());
        } else {
          ASSERT_TRUE(split.has_value());
          EXPECT_EQ(*split, median);
        }
      }
    }

    // Churn membership between rounds so the rank queries see fresh
    // boundaries (including wrapped intervals).
    (void)sys.join_node(rng);
    if (sys.ring().size() > 6) sys.leave_node(sys.ring().random_node(rng));
    (void)sys.runtime_balance_sweep(1.3);
    sys.repair_routing();
  }
}

TEST(FlatStoreDifferential, ScanOrderDrivesQueriesIdentically) {
  // End-to-end: a full-space query must return every element, in a
  // deterministic multiset, regardless of how the store was loaded.
  Rng rng(0x5ca9);
  SquidSystem a(two_dim_space());
  SquidSystem b(two_dim_space());
  Rng net_a(7), net_b(7);
  a.build_network(25, net_a);
  b.build_network(25, net_b);

  std::vector<DataElement> corpus;
  for (int i = 0; i < 250; ++i) corpus.push_back(random_element(rng, i));
  for (const auto& e : corpus) a.publish(e);
  b.publish_batch(corpus);

  const keyword::Query q = a.space().parse("(*, *)");
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId origin_a = a.ring().random_node(net_a);
    const NodeId origin_b = b.ring().random_node(net_b);
    ASSERT_EQ(origin_a, origin_b); // identical builds -> identical draws
    const QueryResult ra = a.query(q, origin_a);
    const QueryResult rb = b.query(q, origin_b);
    EXPECT_EQ(ra.stats.matches, corpus.size());
    EXPECT_EQ(ra.elements, rb.elements); // same elements, same order
    EXPECT_EQ(ra.stats.messages, rb.stats.messages);
    EXPECT_EQ(a.count(q, origin_a), corpus.size());
  }
}

} // namespace
} // namespace squid::core
