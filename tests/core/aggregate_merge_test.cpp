// Merge laws for the aggregation-pushdown partials (DESIGN.md 4g).
//
// The whole correctness story of in-overlay aggregation rests on one
// algebraic fact: folding elements into per-node partials and merging the
// partials up an ARBITRARY tree, in ARBITRARY order, must equal one flat
// fold at the origin — bit for bit, including the kSum double. This suite
// attacks that claim directly: random element sets, random partitions,
// permuted merge orders, adversarial float values for the exact
// superaccumulator, tie-heavy top-k inputs, and shuffled group-by keys.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "squid/core/aggregate.hpp"
#include "squid/util/exact_sum.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// --- ExactSum: the superaccumulator itself ----------------------------------

TEST(ExactSumTest, SingleValueRoundTripsBitExactly) {
  Rng rng(0xac5);
  std::vector<double> samples = {0.0,
                                 -0.0,
                                 1.0,
                                 -1.0,
                                 0.1,
                                 1e308,
                                 -1e308,
                                 1e-308,
                                 5e-324, // min subnormal
                                 -5e-324,
                                 std::numeric_limits<double>::max(),
                                 std::numeric_limits<double>::denorm_min(),
                                 3.141592653589793};
  for (int i = 0; i < 500; ++i) {
    // Random bit patterns, filtered to finite values: subnormals, odd
    // exponents, everything.
    const std::uint64_t bits = rng();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    if (std::isfinite(v)) samples.push_back(v);
  }
  for (double v : samples) {
    ExactSum s;
    s.add(v);
    // -0.0 folds to +0.0 (the accumulator is a signed integer; zero is
    // zero); everything else must round-trip to the identical bit pattern.
    const double expect = v == 0.0 ? 0.0 : v;
    EXPECT_EQ(double_bits(s.value()), double_bits(expect)) << v;
  }
}

TEST(ExactSumTest, CatastrophicCancellationIsExact) {
  // The classic failure of naive summation: 1e308 + 1.0 - 1e308 == 1.0
  // only if no intermediate rounding happened. Also pits the extremes of
  // the exponent range against each other.
  ExactSum s;
  s.add(1e308);
  s.add(1.0);
  s.add(-1e308);
  EXPECT_EQ(s.value(), 1.0);

  ExactSum t;
  t.add(std::numeric_limits<double>::denorm_min());
  t.add(1e300);
  t.add(-1e300);
  EXPECT_EQ(double_bits(t.value()),
            double_bits(std::numeric_limits<double>::denorm_min()));
}

TEST(ExactSumTest, MergeIsAssociativeAndCommutativeBitExactly) {
  Rng rng(0x5u);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> values;
    const std::size_t n = 1 + rng.below(24);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t bits = rng();
      double v = 0;
      std::memcpy(&v, &bits, sizeof(v));
      if (!std::isfinite(v)) v = static_cast<double>(bits >> 12) * 1e-3;
      values.push_back(v);
    }
    ExactSum flat;
    for (double v : values) flat.add(v);

    // Random partition into up to 5 parts, parts merged in random order.
    std::vector<ExactSum> parts(1 + rng.below(5));
    for (double v : values) parts[rng.below(parts.size())].add(v);
    std::vector<std::size_t> order(parts.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    ExactSum merged;
    for (std::size_t idx : order) merged.merge(parts[idx]);

    EXPECT_EQ(merged, flat) << "trial " << trial;
    EXPECT_EQ(double_bits(merged.value()), double_bits(flat.value()))
        << "trial " << trial;
  }
}

TEST(ExactSumTest, RejectsNonFiniteInput) {
  ExactSum s;
  EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(s.add(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

// --- AggregatePartial: fold/merge across every kind --------------------------

std::vector<DataElement> random_elements(Rng& rng, std::size_t n) {
  const char* groups[] = {"red", "green", "blue", "cyan"};
  std::vector<DataElement> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Coarse value grid on purpose: collisions exercise the tie-breaks.
    const double value = static_cast<double>(rng.below(16)) * 0.25 - 2.0;
    out.push_back(DataElement{"e" + std::to_string(i),
                              {std::string(groups[rng.below(4)]), value}});
  }
  return out;
}

std::vector<AggregateSpec> all_specs() {
  std::vector<AggregateSpec> specs;
  AggregateSpec s;
  s.kind = AggregateKind::kCount;
  specs.push_back(s);
  s.kind = AggregateKind::kSum;
  s.dim = 1;
  specs.push_back(s);
  s.kind = AggregateKind::kMin;
  specs.push_back(s);
  s.kind = AggregateKind::kMax;
  specs.push_back(s);
  s.kind = AggregateKind::kGroupBy;
  s.dim = 0;
  specs.push_back(s);
  s.kind = AggregateKind::kTopK;
  s.dim = 1;
  s.k = 3;
  s.largest = true;
  specs.push_back(s);
  s.largest = false;
  specs.push_back(s);
  s.k = 1000; // k far beyond the population: nothing ever truncates
  specs.push_back(s);
  return specs;
}

TEST(AggregateMergeTest, TreeMergeEqualsFlatFoldForEveryKind) {
  Rng rng(0x90);
  for (const AggregateSpec& spec : all_specs()) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::vector<DataElement> elements =
          random_elements(rng, 1 + rng.below(40));
      AggregatePartial flat = make_partial(spec);
      for (const DataElement& e : elements) flat.fold(e);

      // Partition into parts, fold each, then merge pairs in random order —
      // an arbitrary binary tree over the parts.
      std::vector<AggregatePartial> parts;
      for (std::size_t p = 0; p < 1 + rng.below(6); ++p)
        parts.push_back(make_partial(spec));
      for (const DataElement& e : elements)
        parts[rng.below(parts.size())].fold(e);
      while (parts.size() > 1) {
        const std::size_t a = rng.below(parts.size());
        std::size_t b = rng.below(parts.size() - 1);
        if (b >= a) ++b;
        parts[a].merge(parts[b]);
        parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(b));
      }

      EXPECT_EQ(parts[0], flat)
          << aggregate_kind_name(spec.kind) << " trial " << trial;
      if (spec.kind == AggregateKind::kSum) {
        EXPECT_EQ(double_bits(parts[0].sum.value()),
                  double_bits(flat.sum.value()))
            << "sum bits, trial " << trial;
      }
    }
  }
}

TEST(AggregateMergeTest, MergeIsCommutative) {
  Rng rng(0xc0);
  for (const AggregateSpec& spec : all_specs()) {
    const std::vector<DataElement> elements = random_elements(rng, 30);
    AggregatePartial a = make_partial(spec), b = make_partial(spec);
    for (std::size_t i = 0; i < elements.size(); ++i)
      (i % 2 == 0 ? a : b).fold(elements[i]);
    AggregatePartial ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba) << aggregate_kind_name(spec.kind);
  }
}

TEST(AggregateMergeTest, TopKTieBreakIsArrivalOrderIndependent) {
  // Every element shares one value: the winners are decided purely by the
  // deterministic name tie-break, never by fold or merge order.
  AggregateSpec spec;
  spec.kind = AggregateKind::kTopK;
  spec.dim = 1;
  spec.k = 4;
  std::vector<DataElement> elements;
  for (int i = 0; i < 12; ++i)
    elements.push_back(
        DataElement{"tie" + std::to_string(i), {std::string("g"), 7.0}});

  Rng rng(0x7e);
  std::vector<TopEntry> expect;
  for (int trial = 0; trial < 30; ++trial) {
    for (std::size_t i = elements.size(); i > 1; --i)
      std::swap(elements[i - 1], elements[rng.below(i)]);
    AggregatePartial left = make_partial(spec), right = make_partial(spec);
    for (std::size_t i = 0; i < elements.size(); ++i)
      (i < elements.size() / 2 ? left : right).fold(elements[i]);
    left.merge(right);
    ASSERT_EQ(left.top.size(), 4u);
    if (trial == 0) {
      expect = left.top;
      // Name-ascending among equals.
      for (std::size_t i = 1; i < expect.size(); ++i)
        EXPECT_LT(expect[i - 1].name, expect[i].name);
    } else {
      EXPECT_EQ(left.top, expect) << "trial " << trial;
    }
  }
}

TEST(AggregateMergeTest, LargestFlagOrdersTopKBothWays) {
  AggregateSpec spec;
  spec.kind = AggregateKind::kTopK;
  spec.dim = 1;
  spec.k = 2;
  std::vector<DataElement> elements = {DataElement{"lo", {std::string("g"), 1.0}},
                                       DataElement{"mid", {std::string("g"), 2.0}},
                                       DataElement{"hi", {std::string("g"), 3.0}}};
  spec.largest = true;
  AggregatePartial big = make_partial(spec);
  for (const auto& e : elements) big.fold(e);
  ASSERT_EQ(big.top.size(), 2u);
  EXPECT_EQ(big.top[0].name, "hi");
  EXPECT_EQ(big.top[1].name, "mid");

  spec.largest = false;
  AggregatePartial small = make_partial(spec);
  for (const auto& e : elements) small.fold(e);
  ASSERT_EQ(small.top.size(), 2u);
  EXPECT_EQ(small.top[0].name, "lo");
  EXPECT_EQ(small.top[1].name, "mid");
}

TEST(AggregateMergeTest, GroupByIsKeyOrderIndependentAndSorted) {
  AggregateSpec spec;
  spec.kind = AggregateKind::kGroupBy;
  spec.dim = 0;
  Rng rng(0x6b);
  std::vector<DataElement> elements = random_elements(rng, 60);
  AggregatePartial forward = make_partial(spec);
  for (const auto& e : elements) forward.fold(e);
  AggregatePartial backward = make_partial(spec);
  for (auto it = elements.rbegin(); it != elements.rend(); ++it)
    backward.fold(*it);
  EXPECT_EQ(forward, backward);
  // The group list is the canonical key-sorted form.
  for (std::size_t i = 1; i < forward.groups.size(); ++i)
    EXPECT_LT(forward.groups[i - 1].key, forward.groups[i].key);
  std::uint64_t total = 0;
  for (const GroupCount& g : forward.groups) total += g.count;
  EXPECT_EQ(total, elements.size());
}

TEST(AggregateMergeTest, MinMaxPartialTracksBothExtremes) {
  // One kMin query answers both extremes (query_min_max reads min AND max
  // from the same partial), so the partial must track both regardless of
  // the requested kind.
  AggregateSpec spec;
  spec.kind = AggregateKind::kMin;
  spec.dim = 1;
  AggregatePartial p = make_partial(spec);
  EXPECT_FALSE(p.has_extremes);
  p.fold(DataElement{"a", {std::string("g"), 5.0}});
  p.fold(DataElement{"b", {std::string("g"), -3.0}});
  p.fold(DataElement{"c", {std::string("g"), 9.0}});
  EXPECT_TRUE(p.has_extremes);
  EXPECT_EQ(p.min, -3.0);
  EXPECT_EQ(p.max, 9.0);
}

TEST(AggregateMergeTest, MergingMismatchedSpecsFailsLoudly) {
  AggregateSpec count;
  count.kind = AggregateKind::kCount;
  AggregateSpec sum;
  sum.kind = AggregateKind::kSum;
  sum.dim = 1;
  AggregatePartial a = make_partial(count), b = make_partial(sum);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(AggregateMergeTest, EmptyPartialIsTheMergeIdentity) {
  Rng rng(0x1d);
  for (const AggregateSpec& spec : all_specs()) {
    AggregatePartial folded = make_partial(spec);
    for (const DataElement& e : random_elements(rng, 10)) folded.fold(e);
    AggregatePartial left = make_partial(spec);
    left.merge(folded);
    EXPECT_EQ(left, folded) << aggregate_kind_name(spec.kind);
    AggregatePartial right = folded;
    right.merge(make_partial(spec));
    EXPECT_EQ(right, folded) << aggregate_kind_name(spec.kind);
  }
}

} // namespace
} // namespace squid::core
