// The hotspot reaction loop (docs/LOAD_BALANCING.md): the replica cache's
// invalidation protocol (a stale read is structurally impossible, faults
// off AND on), the controller's bit-transparency when disabled, the
// determinism of its reactions across all three delivery modes and shard
// counts, and the split -> replicate -> drain state machine driven through
// synthetic epoch samples.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "squid/core/parallel.hpp"
#include "squid/core/reaction.hpp"
#include "squid/core/system.hpp"
#include "squid/core/update.hpp"
#include "squid/obs/telemetry.hpp"
#include "squid/sim/engine.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<SquidSystem> sys;
};

World make_world(std::uint64_t seed, std::size_t nodes,
                 std::size_t elements) {
  World world;
  Rng rng(seed);
  world.corpus = std::make_unique<workload::KeywordCorpus>(2, 300, 1.0, rng);
  world.sys = std::make_unique<SquidSystem>(world.corpus->make_space());
  world.sys->build_network(nodes, rng);
  for (const auto& e : world.corpus->make_elements(elements, rng))
    world.sys->publish(e);
  return world;
}

std::set<std::string> names_of(const QueryResult& r) {
  std::set<std::string> names;
  for (const auto& e : r.elements) names.insert(e.name);
  return names;
}

/// A root-level entry (level 0, prefix 0) covers every cluster, so any
/// dispatch can be served from it and any publish invalidates it — the
/// sharpest fixture for the invalidation protocol.
std::uint64_t install_root_entry(SquidSystem& sys, Rng& rng,
                                 std::size_t replicas) {
  std::vector<SquidSystem::NodeId> hosts;
  while (hosts.size() < replicas) {
    const auto n = sys.ring().random_node(rng);
    if (std::find(hosts.begin(), hosts.end(), n) == hosts.end())
      hosts.push_back(n);
  }
  return sys.install_replica(0, 0, std::move(hosts));
}

TEST(ReplicaInvalidation, RepublishMakesStaleReadsImpossible) {
  World world = make_world(0x11, 48, 1500);
  Rng rng(0x12);
  const std::uint64_t entry = install_root_entry(*world.sys, rng, 3);
  ASSERT_TRUE(world.sys->replica_valid(entry));

  const keyword::Query q{{keyword::Prefix{"a"}, keyword::Any{}}};
  const auto origin = world.sys->ring().random_node(rng);
  const auto before = names_of(world.sys->query(q, origin));
  EXPECT_GT(world.sys->replica_stats().serves, 0u)
      << "the root entry should have served at least one dispatch";

  // Publishing inside the entry's segment invalidates it; the next query
  // must fall back to routing and see the new element immediately.
  const DataElement fresh{"fresh", {"aaa", "aaa"}};
  world.sys->publish(fresh);
  EXPECT_FALSE(world.sys->replica_valid(entry));
  auto after = names_of(world.sys->query(q, origin));
  EXPECT_TRUE(after.count("fresh") == 1)
      << "invalidated entry kept serving its stale snapshot";
  for (const auto& name : before) EXPECT_EQ(after.count(name), 1u) << name;

  // Refresh re-snapshots the live store: serving resumes and the snapshot
  // now contains the element that invalidated it.
  ASSERT_TRUE(world.sys->refresh_replica(entry));
  EXPECT_TRUE(world.sys->replica_valid(entry));
  const auto served = world.sys->replica_stats().serves;
  after = names_of(world.sys->query(q, origin));
  EXPECT_EQ(after.count("fresh"), 1u);
  EXPECT_GT(world.sys->replica_stats().serves, served);

  // Unpublish invalidates too: the removed element must never resurrect
  // from a snapshot, refreshed or not.
  ASSERT_TRUE(world.sys->unpublish(fresh));
  EXPECT_FALSE(world.sys->replica_valid(entry));
  EXPECT_EQ(names_of(world.sys->query(q, origin)).count("fresh"), 0u);
  ASSERT_TRUE(world.sys->refresh_replica(entry));
  EXPECT_EQ(names_of(world.sys->query(q, origin)).count("fresh"), 0u);
}

TEST(ReplicaInvalidation, NoStaleReadsUnderFaults) {
  World world = make_world(0x21, 48, 1500);
  Rng rng(0x22);
  const std::uint64_t entry = install_root_entry(*world.sys, rng, 3);

  sim::FaultPlan plan;
  plan.seed = 0x5eed;
  plan.drop_probability = 0.05;
  plan.delay_probability = 0.1;
  plan.max_delay = 2;
  plan.duplicate_probability = 0.05;
  sim::FaultInjector injector(plan);
  world.sys->set_fault_injector(&injector);

  const keyword::Query q{{keyword::Prefix{"a"}, keyword::Any{}}};
  const DataElement fresh{"fresh", {"aaa", "aaa"}};
  world.sys->publish(fresh);
  ASSERT_TRUE(world.sys->unpublish(fresh));
  ASSERT_TRUE(world.sys->refresh_replica(entry));

  // Under message loss a query may legitimately miss matches — but it must
  // never RETURN the unpublished element, from the snapshot or anywhere
  // else, no matter which legs drop or duplicate.
  for (int trial = 0; trial < 20; ++trial) {
    const auto origin = world.sys->ring().random_node(rng);
    EXPECT_EQ(names_of(world.sys->query(q, origin)).count("fresh"), 0u)
        << "stale read on faulted trial " << trial;
  }
  world.sys->set_fault_injector(nullptr);
}

TEST(ReplicaInvalidation, RoutedRetractInvalidatesSynchronously) {
  // The update plane's retract commits through SquidSystem::unpublish, so a
  // hot-cluster replica covering the key is invalidated before
  // retract_update returns — a crowd being served from the snapshot can
  // never be handed the retracted element afterwards.
  World world = make_world(0x91, 48, 1500);
  Rng rng(0x92);
  const DataElement fresh{"fresh", {"aaa", "aaa"}};
  world.sys->publish(fresh);
  const std::uint64_t entry = install_root_entry(*world.sys, rng, 3);
  ASSERT_TRUE(world.sys->replica_valid(entry)); // snapshot contains fresh

  const keyword::Query q{{keyword::Prefix{"a"}, keyword::Any{}}};
  const auto origin = world.sys->ring().random_node(rng);
  ASSERT_EQ(names_of(world.sys->query(q, origin)).count("fresh"), 1u);

  const UpdateResult r = retract_update(*world.sys, fresh, origin);
  ASSERT_TRUE(r.delivered);
  ASSERT_TRUE(r.applied);
  EXPECT_FALSE(world.sys->replica_valid(entry))
      << "routed retract must invalidate the covering entry synchronously";
  EXPECT_EQ(names_of(world.sys->query(q, origin)).count("fresh"), 0u);
  ASSERT_TRUE(world.sys->refresh_replica(entry));
  EXPECT_EQ(names_of(world.sys->query(q, origin)).count("fresh"), 0u)
      << "the re-snapshot resurrected a retracted element";
}

TEST(ReplicaInvalidation, RoutedRetractUnderFaultsNeverServesStale) {
  // Retracts through a heavily-dropping update plane: an op that is LOST
  // must leave both the element and the snapshot untouched, an op that is
  // APPLIED must invalidate before the call returns. Queries run with no
  // injector attached, so every read below is exact — the only uncertainty
  // is which retracts survived the wire.
  World world = make_world(0xa1, 48, 1500);
  Rng rng(0xa2);
  std::vector<DataElement> fresh;
  for (int i = 0; i < 40; ++i)
    fresh.push_back(DataElement{"fresh" + std::to_string(i), {"aaa", "aaa"}});
  for (const auto& e : fresh) world.sys->publish(e);
  const std::uint64_t entry = install_root_entry(*world.sys, rng, 3);
  ASSERT_TRUE(world.sys->replica_valid(entry));

  sim::FaultPlan plan;
  plan.seed = 0xbad;
  plan.drop_probability = 0.6; // loss needs 4 straight drops: ~13% of ops
  std::vector<UpdateOp> ops;
  for (const auto& e : fresh)
    ops.push_back(UpdateOp::retract(e, world.sys->ring().random_node(rng)));
  UpdateOptions opts;
  opts.faults = &plan;
  const UpdateRun run = apply_updates(*world.sys, ops, opts);
  ASSERT_GT(run.applied, 0u);
  ASSERT_GT(run.lost, 0u) << "the plan must actually lose some retracts";
  EXPECT_FALSE(world.sys->replica_valid(entry));

  const keyword::Query q{{keyword::Prefix{"a"}, keyword::Any{}}};
  for (int pass = 0; pass < 2; ++pass) {
    const auto names =
        names_of(world.sys->query(q, world.sys->ring().random_node(rng)));
    for (std::size_t i = 0; i < ops.size(); ++i)
      EXPECT_EQ(names.count(fresh[i].name), run.results[i].applied ? 0u : 1u)
          << fresh[i].name << (pass ? " after refresh" : "");
    if (pass == 0) {
      ASSERT_TRUE(world.sys->refresh_replica(entry));
    }
  }
}

/// Twin worlds built identically; one carries the full reaction stack
/// (sampler + detector + DISABLED controller, fed every epoch), the other
/// nothing. Every query must agree bit-for-bit — the controller-off half
/// of the bit-transparency lock.
void expect_transparent(bool faulted) {
  World active = make_world(0x31, 40, 1200);
  World bare = make_world(0x31, 40, 1200);

  obs::EpochSampler sampler(32);
  active.sys->set_telemetry(&sampler);
  obs::HotspotConfig detector_config;
  ReactionConfig off;
  off.enabled = false;
  ReactionController controller(*active.sys, detector_config, off, 0x32);

  sim::FaultPlan plan;
  plan.seed = 0xfa11;
  plan.drop_probability = faulted ? 0.05 : 0.0;
  plan.delay_probability = faulted ? 0.1 : 0.0;
  plan.max_delay = 2;
  sim::FaultInjector active_injector(plan);
  sim::FaultInjector bare_injector(plan);
  if (faulted) {
    active.sys->set_fault_injector(&active_injector);
    bare.sys->set_fault_injector(&bare_injector);
  }

  Rng rng(0x33);
  const workload::FlashCrowdWorkload crowd(*active.corpus, {});
  std::uint64_t fed = 0;
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    const keyword::Query q = crowd.draw(trial, rng);
    const auto origin = active.sys->ring().random_node(rng);
    const auto a = active.sys->query(q, origin);
    const auto b = bare.sys->query(q, origin);
    EXPECT_EQ(names_of(a), names_of(b)) << "trial " << trial;
    EXPECT_EQ(a.stats.messages, b.stats.messages) << "trial " << trial;
    EXPECT_EQ(a.stats.critical_path_hops, b.stats.critical_path_hops)
        << "trial " << trial;
    EXPECT_EQ(a.stats.matches, b.stats.matches) << "trial " << trial;
    sampler.advance_to((trial + 1) * 16);
    // Feed the controller every closed epoch as they arrive, mid-workload —
    // exactly how an online deployment would run it.
    const obs::LoadSeries so_far = sampler.finish();
    for (; fed + 1 < so_far.epochs.size(); ++fed)
      controller.on_epoch(so_far.epochs[fed]);
    if (faulted) {
      ASSERT_EQ(active_injector.rng_draws(), bare_injector.rng_draws())
          << "trial " << trial;
    }
  }
  // Disabled means DISABLED: no splits, no entries, no ring mutations.
  EXPECT_EQ(controller.totals().splits, 0u);
  EXPECT_EQ(controller.totals().replications, 0u);
  EXPECT_EQ(active.sys->replica_entries(), 0u);
  EXPECT_EQ(active.sys->ring().size(), bare.sys->ring().size());
  active.sys->set_telemetry(nullptr);
  if (faulted) {
    active.sys->set_fault_injector(nullptr);
    bare.sys->set_fault_injector(nullptr);
  }
}

TEST(ReactionTransparency, DisabledControllerIsBitTransparent) {
  expect_transparent(/*faulted=*/false);
}

TEST(ReactionTransparency, DisabledControllerIsBitTransparentUnderFaults) {
  expect_transparent(/*faulted=*/true);
}

/// What one enabled run did, reduced to comparable numbers.
struct RunFingerprint {
  std::size_t splits = 0;
  std::size_t replications = 0;
  std::size_t drops = 0;
  std::size_t events = 0;
  std::size_t ring = 0;
  std::size_t entries = 0;

  bool operator==(const RunFingerprint& o) const {
    return splits == o.splits && replications == o.replications &&
           drops == o.drops && events == o.events && ring == o.ring &&
           entries == o.entries;
  }
};

enum class Mode { kLockstep, kVirtual, kParallel };

/// A scripted flash crowd (two calm epochs, six crowded ones) replayed in
/// one delivery mode with the controller enabled.
RunFingerprint run_reaction(Mode mode, unsigned shards) {
  World world = make_world(0x41, 40, 1500);
  obs::EpochSampler sampler(64);
  world.sys->set_telemetry(&sampler);

  const workload::FlashCrowdWorkload crowd(*world.corpus, {});
  Rng plan_rng(0x42);
  std::vector<std::vector<keyword::Query>> plan(8);
  std::vector<std::vector<overlay::NodeId>> origins(8);
  for (std::uint64_t e = 0; e < plan.size(); ++e) {
    const std::size_t n = e < 2 ? 8 : 32;
    for (std::size_t i = 0; i < n; ++i) {
      plan[e].push_back(e < 2 ? crowd.draw(0, plan_rng) : crowd.hot_query());
      origins[e].push_back(world.sys->ring().random_node(plan_rng));
    }
  }

  std::unique_ptr<ReactionController> controller;
  for (std::uint64_t epoch = 0; epoch < plan.size(); ++epoch) {
    switch (mode) {
      case Mode::kLockstep:
        for (std::size_t i = 0; i < plan[epoch].size(); ++i)
          world.sys->query(plan[epoch][i], origins[epoch][i]);
        break;
      case Mode::kVirtual: {
        sim::Engine engine;
        std::vector<QueryHandle> handles;
        for (std::size_t i = 0; i < plan[epoch].size(); ++i)
          handles.push_back(world.sys->query_async(plan[epoch][i],
                                                   origins[epoch][i], engine));
        engine.run();
        break;
      }
      case Mode::kParallel: {
        std::vector<ParallelQuerySpec> specs;
        for (std::size_t i = 0; i < plan[epoch].size(); ++i) {
          ParallelQuerySpec spec;
          spec.query = plan[epoch][i];
          spec.origin = origins[epoch][i];
          specs.push_back(std::move(spec));
        }
        ParallelOptions opts;
        opts.shards = shards;
        world.sys->query_parallel(specs, opts);
        break;
      }
    }
    sampler.advance_to((epoch + 1) * 64);
    const obs::LoadSeries so_far = sampler.finish();
    if (epoch == 1) {
      // Calibration boundary, as in bench/ext_hotspot: bring the
      // controller online and replay the calm epochs through it.
      obs::HotspotConfig hcfg;
      hcfg.min_load = obs::calibrated_min_load(
          hcfg.min_load, so_far, 2, world.sys->config().hotspot_min_load_factor);
      controller = std::make_unique<ReactionController>(*world.sys, hcfg,
                                                        ReactionConfig{}, 0x43);
      for (std::uint64_t i = 0; i <= epoch && i < so_far.epochs.size(); ++i)
        controller->on_epoch(so_far.epochs[i]);
    } else if (controller && epoch < so_far.epochs.size()) {
      controller->on_epoch(so_far.epochs[epoch]);
    }
  }
  world.sys->set_telemetry(nullptr);

  RunFingerprint fp;
  fp.splits = controller->totals().splits;
  fp.replications = controller->totals().replications;
  fp.drops = controller->totals().drops;
  fp.events = controller->detector().events().size();
  fp.ring = world.sys->ring().size();
  fp.entries = world.sys->replica_entries();
  return fp;
}

TEST(ReactionDeterminism, IdenticalAcrossModesAndShardCounts) {
  const RunFingerprint lockstep = run_reaction(Mode::kLockstep, 1);
  // The run must actually react, or the comparison proves nothing.
  EXPECT_GT(lockstep.replications + lockstep.splits, 0u);
  EXPECT_TRUE(lockstep == run_reaction(Mode::kVirtual, 1)) << "virtual time";
  for (const unsigned shards : {1u, 2u, 4u})
    EXPECT_TRUE(lockstep == run_reaction(Mode::kParallel, shards))
        << "parallel S=" << shards;
  // Same seed, same workload: byte-for-byte repeatable.
  EXPECT_TRUE(lockstep == run_reaction(Mode::kLockstep, 1)) << "repeat";
}

/// Synthetic epoch feeding: the controller only sees EpochSamples, so the
/// state machine can be driven without running a single query.
obs::EpochSample make_sample(std::uint64_t epoch,
                             const std::vector<overlay::NodeId>& nodes,
                             overlay::NodeId target,
                             obs::LoadVector target_load,
                             obs::LoadVector others) {
  obs::EpochSample sample;
  sample.epoch = epoch;
  for (const auto n : nodes)
    sample.nodes.emplace_back(n, n == target ? target_load : others);
  std::sort(sample.nodes.begin(), sample.nodes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sample;
}

obs::LoadVector scan_load(std::uint64_t n) {
  obs::LoadVector v;
  v.scan_hits = n;
  return v;
}

TEST(ReactionStateMachine, SplitsReplicatesDrainsAndDrops) {
  World world = make_world(0x51, 16, 2000);
  // The heaviest owner has a median key to split at.
  overlay::NodeId target = 0;
  std::size_t heaviest = 0;
  for (const auto& [node, load] : world.sys->node_loads())
    if (load > heaviest) {
      heaviest = load;
      target = node;
    }

  ReactionController controller(*world.sys, obs::HotspotConfig{},
                                ReactionConfig{}, 0x52);
  const auto nodes = world.sys->ring().node_ids();
  const std::size_t ring_before = world.sys->ring().size();

  // Epoch 0: calm — baselines form, everyone cold.
  controller.on_epoch(make_sample(0, nodes, target, scan_load(10),
                                  scan_load(10)));
  EXPECT_EQ(controller.phase_of(target), ReactionController::Phase::kCold);

  // Epoch 1: the target runs hot on its own scans and the ring total
  // surges -> onset, split at the median key (the ring grows by one).
  controller.on_epoch(make_sample(1, nodes, target, scan_load(300),
                                  scan_load(10)));
  EXPECT_EQ(controller.phase_of(target), ReactionController::Phase::kSplit);
  EXPECT_EQ(controller.totals().splits, 1u);
  EXPECT_EQ(world.sys->ring().size(), ring_before + 1);

  // Epoch 2: still hot past replicate_after -> the cluster is snapshotted
  // onto cold peers and served from them.
  controller.on_epoch(make_sample(2, nodes, target, scan_load(300),
                                  scan_load(10)));
  EXPECT_EQ(controller.phase_of(target),
            ReactionController::Phase::kReplicated);
  EXPECT_NE(controller.entry_of(target), 0u);
  EXPECT_EQ(world.sys->replica_entries(), 1u);
  EXPECT_EQ(controller.totals().replications, 1u);

  // Epoch 3: the owner cools (the replicas are carrying it) -> DRAIN, not
  // drop: the entry keeps serving.
  controller.on_epoch(make_sample(3, nodes, target, scan_load(2),
                                  scan_load(10)));
  EXPECT_EQ(controller.phase_of(target),
            ReactionController::Phase::kDraining);
  EXPECT_EQ(world.sys->replica_entries(), 1u);

  // Epoch 4: absorbed demand stayed nil for drain_epochs windows -> the
  // crowd is actually gone; the entry drops and the node is cold again.
  controller.on_epoch(make_sample(4, nodes, target, scan_load(2),
                                  scan_load(10)));
  EXPECT_EQ(controller.phase_of(target), ReactionController::Phase::kCold);
  EXPECT_EQ(world.sys->replica_entries(), 0u);
  EXPECT_EQ(controller.totals().drops, 1u);
}

TEST(ReactionStateMachine, TransitDominatedHeatGetsNoAction) {
  World world = make_world(0x61, 16, 1000);
  ReactionController controller(*world.sys, obs::HotspotConfig{},
                                ReactionConfig{}, 0x62);
  const auto nodes = world.sys->ring().node_ids();
  const auto target = nodes.front();
  const std::size_t ring_before = world.sys->ring().size();

  controller.on_epoch(make_sample(0, nodes, target, scan_load(10),
                                  scan_load(10)));
  // Hot purely on routing legs: somebody else's crowd is passing through.
  obs::LoadVector transit;
  transit.routes_through = 300;
  controller.on_epoch(make_sample(1, nodes, target, transit, scan_load(10)));
  EXPECT_EQ(controller.phase_of(target), ReactionController::Phase::kCold);
  EXPECT_EQ(controller.totals().splits, 0u);
  EXPECT_EQ(world.sys->ring().size(), ring_before);
  EXPECT_GT(controller.totals().onsets, 0u)
      << "the detector should still have fired; only the ACTION is gated";
}

TEST(ReactionStateMachine, ConstantVolumeShiftSkipsTheSplit) {
  World world = make_world(0x71, 16, 2000);
  overlay::NodeId target = 0;
  std::size_t heaviest = 0;
  for (const auto& [node, load] : world.sys->node_loads())
    if (load > heaviest) {
      heaviest = load;
      target = node;
    }
  // The calm hum here is 40 per node — above the default absolute floor —
  // so raise the floor the way calibration would (2 x the calm p95), or
  // every fresh node onsets against its zero baseline on the first epoch.
  obs::HotspotConfig hcfg;
  hcfg.min_load = 80;
  ReactionController controller(*world.sys, hcfg, ReactionConfig{}, 0x72);
  const auto nodes = world.sys->ring().node_ids();
  const std::size_t ring_before = world.sys->ring().size();

  // Calm epoch at a HIGH ring-wide total, so the later concentration is a
  // relocation of the same volume, not a surge.
  controller.on_epoch(make_sample(0, nodes, target, scan_load(40),
                                  scan_load(40)));
  controller.on_epoch(make_sample(1, nodes, target, scan_load(40),
                                  scan_load(40)));
  // The same aggregate volume, concentrated onto the target.
  controller.on_epoch(make_sample(2, nodes, target, scan_load(320),
                                  scan_load(20)));
  EXPECT_EQ(controller.phase_of(target), ReactionController::Phase::kSplit);
  EXPECT_EQ(controller.totals().splits, 0u)
      << "no capacity surge -> no split; replication handles relocation";
  EXPECT_EQ(world.sys->ring().size(), ring_before);
  // Escalation still replicates the next epoch.
  controller.on_epoch(make_sample(3, nodes, target, scan_load(320),
                                  scan_load(20)));
  EXPECT_EQ(controller.phase_of(target),
            ReactionController::Phase::kReplicated);
  EXPECT_EQ(controller.totals().replications, 1u);
}

TEST(ReactionStateMachine, HotHostsWidenTheReplicaSet) {
  World world = make_world(0x81, 32, 2000);
  overlay::NodeId target = 0;
  std::size_t heaviest = 0;
  for (const auto& [node, load] : world.sys->node_loads())
    if (load > heaviest) {
      heaviest = load;
      target = node;
    }
  ReactionController controller(*world.sys, obs::HotspotConfig{},
                                ReactionConfig{}, 0x82);
  const auto nodes = world.sys->ring().node_ids();

  controller.on_epoch(make_sample(0, nodes, target, scan_load(10),
                                  scan_load(10)));
  controller.on_epoch(make_sample(1, nodes, target, scan_load(300),
                                  scan_load(10)));
  controller.on_epoch(make_sample(2, nodes, target, scan_load(300),
                                  scan_load(10)));
  ASSERT_EQ(controller.phase_of(target),
            ReactionController::Phase::kReplicated);

  // Three quarters of the ring heats up on transit (the served crowd's
  // replies) — including, with this seed, at least one replica host. The
  // controller's remedy for borrowed load is widening the host set from
  // the still-cold quarter, never splitting the hosts themselves.
  obs::EpochSample sample;
  sample.epoch = 3;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    obs::LoadVector v;
    if (nodes[i] == target) {
      v = scan_load(300);
    } else if (i % 4 != 0) {
      v.routes_through = 300;
    } else {
      v = scan_load(10);
    }
    sample.nodes.emplace_back(nodes[i], v);
  }
  const std::size_t ring_before = world.sys->ring().size();
  controller.on_epoch(sample);
  EXPECT_GT(controller.totals().widens, 0u);
  EXPECT_EQ(world.sys->ring().size(), ring_before)
      << "borrowed/transit heat must never split";
  EXPECT_EQ(world.sys->replica_entries(), 1u);
}

} // namespace
} // namespace squid::core
