// Virtual-node load balancing (paper 3.5, second runtime algorithm): hot
// virtual nodes split, overloaded peers shed virtual nodes, and the
// physical load distribution flattens.

#include <gtest/gtest.h>

#include "squid/core/parallel.hpp"
#include "squid/core/virtual_nodes.hpp"
#include "squid/stats/summary.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

double cv_of(const std::vector<std::size_t>& loads) {
  Summary s;
  for (const auto l : loads) s.add(static_cast<double>(l));
  return s.cv();
}

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<SquidSystem> sys;
};

World make_world(std::uint64_t seed, std::size_t elements) {
  World world;
  Rng rng(seed);
  world.corpus = std::make_unique<workload::KeywordCorpus>(2, 300, 1.0, rng);
  world.sys = std::make_unique<SquidSystem>(world.corpus->make_space());
  for (const auto& e : world.corpus->make_elements(elements, rng))
    world.sys->publish(e);
  return world;
}

TEST(VirtualNodes, DealsVirtualsRoundRobin) {
  World world = make_world(61, 2000);
  Rng rng(61);
  VirtualNodeManager manager(*world.sys, 50, 4, rng);
  EXPECT_EQ(manager.physical_count(), 50u);
  EXPECT_EQ(manager.virtual_count(), 200u);
  EXPECT_EQ(world.sys->ring().size(), 200u);
}

TEST(VirtualNodes, PhysicalLoadsSumToKeyCount) {
  World world = make_world(62, 3000);
  Rng rng(62);
  VirtualNodeManager manager(*world.sys, 40, 4, rng);
  std::size_t total = 0;
  for (const auto l : manager.physical_loads()) total += l;
  EXPECT_EQ(total, world.sys->key_count());
}

TEST(VirtualNodes, BalancingFlattensPhysicalLoads) {
  World world = make_world(63, 5000);
  Rng rng(63);
  VirtualNodeManager manager(*world.sys, 60, 4, rng);
  const double before = cv_of(manager.physical_loads());
  std::size_t actions = 0;
  for (int round = 0; round < 20; ++round)
    actions += manager.balance_round(2.0, 1.3, rng);
  const double after = cv_of(manager.physical_loads());
  EXPECT_GT(actions, 0u);
  EXPECT_EQ(actions, manager.splits() + manager.migrations());
  EXPECT_LT(after, before * 0.7);
  // Loads still account for every key after splits and migrations.
  std::size_t total = 0;
  for (const auto l : manager.physical_loads()) total += l;
  EXPECT_EQ(total, world.sys->key_count());
}

TEST(VirtualNodes, SplitsIncreaseVirtualCount) {
  World world = make_world(64, 5000);
  Rng rng(64);
  VirtualNodeManager manager(*world.sys, 30, 2, rng);
  const std::size_t before = manager.virtual_count();
  for (int round = 0; round < 5; ++round)
    (void)manager.balance_round(1.5, 1.5, rng);
  EXPECT_EQ(manager.virtual_count(), before + manager.splits());
}

TEST(VirtualNodes, QueriesRemainCompleteThroughBalancing) {
  Rng rng(65);
  auto corpus = std::make_unique<workload::KeywordCorpus>(2, 300, 1.0, rng);
  SquidSystem sys(corpus->make_space());
  const auto all = corpus->make_elements(3000, rng);
  for (const auto& e : all) sys.publish(e);
  VirtualNodeManager manager(sys, 40, 3, rng);
  for (int round = 0; round < 10; ++round)
    (void)manager.balance_round(1.5, 1.3, rng);

  const keyword::Query q = corpus->q1(0, true);
  std::size_t expected = 0;
  for (const auto& e : all) expected += sys.space().matches(q, e.keys);
  const auto result = sys.query(q, sys.ring().random_node(rng));
  EXPECT_EQ(result.stats.matches, expected);
}

TEST(VirtualNodes, SplitChoiceIsDeterministicAcrossShardCounts) {
  // The reaction controller splits hot nodes mid-run in every delivery
  // mode, so the split's outcome — median key, sampled host, resulting
  // topology — must not depend on how many shards executed the queries
  // that heated the node.
  struct Outcome {
    bool split = false;
    SquidSystem::NodeId added = 0;
    std::size_t ring = 0;
    std::size_t virtuals = 0;
  };
  std::vector<Outcome> outcomes;
  for (const unsigned shards : {1u, 2u, 4u}) {
    World world = make_world(67, 4000);
    Rng rng(67);
    VirtualNodeManager manager(*world.sys, 30, 2, rng);

    std::vector<ParallelQuerySpec> specs;
    Rng q_rng(68);
    for (int i = 0; i < 12; ++i) {
      ParallelQuerySpec spec;
      spec.query = world.corpus->q1(static_cast<std::size_t>(i % 5), true);
      spec.origin = world.sys->ring().random_node(q_rng);
      specs.push_back(std::move(spec));
    }
    ParallelOptions opts;
    opts.shards = shards;
    (void)world.sys->query_parallel(specs, opts);

    // The heaviest ring node (deterministic: queries never move keys).
    SquidSystem::NodeId hot = 0;
    std::size_t heaviest = 0;
    for (const auto& [node, load] : world.sys->node_loads())
      if (load > heaviest) {
        heaviest = load;
        hot = node;
      }
    Rng split_rng(69);
    const auto added = manager.split_virtual(hot, 4, split_rng);
    Outcome out;
    out.split = added.has_value();
    out.added = added.value_or(0);
    out.ring = world.sys->ring().size();
    out.virtuals = manager.virtual_count();
    outcomes.push_back(out);
  }
  ASSERT_TRUE(outcomes.front().split);
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].split, outcomes.front().split) << i;
    EXPECT_EQ(outcomes[i].added, outcomes.front().added) << i;
    EXPECT_EQ(outcomes[i].ring, outcomes.front().ring) << i;
    EXPECT_EQ(outcomes[i].virtuals, outcomes.front().virtuals) << i;
  }
}

TEST(VirtualNodes, RejectsMisuse) {
  World world = make_world(66, 100);
  Rng rng(66);
  EXPECT_THROW(VirtualNodeManager(*world.sys, 0, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(VirtualNodeManager(*world.sys, 5, 0, rng),
               std::invalid_argument);
  VirtualNodeManager manager(*world.sys, 5, 2, rng);
  EXPECT_THROW(VirtualNodeManager(*world.sys, 5, 2, rng),
               std::invalid_argument); // network no longer empty
  EXPECT_THROW((void)manager.balance_round(1.0, 1.5, rng),
               std::invalid_argument);
}

} // namespace
} // namespace squid::core
