// Cluster-owner caching (hot-spot extension): repeated queries hit the
// per-peer cache, saving messages, while results stay identical — and stale
// entries self-heal after churn.

#include <gtest/gtest.h>

#include <algorithm>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<SquidSystem> sys;
};

World make_world(std::uint64_t seed, bool caching) {
  World world;
  Rng rng(seed);
  world.corpus = std::make_unique<workload::KeywordCorpus>(2, 300, 0.9, rng);
  SquidConfig config;
  config.cache_cluster_owners = caching;
  world.sys =
      std::make_unique<SquidSystem>(world.corpus->make_space(), config);
  world.sys->build_network(60, rng);
  for (const auto& e : world.corpus->make_elements(1500, rng))
    world.sys->publish(e);
  return world;
}

TEST(OwnerCache, RepeatedQueriesHitTheCache) {
  World world = make_world(111, true);
  Rng rng(111);
  const keyword::Query q = world.corpus->q1(0, true);
  const auto origin = world.sys->ring().node_ids().front();
  const auto cold = world.sys->query(q, origin);
  const std::size_t misses_after_cold = world.sys->cache_stats().misses;
  EXPECT_GT(misses_after_cold, 0u);
  EXPECT_EQ(world.sys->cache_stats().hits, 0u);

  const auto warm = world.sys->query(q, origin);
  EXPECT_GT(world.sys->cache_stats().hits, 0u);
  EXPECT_EQ(warm.stats.matches, cold.stats.matches);
  EXPECT_LE(warm.stats.messages, cold.stats.messages);
  // Warm routing touches fewer peers: direct sends skip intermediates.
  EXPECT_LE(warm.stats.routing_nodes, cold.stats.routing_nodes);
}

TEST(OwnerCache, ResultsIdenticalWithAndWithoutCaching) {
  World cached = make_world(112, true);
  World plain = make_world(112, false);
  Rng rng_a(112), rng_b(112);
  for (const std::size_t rank : {0u, 2u, 7u}) {
    const keyword::Query q = cached.corpus->q1(rank, true);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto a =
          cached.sys->query(q, cached.sys->ring().random_node(rng_a));
      const auto b = plain.sys->query(q, plain.sys->ring().random_node(rng_b));
      EXPECT_EQ(a.stats.matches, b.stats.matches);
    }
  }
}

TEST(OwnerCache, StaleEntriesSelfHealAfterChurn) {
  World world = make_world(113, true);
  Rng rng(113);
  const keyword::Query q = world.corpus->q1(1, true);
  const auto origin = world.sys->ring().node_ids().front();
  const std::size_t expected = world.sys->query(q, origin).stats.matches;

  // Churn invalidates owners; cached entries verified on use must fall
  // back and results must stay complete.
  for (int i = 0; i < 15; ++i) {
    const auto victim = world.sys->ring().random_node(rng);
    if (victim == origin) continue;
    world.sys->fail_node(victim);
  }
  world.sys->repair_routing();
  const auto after = world.sys->query(q, origin);
  EXPECT_EQ(after.stats.matches, expected); // data store survives, so must results
  EXPECT_GE(world.sys->cache_stats().stale, 0u); // counter moves when hit
}

TEST(OwnerCache, DisabledByDefault) {
  World world = make_world(114, false);
  Rng rng(114);
  (void)world.sys->query(world.corpus->q1(0, true),
                         world.sys->ring().random_node(rng));
  (void)world.sys->query(world.corpus->q1(0, true),
                         world.sys->ring().random_node(rng));
  EXPECT_EQ(world.sys->cache_stats().hits, 0u);
  EXPECT_EQ(world.sys->cache_stats().misses, 0u);
}

TEST(OwnerCache, ClearCachesResetsEverything) {
  World world = make_world(115, true);
  Rng rng(115);
  const auto origin = world.sys->ring().node_ids().front();
  (void)world.sys->query(world.corpus->q1(0, true), origin);
  (void)world.sys->query(world.corpus->q1(0, true), origin);
  EXPECT_GT(world.sys->cache_stats().hits + world.sys->cache_stats().misses,
            0u);
  world.sys->clear_caches();
  EXPECT_EQ(world.sys->cache_stats().hits, 0u);
  EXPECT_EQ(world.sys->cache_stats().misses, 0u);
}

} // namespace
} // namespace squid::core
