// Cluster-owner caching (hot-spot extension): repeated queries hit the
// per-peer cache, saving messages, while results stay identical — and stale
// entries self-heal after churn.

#include <gtest/gtest.h>

#include <algorithm>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<SquidSystem> sys;
};

World make_world(std::uint64_t seed, bool caching) {
  World world;
  Rng rng(seed);
  world.corpus = std::make_unique<workload::KeywordCorpus>(2, 300, 0.9, rng);
  SquidConfig config;
  config.cache_cluster_owners = caching;
  world.sys =
      std::make_unique<SquidSystem>(world.corpus->make_space(), config);
  world.sys->build_network(60, rng);
  for (const auto& e : world.corpus->make_elements(1500, rng))
    world.sys->publish(e);
  return world;
}

TEST(OwnerCache, RepeatedQueriesHitTheCache) {
  World world = make_world(111, true);
  Rng rng(111);
  const keyword::Query q = world.corpus->q1(0, true);
  const auto origin = world.sys->ring().node_ids().front();
  const auto cold = world.sys->query(q, origin);
  const std::size_t misses_after_cold = world.sys->cache_stats().misses;
  EXPECT_GT(misses_after_cold, 0u);
  EXPECT_EQ(world.sys->cache_stats().hits, 0u);

  const auto warm = world.sys->query(q, origin);
  EXPECT_GT(world.sys->cache_stats().hits, 0u);
  EXPECT_EQ(warm.stats.matches, cold.stats.matches);
  EXPECT_LE(warm.stats.messages, cold.stats.messages);
  // Warm routing touches fewer peers: direct sends skip intermediates.
  EXPECT_LE(warm.stats.routing_nodes, cold.stats.routing_nodes);
}

TEST(OwnerCache, ResultsIdenticalWithAndWithoutCaching) {
  World cached = make_world(112, true);
  World plain = make_world(112, false);
  Rng rng_a(112), rng_b(112);
  for (const std::size_t rank : {0u, 2u, 7u}) {
    const keyword::Query q = cached.corpus->q1(rank, true);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto a =
          cached.sys->query(q, cached.sys->ring().random_node(rng_a));
      const auto b = plain.sys->query(q, plain.sys->ring().random_node(rng_b));
      EXPECT_EQ(a.stats.matches, b.stats.matches);
    }
  }
}

TEST(OwnerCache, StaleEntriesSelfHealAfterChurn) {
  World world = make_world(113, true);
  Rng rng(113);
  const keyword::Query q = world.corpus->q1(1, true);
  const auto origin = world.sys->ring().node_ids().front();
  const std::size_t expected = world.sys->query(q, origin).stats.matches;
  ASSERT_EQ(world.sys->cache_stats().stale, 0u); // cold run: nothing cached

  // Fail every peer except the origin and the highest-id survivor (the
  // survivor keeps most of the space remote from the origin, so dispatches
  // still consult the cache). Almost every cached owner identifier is now
  // dead: warmed entries MUST detect staleness, evict, and fall back to
  // routing — while results stay complete.
  const auto survivor = world.sys->ring().node_ids().back();
  ASSERT_NE(survivor, origin);
  for (const auto victim : world.sys->ring().node_ids()) {
    if (victim == origin || victim == survivor) continue;
    world.sys->fail_node(victim);
  }
  world.sys->repair_routing();
  const auto after = world.sys->query(q, origin);
  EXPECT_EQ(after.stats.matches, expected); // data store survives, so must results
  EXPECT_GT(world.sys->cache_stats().stale, 0u); // evictions actually happened
  // Every stale consult became a miss and re-learned a live owner.
  EXPECT_GE(world.sys->cache_stats().misses, world.sys->cache_stats().stale);
}

TEST(OwnerCache, CountersBalanceAcrossPublishUnpublishChurn) {
  World world = make_world(116, true);
  Rng rng(116);
  const keyword::Query q = world.corpus->q1(0, true);
  const auto origin = world.sys->ring().node_ids().front();

  // Cold query: consults can only miss.
  (void)world.sys->query(q, origin);
  const CacheStats cold = world.sys->cache_stats();
  EXPECT_GT(cold.misses, 0u);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.stale, 0u);

  // Publishing and unpublishing data changes the store but not ring
  // ownership: warmed entries must keep verifying, so the second run hits
  // and never goes stale.
  const auto extra = world.corpus->make_elements(50, rng);
  for (const auto& e : extra) world.sys->publish(e);
  (void)world.sys->query(q, origin);
  const CacheStats warm = world.sys->cache_stats();
  EXPECT_GT(warm.hits, 0u);
  EXPECT_EQ(warm.stale, 0u);
  for (const auto& e : extra) EXPECT_TRUE(world.sys->unpublish(e));
  (void)world.sys->query(q, origin);
  EXPECT_EQ(world.sys->cache_stats().stale, 0u);
  EXPECT_GT(world.sys->cache_stats().hits, warm.hits);

  // Now churn the ring. Stale detections must strictly increment the stale
  // counter, and every consult is exactly one of hit / miss (stale consults
  // fall through to the miss counter): hits+misses only ever grows.
  const CacheStats before = world.sys->cache_stats();
  const auto survivor = world.sys->ring().node_ids().back();
  ASSERT_NE(survivor, origin);
  for (const auto victim : world.sys->ring().node_ids()) {
    if (victim == origin || victim == survivor) continue;
    world.sys->fail_node(victim);
  }
  world.sys->repair_routing();
  (void)world.sys->query(q, origin);
  const CacheStats after = world.sys->cache_stats();
  EXPECT_GT(after.stale, before.stale);
  EXPECT_GT(after.misses, before.misses);
  EXPECT_GE(after.hits + after.misses, before.hits + before.misses);
}

TEST(OwnerCache, DisabledByDefault) {
  World world = make_world(114, false);
  Rng rng(114);
  (void)world.sys->query(world.corpus->q1(0, true),
                         world.sys->ring().random_node(rng));
  (void)world.sys->query(world.corpus->q1(0, true),
                         world.sys->ring().random_node(rng));
  EXPECT_EQ(world.sys->cache_stats().hits, 0u);
  EXPECT_EQ(world.sys->cache_stats().misses, 0u);
}

TEST(OwnerCache, ClearCachesResetsEverything) {
  World world = make_world(115, true);
  Rng rng(115);
  const auto origin = world.sys->ring().node_ids().front();
  (void)world.sys->query(world.corpus->q1(0, true), origin);
  (void)world.sys->query(world.corpus->q1(0, true), origin);
  EXPECT_GT(world.sys->cache_stats().hits + world.sys->cache_stats().misses,
            0u);
  world.sys->clear_caches();
  EXPECT_EQ(world.sys->cache_stats().hits, 0u);
  EXPECT_EQ(world.sys->cache_stats().misses, 0u);
}

} // namespace
} // namespace squid::core
